"""Entry point for ``python -m repro``."""

import os
import sys

from .cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Downstream pager/head closed the pipe; exit quietly like other
    # well-behaved Unix filters.  Re-point stdout at devnull so the
    # interpreter's shutdown flush does not raise a second time.
    devnull = os.open(os.devnull, os.O_WRONLY)
    os.dup2(devnull, sys.stdout.fileno())
    sys.exit(1)
