"""Random hyperbolic graphs (the paper's RHG family).

"RHG construction is conceptually similar [to RGG], as vertices are placed
on a disk with radius r that depends on the average degree and power-law
exponent gamma, where the disk is again evenly divided among the MPI
processes.  Two vertices are adjacent, if the (hyperbolic) distance is
smaller than r."  The paper uses gamma = 3.0.  RHGs sit between the
high-locality (GRID/RGG) and no-locality (GNM/RMAT) families and have a
power-law degree distribution.

Model (Krioukov et al.): vertex ``i`` gets polar coordinates
``(r_i, theta_i)`` on a hyperbolic disk of radius ``R``; ``theta`` is
uniform, ``r`` has density ``alpha sinh(alpha r) / (cosh(alpha R) - 1)``
with ``alpha = (gamma - 1) / 2``.  Vertices are adjacent iff their
hyperbolic distance

    ``cosh(d) = cosh(r_i) cosh(r_j) - sinh(r_i) sinh(r_j) cos(dtheta)``

is below ``R``.  ``R`` is calibrated numerically so the expected average
degree matches the request.

Neighbour search: exact pairwise testing is ``O(n^2)``; we use the standard
band decomposition -- *inner* vertices (``r <= R/2``) are few and tested
against everybody; *outer* pairs satisfy an angular window
``dtheta <= Delta(r_i, r_j)`` obtained from the exact distance formula with
``r_j`` replaced by its lower bound ``R/2``, so the window is conservative
(no edges are missed) and the candidate set stays near-linear.

Vertices are numbered by angle, mirroring KaGen's angular partitioning of
the disk, which is what gives RHG its partial locality in the paper's runs.
"""

from __future__ import annotations

import numpy as np

from .base import GeneratedGraph, finalize_pairs


def _disk_radius_for_degree(n: int, avg_degree: float, alpha: float) -> float:
    """Numerically calibrate the disk radius for a target average degree.

    Uses the asymptotic mean-degree formula of the Krioukov model,
    ``k_mean ~ (2 / pi) * xi^2 * n * e^{-R/2}`` with
    ``xi = alpha / (alpha - 1/2)``, then refines by bisection on a Monte
    Carlo estimate being unnecessary at our scales (the asymptotic value is
    accurate to ~10 % which is ample for reproducing scaling shapes).
    """
    xi = alpha / (alpha - 0.5)
    r = 2.0 * np.log(n * 2.0 * xi * xi / (np.pi * avg_degree))
    return float(max(r, 1.0))


def _pairs_within_distance(radii: np.ndarray, theta: np.ndarray, R: float):
    """All pairs with hyperbolic distance < R (exact check on candidates)."""
    n = len(radii)
    cr, sr = np.cosh(radii), np.sinh(radii)
    cosh_R = np.cosh(R)
    us, vs = [], []

    inner = np.flatnonzero(radii <= R / 2.0)
    outer = np.flatnonzero(radii > R / 2.0)

    # Inner x all: few inner vertices, test against everyone vectorised.
    for i in inner:
        cand = np.arange(i + 1, n)
        if len(cand) == 0:
            continue
        cosd = np.cos(theta[i] - theta[cand])
        lhs = cr[i] * cr[cand] - sr[i] * sr[cand] * cosd
        hit = cand[lhs < cosh_R]
        us.append(np.full(len(hit), i, dtype=np.int64))
        vs.append(hit.astype(np.int64))

    # Outer x outer: angular window search on angle-sorted vertices.
    if len(outer):
        o_order = outer[np.argsort(theta[outer], kind="stable")]
        o_theta = theta[o_order]
        o_r = radii[o_order]
        cr_o, sr_o = np.cosh(o_r), np.sinh(o_r)
        m = len(o_order)
        # Conservative per-vertex window: partner radius lower bound R/2.
        cos_bound = (cr_o * np.cosh(R / 2.0) - cosh_R) / (sr_o * np.sinh(R / 2.0))
        window = np.where(cos_bound <= -1.0, np.pi,
                          np.arccos(np.clip(cos_bound, -1.0, 1.0)))
        ext_theta = np.concatenate([o_theta, o_theta[: m] + 2 * np.pi])
        for k in range(m):
            hi = np.searchsorted(ext_theta, o_theta[k] + window[k],
                                 side="right")
            cand = np.arange(k + 1, hi)
            if len(cand) == 0:
                continue
            cand_mod = cand % m
            dtheta = ext_theta[cand] - o_theta[k]
            lhs = cr_o[k] * cr_o[cand_mod] - sr_o[k] * sr_o[cand_mod] * np.cos(dtheta)
            ok = (lhs < cosh_R) & (cand_mod != k)
            hit = cand_mod[ok]
            lo_v = np.minimum(o_order[k], o_order[hit])
            hi_v = np.maximum(o_order[k], o_order[hit])
            us.append(lo_v.astype(np.int64))
            vs.append(hi_v.astype(np.int64))

    if not us:
        return (np.empty(0, dtype=np.int64),) * 2
    return np.concatenate(us), np.concatenate(vs)


def gen_rhg(n: int, avg_degree: float, gamma: float = 3.0,
            seed: int = 0) -> GeneratedGraph:
    """Random hyperbolic graph with power-law exponent ``gamma``.

    The paper's weak-scaling RHGs use ``gamma = 3.0``; the expected average
    degree is matched approximately (asymptotic calibration).
    """
    if gamma <= 2.0:
        raise ValueError("gamma must be > 2 (alpha > 1/2)")
    if n < 2:
        raise ValueError("n must be >= 2")
    alpha = (gamma - 1.0) / 2.0
    R = _disk_radius_for_degree(n, avg_degree, alpha)
    rng = np.random.default_rng(seed)
    theta = rng.random(n) * 2.0 * np.pi
    # Inverse-CDF sampling of the radial coordinate.
    u = rng.random(n)
    radii = np.arccosh(1.0 + u * (np.cosh(alpha * R) - 1.0)) / alpha
    # Number vertices by angle (KaGen's angular partition => locality).
    order = np.argsort(theta, kind="stable")
    theta, radii = theta[order], radii[order]
    pu, pv = _pairs_within_distance(radii, theta, R)
    return finalize_pairs(
        "RHG", pu, pv, n, seed,
        params={"n": n, "avg_degree": avg_degree, "gamma": gamma, "R": R},
    )
