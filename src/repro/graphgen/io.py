"""Persistence for generated instances.

Two formats:

* ``.npz`` -- raw numpy arrays, fast to reload (used by the examples and the
  benchmark harness to cache generated instances between runs);
* ``.kmst`` -- the varint-delta compressed format of Section VI-C
  (``repro.utils.varint``), with weights stored raw.  Mainly demonstrates
  the compressed edge-list machinery on whole graphs.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..dgraph.edges import Edges
from ..kernels.dtypes import index_dtype, narrow
from ..utils.varint import CompressedEdgeList
from .base import GeneratedGraph


def save_npz(graph: GeneratedGraph, path: str | Path) -> None:
    """Save a generated instance as an ``.npz`` archive."""
    path = Path(path)
    np.savez_compressed(
        path,
        u=graph.edges.u, v=graph.edges.v, w=graph.edges.w, id=graph.edges.id,
        n_vertices=np.int64(graph.n_vertices),
        name=np.bytes_(graph.name.encode()),
        params=np.bytes_(json.dumps(graph.params, default=str).encode()),
    )


def load_npz(path: str | Path) -> GeneratedGraph:
    """Load an instance saved by :func:`save_npz`.

    Columns are narrowed to the policy dtype on load (archives written
    before dtype narrowing -- or with it disabled -- store int64), so a
    cached instance costs the same resident memory as a fresh one.
    """
    data = np.load(Path(path), allow_pickle=False)
    n_vertices = int(data["n_vertices"])
    vid_bound = max(n_vertices - 1, 0)
    m = len(data["u"])
    edges = Edges(
        narrow(data["u"], max_value=vid_bound),
        narrow(data["v"], max_value=vid_bound),
        narrow(data["w"]),
        narrow(data["id"], max_value=max(m - 1, 0)),
    )
    return GeneratedGraph(
        name=bytes(data["name"]).decode(),
        n_vertices=n_vertices,
        edges=edges,
        params=json.loads(bytes(data["params"]).decode()),
    )


def save_compressed(graph: GeneratedGraph, path: str | Path) -> None:
    """Save with the paper's varint-delta edge compression (Section VI-C)."""
    path = Path(path)
    comp = CompressedEdgeList(graph.edges.u, graph.edges.v)
    np.savez_compressed(
        path,
        stream=comp.stream,
        n_edges=np.int64(comp.n_edges),
        w=graph.edges.w,
        n_vertices=np.int64(graph.n_vertices),
        name=np.bytes_(graph.name.encode()),
    )


def load_compressed(path: str | Path) -> GeneratedGraph:
    """Load an instance saved by :func:`save_compressed`."""
    data = np.load(Path(path), allow_pickle=False)
    comp = CompressedEdgeList.__new__(CompressedEdgeList)
    comp.stream = data["stream"]
    comp.n_edges = int(data["n_edges"])
    u, v = comp.decode()
    return GeneratedGraph(
        name=bytes(data["name"]).decode(),
        n_vertices=int(data["n_vertices"]),
        edges=Edges(u, v, data["w"]),
        params={"source": "compressed"},
    )
