"""Two-dimensional grid graphs (the paper's 2D-GRID family).

Vertices form a ``rows x cols`` lattice numbered row-major; edges connect
horizontal and vertical lattice neighbours.  Grid graphs are the extreme
high-locality family in the weak-scaling experiments (Fig. 3): with row-major
numbering and 1D edge partitioning, almost all edges are local, which is
where local preprocessing shines (up to the 800x speedups over the
competitors the paper reports).
"""

from __future__ import annotations

import math

import numpy as np

from .base import GeneratedGraph, finalize_pairs


def gen_grid2d(rows: int, cols: int, seed: int = 0,
               periodic: bool = False) -> GeneratedGraph:
    """Generate a ``rows x cols`` 2D grid graph.

    ``periodic`` adds wrap-around (torus) edges, keeping every vertex at
    degree 4 like the interior of a large grid.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    n = rows * cols
    idx = np.arange(n, dtype=np.int64)
    r = idx // cols
    c = idx % cols

    us, vs = [], []
    # Horizontal neighbours.
    right = c < cols - 1
    us.append(idx[right])
    vs.append(idx[right] + 1)
    # Vertical neighbours.
    down = r < rows - 1
    us.append(idx[down])
    vs.append(idx[down] + cols)
    if periodic:
        if cols > 2:
            last = c == cols - 1
            us.append(idx[last])
            vs.append(idx[last] - (cols - 1))
        if rows > 2:
            bottom = r == rows - 1
            us.append(idx[bottom])
            vs.append(idx[bottom] - (rows - 1) * cols)

    return finalize_pairs(
        "2D-GRID",
        np.concatenate(us), np.concatenate(vs), n, seed,
        params={"rows": rows, "cols": cols, "periodic": periodic},
    )


def gen_grid2d_n(n_target: int, seed: int = 0) -> GeneratedGraph:
    """Square-ish grid with approximately ``n_target`` vertices."""
    side = max(1, int(math.isqrt(n_target)))
    return gen_grid2d(side, max(1, n_target // side), seed=seed)
