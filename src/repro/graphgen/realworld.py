"""Synthetic stand-ins for the paper's real-world instances (Table I).

The strong-scaling experiments (Fig. 5) use six real-world graphs between
57 million and 124 *billion* directed edges.  Those datasets (and the memory
to hold them) are unavailable here, so -- per the substitution rule in
DESIGN.md -- each instance is replaced by a scaled-down synthetic graph of
the same *structural class*, because the paper's strong-scaling story is
driven by structure, not absolute size:

* **social** (friendster, twitter): scrambled R-MAT with Graph500
  probabilities -- heavy-tailed degrees, no numbering locality.  This is the
  regime where the paper's shared-vertex 1D partitioning and the filtering
  approach win.
* **web** (uk-2007, it-2004, wdc-14): a locality-preserving power-law
  "copying" model -- most links go to nearby vertex ids (web crawls are
  host-ordered), high density.  Local preprocessing is effective here.
* **road** (US-road): a perturbed 2D grid -- near-planar, constant degree,
  huge diameter, tiny m/n.  The hardest instance to scale strongly (the
  paper's best time is reached at 8192 cores and degrades after).

Every stand-in preserves the original's m/n ratio (to within sampling noise)
and records its linear scale factor; EXPERIMENTS.md reports both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from .base import GeneratedGraph, finalize_pairs
from .grid import gen_grid2d
from .rmat import gen_rmat


@dataclass(frozen=True)
class InstanceSpec:
    """Metadata tying a stand-in to its Table-I original."""

    name: str
    paper_n: float  # vertices in the paper's instance
    paper_m: float  # symmetric directed edges in the paper's instance
    graph_type: str  # social | web | road
    #: default stand-in vertex count (scaled down so simulation is feasible)
    default_n: int


#: The six instances of Table I.
TABLE_I: Dict[str, InstanceSpec] = {
    "friendster": InstanceSpec("friendster", 68.3e6, 3.6e9, "social", 1 << 14),
    "twitter": InstanceSpec("twitter", 41.7e6, 2.4e9, "social", 1 << 14),
    "uk-2007": InstanceSpec("uk-2007", 105.9e6, 6.6e9, "web", 1 << 15),
    "it-2004": InstanceSpec("it-2004", 41.3e6, 2.1e9, "web", 1 << 14),
    "wdc-14": InstanceSpec("wdc-14", 1.7e9, 123.9e9, "web", 1 << 16),
    "US-road": InstanceSpec("US-road", 23.9e6, 57.7e6, "road", 1 << 16),
}


def _gen_social(spec: InstanceSpec, n: int, seed: int) -> GeneratedGraph:
    m_undirected = int(n * spec.paper_m / spec.paper_n / 2.0)
    log_n = max(1, int(np.ceil(np.log2(n))))
    g = gen_rmat(log_n, m_undirected, seed=seed, scramble=True)
    return g


def _gen_web(spec: InstanceSpec, n: int, seed: int) -> GeneratedGraph:
    """Locality-preserving power-law copying model.

    Each vertex u links to ``deg(u)`` targets at power-law-distributed id
    distances (mostly nearby: web graphs in crawl order have strong
    locality), with a small fraction of uniform long-range links.  Degrees
    are heavy-tailed (Zipf) like real web graphs.
    """
    rng = np.random.default_rng(seed)
    target_m = int(n * spec.paper_m / spec.paper_n / 2.0)
    # Heavy-tailed out-degrees normalised to the target edge count.
    raw = rng.zipf(2.2, n).astype(np.float64)
    deg = np.maximum(1, (raw * target_m / raw.sum()).astype(np.int64))
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    k = len(src)
    # Power-law distances: P(dist = d) ~ 1/d over [1, n).
    dist = np.exp(rng.random(k) * np.log(max(n - 1, 2))).astype(np.int64)
    dist = np.maximum(dist, 1)
    sign = rng.integers(0, 2, k) * 2 - 1
    dst = src + sign * dist
    # ~3 % uniform long-range links.
    far = rng.random(k) < 0.03
    dst[far] = rng.integers(0, n, int(far.sum()))
    dst = np.clip(dst, 0, n - 1)
    return finalize_pairs(
        f"web-standin", src, dst, n, seed,
        params={"model": "copying", "target_m": target_m},
    )


def _gen_road(spec: InstanceSpec, n: int, seed: int) -> GeneratedGraph:
    """Perturbed 2D grid: remove a random 12 % of edges, add 5 % diagonals."""
    side = max(2, int(np.sqrt(n)))
    base = gen_grid2d(side, side, seed=seed)
    rng = np.random.default_rng(seed + 1)
    e = base.edges
    forward = e.u < e.v  # one representative per undirected edge
    u, v = e.u[forward], e.v[forward]
    keep = rng.random(len(u)) >= 0.12
    u, v = u[keep], v[keep]
    n_sq = side * side
    # Diagonal shortcuts.
    n_diag = int(0.05 * len(u))
    du = rng.integers(0, n_sq - side - 1, n_diag)
    dv = du + side + 1
    return finalize_pairs(
        "road-standin", np.concatenate([u, du]), np.concatenate([v, dv]),
        n_sq, seed, params={"side": side},
    )


_GENERATORS: Dict[str, Callable[[InstanceSpec, int, int], GeneratedGraph]] = {
    "social": _gen_social,
    "web": _gen_web,
    "road": _gen_road,
}


def gen_realworld(name: str, n: int | None = None,
                  seed: int = 0) -> GeneratedGraph:
    """Generate the stand-in for a Table-I instance by name.

    ``n`` overrides the default stand-in size (the m/n ratio of the original
    is preserved either way).  The returned graph's ``params`` record the
    original's statistics and the applied scale factor.
    """
    try:
        spec = TABLE_I[name]
    except KeyError:
        raise ValueError(
            f"unknown instance {name!r}; choose from {sorted(TABLE_I)}"
        )
    n = int(n if n is not None else spec.default_n)
    g = _GENERATORS[spec.graph_type](spec, n, seed)
    g.params.update(
        instance=name,
        graph_type=spec.graph_type,
        paper_n=spec.paper_n,
        paper_m=spec.paper_m,
        scale_factor=spec.paper_n / max(g.n_vertices, 1),
    )
    # Rename to the instance for reporting.
    g.name = name
    return g
