"""Graph generators: the paper's six weak-scaling families (Section VII),
real-world stand-ins (Table I) and instance persistence."""

from .base import GeneratedGraph, finalize_pairs, WEIGHT_HIGH, WEIGHT_LOW
from .grid import gen_grid2d, gen_grid2d_n
from .gnm import gen_gnm
from .rgg import gen_rgg, gen_rgg2d, gen_rgg3d, radius_for_avg_degree
from .rhg import gen_rhg
from .rmat import GRAPH500_PROBS, gen_rmat
from .realworld import TABLE_I, InstanceSpec, gen_realworld
from .weights import assign_distinct_weights, assign_uniform_weights
from .stats import GraphStatistics, degree_gini, graph_statistics, locality_fraction
from .io import load_compressed, load_npz, save_compressed, save_npz

#: The six weak-scaling families of Fig. 3, by paper name.
FAMILIES = ("2D-GRID", "2D-RGG", "3D-RGG", "RHG", "GNM", "RMAT")


def gen_family(family: str, n: int, m: int, seed: int = 0) -> GeneratedGraph:
    """Generate a weak-scaling family instance with ~n vertices, ~m edges.

    ``m`` counts undirected edges; for GRID it is implied by ``n`` and for
    the geometric families the threshold/average degree is derived from the
    requested ratio, mirroring how the paper scales instances
    ("for RGG/GNM the threshold distance / edge probability is chosen
    accordingly").
    """
    avg_deg = 2.0 * m / max(n, 1)
    if family == "2D-GRID":
        return gen_grid2d_n(n, seed=seed)
    if family == "2D-RGG":
        return gen_rgg2d(n, avg_degree=avg_deg, seed=seed)
    if family == "3D-RGG":
        return gen_rgg3d(n, avg_degree=avg_deg, seed=seed)
    if family == "RHG":
        return gen_rhg(n, avg_degree=avg_deg, seed=seed)
    if family == "GNM":
        return gen_gnm(n, m, seed=seed)
    if family == "RMAT":
        import math

        return gen_rmat(max(1, int(math.ceil(math.log2(max(n, 2))))), m,
                        seed=seed)
    raise ValueError(f"unknown family {family!r}; choose from {FAMILIES}")


__all__ = [
    "GeneratedGraph",
    "finalize_pairs",
    "WEIGHT_HIGH",
    "WEIGHT_LOW",
    "gen_grid2d",
    "gen_grid2d_n",
    "gen_gnm",
    "gen_rgg",
    "gen_rgg2d",
    "gen_rgg3d",
    "radius_for_avg_degree",
    "gen_rhg",
    "GRAPH500_PROBS",
    "gen_rmat",
    "TABLE_I",
    "InstanceSpec",
    "gen_realworld",
    "assign_distinct_weights",
    "assign_uniform_weights",
    "FAMILIES",
    "gen_family",
    "GraphStatistics",
    "degree_gini",
    "graph_statistics",
    "locality_fraction",
    "load_compressed",
    "load_npz",
    "save_compressed",
    "save_npz",
]
