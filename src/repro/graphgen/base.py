"""Common scaffolding for the graph generators.

All generators produce a :class:`GeneratedGraph`: a *global* symmetric
directed edge sequence in lexicographic order with integer weights assigned
uniformly at random per *undirected* edge (the paper's experimental setup,
Section VII: "we assign a weight drawn uniformly at random from [1, 255) to
each edge", following [36]).

:func:`distribute` turns a generated graph into the 1D-partitioned
:class:`~repro.dgraph.dist_graph.DistGraph`, with the KaGen input guarantee
reproduced: "KaGen ensures that the generated edges are globally
lexicographically sorted and thus do not produce shared vertices for the
input" -- block boundaries are aligned to source-group boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..dgraph.dist_graph import DistGraph
from ..dgraph.edges import Edges
from ..kernels.dtypes import index_dtype, narrow
from ..simmpi.machine import Machine
from .weights import assign_uniform_weights

#: Weight range of the paper's experiments (uniform integers in [1, 255)).
WEIGHT_LOW = 1
WEIGHT_HIGH = 255


@dataclass
class GeneratedGraph:
    """A generated instance: global sorted symmetric edge list + metadata."""

    name: str
    n_vertices: int
    edges: Edges  # symmetric directed, lexicographically sorted
    params: Dict = field(default_factory=dict)

    @property
    def n_directed_edges(self) -> int:
        """Length of the symmetric directed edge sequence."""
        return len(self.edges)

    @property
    def n_undirected_edges(self) -> int:
        """Number of undirected edges (half the directed count)."""
        return len(self.edges) // 2

    def distribute(self, machine: Machine, avoid_shared: bool = True) -> DistGraph:
        """1D-partition the edge sequence over the machine's PEs."""
        return DistGraph.from_global_edges(machine, self.edges,
                                           avoid_shared=avoid_shared)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"GeneratedGraph({self.name}, n={self.n_vertices}, "
                f"m={self.n_undirected_edges})")


def finalize_pairs(
    name: str,
    u: np.ndarray,
    v: np.ndarray,
    n_vertices: int,
    seed: int,
    params: Dict | None = None,
    weight_low: int = WEIGHT_LOW,
    weight_high: int = WEIGHT_HIGH,
) -> GeneratedGraph:
    """Standard generator postprocessing.

    Canonicalises undirected pairs, removes self loops and duplicates,
    assigns per-undirected-edge weights, symmetrises (adds back edges), sorts
    lexicographically and assigns directed-edge ids by final position.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    keep = u != v
    u, v = u[keep], v[keep]
    cu = np.minimum(u, v)
    cv = np.maximum(u, v)
    # Dedup canonical pairs via a single int64 code (n < 2^31 guaranteed by
    # the generators' scales).
    if n_vertices >= (1 << 31):
        raise ValueError("n_vertices too large for pair encoding")
    code = cu * np.int64(n_vertices) + cv
    code = np.unique(code)
    cu = code // n_vertices
    cv = code % n_vertices
    w = assign_uniform_weights(len(cu), seed=seed, low=weight_low,
                               high=weight_high)
    # Store the finished instance in the narrowest safe dtype (uint32 for
    # every benchmark-scale graph): the dominant resident allocation of a
    # run is this edge list plus the DistGraph parts taken from it.
    vid_dt = index_dtype(max(int(n_vertices) - 1, 0))
    cu = cu.astype(vid_dt, copy=False) if vid_dt != cu.dtype else cu
    cv = cv.astype(vid_dt, copy=False) if vid_dt != cv.dtype else cv
    w = narrow(w, max_value=max(int(weight_high) - 1, 0))
    sym = Edges(
        np.concatenate([cu, cv]),
        np.concatenate([cv, cu]),
        np.concatenate([w, w]),
    ).sort_lex()
    m = len(sym)
    sym.id = np.arange(m, dtype=index_dtype(max(m - 1, 0)))
    return GeneratedGraph(
        name=name, n_vertices=int(n_vertices), edges=sym,
        params=dict(params or {}),
    )
