"""Edge-weight assignment (Section VII).

"Following the experimental setup in [36], we assign a weight drawn
uniformly at random from [1, 255) to each edge."  Weights are assigned per
*undirected* edge; both directed copies of an edge carry the same weight.
"""

from __future__ import annotations

import numpy as np


def assign_uniform_weights(
    n_edges: int, seed: int, low: int = 1, high: int = 255
) -> np.ndarray:
    """Integer weights uniform in ``[low, high)``, one per undirected edge."""
    if high <= low:
        raise ValueError("need high > low")
    rng = np.random.default_rng(np.random.SeedSequence(entropy=seed,
                                                       spawn_key=(0xEDCE,)))
    return rng.integers(low, high, n_edges, dtype=np.int64)


def assign_distinct_weights(n_edges: int, seed: int) -> np.ndarray:
    """A random permutation as weights -- guarantees a unique MST.

    Not what the paper's experiments use, but handy for tests that check the
    distributed and sequential algorithms select the *identical* edge set.
    """
    rng = np.random.default_rng(np.random.SeedSequence(entropy=seed,
                                                       spawn_key=(0xD157,)))
    return rng.permutation(n_edges).astype(np.int64) + 1
