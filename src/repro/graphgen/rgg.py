"""Random geometric graphs in 2D and 3D (the paper's 2D/3D-RGG families).

"RGGs are constructed by placing vertices uniformly at random in the unit
square (unit cube for 3D) ... Vertices are connected if the Euclidean
distance is below a threshold d."  To mirror KaGen's spatial partitioning --
which gives the family its locality under 1D partitioning -- vertices are
numbered by spatial cell (Morton-ish row-major cell order), so nearby
vertices get nearby labels and most edges become local edges.

Neighbour search uses ``scipy.spatial.cKDTree.query_pairs`` (exact, no
approximation).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from .base import GeneratedGraph, finalize_pairs


def radius_for_avg_degree(n: int, avg_degree: float, dim: int) -> float:
    """Connection radius giving expected average degree ``avg_degree``.

    In the unit square/cube the expected degree of a vertex is approximately
    ``n * volume(ball(r))`` (ignoring boundary effects):
    2D: ``n * pi r^2``;  3D: ``n * 4/3 pi r^3``.
    """
    if dim == 2:
        return float(np.sqrt(avg_degree / (np.pi * n)))
    if dim == 3:
        return float((avg_degree / (4.0 / 3.0 * np.pi * n)) ** (1.0 / 3.0))
    raise ValueError("dim must be 2 or 3")


def _spatial_relabel(points: np.ndarray, radius: float) -> np.ndarray:
    """Renumber points by spatial cell, then by position within the cell.

    Cells have side ~radius; ordering cells row-major and points by cell id
    reproduces the locality KaGen's per-PE spatial regions give the paper's
    instances.  Returns the permutation ``order`` such that new vertex ``k``
    is original point ``order[k]``.
    """
    cell_side = max(radius, 1e-9)
    grid = np.floor(points / cell_side).astype(np.int64)
    n_cells = int(grid.max()) + 1 if len(grid) else 1
    code = np.zeros(len(points), dtype=np.int64)
    for d in range(points.shape[1]):
        code = code * n_cells + grid[:, d]
    return np.argsort(code, kind="stable")


def gen_rgg(n: int, dim: int, avg_degree: float | None = None,
            radius: float | None = None, seed: int = 0) -> GeneratedGraph:
    """Random geometric graph with ``n`` vertices in ``[0,1]^dim``.

    Give either ``radius`` or ``avg_degree`` (the experiments scale the
    threshold so m is proportional to the core count, Section VII).
    """
    if (radius is None) == (avg_degree is None):
        raise ValueError("give exactly one of radius / avg_degree")
    if radius is None:
        radius = radius_for_avg_degree(n, float(avg_degree), dim)
    rng = np.random.default_rng(seed)
    points = rng.random((n, dim))
    order = _spatial_relabel(points, radius)
    points = points[order]
    tree = cKDTree(points)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    name = f"{dim}D-RGG"
    return finalize_pairs(
        name, pairs[:, 0].astype(np.int64), pairs[:, 1].astype(np.int64),
        n, seed,
        params={"n": n, "dim": dim, "radius": radius,
                "avg_degree": avg_degree},
    )


def gen_rgg2d(n: int, avg_degree: float | None = None,
              radius: float | None = None, seed: int = 0) -> GeneratedGraph:
    """2D random geometric graph (see :func:`gen_rgg`)."""
    return gen_rgg(n, 2, avg_degree=avg_degree, radius=radius, seed=seed)


def gen_rgg3d(n: int, avg_degree: float | None = None,
              radius: float | None = None, seed: int = 0) -> GeneratedGraph:
    """3D random geometric graph (see :func:`gen_rgg`)."""
    return gen_rgg(n, 3, avg_degree=avg_degree, radius=radius, seed=seed)
