"""Instance statistics: the quantities the paper's analysis conditions on.

The weak-scaling discussion (Section VII-A) explains every result through
three structural properties: *locality* (fraction of local edges under the
1D partition -- what preprocessing exploits), *degree skew* (what breaks
MND-MST and motivates shared vertices), and *density* m/n (what filtering
exploits).  This module computes them, plus the usual degree statistics,
for any instance -- used by the CLI's ``info`` command, the Table-I bench
and the generator tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dgraph.edges import Edges
from .base import GeneratedGraph


@dataclass
class GraphStatistics:
    """Structural summary of one instance."""

    n_vertices: int
    m_undirected: int
    avg_degree: float
    max_degree: int
    #: Gini coefficient of the degree distribution (0 = regular, -> 1 =
    #: extremely skewed).  Grid ~0, GNM small, RMAT/RHG large.
    degree_gini: float
    #: Fraction of edges whose endpoints land on the same PE under an
    #: edge-balanced 1D partition into ``locality_parts`` blocks.
    locality_fraction: float
    locality_parts: int
    weight_min: int
    weight_max: int

    def summary(self) -> str:
        """One-line rendering of the statistics."""
        return (
            f"n={self.n_vertices} m={self.m_undirected} "
            f"avg_deg={self.avg_degree:.2f} max_deg={self.max_degree} "
            f"gini={self.degree_gini:.2f} "
            f"locality={self.locality_fraction:.1%}@{self.locality_parts}PEs"
        )


def degree_gini(degrees: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (vectorised)."""
    d = np.sort(np.asarray(degrees, dtype=np.float64))
    n = len(d)
    if n == 0 or d.sum() == 0:
        return 0.0
    cum = np.cumsum(d)
    # G = 1 - 2 * sum((cum - d/2)) / (n * total)
    return float(1.0 - 2.0 * np.sum(cum - d / 2.0) / (n * cum[-1]))


def locality_fraction(edges: Edges, n_parts: int) -> float:
    """Local-edge fraction under an edge-balanced 1D partition.

    An edge is local when source and destination fall in the same block of
    the sorted edge sequence's vertex ranges -- the quantity the paper's
    90 %-cut-edge skip rule tests.
    """
    if len(edges) == 0:
        return 1.0
    e = edges if edges.is_sorted_lex() else edges.sort_lex()
    bounds = np.linspace(0, len(e), n_parts + 1).astype(np.int64)
    local = 0
    for i in range(n_parts):
        lo, hi = bounds[i], bounds[i + 1]
        if hi <= lo:
            continue
        v_lo, v_hi = e.u[lo], e.u[hi - 1]
        seg_v = e.v[lo:hi]
        local += int(((seg_v >= v_lo) & (seg_v <= v_hi)).sum())
    return local / len(e)


def graph_statistics(graph: GeneratedGraph | Edges,
                     n_vertices: int | None = None,
                     locality_parts: int = 16) -> GraphStatistics:
    """Compute the full structural summary of an instance."""
    if isinstance(graph, GeneratedGraph):
        edges = graph.edges
        n = graph.n_vertices
    else:
        edges = graph
        if n_vertices is None:
            raise ValueError("pass n_vertices for a raw edge sequence")
        n = n_vertices
    if len(edges) == 0:
        return GraphStatistics(n, 0, 0.0, 0, 0.0, 1.0, locality_parts, 0, 0)
    deg = np.bincount(edges.u, minlength=n)
    deg_pos = deg[deg > 0]
    return GraphStatistics(
        n_vertices=n,
        m_undirected=len(edges) // 2,
        avg_degree=float(deg_pos.mean()),
        max_degree=int(deg_pos.max()),
        degree_gini=degree_gini(deg_pos),
        locality_fraction=locality_fraction(edges, locality_parts),
        locality_parts=locality_parts,
        weight_min=int(edges.w.min()),
        weight_max=int(edges.w.max()),
    )
