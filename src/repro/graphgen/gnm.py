"""Erdős-Renyi G(n, m) graphs (the paper's GNM family).

"In Erdős-Renyi graphs, each edge is inserted with a probability given as an
input parameter" -- we implement the G(n, m) variant KaGen uses for weak
scaling (fixed edge count proportional to the core count), sampling ``m``
distinct undirected pairs uniformly.  GNM graphs "consist almost exclusively
of cut-edges" under 1D partitioning, making them the communication-heaviest
family and the one where Filter-Borůvka's advantage peaks (up to 4x,
Section VII-A).
"""

from __future__ import annotations

import numpy as np

from .base import GeneratedGraph, finalize_pairs


def gen_gnm(n: int, m: int, seed: int = 0) -> GeneratedGraph:
    """Uniform random graph with ``n`` vertices and ``m`` undirected edges.

    Sampling is by rejection: draw batches of random pairs, deduplicate,
    repeat until ``m`` distinct pairs are found (efficient while
    ``m << n^2 / 2``, which holds for every experiment scale here).
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise ValueError(f"m={m} exceeds the {max_m} possible edges")
    rng = np.random.default_rng(seed)
    codes: np.ndarray = np.empty(0, dtype=np.int64)
    need = m
    while need > 0:
        batch = int(need * 1.2) + 16
        u = rng.integers(0, n, batch, dtype=np.int64)
        v = rng.integers(0, n, batch, dtype=np.int64)
        ok = u != v
        cu = np.minimum(u[ok], v[ok])
        cv = np.maximum(u[ok], v[ok])
        codes = np.unique(np.concatenate([codes, cu * n + cv]))
        need = m - len(codes)
    if len(codes) > m:
        codes = rng.choice(codes, m, replace=False)
    return finalize_pairs(
        "GNM", codes // n, codes % n, n, seed,
        params={"n": n, "m": m},
    )
