"""Long-lived MST-as-a-service sessions (docs/serving.md).

A :class:`GraphSession` owns a persistent simulated
:class:`~repro.simmpi.machine.Machine`, the current undirected edge list
of the served graph, and a versioned minimum spanning forest.  Mutations
arrive as *epochs* -- batches of edge inserts/deletes -- and each commit
recomputes the MSF through the cheapest applicable strategy in
:mod:`repro.serve.incremental` (noop / sparsified / replay / full),
always landing on the exact from-scratch MSF weight.

Queries never touch the machine: every commit publishes an immutable
:class:`SessionView` (edge list, forest, weight, component labels) and
readers grab ``session.view`` in one atomic attribute fetch, so a
multi-reader/single-writer queue (:mod:`repro.serve.queue`) needs no
locks on the read path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import BoruvkaConfig
from ..dgraph.edges import Edges
from ..seq.union_find import UnionFind
from ..simmpi.machine import Machine
from . import incremental
from .incremental import ReplayBase


class MutationError(ValueError):
    """A mutation request failed validation; the epoch excludes it."""


@dataclass(frozen=True)
class SessionView:
    """Immutable published state of one MSF version.

    Everything a query op needs lives here; the writer builds a complete
    new view off to the side and publishes it with one reference swap.
    """

    version: int
    n_vertices: int
    #: Directed edge list, sorted (u, v, w) with positional ids.
    edges: Edges
    #: Sorted directed pair codes ``u * n + v`` aligned with ``edges``.
    codes: np.ndarray
    #: Canonical (u < v) forest edge arrays.
    forest_u: np.ndarray
    forest_v: np.ndarray
    forest_w: np.ndarray
    #: Sorted canonical forest pair codes ``min*n + max``.
    forest_codes: np.ndarray
    total_weight: int
    n_components: int
    #: Component representative per vertex (union-find roots).
    component_of: np.ndarray

    @property
    def n_undirected_edges(self) -> int:
        """Undirected edge count (the directed list stores both halves)."""
        return len(self.edges) // 2

    def has_pair(self, u: int, v: int) -> bool:
        """Whether undirected edge {u, v} is in the current graph."""
        return self._find_code(int(u) * self.n_vertices + int(v)) >= 0

    def pair_weight(self, u: int, v: int) -> Optional[int]:
        """Weight of {u, v}, or None when absent."""
        pos = self._find_code(int(u) * self.n_vertices + int(v))
        return int(self.edges.w[pos]) if pos >= 0 else None

    def edge_in_msf(self, u: int, v: int) -> bool:
        """Whether {u, v} is one of this version's forest edges."""
        a, b = (u, v) if u <= v else (v, u)
        code = int(a) * self.n_vertices + int(b)
        pos = int(np.searchsorted(self.forest_codes, code))
        return pos < len(self.forest_codes) \
            and int(self.forest_codes[pos]) == code

    def _find_code(self, code: int) -> int:
        pos = int(np.searchsorted(self.codes, code))
        if pos < len(self.codes) and int(self.codes[pos]) == code:
            return pos
        return -1


@dataclass
class EpochReport:
    """What one committed epoch did (per-request metrics + ledger)."""

    version: int
    strategy: str
    n_inserted: int
    n_deleted: int
    total_weight: int
    #: Simulated seconds spent by this epoch's distributed runs.
    simulated_seconds: float
    #: Round the replay resumed from (replay strategy only).
    replayed_from: Optional[int] = None
    #: Rounds skipped relative to the base run (replay strategy only).
    rounds_saved: int = 0
    extra: Dict = field(default_factory=dict)


class GraphSession:
    """A persistent served graph: machine + edges + versioned MSF."""

    def __init__(
        self,
        n_vertices: int,
        edges: Optional[Sequence] = None,
        *,
        n_procs: int = 8,
        threads: int = 1,
        seed: int = 0,
        algorithm: str = "boruvka",
        cfg: Optional[BoruvkaConfig] = None,
        faults=None,
        engine=None,
        log_max_rounds: int = 64,
        max_dirty_fraction: float = 0.25,
        machine: Optional[Machine] = None,
    ):
        if n_vertices < 1:
            raise ValueError("n_vertices must be >= 1")
        self.n_vertices = int(n_vertices)
        self.algorithm = algorithm
        self.cfg = cfg or BoruvkaConfig()
        self.log_max_rounds = log_max_rounds
        self.max_dirty_fraction = max_dirty_fraction
        self.machine = machine or Machine(n_procs, threads=threads,
                                          seed=seed, faults=faults,
                                          engine=engine)
        self._owns_machine = machine is None
        # Single-writer discipline: every state transition happens under
        # this lock; readers only ever touch the published view.
        self._write_lock = threading.Lock()
        self._base: Optional[ReplayBase] = None
        #: Position of each directed row in the base run's input, -1 when
        #: inserted since; rows with -1 make up the accumulated inserts.
        self._base_id = np.empty(0, dtype=np.int64)
        self.epoch_counts: Dict[str, int] = {}
        self.replay_depths: List[int] = []
        self.total_simulated_seconds = 0.0

        u, v, w = _triples(edges)
        _validate_endpoints(u, v, w, self.n_vertices)
        if len(np.unique(np.minimum(u, v) * self.n_vertices
                         + np.maximum(u, v))) != len(u):
            raise ValueError("initial edge list contains duplicate pairs")
        directed = incremental.symmetrized_edges(u, v, w)
        self.view: SessionView = None  # published below
        self.total_simulated_seconds += self._install_full(directed)

    # -- queries (thread-safe: operate on an immutable view) -----------
    def msf_weight(self) -> Dict:
        """Current MSF weight plus the view version it belongs to."""
        view = self.view
        return {"weight": view.total_weight, "version": view.version}

    def components(self, vertices: Optional[Sequence[int]] = None) -> Dict:
        """Component count, plus per-vertex labels when asked for."""
        view = self.view
        out = {"n_components": view.n_components, "version": view.version}
        if vertices is not None:
            vs = np.asarray(list(vertices), dtype=np.int64)
            if len(vs) and (vs.min() < 0 or vs.max() >= view.n_vertices):
                raise MutationError("vertex id out of range")
            out["component_of"] = [int(c) for c in view.component_of[vs]]
        return out

    def edge_in_msf(self, u: int, v: int) -> Dict:
        """Whether {u, v} is present in the graph and in the forest."""
        view = self.view
        u, v = _check_pair(u, v, view.n_vertices)
        return {
            "present": view.has_pair(u, v),
            "in_msf": view.edge_in_msf(u, v),
            "version": view.version,
        }

    def stats(self) -> Dict:
        """Session-lifetime counters: sizes, epochs, simulated seconds."""
        view = self.view
        return {
            "version": view.version,
            "n_vertices": view.n_vertices,
            "n_edges": view.n_undirected_edges,
            "n_components": view.n_components,
            "weight": view.total_weight,
            "algorithm": self.algorithm,
            "engine": self.machine.engine.name,
            "n_procs": self.machine.n_procs,
            "epochs": dict(self.epoch_counts),
            "replay_depths": list(self.replay_depths),
            "simulated_seconds": self.total_simulated_seconds,
        }

    # -- mutations (single writer) -------------------------------------
    def apply_epoch(self, ops: Sequence[Tuple[str, Sequence]]
                    ) -> Tuple[List[Optional[str]], Optional[EpochReport]]:
        """Validate + apply one epoch of mutation requests.

        ``ops`` is a list of ``("insert"|"delete", edge_rows)`` in arrival
        order.  Each request is all-or-nothing: validated against the
        current graph plus the cumulative effect of earlier *valid*
        requests in the same epoch; an invalid request contributes
        nothing and gets its error message in the outcome slot (None =
        accepted).  Returns the outcomes plus an :class:`EpochReport`
        (None when every request failed or the net batch is empty).
        """
        with self._write_lock:
            view = self.view
            # code -> (u, v, w) staged inserts; code -> row pair indices
            # staged deletes (cumulative across accepted requests).
            pending_ins: Dict[int, Tuple[int, int, int]] = {}
            pending_del: Dict[int, Tuple[int, int]] = {}
            outcomes: List[Optional[str]] = []
            for kind, rows in ops:
                try:
                    staged = self._stage(view, kind, rows,
                                         pending_ins, pending_del)
                except MutationError as exc:
                    outcomes.append(str(exc))
                    continue
                for code, payload in staged:
                    if payload is None:
                        pending_ins.pop(code, None)
                    elif len(payload) == 3:
                        pending_ins[code] = payload
                    else:
                        pending_del[code] = payload
                outcomes.append(None)
            if not pending_ins and not pending_del:
                return outcomes, None
            report = self._commit(view, pending_ins, pending_del)
            return outcomes, report

    def recompute_full(self) -> EpochReport:
        """Force a from-scratch recompute (refreshes the replay base)."""
        with self._write_lock:
            view = self.view
            simulated = self._install_full(view.edges.copy(),
                                           version=view.version + 1)
            self.total_simulated_seconds += simulated
            report = EpochReport(
                version=self.view.version, strategy="full",
                n_inserted=0, n_deleted=0,
                total_weight=self.view.total_weight,
                simulated_seconds=simulated,
            )
            self._note_epoch(report)
            return report

    def close(self) -> None:
        """Release the machine (only when this session created it)."""
        if self._owns_machine:
            self.machine.close()

    def __enter__(self) -> "GraphSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- epoch internals ------------------------------------------------
    def _stage(self, view, kind, rows, pending_ins, pending_del):
        """Validate one request; return its staged (code, payload) effects.

        Payloads: a 3-tuple stages an insert, a 2-tuple stages a delete,
        ``None`` cancels a pending insert (delete of a not-yet-committed
        edge).  Raises :class:`MutationError` without side effects.
        """
        staged = []
        seen = set()
        if kind == "insert":
            for row in rows:
                u, v, w = _check_insert(row, view.n_vertices)
                code = min(u, v) * view.n_vertices + max(u, v)
                if code in seen:
                    raise MutationError(
                        f"duplicate edge ({u}, {v}) in one request")
                seen.add(code)
                exists = view.has_pair(min(u, v), max(u, v))
                if code in pending_ins or (exists
                                           and code not in pending_del):
                    raise MutationError(f"edge ({u}, {v}) already exists")
                staged.append((code, (u, v, w)))
        elif kind == "delete":
            for row in rows:
                u, v = _check_pair(*_pair(row), view.n_vertices)
                code = u * view.n_vertices + v
                if code in seen:
                    raise MutationError(
                        f"duplicate edge ({u}, {v}) in one request")
                seen.add(code)
                if code in pending_ins:
                    staged.append((code, None))  # cancels the insert
                elif code in pending_del:
                    raise MutationError(
                        f"edge ({u}, {v}) already deleted this epoch")
                elif view.has_pair(u, v):
                    staged.append((code, (u, v)))
                else:
                    raise MutationError(f"edge ({u}, {v}) does not exist")
        else:
            raise MutationError(f"unknown mutation kind {kind!r}")
        return staged

    def _commit(self, view: SessionView, pending_ins, pending_del
                ) -> EpochReport:
        """Apply the net batch: pick a strategy, recompute, publish."""
        n = view.n_vertices
        del_pairs = np.array(sorted(pending_del.values()),
                             dtype=np.int64).reshape(-1, 2)
        ins_rows = np.array(sorted(pending_ins.values()),
                            dtype=np.int64).reshape(-1, 3)

        # Locate both directed rows of every deleted pair.
        del_rows = _directed_rows(view, del_pairs)
        tree_hit = any(view.edge_in_msf(int(a), int(b))
                       for a, b in del_pairs)
        deleted_base = self._base_id[del_rows]
        deleted_base = np.unique(deleted_base[deleted_base >= 0])

        new_edges, new_base_id = self._mutated(view, del_rows, ins_rows)
        deleted_all = deleted_base
        if self._base is not None and len(self._base.deleted_ids):
            deleted_all = np.union1d(self._base.deleted_ids, deleted_base)

        strategy, result, replayed_from, rounds_saved, simulated = \
            self._recompute(view, new_edges, new_base_id, ins_rows,
                            tree_hit, deleted_all)
        # Only a committed epoch may touch the base: a failed recompute
        # raised out of _recompute and must leave it replayable as-is.
        if strategy != "full" and self._base is not None:
            self._base.absorb_deletions(deleted_base)
        self.total_simulated_seconds += simulated

        if strategy == "full":
            # _recompute already installed the new base + view.
            pass
        elif strategy == "noop":
            self._publish(new_edges, new_base_id,
                          forest=(view.forest_u, view.forest_v,
                                  view.forest_w),
                          total_weight=view.total_weight,
                          version=view.version + 1)
        else:
            fu, fv, fw, total = _forest_of(result)
            self._publish(new_edges, new_base_id, forest=(fu, fv, fw),
                          total_weight=total, version=view.version + 1)
        report = EpochReport(
            version=self.view.version,
            strategy=strategy,
            n_inserted=len(ins_rows),
            n_deleted=len(del_pairs),
            total_weight=self.view.total_weight,
            simulated_seconds=simulated,
            replayed_from=replayed_from,
            rounds_saved=rounds_saved,
        )
        self._note_epoch(report)
        return report

    def _recompute(self, view, new_edges, new_base_id, ins_rows, tree_hit,
                   deleted_all):
        """Strategy ladder.

        Returns ``(name, result, replayed_from, rounds_saved,
        simulated_seconds)``.  Each strategy run resets the machine's
        clocks, so the epoch's simulated cost is the sum of the
        individual runs' elapsed times, not a clock difference.
        """
        if not tree_hit and len(ins_rows) == 0:
            return "noop", None, None, 0, 0.0
        if not tree_hit:
            result = incremental.sparsified_recompute(
                self.machine, view.forest_u, view.forest_v, view.forest_w,
                ins_rows[:, 0], ins_rows[:, 1], ins_rows[:, 2], self.cfg)
            return "sparsified", result, None, 0, result.elapsed
        if self.algorithm == "boruvka" and self._base is not None:
            replay_round = incremental.plan_replay(
                self._base, deleted_all, self.max_dirty_fraction)
            if replay_round is not None:
                result = incremental.replay_recompute(
                    self.machine, self._base, self.cfg, replay_round,
                    deleted_all)
                simulated = result.elapsed
                # Fold in edges inserted since the base run: the replay
                # produced MSF(E_base \ D_all); sparsify the remainder.
                acc_ins = new_base_id < 0
                if acc_ins.any():
                    half = new_edges.u[acc_ins] < new_edges.v[acc_ins]
                    fu, fv, fw, _ = _forest_of(result)
                    result = incremental.sparsified_recompute(
                        self.machine, fu, fv, fw,
                        new_edges.u[acc_ins][half],
                        new_edges.v[acc_ins][half],
                        new_edges.w[acc_ins][half], self.cfg)
                    simulated += result.elapsed
                return "replay", result, replay_round, replay_round, \
                    simulated
        simulated = self._install_full(new_edges,
                                       version=view.version + 1)
        return "full", None, None, 0, simulated

    def _install_full(self, directed: Edges, version: int = 0) -> float:
        """Full recompute on ``directed``; refresh base; publish a view.

        Returns the run's simulated seconds (also added to the total).
        """
        result, base = incremental.full_recompute(
            self.machine, directed, self.cfg, self.algorithm,
            self.log_max_rounds)
        self._base = base
        fu, fv, fw, total = _forest_of(result)
        # A full recompute re-keys the base id space to row positions.
        self._publish(directed,
                      np.arange(len(directed), dtype=np.int64),
                      forest=(fu, fv, fw), total_weight=total,
                      version=version)
        return result.elapsed

    def _publish(self, edges: Edges, base_id: np.ndarray, *, forest,
                 total_weight: int, version: int) -> None:
        fu, fv, fw = (np.asarray(a, dtype=np.int64) for a in forest)
        lo, hi = np.minimum(fu, fv), np.maximum(fu, fv)
        order = np.argsort(lo * self.n_vertices + hi, kind="stable")
        uf = UnionFind(self.n_vertices)
        uf.union_edges(fu, fv)
        component_of = uf.find_many(np.arange(self.n_vertices))
        codes = edges.u.astype(np.int64) * self.n_vertices \
            + edges.v.astype(np.int64)
        self._base_id = base_id
        self.view = SessionView(
            version=version,
            n_vertices=self.n_vertices,
            edges=edges,
            codes=codes,
            forest_u=lo[order], forest_v=hi[order], forest_w=fw[order],
            forest_codes=(lo * self.n_vertices + hi)[order],
            total_weight=int(total_weight),
            n_components=int(len(np.unique(component_of))),
            component_of=component_of,
        )

    def _mutated(self, view, del_rows, ins_rows):
        """New sorted directed edge list + base-id map after the batch."""
        keep = np.ones(len(view.edges), dtype=bool)
        keep[del_rows] = False
        iu, iv, iw = (ins_rows[:, 0], ins_rows[:, 1], ins_rows[:, 2])
        u = np.concatenate([view.edges.u[keep].astype(np.int64), iu, iv])
        v = np.concatenate([view.edges.v[keep].astype(np.int64), iv, iu])
        w = np.concatenate([view.edges.w[keep].astype(np.int64), iw, iw])
        b = np.concatenate([self._base_id[keep],
                            np.full(2 * len(ins_rows), -1,
                                    dtype=np.int64)])
        order = np.lexsort((w, v, u))
        edges = Edges(u[order], v[order], w[order])
        return edges, b[order]

    def _note_epoch(self, report: EpochReport) -> None:
        self.epoch_counts[report.strategy] = \
            self.epoch_counts.get(report.strategy, 0) + 1
        if report.strategy == "replay" and report.replayed_from is not None:
            self.replay_depths.append(report.replayed_from)


# -- module helpers -----------------------------------------------------

def _triples(edges) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    if edges is None:
        z = np.empty(0, dtype=np.int64)
        return z, z.copy(), z.copy()
    if isinstance(edges, Edges):
        half = edges.u < edges.v
        return (edges.u[half].astype(np.int64),
                edges.v[half].astype(np.int64),
                edges.w[half].astype(np.int64))
    arr = np.asarray(edges, dtype=np.int64).reshape(-1, 3)
    return arr[:, 0], arr[:, 1], arr[:, 2]


def _validate_endpoints(u, v, w, n) -> None:
    if len(u) == 0:
        return
    if u.min() < 0 or v.min() < 0 or u.max() >= n or v.max() >= n:
        raise ValueError("edge endpoint out of range")
    if (u == v).any():
        raise ValueError("self loops are not allowed")
    if w.min() <= 0:
        raise ValueError("edge weights must be positive integers")


def _pair(row) -> Tuple[int, int]:
    if len(row) != 2:
        raise MutationError("delete rows must be [u, v]")
    return int(row[0]), int(row[1])


def _check_pair(u, v, n) -> Tuple[int, int]:
    try:
        u, v = int(u), int(v)
    except (TypeError, ValueError):
        raise MutationError("endpoints must be integers")
    if not (0 <= u < n and 0 <= v < n):
        raise MutationError(f"endpoint out of range for n={n}")
    if u == v:
        raise MutationError("self loops are not allowed")
    return (u, v) if u <= v else (v, u)


def _check_insert(row, n) -> Tuple[int, int, int]:
    if len(row) != 3:
        raise MutationError("insert rows must be [u, v, w]")
    u, v = _check_pair(row[0], row[1], n)
    try:
        w = int(row[2])
    except (TypeError, ValueError):
        raise MutationError("weights must be integers")
    if not (0 < w < 2 ** 62):
        raise MutationError("edge weights must be positive integers")
    return u, v, w


def _directed_rows(view: SessionView, del_pairs: np.ndarray) -> np.ndarray:
    """Row indices of both directed halves of the deleted pairs."""
    if len(del_pairs) == 0:
        return np.empty(0, dtype=np.int64)
    n = view.n_vertices
    a, b = del_pairs[:, 0], del_pairs[:, 1]
    fwd = np.searchsorted(view.codes, a * n + b)
    rev = np.searchsorted(view.codes, b * n + a)
    rows = np.concatenate([fwd, rev])
    if (rows >= len(view.codes)).any():
        raise MutationError("internal: deleted pair vanished")
    return rows


def _forest_of(result) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    msf = result.msf_edges()
    return (np.asarray(msf.u, dtype=np.int64),
            np.asarray(msf.v, dtype=np.int64),
            np.asarray(msf.w, dtype=np.int64),
            int(result.total_weight))
