"""Transports for ``repro serve``: NDJSON over stdio or localhost TCP.

Both transports share one :class:`~repro.serve.queue.RequestQueue` (and
therefore one session): every connection's lines feed the same queue, so
mutation epochs batch across clients.  Responses are written as they
resolve -- queries can overtake batched mutations; clients correlate by
``id``.  A ``shutdown`` request stops the transport after draining.

The stdio entry point is synchronous (:func:`serve_stdio` /
:func:`serve_lines` run their own event loop), which is what the CLI and
the round-trip tests use.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Dict, Iterable, List, Optional

from ..obs.ledger import append_record, ledger_path, make_record
from . import protocol
from .queue import RequestQueue
from .session import GraphSession


def _bad_line(exc: protocol.ProtocolError) -> Dict:
    return protocol.error_response(exc.request_id, "bad_request", str(exc))


async def _serve_stream(queue: RequestQueue, lines, write_line) -> bool:
    """Pump one line stream through the queue; True when shut down.

    ``lines`` is an async iterator of raw request lines; ``write_line``
    is called with each encoded response (serialized by a lock so
    concurrent completions interleave whole lines, never bytes).
    """
    write_lock = asyncio.Lock()
    tasks: List[asyncio.Task] = []
    shutdown = False

    async def respond(resp: Dict) -> None:
        async with write_lock:
            write_line(protocol.encode_response(resp))

    async def handle(req: Dict) -> None:
        await respond(await queue.submit(req))

    async for raw in lines:
        line = raw.strip()
        if not line:
            continue
        try:
            req = protocol.parse_request(line)
        except protocol.ProtocolError as exc:
            await respond(_bad_line(exc))
            continue
        if req["op"] == "shutdown":
            # Drain in-order: everything admitted before the shutdown
            # resolves first, then the shutdown response goes out last.
            if tasks:
                await asyncio.gather(*tasks)
                tasks.clear()
            await handle(req)
            shutdown = True
            break
        tasks.append(asyncio.ensure_future(handle(req)))
    if tasks:
        await asyncio.gather(*tasks)
    await queue.drain()
    return shutdown


async def _iter_blocking_lines(stream):
    """Async-iterate a blocking text stream (stdin) via the executor."""
    loop = asyncio.get_running_loop()
    while True:
        line = await loop.run_in_executor(None, stream.readline)
        if line == "":
            return
        yield line


def serve_lines(session: GraphSession, lines: Iterable[str],
                **queue_opts) -> List[str]:
    """Serve a finite request-line sequence; returns response lines.

    The in-process harness behind the stdio transport and the tests:
    runs its own event loop, feeds every line, drains, and returns the
    encoded responses in completion order.
    """
    out: List[str] = []

    async def _run() -> None:
        queue = RequestQueue(session, **queue_opts)

        async def _aiter():
            for line in lines:
                yield line

        try:
            await _serve_stream(queue, _aiter(), out.append)
        finally:
            queue.close()

    asyncio.run(_run())
    return out


def serve_stdio(session: GraphSession, in_stream=None, out_stream=None,
                ledger: Optional[str] = None, **queue_opts) -> Dict:
    """Serve NDJSON requests from stdin until EOF or ``shutdown``.

    Returns the queue summary (also appended to the run ledger when one
    is configured -- see :func:`repro.obs.ledger.ledger_path`).
    """
    in_stream = in_stream or sys.stdin
    out_stream = out_stream or sys.stdout

    def write_line(text: str) -> None:
        out_stream.write(text + "\n")
        out_stream.flush()

    summary: Dict = {}

    async def _run() -> None:
        queue = RequestQueue(session, **queue_opts)
        try:
            await _serve_stream(queue, _iter_blocking_lines(in_stream),
                                write_line)
        finally:
            summary.update(queue.summary())
            queue.close()

    asyncio.run(_run())
    _ledger_summary(session, summary, ledger)
    return summary


async def serve_tcp(session: GraphSession, host: str = "127.0.0.1",
                    port: int = 0, ready=None, **queue_opts) -> Dict:
    """Serve NDJSON over TCP until a client sends ``shutdown``.

    All connections share one queue.  ``ready`` (optional callable)
    receives the bound ``(host, port)`` once listening -- tests use it to
    learn the ephemeral port.  Returns the queue summary.
    """
    queue = RequestQueue(session, **queue_opts)
    done = asyncio.Event()

    async def on_connect(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        def write_line(text: str) -> None:
            writer.write(text.encode() + b"\n")

        async def _aiter():
            while True:
                raw = await reader.readline()
                if not raw:
                    return
                yield raw.decode()

        try:
            if await _serve_stream(queue, _aiter(), write_line):
                done.set()
            await writer.drain()
        finally:
            writer.close()

    server = await asyncio.start_server(on_connect, host, port)
    try:
        if ready is not None:
            ready(server.sockets[0].getsockname()[:2])
        await done.wait()
    finally:
        server.close()
        await server.wait_closed()
        summary = queue.summary()
        queue.close()
    _ledger_summary(session, summary, None)
    return summary


def _ledger_summary(session: GraphSession, summary: Dict,
                    explicit: Optional[str]) -> None:
    """Append one ``serve`` row to the run ledger (no-op when unset)."""
    path = ledger_path(explicit)
    if path is None:
        return
    record = make_record(
        "serve", "serve_session",
        config={
            "n_vertices": session.n_vertices,
            "algorithm": session.algorithm,
        },
        machine=session.machine,
        simulated=[{"label": "serve_total", "simulated_seconds":
                    session.total_simulated_seconds}],
        extra={"serving": summary},
    )
    append_record(record, path)
