"""MST-as-a-service: persistent sessions, async queue, incremental MSF.

The serving layer keeps a simulated machine and a distributed graph alive
across requests (docs/serving.md):

* :class:`GraphSession` -- the stateful core: versioned MSF, epoch-batched
  edge churn, incremental recompute (noop / sparsified / replay / full);
* :class:`RequestQueue` -- asyncio single-writer/multi-reader queue with
  bounded depth, deadlines and cancellation;
* :mod:`repro.serve.protocol` -- the NDJSON wire format;
* :func:`serve_stdio` / :func:`serve_tcp` / :func:`serve_lines` -- the
  transports behind ``repro serve``.
"""

from .incremental import (
    ReplayBase,
    full_recompute,
    plan_replay,
    replay_recompute,
    sparsified_recompute,
)
from .queue import RequestQueue, percentile
from .session import EpochReport, GraphSession, MutationError, SessionView
from .server import serve_lines, serve_stdio, serve_tcp

__all__ = [
    "ReplayBase",
    "full_recompute",
    "plan_replay",
    "replay_recompute",
    "sparsified_recompute",
    "RequestQueue",
    "percentile",
    "EpochReport",
    "GraphSession",
    "MutationError",
    "SessionView",
    "serve_lines",
    "serve_stdio",
    "serve_tcp",
]
