"""Incremental MSF recompute strategies for serving epochs.

One edge-churn epoch turns a graph ``G`` into ``(G \\ D) ∪ I``.  The
session picks the cheapest strategy that provably reproduces the
from-scratch MSF *weight* bit-for-bit (docs/serving.md):

``noop``
    ``D`` hits no forest edge and ``I`` is empty.  Deleting non-tree
    edges never changes any minimum spanning forest (each deleted edge
    closes a cycle whose other edges are all retained), so the stored
    forest is already ``MSF(G \\ D)``.  Zero simulated work.

``sparsified``
    ``D`` hits no forest edge, ``I`` non-empty.  By the sparsification
    identity ``MSF((G \\ D) ∪ I) = MSF(MSF(G \\ D) ∪ I)`` (cycle
    property), one small distributed run over ``forest ∪ I`` suffices.

``replay``
    ``D`` hits forest edges.  The session's last *full* run captured a
    :class:`~repro.core.rounds.RoundCheckpointLog`: the buddy-replicated
    input of every Borůvka round, in the id space of that run's input
    snapshot.  The run is resumed from the deepest retained checkpoint at
    or before ``r*`` -- the earliest round in which any deleted
    base-forest edge was selected -- with the deleted ids filtered out of
    the checkpointed partition and the base forest's already-selected
    prefix re-seeded into the MST records.  Every pre-``r*`` selection
    survives deletion (cut property: the selecting cut only *loses*
    competitor edges, and the selected edge itself is not deleted by
    ``r*``'s minimality), so the continuation is ordinary Borůvka on the
    contracted multigraph of ``G_base \\ D_all``.  Insertions accumulated
    since the base run are folded in afterwards with a sparsified top-up.

``full``
    Everything else: no usable checkpoint log, a non-Borůvka session
    algorithm, a deleted forest edge consumed by local preprocessing
    (selected before any logged round), or a dirty set above
    ``max_dirty_fraction`` of the base forest.

MSF *weights* are unique for a given graph even under weight ties, so
every strategy yields the exact from-scratch weight; the forest's edge
set can legitimately differ from a fresh run's only where contracted
multi-edges tie, which the differential tests account for by pinning
weight + component structure rather than edge identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core import BoruvkaConfig, MSTRun, RoundCheckpointLog
from ..core.base_case import base_case
from ..core.boruvka import (
    InputSnapshot,
    MSTResult,
    boruvka_rounds,
    distributed_boruvka,
    redistribute_mst,
)
from ..core.mst import minimum_spanning_forest
from ..dgraph.dist_graph import DistGraph
from ..dgraph.edges import Edges


@dataclass
class ReplayBase:
    """Checkpointed state of the session's last full Borůvka run.

    All ids live in the id space of that run's input (the *base* edge
    list); ``deleted_ids`` accumulates every base edge deleted since, so
    repeated churn epochs can keep replaying against the same log until a
    full recompute refreshes it.
    """

    log: RoundCheckpointLog
    snapshot: InputSnapshot
    #: Directed-edge ids of the base run's forest, sorted ascending.
    forest_ids: np.ndarray
    #: Weights aligned with ``forest_ids``.
    forest_weights: np.ndarray
    #: Rounds the base run executed (replay-depth accounting).
    total_rounds: int
    #: Accumulated deleted base ids (sorted; grown by every epoch).
    deleted_ids: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))

    def absorb_deletions(self, ids: np.ndarray) -> None:
        """Fold one epoch's deleted base ids into the accumulated set."""
        if len(ids):
            self.deleted_ids = np.union1d(self.deleted_ids,
                                          np.asarray(ids, dtype=np.int64))


def symmetrized_edges(u, v, w) -> Edges:
    """Both directed halves of undirected triples, sorted, positional ids."""
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    w = np.asarray(w, dtype=np.int64)
    edges = Edges(np.concatenate([u, v]), np.concatenate([v, u]),
                  np.concatenate([w, w]))
    edges = edges.sort_lex()
    edges.id[:] = np.arange(len(edges), dtype=edges.id.dtype)
    return edges


def full_recompute(machine, edges: Edges, cfg: BoruvkaConfig,
                   algorithm: str = "boruvka",
                   log_max_rounds: Optional[int] = 64,
                   ) -> tuple[MSTResult, Optional[ReplayBase]]:
    """From-scratch MSF with (for Borůvka) checkpoint-log capture.

    Returns the result plus a fresh :class:`ReplayBase` when the run
    produced a usable log (Borůvka only; other algorithms return None and
    the session keeps doing full recomputes).
    """
    machine.reset()
    graph = DistGraph.from_global_edges(machine, edges, avoid_shared=True)
    if algorithm != "boruvka":
        result = minimum_spanning_forest(graph, algorithm=algorithm,
                                         config=cfg)
        return result, None
    log = RoundCheckpointLog(max_entries=log_max_rounds) \
        if log_max_rounds != 0 else None
    run = MSTRun(machine, cfg, checkpoint_log=log)
    result = distributed_boruvka(graph, cfg, run=run)
    base = None
    if log is not None and log.unsupported is None:
        msf = result.msf_edges()
        ids = np.asarray(msf.id, dtype=np.int64)
        order = np.argsort(ids, kind="stable")
        base = ReplayBase(
            log=log,
            snapshot=run.input_snapshot,
            forest_ids=ids[order],
            forest_weights=np.asarray(msf.w, dtype=np.int64)[order],
            total_rounds=run.rounds,
        )
    return result, base


def sparsified_recompute(machine, forest_u, forest_v, forest_w,
                         ins_u, ins_v, ins_w,
                         cfg: BoruvkaConfig) -> MSTResult:
    """MSF of (forest ∪ inserted edges) -- the sparsified epoch pass."""
    machine.reset()
    u = np.concatenate([np.asarray(forest_u, dtype=np.int64),
                        np.asarray(ins_u, dtype=np.int64)])
    v = np.concatenate([np.asarray(forest_v, dtype=np.int64),
                        np.asarray(ins_v, dtype=np.int64)])
    w = np.concatenate([np.asarray(forest_w, dtype=np.int64),
                        np.asarray(ins_w, dtype=np.int64)])
    edges = symmetrized_edges(u, v, w)
    graph = DistGraph.from_global_edges(machine, edges, avoid_shared=True)
    return distributed_boruvka(graph, cfg)


def plan_replay(base: Optional[ReplayBase], deleted_all: np.ndarray,
                max_dirty_fraction: float = 0.25) -> Optional[int]:
    """The round to replay from, or ``None`` when replay is not viable.

    ``deleted_all`` is the full accumulated deleted-id set (base space).
    The replay round ``r`` must satisfy: every deleted base-forest edge
    was still present in round ``r``'s input (equivalently, selected at
    or after ``r``).  The largest *logged* round containing a deleted
    forest id lower-bounds its selection round, so the minimum of those
    bounds is always a safe resume point.  A deleted forest id absent
    from every logged round was consumed by local preprocessing --
    nothing logged predates it, so the plan is abandoned.
    """
    if base is None or len(base.log) == 0 \
            or base.log.unsupported is not None:
        return None
    deleted_all = np.asarray(deleted_all, dtype=np.int64)
    dead_tree = np.intersect1d(deleted_all, base.forest_ids)
    if len(base.forest_ids) and \
            len(dead_tree) / len(base.forest_ids) > max_dirty_fraction:
        return None
    logged = sorted(base.log.entries)
    if not len(dead_tree):
        # No base selection is gone: any logged round is a valid resume
        # point; the deepest one replays the fewest rounds.
        return logged[-1]
    last_seen = np.full(len(dead_tree), -1, dtype=np.int64)
    for r in logged:
        ckpt = _unwrap(base.log.handle(r))
        present = np.isin(dead_tree, _checkpoint_ids(ckpt))
        last_seen[present] = r
    if (last_seen < 0).any():
        return None  # consumed by preprocessing: predates every log entry
    r_star = int(last_seen.min())
    return base.log.deepest_at_or_before(r_star)


def replay_recompute(machine, base: ReplayBase, cfg: BoruvkaConfig,
                     replay_round: int,
                     deleted_all: np.ndarray) -> MSTResult:
    """Resume the base run from ``replay_round`` with deletions applied.

    Computes ``MSF(E_base \\ deleted_all)``: the checkpointed round
    input is filtered (one charged scan per PE), the machine's RNG
    streams are rolled back to the checkpoint so surviving draws replay
    deterministically, and the base forest's pre-``replay_round``
    selections are re-seeded into the MST records on their home PEs.
    ``deleted_all`` is passed explicitly (not read off ``base``) so a
    failed epoch can leave the base untouched and stay replayable.
    """
    machine.reset()
    ckpt = _unwrap(base.log.handle(replay_round))
    machine.rng_restore(ckpt.rng_state)
    deleted = np.asarray(deleted_all, dtype=np.int64)
    parts: List[Edges] = []
    for part in ckpt.parts:
        ids = np.asarray(part.id, dtype=np.int64)
        keep = ~np.isin(ids, deleted)
        parts.append(part.take(keep))
    # Honest accounting for the splice: one filter pass over the four
    # edge columns of every PE's checkpointed block.
    machine.charge_scan(np.array([4.0 * len(p) for p in ckpt.parts]))
    graph = DistGraph(machine, parts, check=False)

    run = MSTRun(machine, cfg)
    run.rounds = replay_round  # canonical round ids continue from here
    present = _checkpoint_ids(ckpt)
    pre_mask = ~np.isin(base.forest_ids, present)
    pre_ids = base.forest_ids[pre_mask]
    pre_w = base.forest_weights[pre_mask]
    if np.isin(pre_ids, deleted).any():
        # r* minimality guarantees no pre-selected edge is deleted; a hit
        # here means the plan was computed against a stale base.
        raise RuntimeError("replay plan invalid: a deleted edge was "
                           "selected before the replay round")
    home = np.searchsorted(base.snapshot.id_starts, pre_ids,
                           side="right") - 1
    for pe in range(machine.n_procs):
        mask = home == pe
        if mask.any():
            run.record_mst(pe, pre_ids[mask], pre_w[mask])

    graph = boruvka_rounds(graph, run)
    with machine.phase("base_case"):
        base_case(graph, run)
    with machine.phase("mst_output"):
        msf_parts = redistribute_mst(run, base.snapshot)
    weights = [int(part.w.sum()) for part in msf_parts]
    total = int(run.comm.allreduce(weights))
    return MSTResult(
        msf_parts=msf_parts,
        total_weight=total,
        elapsed=machine.elapsed(),
        phase_times=dict(machine.phase_times),
        rounds=run.rounds,
        algorithm="boruvka",
        stats={
            "bytes_communicated": machine.bytes_communicated,
            "n_collectives": machine.n_collectives,
            "replayed_from_round": replay_round,
        },
    )


def _unwrap(handle):
    """The raw RoundCheckpoint behind a scheduler checkpoint handle."""
    return getattr(handle, "ckpt", handle)


def _checkpoint_ids(ckpt) -> np.ndarray:
    """All directed-edge ids present in a checkpoint's round input."""
    arrays = [np.asarray(part.id, dtype=np.int64) for part in ckpt.parts]
    if not arrays:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(arrays))
