"""NDJSON wire protocol of ``repro serve`` (docs/serving.md).

One request per line, one response per line; responses carry the
request's ``id`` and may arrive out of order (queries overtake batched
mutations).  Requests::

    {"id": 1, "op": "msf_weight"}
    {"id": 2, "op": "components", "vertices": [0, 5]}
    {"id": 3, "op": "edge_in_msf", "u": 0, "v": 5}
    {"id": 4, "op": "stats"}
    {"id": 5, "op": "insert_edges", "edges": [[0, 5, 17], ...]}
    {"id": 6, "op": "delete_edges", "edges": [[0, 5], ...]}
    {"id": 7, "op": "flush"}
    {"id": 8, "op": "cancel", "target": 5}
    {"id": 9, "op": "shutdown"}

Any request may set ``"deadline_ms"`` (budget from enqueue).  Responses::

    {"id": 1, "ok": true, "result": {...}, "metrics":
        {"queue_wait_ms": 0.1, "compute_ms": 2.0, "version": 7}}
    {"id": 5, "ok": false, "error": {"code": "bad_request",
                                     "message": "..."}}

Error codes: ``bad_request``, ``queue_full``, ``deadline_exceeded``,
``cancelled``, ``compute_error``, ``shutdown``.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

#: Ops answered from the published view (multi-reader path).
QUERY_OPS = frozenset({"msf_weight", "components", "edge_in_msf", "stats"})
#: Ops batched into epochs (single-writer path).
MUTATION_OPS = frozenset({"insert_edges", "delete_edges"})
#: Queue-control ops handled on the event loop itself.
CONTROL_OPS = frozenset({"flush", "cancel", "shutdown"})

ALL_OPS = QUERY_OPS | MUTATION_OPS | CONTROL_OPS


class ProtocolError(ValueError):
    """A request line that cannot be dispatched."""

    def __init__(self, message: str, request_id=None):
        super().__init__(message)
        self.request_id = request_id


def parse_request(line: str) -> Dict:
    """Decode + structurally validate one request line."""
    try:
        req = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}")
    if not isinstance(req, dict):
        raise ProtocolError("request must be a JSON object")
    rid = req.get("id")
    if rid is not None and not isinstance(rid, (str, int)):
        raise ProtocolError("'id' must be a string or integer", None)
    op = req.get("op")
    if not isinstance(op, str) or op not in ALL_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {sorted(ALL_OPS)}", rid)
    deadline = req.get("deadline_ms")
    if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0):
        raise ProtocolError("'deadline_ms' must be a positive number", rid)
    if op in MUTATION_OPS and not isinstance(req.get("edges"), list):
        raise ProtocolError(f"op {op!r} requires an 'edges' list", rid)
    if op == "edge_in_msf" and ("u" not in req or "v" not in req):
        raise ProtocolError("op 'edge_in_msf' requires 'u' and 'v'", rid)
    if op == "cancel" and "target" not in req:
        raise ProtocolError("op 'cancel' requires 'target'", rid)
    return req


def ok_response(rid, result: Dict,
                metrics: Optional[Dict] = None) -> Dict:
    """A success response envelope for request ``rid``."""
    resp = {"id": rid, "ok": True, "result": result}
    if metrics is not None:
        resp["metrics"] = metrics
    return resp


def error_response(rid, code: str, message: str,
                   metrics: Optional[Dict] = None) -> Dict:
    """An error response envelope carrying ``code`` and ``message``."""
    resp = {"id": rid, "ok": False,
            "error": {"code": code, "message": message}}
    if metrics is not None:
        resp["metrics"] = metrics
    return resp


def encode_response(resp: Dict) -> str:
    """One response line (no trailing newline)."""
    return json.dumps(resp, separators=(",", ":"), sort_keys=True)
