"""Async single-writer / multi-reader request queue over a GraphSession.

All queue state lives on one asyncio event loop.  Queries run on a small
reader thread pool against the session's immutable published view -- they
never block behind a recompute.  Mutations are staged into the *pending
epoch* and committed as one batch on a dedicated single-writer thread
when any of three triggers fires: an explicit ``flush`` request, the
batch reaching ``epoch_max_batch``, or ``epoch_max_delay_s`` elapsing
since the first staged mutation.  A mutation's response resolves when its
epoch commits (or when it is rejected, cancelled or deadline-expired).

Backpressure is a bounded admission count: once ``max_depth`` requests
are in flight, new ones are refused immediately with ``queue_full``
rather than queued -- the caller owns the retry policy.  Deadlines are
best-effort budgets measured from enqueue; an expired request is dropped
at its next scheduling point (query dispatch or epoch commit), never
mid-compute.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs.metrics import MetricsRegistry
from . import protocol
from .session import GraphSession, MutationError


@dataclass
class _Entry:
    """One admitted mutation awaiting its epoch commit."""

    req: Dict
    rid: object
    enqueued: float
    deadline: Optional[float]
    future: asyncio.Future = field(repr=False, default=None)
    cancelled: bool = False


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for no samples."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


class RequestQueue:
    """Serves protocol requests against one :class:`GraphSession`."""

    def __init__(
        self,
        session: GraphSession,
        *,
        max_depth: int = 64,
        readers: int = 4,
        default_deadline_s: Optional[float] = None,
        epoch_max_batch: int = 32,
        epoch_max_delay_s: float = 0.05,
    ):
        self.session = session
        self.max_depth = max_depth
        self.default_deadline_s = default_deadline_s
        self.epoch_max_batch = epoch_max_batch
        self.epoch_max_delay_s = epoch_max_delay_s
        self._read_pool = ThreadPoolExecutor(
            max_workers=readers, thread_name_prefix="serve-read")
        self._write_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-write")
        self._inflight = 0
        self._pending: List[_Entry] = []
        self._pending_by_id: Dict[object, _Entry] = {}
        self._epoch_timer: Optional[asyncio.TimerHandle] = None
        self._commit_lock = asyncio.Lock()
        self._closed = False
        self.metrics = MetricsRegistry()
        #: Raw per-request latency samples (seconds), for p50/p99.
        self.latencies: List[float] = []
        self.queue_waits: List[float] = []
        self.n_requests = 0
        self.n_errors = 0

    # ------------------------------------------------------------------
    async def submit(self, req: Dict) -> Dict:
        """Serve one parsed request; always returns a response dict."""
        rid = req.get("id")
        op = req["op"]
        t0 = time.monotonic()
        self.n_requests += 1
        self.metrics.counter("serve/requests").inc()
        if self._closed and op != "shutdown":
            return self._err(rid, "shutdown", "queue is shut down")
        if op == "cancel":
            return self._cancel(rid, req.get("target"))
        if op == "flush":
            committed = await self._commit_epoch()
            return protocol.ok_response(
                rid, {"committed": committed,
                      "version": self.session.view.version},
                self._metrics_for(t0, t0))
        if op == "shutdown":
            self._closed = True
            await self._commit_epoch()
            return protocol.ok_response(
                rid, {"version": self.session.view.version},
                self._metrics_for(t0, t0))

        if self._inflight >= self.max_depth:
            self.metrics.counter("serve/rejected_queue_full").inc()
            return self._err(rid, "queue_full",
                             f"queue depth {self.max_depth} exceeded")
        deadline = self._deadline_of(req, t0)
        self._inflight += 1
        try:
            if op in protocol.QUERY_OPS:
                return await self._run_query(req, rid, t0, deadline)
            return await self._stage_mutation(req, rid, t0, deadline)
        finally:
            self._inflight -= 1

    async def drain(self) -> None:
        """Commit any pending epoch (used at EOF / connection close)."""
        await self._commit_epoch()

    def close(self) -> None:
        """Shut the pools down; pending epochs must be drained first."""
        self._closed = True
        if self._epoch_timer is not None:
            self._epoch_timer.cancel()
            self._epoch_timer = None
        self._write_pool.shutdown(wait=True)
        self._read_pool.shutdown(wait=True)

    def summary(self) -> Dict:
        """Aggregate serving metrics (ledger / stats material)."""
        lat = self.latencies
        return {
            "requests": self.n_requests,
            "errors": self.n_errors,
            "p50_latency_ms": percentile(lat, 50) * 1e3,
            "p99_latency_ms": percentile(lat, 99) * 1e3,
            "mean_queue_wait_ms":
                (sum(self.queue_waits) / len(self.queue_waits) * 1e3)
                if self.queue_waits else 0.0,
            "epochs": dict(self.session.epoch_counts),
            "replay_depths": list(self.session.replay_depths),
            "simulated_seconds": self.session.total_simulated_seconds,
        }

    # -- queries --------------------------------------------------------
    async def _run_query(self, req, rid, t0, deadline) -> Dict:
        if deadline is not None and time.monotonic() > deadline:
            return self._err(rid, "deadline_exceeded",
                             "deadline expired before dispatch")
        loop = asyncio.get_running_loop()
        start = time.monotonic()
        try:
            result = await loop.run_in_executor(
                self._read_pool, self._query_fn(req), )
        except MutationError as exc:
            return self._err(rid, "bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001 -- reported to the client
            return self._err(rid, "compute_error",
                             f"{type(exc).__name__}: {exc}")
        self._observe(t0, start)
        return protocol.ok_response(rid, result,
                                    self._metrics_for(t0, start))

    def _query_fn(self, req):
        op = req["op"]
        session = self.session
        if op == "msf_weight":
            return session.msf_weight
        if op == "stats":
            return lambda: {**session.stats(), **self.summary()}
        if op == "components":
            return lambda: session.components(req.get("vertices"))
        return lambda: session.edge_in_msf(req["u"], req["v"])

    # -- mutations ------------------------------------------------------
    async def _stage_mutation(self, req, rid, t0, deadline) -> Dict:
        loop = asyncio.get_running_loop()
        entry = _Entry(req=req, rid=rid, enqueued=t0, deadline=deadline,
                       future=loop.create_future())
        self._pending.append(entry)
        if rid is not None:
            self._pending_by_id.setdefault(rid, entry)
        if len(self._pending) >= self.epoch_max_batch:
            asyncio.ensure_future(self._commit_epoch())
        elif self._epoch_timer is None:
            self._epoch_timer = loop.call_later(
                self.epoch_max_delay_s,
                lambda: asyncio.ensure_future(self._commit_epoch()))
        return await entry.future

    async def _commit_epoch(self) -> bool:
        """Commit the pending epoch; returns True when work was applied."""
        async with self._commit_lock:
            if self._epoch_timer is not None:
                self._epoch_timer.cancel()
                self._epoch_timer = None
            batch: List[_Entry] = []
            now = time.monotonic()
            for entry in self._pending:
                if entry.cancelled:
                    continue
                if entry.deadline is not None and now > entry.deadline:
                    self._resolve(entry, self._err(
                        entry.rid, "deadline_exceeded",
                        "deadline expired before epoch commit"))
                    continue
                batch.append(entry)
            self._pending.clear()
            self._pending_by_id.clear()
            if not batch:
                return False
            ops = [("insert" if e.req["op"] == "insert_edges" else
                    "delete", e.req["edges"]) for e in batch]
            loop = asyncio.get_running_loop()
            start = time.monotonic()
            try:
                outcomes, report = await loop.run_in_executor(
                    self._write_pool, self.session.apply_epoch, ops)
            except Exception as exc:  # noqa: BLE001 -- epoch failed whole
                msg = f"{type(exc).__name__}: {exc}"
                for entry in batch:
                    self._resolve(entry, self._err(
                        entry.rid, "compute_error", msg,
                        self._metrics_for(entry.enqueued, start)))
                return False
            self.metrics.counter("serve/epochs").inc()
            info = {}
            if report is not None:
                info = {
                    "strategy": report.strategy,
                    "n_inserted": report.n_inserted,
                    "n_deleted": report.n_deleted,
                    "weight": report.total_weight,
                    "simulated_seconds": report.simulated_seconds,
                }
                if report.replayed_from is not None:
                    info["replayed_from"] = report.replayed_from
                self.metrics.series("serve/epoch_simulated_s").record(
                    report.version, report.simulated_seconds)
            for entry, outcome in zip(batch, outcomes):
                metrics = self._metrics_for(entry.enqueued, start)
                if outcome is None:
                    self._observe(entry.enqueued, start)
                    self._resolve(entry, protocol.ok_response(
                        entry.rid, {"applied": True, **info}, metrics))
                else:
                    self._resolve(entry, self._err(
                        entry.rid, "bad_request", outcome, metrics))
            return report is not None

    # -- plumbing -------------------------------------------------------
    def _cancel(self, rid, target) -> Dict:
        entry = self._pending_by_id.get(target)
        hit = entry is not None and not entry.cancelled
        if hit:
            entry.cancelled = True
            self._resolve(entry, self._err(entry.rid, "cancelled",
                                           "cancelled by request"))
        return protocol.ok_response(rid, {"cancelled": bool(hit)})

    def _deadline_of(self, req, t0) -> Optional[float]:
        ms = req.get("deadline_ms")
        if ms is not None:
            return t0 + float(ms) / 1e3
        if self.default_deadline_s is not None:
            return t0 + self.default_deadline_s
        return None

    def _resolve(self, entry: _Entry, resp: Dict) -> None:
        if not entry.future.done():
            entry.future.set_result(resp)

    def _err(self, rid, code, message, metrics=None) -> Dict:
        self.n_errors += 1
        self.metrics.counter("serve/errors").inc()
        return protocol.error_response(rid, code, message, metrics)

    def _observe(self, enqueued: float, started: float) -> None:
        now = time.monotonic()
        self.latencies.append(now - enqueued)
        self.queue_waits.append(max(0.0, started - enqueued))
        self.metrics.histogram("serve/queue_wait_s").observe(
            max(0.0, started - enqueued))
        self.metrics.histogram("serve/compute_s").observe(now - started)

    def _metrics_for(self, enqueued: float, started: float) -> Dict:
        now = time.monotonic()
        return {
            "queue_wait_ms": max(0.0, started - enqueued) * 1e3,
            "compute_ms": max(0.0, now - started) * 1e3,
            "version": self.session.view.version,
        }
