"""Vectorised lexicographic searchsorted for home-PE localisation.

Section II-B: "We replicate an array of size p containing min_lex(E_i) ...
This allows localization of the home PE of a vertex or edge by binary
search."  The keys are (u, v, w) triples; numpy's ``searchsorted`` only
handles scalar keys, so this module provides a vectorised multi-key variant
built on one ``lexsort`` over keys and queries combined -- O((p+q) log(p+q))
for q queries against p keys, with no per-query Python loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def lex_searchsorted(
    keys: Sequence[np.ndarray],
    queries: Sequence[np.ndarray],
    side: str = "right",
) -> np.ndarray:
    """Insertion indices of lexicographic ``queries`` into sorted ``keys``.

    ``keys`` and ``queries`` are sequences of equally many component arrays,
    most-significant component first (e.g. ``(u, v, w)``).  ``keys`` must be
    lexicographically sorted.  Semantics match ``np.searchsorted``: with
    ``side='right'`` the result counts keys <= query, with ``side='left'``
    keys < query.
    """
    if side not in ("left", "right"):
        raise ValueError("side must be 'left' or 'right'")
    n_comp = len(keys)
    if len(queries) != n_comp:
        raise ValueError("keys and queries must have the same number of components")
    k = len(keys[0]) if n_comp else 0
    q = len(queries[0]) if n_comp else 0
    if q == 0:
        return np.empty(0, dtype=np.int64)
    if k == 0:
        return np.zeros(q, dtype=np.int64)

    merged = [
        np.concatenate([np.asarray(keys[c], dtype=np.int64),
                        np.asarray(queries[c], dtype=np.int64)])
        for c in range(n_comp)
    ]
    is_query = np.zeros(k + q, dtype=np.int8)
    is_query[k:] = 1
    # side='right': equal queries sort after keys (tie-break key 1);
    # side='left': before (tie-break 0 for queries via negation).
    tie = is_query if side == "right" else (1 - is_query)
    # lexsort takes least-significant key first.
    order = np.lexsort(tuple([tie] + list(reversed(merged))))
    sorted_is_query = is_query[order] == 1
    keys_before = np.cumsum(~sorted_is_query)
    result = np.empty(q, dtype=np.int64)
    query_positions = order[sorted_is_query] - k
    result[query_positions] = keys_before[sorted_is_query]
    return result


def home_pe_of_edges(
    min_keys: Sequence[np.ndarray],
    qu: np.ndarray,
    qv: np.ndarray,
    qw: np.ndarray,
) -> np.ndarray:
    """Home PE of each queried directed edge ``(qu, qv, qw)``.

    ``min_keys = (u, v, w)`` is the replicated per-PE first-edge array (with
    empty PEs holding their successor's key, see
    :meth:`repro.dgraph.dist_graph.DistGraph.rebuild_min_keys`).  The home PE
    is the rightmost PE whose first edge is <= the query.
    """
    idx = lex_searchsorted(min_keys, (qu, qv, qw), side="right") - 1
    return np.maximum(idx, 0)


def home_pe_of_vertices(min_u: np.ndarray, qv: np.ndarray) -> np.ndarray:
    """A PE that owns edges with source vertex ``qv`` (rightmost such PE)."""
    idx = np.searchsorted(min_u, np.asarray(qv, dtype=np.int64), side="right") - 1
    return np.maximum(idx, 0)
