"""Vectorised lexicographic searchsorted for home-PE localisation.

Section II-B: "We replicate an array of size p containing min_lex(E_i) ...
This allows localization of the home PE of a vertex or edge by binary
search."  The keys are (u, v, w) triples; numpy's ``searchsorted`` only
handles scalar keys, so this module provides a vectorised multi-key variant
built on one ``lexsort`` over keys and queries combined -- O((p+q) log(p+q))
for q queries against p keys, with no per-query Python loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def sorted_lookup(haystack: np.ndarray, needles: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Membership probe of ``needles`` in a sorted 1-D ``haystack``.

    Returns ``(found, idx)``: ``found[k]`` is whether ``needles[k]`` occurs
    in ``haystack`` and ``idx[k]`` is its position (clamped to the valid
    range, 0 for an empty haystack, so gathering ``haystack[idx]`` is always
    safe; ``idx`` is meaningful only where ``found``).  This is the one
    clamped-searchsorted-probe used everywhere a sorted array serves as a
    lookup table -- pointer-doubling replies, ghost-label tables, RELABEL's
    destination lookup -- replacing three hand-rolled copies with subtly
    different empty-array handling.
    """
    needles = np.asarray(needles)
    idx = np.searchsorted(haystack, needles)
    if len(haystack) == 0:
        return np.zeros(len(needles), dtype=bool), np.zeros(len(needles),
                                                            dtype=np.int64)
    valid = idx < len(haystack)
    idx = np.minimum(idx, len(haystack) - 1)
    found = valid & (haystack[idx] == needles)
    return found, idx


def _pack_columns(keys: Sequence[np.ndarray], queries: Sequence[np.ndarray]):
    """Pack multi-column lexicographic keys into single int64 scalars.

    Returns ``(packed_keys, packed_queries)`` when the per-column value
    ranges are narrow enough that the mixed-radix encoding fits int64 (the
    encoding is strictly monotone in lexicographic order, so a plain binary
    search replaces the merged lexsort), else ``None``.
    """
    lo_hi = []
    capacity = 1
    for c in range(len(keys)):
        kc = np.asarray(keys[c], dtype=np.int64)
        qc = np.asarray(queries[c], dtype=np.int64)
        lo = int(kc.min())
        hi = int(kc.max())
        if len(qc):
            lo = min(lo, int(qc.min()))
            hi = max(hi, int(qc.max()))
        span = hi - lo + 1
        capacity *= span
        # Bail out when the packed key or the raw values overflow int64.
        if capacity >= (1 << 62) or hi >= (1 << 62) or lo <= -(1 << 62):
            return None
        lo_hi.append((lo, span, kc, qc))
    pk = np.zeros(len(lo_hi[0][2]), dtype=np.int64)
    pq = np.zeros(len(lo_hi[0][3]), dtype=np.int64)
    for lo, span, kc, qc in lo_hi:
        pk = pk * span + (kc - lo)
        pq = pq * span + (qc - lo)
    return pk, pq


def lex_searchsorted(
    keys: Sequence[np.ndarray],
    queries: Sequence[np.ndarray],
    side: str = "right",
) -> np.ndarray:
    """Insertion indices of lexicographic ``queries`` into sorted ``keys``.

    ``keys`` and ``queries`` are sequences of equally many component arrays,
    most-significant component first (e.g. ``(u, v, w)``).  ``keys`` must be
    lexicographically sorted.  Semantics match ``np.searchsorted``: with
    ``side='right'`` the result counts keys <= query, with ``side='left'``
    keys < query.
    """
    if side not in ("left", "right"):
        raise ValueError("side must be 'left' or 'right'")
    n_comp = len(keys)
    if len(queries) != n_comp:
        raise ValueError("keys and queries must have the same number of components")
    k = len(keys[0]) if n_comp else 0
    q = len(queries[0]) if n_comp else 0
    if q == 0:
        return np.empty(0, dtype=np.int64)
    if k == 0:
        return np.zeros(q, dtype=np.int64)

    packed = _pack_columns(keys, queries)
    if packed is not None:
        pk, pq = packed
        return np.searchsorted(pk, pq, side=side)

    merged = [
        np.concatenate([np.asarray(keys[c], dtype=np.int64),
                        np.asarray(queries[c], dtype=np.int64)])
        for c in range(n_comp)
    ]
    is_query = np.zeros(k + q, dtype=np.int8)
    is_query[k:] = 1
    # side='right': equal queries sort after keys (tie-break key 1);
    # side='left': before (tie-break 0 for queries via negation).
    tie = is_query if side == "right" else (1 - is_query)
    # lexsort takes least-significant key first.
    order = np.lexsort(tuple([tie] + list(reversed(merged))))
    sorted_is_query = is_query[order] == 1
    keys_before = np.cumsum(~sorted_is_query)
    result = np.empty(q, dtype=np.int64)
    query_positions = order[sorted_is_query] - k
    result[query_positions] = keys_before[sorted_is_query]
    return result


def home_pe_of_edges(
    min_keys: Sequence[np.ndarray],
    qu: np.ndarray,
    qv: np.ndarray,
    qw: np.ndarray,
) -> np.ndarray:
    """Home PE of each queried directed edge ``(qu, qv, qw)``.

    ``min_keys = (u, v, w)`` is the replicated per-PE first-edge array (with
    empty PEs holding their successor's key, see
    :meth:`repro.dgraph.dist_graph.DistGraph.rebuild_min_keys`).  The home PE
    is the rightmost PE whose first edge is <= the query.
    """
    idx = lex_searchsorted(min_keys, (qu, qv, qw), side="right") - 1
    return np.maximum(idx, 0)


def home_pe_of_vertices(min_u: np.ndarray, qv: np.ndarray) -> np.ndarray:
    """A PE that owns edges with source vertex ``qv`` (rightmost such PE)."""
    idx = np.searchsorted(min_u, np.asarray(qv, dtype=np.int64), side="right") - 1
    return np.maximum(idx, 0)
