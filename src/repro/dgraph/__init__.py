"""Distributed graph data structure (Section II-B)."""

from .edges import Edges, merge_sorted
from .dist_graph import DistGraph, KEY_SENTINEL
from .search import home_pe_of_edges, home_pe_of_vertices, lex_searchsorted

__all__ = [
    "Edges",
    "merge_sorted",
    "DistGraph",
    "KEY_SENTINEL",
    "home_pe_of_edges",
    "home_pe_of_vertices",
    "lex_searchsorted",
]
