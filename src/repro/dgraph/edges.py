"""Edge-array container and ordering utilities.

The paper represents a graph as a lexicographically sorted sequence of
*directed* edges ``e = (u, v, w)``; for every edge the back edge ``(v, u, w)``
is also present (Section II-B).  :class:`Edges` stores such a sequence as
four parallel int64 numpy arrays:

``u``  source vertex label,
``v``  destination vertex label,
``w``  weight (the experiments draw integer weights uniformly from [1, 255)),
``id`` global id of the *directed* edge in the original input sequence --
       used to report original endpoints of MST edges after contractions
       have relabelled ``u``/``v`` (Section VI-C).

Tie-breaking
------------
Borůvka-style algorithms need a total order on (current) vertex *pairs* so
that minimum-edge selection cannot create cycles when weights collide
(Section II-C: "one can use vertex labels to consistently break ties").  We
use the key

    ``(w, min(u, v), max(u, v))``

throughout -- both in the distributed algorithms and in the sequential
baselines, so that all implementations select the same forest whenever the
input has no exactly-parallel duplicate edges (and the same *weight* in all
cases).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..kernels.segmented import packed_lexsort


class Edges:
    """A sequence of directed weighted edges as parallel int64 arrays."""

    __slots__ = ("u", "v", "w", "id")

    def __init__(self, u, v, w, id=None):
        self.u = np.ascontiguousarray(u, dtype=np.int64)
        self.v = np.ascontiguousarray(v, dtype=np.int64)
        self.w = np.ascontiguousarray(w, dtype=np.int64)
        if id is None:
            id = np.arange(len(self.u), dtype=np.int64)
        self.id = np.ascontiguousarray(id, dtype=np.int64)
        n = len(self.u)
        if not (len(self.v) == len(self.w) == len(self.id) == n):
            raise ValueError("u, v, w, id must have equal length")

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "Edges":
        """An edge sequence of length zero."""
        z = np.empty(0, dtype=np.int64)
        return cls(z, z.copy(), z.copy(), z.copy())

    @classmethod
    def concat(cls, parts: Iterable["Edges"]) -> "Edges":
        """Concatenate edge sequences (order preserved, no re-sorting)."""
        parts = list(parts)
        if not parts:
            return cls.empty()
        return cls(
            np.concatenate([p.u for p in parts]),
            np.concatenate([p.v for p in parts]),
            np.concatenate([p.w for p in parts]),
            np.concatenate([p.id for p in parts]),
        )

    def __len__(self) -> int:
        return len(self.u)

    def take(self, idx) -> "Edges":
        """Subset / reorder by integer or boolean index."""
        # The columns are already int64 and equally long; skip __init__'s
        # re-coercion (ascontiguousarray is still needed for strided slices).
        e = object.__new__(Edges)
        e.u = np.ascontiguousarray(self.u[idx])
        e.v = np.ascontiguousarray(self.v[idx])
        e.w = np.ascontiguousarray(self.w[idx])
        e.id = np.ascontiguousarray(self.id[idx])
        return e

    def copy(self) -> "Edges":
        """A deep copy (all four arrays duplicated)."""
        return Edges(self.u.copy(), self.v.copy(), self.w.copy(), self.id.copy())

    # ------------------------------------------------------------------
    # Ordering.
    # ------------------------------------------------------------------
    def lex_order(self) -> np.ndarray:
        """Permutation sorting by the paper's lexicographic order (u, v, w)."""
        return packed_lexsort((self.w, self.v, self.u))

    def sort_lex(self) -> "Edges":
        """Sorted copy in lexicographic (u, v, w) order."""
        return self.take(self.lex_order())

    def is_sorted_lex(self) -> bool:
        """Whether the sequence is in lexicographic (u, v, w) order."""
        if len(self) <= 1:
            return True
        u, v, w = self.u, self.v, self.w
        du = np.diff(u)
        if (du < 0).any():
            return False
        eq_u = du == 0
        dv = np.diff(v)
        if (dv[eq_u] < 0).any():
            return False
        eq_uv = eq_u & (dv == 0)
        if (np.diff(w)[eq_uv] < 0).any():
            return False
        return True

    def tie_key(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Total-order key arrays (w, min(u,v), max(u,v)), priority first.

        Pass reversed to ``np.lexsort`` (which takes least-significant key
        first): ``np.lexsort(edges.tie_key()[::-1])``.
        """
        cu = np.minimum(self.u, self.v)
        cv = np.maximum(self.u, self.v)
        return self.w, cu, cv

    def weight_order(self) -> np.ndarray:
        """Permutation sorting by the tie-breaking total order."""
        w, cu, cv = self.tie_key()
        return packed_lexsort((cv, cu, w))

    # ------------------------------------------------------------------
    # Communication helpers.
    # ------------------------------------------------------------------
    N_COLS = 4

    def as_matrix(self) -> np.ndarray:
        """Pack into an ``(m, 4)`` int64 matrix ``[u, v, w, id]`` for transport."""
        out = np.empty((len(self), self.N_COLS), dtype=np.int64)
        out[:, 0] = self.u
        out[:, 1] = self.v
        out[:, 2] = self.w
        out[:, 3] = self.id
        return out

    @classmethod
    def from_matrix(cls, mat: np.ndarray) -> "Edges":
        """Unpack an ``(m, 4)`` transport matrix back into an edge sequence."""
        mat = np.asarray(mat, dtype=np.int64).reshape(-1, cls.N_COLS)
        return cls(mat[:, 0], mat[:, 1], mat[:, 2], mat[:, 3])

    # ------------------------------------------------------------------
    # Structure helpers.
    # ------------------------------------------------------------------
    def with_back_edges(self) -> "Edges":
        """Union with the reversed edges (making the sequence symmetric)."""
        return Edges(
            np.concatenate([self.u, self.v]),
            np.concatenate([self.v, self.u]),
            np.concatenate([self.w, self.w]),
            np.concatenate([self.id, self.id]),
        )

    def canonical_triples(self) -> np.ndarray:
        """Sorted (w, min(u,v), max(u,v)) rows -- the *undirected* multiset.

        Two MSF computations agree iff these arrays are equal (weights alone
        are enough for optimality checks; the triples additionally pin the
        edge set up to exactly-parallel duplicates).
        """
        w, cu, cv = self.tie_key()
        trip = np.stack([w, cu, cv], axis=1)
        order = packed_lexsort((cv, cu, w))
        return trip[order]

    def total_weight(self) -> int:
        """Sum of the weight column."""
        return int(self.w.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Edges(m={len(self)})"


def merge_sorted(parts: Sequence[Edges]) -> Edges:
    """Concatenate lexicographically sorted runs and restore global order.

    numpy has no k-way merge; a stable lexsort of the concatenation is
    O(m log m) but vectorised, which is the right trade-off here (see the
    hpc-parallel guide: prefer vectorised numpy over Python-level loops).
    """
    cat = Edges.concat(parts)
    return cat.sort_lex()
