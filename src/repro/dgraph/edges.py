"""Edge-array container and ordering utilities.

The paper represents a graph as a lexicographically sorted sequence of
*directed* edges ``e = (u, v, w)``; for every edge the back edge ``(v, u, w)``
is also present (Section II-B).  :class:`Edges` stores such a sequence as
four parallel int64 numpy arrays:

``u``  source vertex label,
``v``  destination vertex label,
``w``  weight (the experiments draw integer weights uniformly from [1, 255)),
``id`` global id of the *directed* edge in the original input sequence --
       used to report original endpoints of MST edges after contractions
       have relabelled ``u``/``v`` (Section VI-C).

Tie-breaking
------------
Borůvka-style algorithms need a total order on (current) vertex *pairs* so
that minimum-edge selection cannot create cycles when weights collide
(Section II-C: "one can use vertex labels to consistently break ties").  We
use the key

    ``(w, min(u, v), max(u, v))``

throughout -- both in the distributed algorithms and in the sequential
baselines, so that all implementations select the same forest whenever the
input has no exactly-parallel duplicate edges (and the same *weight* in all
cases).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..kernels.dtypes import index_dtype
from ..kernels.segmented import packed_lexsort


def _as_col(a) -> np.ndarray:
    """A contiguous integer column: integer dtypes kept, others -> int64.

    Preserving the caller's integer dtype is what lets the adaptive
    narrowing policy (``repro.kernels.dtypes``) flow through: a graph built
    from ``uint32`` columns stays ``uint32`` through take/concat/transport.
    """
    a = np.ascontiguousarray(a)
    if a.dtype.kind not in "iu":
        a = np.ascontiguousarray(a, dtype=np.int64)
    return a


class Edges:
    """A sequence of directed weighted edges as parallel integer arrays.

    Columns are ``int64`` by default; integer inputs keep their own dtype
    (the narrowing policy stores benchmark-scale graphs as ``uint32``).
    Simulated-machine byte accounting is unaffected by the storage width --
    every integer element counts as one logical 8-byte word (see
    ``repro.kernels.dtypes``).
    """

    __slots__ = ("u", "v", "w", "id", "_sorted_lex")

    def __init__(self, u, v, w, id=None):
        self.u = _as_col(u)
        self.v = _as_col(v)
        self.w = _as_col(w)
        if id is None:
            n = len(self.u)
            id = np.arange(n, dtype=index_dtype(max(n - 1, 0)))
        self.id = _as_col(id)
        self._sorted_lex = False
        n = len(self.u)
        if not (len(self.v) == len(self.w) == len(self.id) == n):
            raise ValueError("u, v, w, id must have equal length")

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "Edges":
        """An edge sequence of length zero."""
        z = np.empty(0, dtype=np.int64)
        return cls(z, z.copy(), z.copy(), z.copy())

    @classmethod
    def concat(cls, parts: Iterable["Edges"]) -> "Edges":
        """Concatenate edge sequences (order preserved, no re-sorting)."""
        parts = list(parts)
        if not parts:
            return cls.empty()
        # Zero-length parts contribute nothing but their dtype (an int64
        # Edges.empty() would silently widen narrow columns) -- drop them.
        nonempty = [p for p in parts if len(p)]
        if not nonempty:
            return cls.empty()
        return cls(
            np.concatenate([p.u for p in nonempty]),
            np.concatenate([p.v for p in nonempty]),
            np.concatenate([p.w for p in nonempty]),
            np.concatenate([p.id for p in nonempty]),
        )

    def __len__(self) -> int:
        return len(self.u)

    def take(self, idx) -> "Edges":
        """Subset / reorder by integer or boolean index."""
        # The columns are already integer and equally long; skip __init__'s
        # re-coercion (ascontiguousarray is still needed for strided slices).
        e = object.__new__(Edges)
        e.u = np.ascontiguousarray(self.u[idx])
        e.v = np.ascontiguousarray(self.v[idx])
        e.w = np.ascontiguousarray(self.w[idx])
        e.id = np.ascontiguousarray(self.id[idx])
        e._sorted_lex = False
        return e

    def copy(self) -> "Edges":
        """A deep copy (all four arrays duplicated)."""
        e = Edges(self.u.copy(), self.v.copy(), self.w.copy(), self.id.copy())
        e._sorted_lex = self._sorted_lex
        return e

    # ------------------------------------------------------------------
    # Ordering.
    # ------------------------------------------------------------------
    def lex_order(self) -> np.ndarray:
        """Permutation sorting by the paper's lexicographic order (u, v, w)."""
        return packed_lexsort((self.w, self.v, self.u))

    def sort_lex(self) -> "Edges":
        """Sorted copy in lexicographic (u, v, w) order.

        When the sequence is already *known* sorted (cached flag set by a
        previous sort or verify) the O(m log m) sort collapses to an O(m)
        copy; the result is still a fresh object the caller may mutate.
        """
        if self._sorted_lex:
            return self.copy()
        e = self.take(self.lex_order())
        e._sorted_lex = True
        return e

    def is_sorted_lex(self, force: bool = False) -> bool:
        """Whether the sequence is in lexicographic (u, v, w) order.

        A positive answer is cached (columns are never mutated in place
        anywhere in the tree; only ``id`` is, which the order ignores).
        ``force=True`` re-verifies even when the cached flag is set -- the
        sanitizer uses it so its checks never become vacuous.
        """
        if self._sorted_lex and not force:
            return True
        ok = self._verify_sorted_lex()
        if ok:
            self._sorted_lex = True
        return ok

    def _verify_sorted_lex(self) -> bool:
        # Comparison-based on purpose: np.diff on uint32 columns wraps.
        if len(self) <= 1:
            return True
        u, v, w = self.u, self.v, self.w
        u0, u1 = u[:-1], u[1:]
        if (u1 < u0).any():
            return False
        eq = u1 == u0
        v0, v1 = v[:-1], v[1:]
        if ((v1 < v0) & eq).any():
            return False
        eq &= v1 == v0
        if ((w[1:] < w[:-1]) & eq).any():
            return False
        return True

    def tie_key(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Total-order key arrays (w, min(u,v), max(u,v)), priority first.

        Pass reversed to ``np.lexsort`` (which takes least-significant key
        first): ``np.lexsort(edges.tie_key()[::-1])``.
        """
        cu = np.minimum(self.u, self.v)
        cv = np.maximum(self.u, self.v)
        return self.w, cu, cv

    def weight_order(self) -> np.ndarray:
        """Permutation sorting by the tie-breaking total order."""
        w, cu, cv = self.tie_key()
        return packed_lexsort((cv, cu, w))

    # ------------------------------------------------------------------
    # Communication helpers.
    # ------------------------------------------------------------------
    N_COLS = 4

    def as_matrix(self) -> np.ndarray:
        """Pack into an ``(m, 4)`` matrix ``[u, v, w, id]`` for transport.

        The matrix dtype is the promotion of the four columns -- ``uint32``
        for a fully narrowed graph, halving the bytes the host shuffles
        (simulated byte counts stay at 8 logical bytes per element either
        way).
        """
        dt = np.result_type(self.u, self.v, self.w, self.id)
        out = np.empty((len(self), self.N_COLS), dtype=dt)
        out[:, 0] = self.u
        out[:, 1] = self.v
        out[:, 2] = self.w
        out[:, 3] = self.id
        return out

    @classmethod
    def from_matrix(cls, mat: np.ndarray) -> "Edges":
        """Unpack an ``(m, 4)`` transport matrix back into an edge sequence."""
        mat = np.asarray(mat)
        if mat.dtype.kind not in "iu":
            mat = mat.astype(np.int64)
        mat = mat.reshape(-1, cls.N_COLS)
        return cls(mat[:, 0], mat[:, 1], mat[:, 2], mat[:, 3])

    # ------------------------------------------------------------------
    # Structure helpers.
    # ------------------------------------------------------------------
    def with_back_edges(self) -> "Edges":
        """Union with the reversed edges (making the sequence symmetric)."""
        return Edges(
            np.concatenate([self.u, self.v]),
            np.concatenate([self.v, self.u]),
            np.concatenate([self.w, self.w]),
            np.concatenate([self.id, self.id]),
        )

    def canonical_triples(self) -> np.ndarray:
        """Sorted (w, min(u,v), max(u,v)) rows -- the *undirected* multiset.

        Two MSF computations agree iff these arrays are equal (weights alone
        are enough for optimality checks; the triples additionally pin the
        edge set up to exactly-parallel duplicates).
        """
        w, cu, cv = self.tie_key()
        trip = np.stack([w, cu, cv], axis=1)
        order = packed_lexsort((cv, cu, w))
        return trip[order]

    def total_weight(self) -> int:
        """Sum of the weight column."""
        return int(self.w.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Edges(m={len(self)})"


def merge_sorted(parts: Sequence[Edges]) -> Edges:
    """Concatenate lexicographically sorted runs and restore global order.

    numpy has no k-way merge; a stable lexsort of the concatenation is
    O(m log m) but vectorised, which is the right trade-off here (see the
    hpc-parallel guide: prefer vectorised numpy over Python-level loops).
    """
    cat = Edges.concat(parts)
    return cat.sort_lex()
