"""The distributed graph data structure of Section II-B.

A :class:`DistGraph` is a lexicographically sorted sequence of directed
edges, 1D-partitioned over the PEs of a simulated
:class:`~repro.simmpi.machine.Machine`: PE ``i`` holds the contiguous
subsequence ``E_i``.  For every edge ``(u, v, w)`` the back edge
``(v, u, w)`` is also present somewhere in the global sequence.

Terminology (Fig. 1 of the paper), always from PE ``i``'s point of view:

local vertex
    a source vertex appearing in ``E_i``;
shared vertex
    a vertex whose edges straddle a PE boundary (it is "local" on several
    PEs); possible because the partition cuts the sorted sequence at
    arbitrary positions;
ghost vertex
    a non-local vertex appearing as a destination in ``E_i``;
local edge / cut edge
    both endpoints local / otherwise.

Replicated metadata: each PE holds the array of every PE's
lexicographically-smallest edge (``min_lex(E_i)``), enabling home-PE
localisation of a vertex or edge by binary search
(:mod:`repro.dgraph.search`).  Empty PEs inherit their successor's key so the
search semantics ("rightmost PE whose first edge is <= the query") stay
correct.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..simmpi.collectives import Comm
from ..simmpi.machine import Machine
from .edges import Edges
from .search import home_pe_of_edges, home_pe_of_vertices

#: Sentinel key component for PEs with no following non-empty PE.
KEY_SENTINEL = np.iinfo(np.int64).max


class DistGraph:
    """1D-partitioned, globally lexicographically sorted distributed edge list."""

    def __init__(self, machine: Machine, parts: Sequence[Edges],
                 check: bool = True):
        if len(parts) != machine.n_procs:
            raise ValueError(
                f"need {machine.n_procs} parts, got {len(parts)}"
            )
        self.machine = machine
        self.comm = Comm(machine)
        self.parts: List[Edges] = list(parts)
        if machine.sanitizer is not None:
            # Register every part's arrays as PE-owned state: from here on
            # they are write-protected outside machine.on_pe(i) contexts.
            for i, part in enumerate(self.parts):
                machine.sanitizer.adopt_edges(i, part)
        if check:
            self._check_local_sorted()
        self.rebuild_min_keys()
        if check:
            self._check_global_sorted()

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    @classmethod
    def from_global_edges(cls, machine: Machine, edges: Edges,
                          avoid_shared: bool = False) -> "DistGraph":
        """Sort a global edge list and block-partition it over the PEs.

        With ``avoid_shared`` the block boundaries are moved forward to the
        next source-group boundary, reproducing the KaGen input guarantee
        that the initial partition has no shared vertices (Section VII).
        """
        p = machine.n_procs
        m = len(edges)
        # Directed-edge ids are positions in the sorted global sequence --
        # the contract the MST output stage (REDISTRIBUTEMST) relies on.
        # Generated graphs arrive sorted with positional ids already
        # (graphgen finalisation), in which case both the O(m log m) sort
        # and the O(m) copy are skipped; the parts below are takes (fresh
        # arrays), so ``edges`` itself is never mutated or adopted.
        if edges.is_sorted_lex() and (
                m == 0 or (int(edges.id[0]) == 0
                           and int(edges.id[-1]) == m - 1
                           and np.array_equal(
                               edges.id,
                               np.arange(m, dtype=edges.id.dtype)))):
            g = edges
        else:
            g = edges.sort_lex()
            g.id[:] = np.arange(m, dtype=np.int64)
        bounds = np.linspace(0, m, p + 1).astype(np.int64)
        if avoid_shared and m:
            for i in range(1, p):
                b = bounds[i]
                # Advance to the first edge with a new source vertex.
                while 0 < b < m and g.u[b] == g.u[b - 1]:
                    b += 1
                bounds[i] = max(b, bounds[i - 1])
            bounds[p] = m
        parts = [g.take(np.arange(bounds[i], bounds[i + 1]))
                 for i in range(p)]
        return cls(machine, parts)

    def _check_local_sorted(self) -> None:
        for i, part in enumerate(self.parts):
            if not part.is_sorted_lex():
                raise ValueError(f"part {i} is not lexicographically sorted")

    def _check_global_sorted(self) -> None:
        prev_last: Optional[tuple] = None
        for i, part in enumerate(self.parts):
            if len(part) == 0:
                continue
            first = (int(part.u[0]), int(part.v[0]), int(part.w[0]))
            if prev_last is not None and first < prev_last:
                raise ValueError(
                    f"global sortedness violated at PE {i}: {first} < {prev_last}"
                )
            prev_last = (int(part.u[-1]), int(part.v[-1]), int(part.w[-1]))

    # ------------------------------------------------------------------
    # Replicated metadata (allgather of boundary information).
    # ------------------------------------------------------------------
    def rebuild_min_keys(self) -> None:
        """Re-establish the replicated ``min_lex`` array and boundary info.

        Performed with one allgather of a constant-size record per PE,
        exactly like the paper's REDISTRIBUTE re-establishes the structure
        (Section IV-C).
        """
        p = self.machine.n_procs
        records = []
        for part in self.parts:
            if len(part):
                records.append(np.array(
                    [1, part.u[0], part.v[0], part.w[0],
                     part.u[-1], len(part)], dtype=np.int64))
            else:
                records.append(np.array([0, 0, 0, 0, 0, 0], dtype=np.int64))
        gathered = np.stack(self.comm.allgather(records))
        self.has_edges = gathered[:, 0] == 1
        first_u = gathered[:, 1].copy()
        first_v = gathered[:, 2].copy()
        first_w = gathered[:, 3].copy()
        self.last_src = gathered[:, 4].copy()
        self.part_sizes = gathered[:, 5].copy()
        # Empty PEs inherit the next non-empty PE's key (sentinel at the end).
        nk_u = np.full(p, KEY_SENTINEL, dtype=np.int64)
        nk_v = np.full(p, KEY_SENTINEL, dtype=np.int64)
        nk_w = np.full(p, KEY_SENTINEL, dtype=np.int64)
        nxt_u = nxt_v = nxt_w = KEY_SENTINEL
        for i in range(p - 1, -1, -1):
            if self.has_edges[i]:
                nxt_u, nxt_v, nxt_w = first_u[i], first_v[i], first_w[i]
            nk_u[i], nk_v[i], nk_w[i] = nxt_u, nxt_v, nxt_w
        self.min_keys = (nk_u, nk_v, nk_w)
        # Resident footprint: the edge block (4 x int64 per directed edge)
        # plus the compressed initial-copy / working-buffer headroom.  The
        # paper needs >= 4096 cores before wdc-14 fits (Section VII-B); a
        # machine memory limit reproduces that gate for our algorithms too.
        self.machine.check_memory(self.part_sizes.astype(np.float64) * 64.0)
        self.first_src = np.where(self.has_edges, first_u, KEY_SENTINEL)
        # Shared-vertex flags: does part i start with the previous non-empty
        # part's last source vertex / end with the next's first?
        self.shared_first = np.zeros(p, dtype=bool)
        prev_last = None
        for i in range(p):
            if not self.has_edges[i]:
                continue
            if prev_last is not None and first_u[i] == prev_last:
                self.shared_first[i] = True
            prev_last = self.last_src[i]

    # ------------------------------------------------------------------
    # Global quantities.
    # ------------------------------------------------------------------
    def global_edge_count(self) -> int:
        """Total directed edges across all PEs (replicated metadata)."""
        return int(self.part_sizes.sum())

    def local_vertex_counts(self) -> np.ndarray:
        """Distinct source vertices per PE (shared vertices counted on each)."""
        return np.array(
            [len(np.unique(part.u)) if len(part) else 0 for part in self.parts],
            dtype=np.int64,
        )

    def global_vertex_count(self) -> int:
        """Number of distinct source vertices in the global sequence.

        Shared vertices are counted once: each PE-boundary where the next
        non-empty part begins with this part's last source subtracts one.
        """
        counts = self.local_vertex_counts()
        return int(counts.sum() - self.shared_first.sum())

    def shared_vertex_set(self) -> np.ndarray:
        """Sorted array of all globally shared vertices.

        A vertex is shared iff its edge range spans a PE boundary, i.e. it is
        the first source of some part that continues its predecessor's last
        source.  Computable from the replicated boundary metadata alone --
        the property the paper exploits to skip communication for shared
        vertices during pointer doubling (Section IV-B).
        """
        vals = self.first_src[self.shared_first]
        return np.unique(vals)

    # ------------------------------------------------------------------
    # Localisation (binary search on the replicated min_lex array).
    # ------------------------------------------------------------------
    def home_of_edges(self, qu: np.ndarray, qv: np.ndarray,
                      qw: np.ndarray) -> np.ndarray:
        """Home PE of the directed edges ``(qu, qv, qw)``."""
        return home_pe_of_edges(self.min_keys, qu, qv, qw)

    def home_of_vertices(self, qv: np.ndarray) -> np.ndarray:
        """A PE owning edges with source ``qv`` (the rightmost such PE)."""
        return home_pe_of_vertices(self.min_keys[0], qv)

    # ------------------------------------------------------------------
    # Per-part vertex structure (source groups are contiguous).
    # ------------------------------------------------------------------
    def vertex_groups(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(distinct source vertices of part i, group start offsets).

        ``starts`` has one extra trailing entry ``len(part)`` so group ``k``
        spans ``[starts[k], starts[k+1])``.
        """
        part = self.parts[i]
        if len(part) == 0:
            z = np.empty(0, dtype=np.int64)
            return z, np.zeros(1, dtype=np.int64)
        change = np.ones(len(part), dtype=bool)
        change[1:] = part.u[1:] != part.u[:-1]
        starts = np.flatnonzero(change)
        vids = part.u[starts]
        return vids, np.append(starts, len(part))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DistGraph(p={self.machine.n_procs}, "
                f"m={self.global_edge_count()})")
