"""Result formatting: the ASCII tables and CSV series the benches print.

The paper presents results as throughput/time-vs-cores plots; without a
display the benches print the same series as aligned text tables (one row
per core count, one column per algorithm variant) plus machine-readable CSV
lines prefixed with ``#csv`` for downstream plotting.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from .runner import ExperimentResult


def _fmt(value: float, digits: int = 3) -> str:
    if value is None or not np.isfinite(value):
        return "--"
    if value >= 1e5 or (0 < abs(value) < 1e-3):
        return f"{value:.2e}"
    return f"{value:.{digits}f}"


def series_table(
    results: Sequence[ExperimentResult],
    value: str = "elapsed",
    row_key: Callable[[ExperimentResult], object] = lambda r: r.cores,
    col_key: Callable[[ExperimentResult], str] = lambda r: r.algorithm,
    row_label: str = "cores",
) -> str:
    """Pivot results into an aligned text table (rows x algorithm columns).

    ``value`` is an :class:`ExperimentResult` attribute/property name.
    Crashed configurations render as ``oom``.
    """
    rows = sorted({row_key(r) for r in results}, key=lambda x: (str(type(x)), x))
    cols = list(dict.fromkeys(col_key(r) for r in results))
    cells: Dict[tuple, str] = {}
    for r in results:
        key = (row_key(r), col_key(r))
        if r.status == "oom":
            cells[key] = "oom"
        elif r.status != "ok":
            cells[key] = r.status
        else:
            cells[key] = _fmt(getattr(r, value))
    header = [row_label] + cols
    body = [[str(rk)] + [cells.get((rk, c), "--") for c in cols]
            for rk in rows]
    all_rows = [header] + body
    widths = [max(len(row[c]) for row in all_rows)
              for c in range(len(header))]
    lines = []
    for idx, row in enumerate(all_rows):
        lines.append("  ".join(cell.rjust(widths[c])
                               for c, cell in enumerate(row)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def csv_lines(results: Sequence[ExperimentResult],
              extra_fields: Sequence[str] = ()) -> List[str]:
    """Machine-readable result rows (prefixed ``#csv`` by the benches)."""
    fields = ["instance", "algorithm", "cores", "n_procs", "threads",
              "n_vertices", "m_directed", "elapsed", "status"]
    lines = [",".join(fields + list(extra_fields) + ["throughput"])]
    for r in results:
        row = [str(getattr(r, f)) for f in fields]
        row += [str(r.stats.get(f, "")) for f in extra_fields]
        row.append(str(r.throughput))
        lines.append(",".join(row))
    return lines


def speedup_summary(results: Sequence[ExperimentResult],
                    ours_prefixes: Sequence[str] = ("boruvka",
                                                    "filterBoruvka",
                                                    "filter-boruvka"),
                    ) -> str:
    """Max speedup of our fastest variant over each competitor (Section VII-A).

    Algorithms whose name starts with one of ``ours_prefixes`` (thread
    suffixes like ``boruvka-8`` included) count as ours.  Variants are
    compared per (instance, core count) -- thread counts compete, exactly as
    in the paper's figures.
    """
    ours = lambda name: any(name.startswith(p) for p in ours_prefixes)
    by_config: Dict[tuple, Dict[str, ExperimentResult]] = {}
    for r in results:
        by_config.setdefault((r.instance, r.cores), {})[r.algorithm] = r
    best: Dict[str, float] = {}
    for cfg, algs in by_config.items():
        our_times = [a.elapsed for name, a in algs.items()
                     if ours(name) and a.status == "ok"]
        if not our_times:
            continue
        t_our = min(our_times)
        for name, a in algs.items():
            if ours(name) or a.status != "ok" or not np.isfinite(a.elapsed):
                continue
            s = a.elapsed / t_our
            if s > best.get(name, 0.0):
                best[name] = s
    if not best:
        return "no competitor overlap"
    return "; ".join(f"up to {v:.0f}x faster than {k}"
                     for k, v in sorted(best.items()))
