"""Run reports and the perf-regression observatory (``repro report``).

Three readers feed one reporting pipeline:

* a **Chrome trace** artifact (``*.trace.json`` from ``repro profile`` or a
  traced benchmark) -- analyzed offline by :mod:`repro.obs.critpath` into
  the critical-path breakdown, phase x PE attribution, per-round imbalance
  and wave-pipelining estimates;
* a **run ledger** (``ledger.jsonl``, :mod:`repro.obs.ledger`) -- rendered
  as a run history, with a regression diff of each run name's latest row
  against its previous one;
* **BENCH records** (``benchmarks/results/BENCH_*.json``) -- compared
  fresh-vs-baseline under the perf gate: wall-clock ratio bounded by
  ``--max-ratio`` and simulated series bit-identical.
  :func:`compare_bench`/:func:`perf_check` are the canonical gate
  implementation; ``benchmarks/check_perf.py`` is a thin CLI over them, so
  the CI verdict and ``repro report --check`` agree by construction.

Reports render as ASCII (:func:`render_text`) and as one self-contained
HTML file (:func:`render_html`) with no external assets: phase/PE
heatmaps, critical-path and phase breakdown bars, round and regression
tables.  Everything here *reads* recorded artifacts only -- report
generation can never change a simulated number.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import critpath
from ..obs.validate import check_schema_version

#: Categorical palette (validated 4-slot order; see docs/observability.md).
#: Slots: compute=blue, collective/comm=orange, wait=aqua, startup=yellow.
PALETTE_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100")
PALETTE_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500")

#: Single-hue sequential ramp (blue, light->dark) for the heatmaps.
SEQ_RAMP = ("#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec",
            "#5598e7", "#3987e5", "#2a78d6", "#256abf", "#1c5cab",
            "#184f95", "#104281", "#0d366b")


# ----------------------------------------------------------------------
# Artifact loading / classification.
# ----------------------------------------------------------------------
def classify_artifact(path) -> Tuple[str, object]:
    """Load one artifact and say what it is.

    Returns ``(kind, payload)`` with kind one of ``trace`` (Chrome trace
    JSON), ``bench`` (a BENCH record), ``metrics`` (a metrics dump) or
    ``ledger`` (JSONL rows).  Raises ``ValueError`` for unrecognisable
    files.
    """
    path = Path(path)
    if path.suffix == ".jsonl" or path.name.endswith("ledger.jsonl"):
        from ..obs.ledger import read_ledger

        return "ledger", read_ledger(path)
    payload = json.loads(path.read_text())
    if isinstance(payload, dict):
        if "traceEvents" in payload:
            return "trace", payload
        if "simulated" in payload and "wall_seconds" in payload:
            return "bench", payload
        if "simulated" in payload or "wall_seconds" in payload \
                or path.name.startswith("BENCH_"):
            # A BENCH record missing one of its two required keys gets a
            # precise diagnosis, not the generic "unrecognisable" error.
            missing = [k for k in ("simulated", "wall_seconds")
                       if k not in payload]
            raise ValueError(
                f"{path}: BENCH record is missing required "
                f"key(s) {missing}; records need both a 'simulated' "
                f"series and a 'wall_seconds' measurement "
                f"(write them via benchmarks/_common.py:BenchRecorder)")
        if "counters" in payload and "series" in payload:
            return "metrics", payload
    raise ValueError(
        f"{path}: not a trace, BENCH record, metrics dump or ledger")


def _bench_files(path: Path) -> Dict[str, Path]:
    """BENCH record files by family name (one file, or all in a dir)."""
    if path.is_dir():
        return {p.name: p for p in sorted(path.glob("BENCH_*.json"))}
    return {path.name: path}


# ----------------------------------------------------------------------
# The perf gate (canonical implementation; check_perf.py delegates here).
# ----------------------------------------------------------------------
def simulated_diffs(fresh: Dict, base: Dict) -> List[str]:
    """Human-readable differences between two BENCH simulated series.

    Simulated seconds are machine-independent and must be bit-for-bit
    reproducible; any drift means the modelled algorithm changed.
    """
    out = []
    for side, record in (("fresh", fresh), ("baseline", base)):
        bad = [e for e in record.get("simulated", [])
               if not isinstance(e, dict) or "label" not in e
               or "simulated_seconds" not in e]
        if bad:
            out.append(f"{side} record has malformed simulated entries "
                       f"(need 'label' + 'simulated_seconds'): "
                       f"{bad[:3]!r}")
    if out:
        return out
    sim_fresh = {e["label"]: e for e in fresh.get("simulated", [])}
    sim_base = {e["label"]: e for e in base.get("simulated", [])}
    if set(sim_fresh) != set(sim_base):
        only_f = sorted(set(sim_fresh) - set(sim_base))
        only_b = sorted(set(sim_base) - set(sim_fresh))
        out.append(f"series mismatch: only-fresh {only_f[:5]}, "
                   f"only-baseline {only_b[:5]}")
        return out
    drifted = [label for label in sim_base
               if sim_fresh[label]["simulated_seconds"]
               != sim_base[label]["simulated_seconds"]]
    if drifted:
        out.append("simulated seconds drifted (machine-independent, must "
                   f"be bit-for-bit): {drifted[:10]}")
    return out


def compare_bench(fresh: Dict, base: Dict, max_ratio: float = 2.0) -> Dict:
    """Gate one fresh BENCH record against its baseline.

    Returns a row for the regression table: wall seconds both sides, their
    ratio, the simulated-series verdict and the list of failures (empty =
    the family passes the gate).
    """
    failures: List[str] = []
    missing = [side for side, rec in (("fresh", fresh), ("baseline", base))
               if not isinstance(rec.get("wall_seconds"), (int, float))]
    if missing:
        failures.append(
            f"record lacks a numeric 'wall_seconds' on the "
            f"{' and '.join(missing)} side; the wall-clock gate cannot "
            f"run (re-record with benchmarks/_common.py:BenchRecorder)")
        wall_fresh = fresh.get("wall_seconds")
        wall_base = base.get("wall_seconds")
        ratio = None
    else:
        wall_fresh = float(fresh["wall_seconds"])
        wall_base = float(base["wall_seconds"])
        ratio = (wall_fresh / wall_base) if wall_base else float("inf")
        if ratio > max_ratio:
            failures.append(f"wall-clock regression: {wall_fresh:.2f}s > "
                            f"{max_ratio} * {wall_base:.2f}s")
    sim_problems = simulated_diffs(fresh, base)
    failures += sim_problems
    return {
        "name": fresh.get("name", "?"),
        "wall_fresh": wall_fresh,
        "wall_base": wall_base,
        "ratio": ratio,
        "max_ratio": max_ratio,
        "n_simulated": len(fresh.get("simulated", [])),
        "simulated_ok": not sim_problems,
        "failures": failures,
    }


def perf_check(fresh, baseline, max_ratio: float = 2.0) -> List[Dict]:
    """Gate fresh BENCH records against baselines, family by family.

    ``fresh``/``baseline`` are files or directories; directories are
    matched by ``BENCH_*.json`` filename so the gate covers *every*
    benchmark family present on both sides, and families present on only
    one side are reported as failures (a vanished baseline must not
    silently shrink the gate's coverage).
    """
    fresh_files = _bench_files(Path(fresh))
    base_files = _bench_files(Path(baseline))
    if len(fresh_files) == 1 and len(base_files) == 1:
        # Single-file mode compares the two records regardless of name
        # (the check_perf.py CLI contract).
        (fname, fpath), (_, bpath) = (next(iter(fresh_files.items())),
                                      next(iter(base_files.items())))
        fresh_rec = json.loads(fpath.read_text())
        base_rec = json.loads(bpath.read_text())
        return [compare_bench(fresh_rec, base_rec, max_ratio)]
    results: List[Dict] = []
    for name in sorted(set(fresh_files) | set(base_files)):
        if name not in fresh_files or name not in base_files:
            side = "baseline" if name not in base_files else "fresh run"
            results.append({
                "name": name, "wall_fresh": None, "wall_base": None,
                "ratio": None, "max_ratio": max_ratio, "n_simulated": 0,
                "simulated_ok": False,
                "failures": [f"{name}: missing {side} record"],
            })
            continue
        fresh_rec = json.loads(fresh_files[name].read_text())
        base_rec = json.loads(base_files[name].read_text())
        results.append(compare_bench(fresh_rec, base_rec, max_ratio))
    return results


def perf_failures(results: Sequence[Dict]) -> List[str]:
    """Flatten gate results into failure messages (empty = all pass)."""
    out: List[str] = []
    for row in results:
        out.extend(f"{row['name']}: {msg}" for msg in row["failures"])
    return out


# ----------------------------------------------------------------------
# Ledger diffing.
# ----------------------------------------------------------------------
def ledger_diff(rows: List[Dict], max_ratio: float = 2.0) -> List[Dict]:
    """Compare each run name's latest ledger row against its previous one.

    Returns regression-table rows shaped like :func:`compare_bench`'s;
    names seen only once produce a row with no baseline (not a failure --
    a first run has nothing to regress against).
    """
    history: Dict[str, List[Dict]] = {}
    for row in rows:
        name = row.get("name")
        if isinstance(name, str) and name:
            history.setdefault(name, []).append(row)
    out: List[Dict] = []
    for name in sorted(history):
        runs = history[name]
        latest = runs[-1]
        if len(runs) < 2:
            out.append({"name": name,
                        "wall_fresh": latest.get("wall_seconds"),
                        "wall_base": None, "ratio": None,
                        "max_ratio": max_ratio,
                        "n_simulated": len(latest.get("simulated", [])),
                        "simulated_ok": True, "failures": []})
            continue
        out.append(compare_bench(latest, runs[-2], max_ratio))
        out[-1]["name"] = name
    return out


def validate_rows(rows: List[Dict]) -> List[str]:
    """Schema-validate every ledger row; returns all problems found."""
    from ..obs.validate import validate_ledger_record

    problems: List[str] = []
    for i, row in enumerate(rows):
        problems.extend(validate_ledger_record(row, f"row {i}"))
    return problems


# ----------------------------------------------------------------------
# ASCII rendering.
# ----------------------------------------------------------------------
def _fmt_s(value: Optional[float]) -> str:
    """Seconds with engineering-friendly precision ('-' when absent)."""
    if value is None:
        return "-"
    return f"{value:.6g}"


def _ascii_table(headers: Sequence[str], rows: Sequence[Sequence[str]]
                 ) -> str:
    """Right-aligned ASCII table with a dashed header rule."""
    table = [list(headers)] + [list(r) for r in rows]
    widths = [max(len(r[c]) for r in table) for c in range(len(headers))]
    lines = ["  ".join(cell.rjust(widths[c])
                       for c, cell in enumerate(r)) for r in table]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def critpath_text(analysis: "critpath.CritPathAnalysis") -> str:
    """ASCII critical-path report for one analyzed trace."""
    lines = [
        f"critical path: {analysis.length:.6g} simulated seconds "
        f"(anchor PE {analysis.anchor_rank}, p={analysis.n_procs}, "
        f"{len(analysis.segments)} segments)",
        "",
        "breakdown by kind:",
    ]
    for kind in ("compute", "collective", "startup_alpha_est"):
        val = analysis.by_kind.get(kind, 0.0)
        share = 100.0 * val / analysis.length if analysis.length else 0.0
        note = " (estimate, within collective)" \
            if kind == "startup_alpha_est" else ""
        lines.append(f"  {kind:<18} {val:>12.6g} s  {share:5.1f}%{note}")
    if analysis.by_op:
        lines += ["", "collective path seconds by operation:"]
        for name, val in sorted(analysis.by_op.items(),
                                key=lambda kv: -kv[1]):
            lines.append(f"  {name:<28} {val:>12.6g} s")
    if analysis.phase_times:
        lines += ["", "exclusive phase attribution (max over PEs):"]
        for name, val in sorted(analysis.phase_times.items(),
                                key=lambda kv: -kv[1]):
            lines.append(f"  {name:<22} {val:>12.6g} s")
    if analysis.rounds:
        lines += ["", "per-round load imbalance:"]
        rows = [[str(r.round), _fmt_s(r.max_s), _fmt_s(r.mean_s),
                 _fmt_s(r.p99_s), str(r.straggler),
                 _fmt_s(r.attribution.get("compute")),
                 _fmt_s(r.attribution.get("comm")),
                 _fmt_s(r.attribution.get("wait"))]
                for r in analysis.rounds]
        lines.append(_ascii_table(
            ("round", "max [s]", "mean [s]", "p99 [s]", "straggler",
             "s.compute", "s.comm", "s.wait"), rows))
    if analysis.wave:
        lines += ["", "wave-pipelining estimate (overlappable slack, "
                      "optimistic):"]
        rows = [[str(w.round), _fmt_s(w.slack_mean_s), _fmt_s(w.slack_max_s),
                 _fmt_s(w.prologue_s), _fmt_s(w.benefit_s)]
                for w in analysis.wave]
        lines.append(_ascii_table(
            ("round", "slack mean", "slack max", "prologue", "benefit"),
            rows))
        share = (100.0 * analysis.wave_benefit_s / analysis.length
                 if analysis.length else 0.0)
        lines.append(f"total estimated benefit: "
                     f"{analysis.wave_benefit_s:.6g} s "
                     f"({share:.1f}% of the path)")
    slack = analysis.per_pe_slack
    if slack and analysis.n_procs > 1:
        lines += ["", f"per-PE tail slack: max {max(slack):.6g} s, "
                      f"mean {sum(slack) / len(slack):.6g} s"]
    return "\n".join(lines)


def serving_text(payload: Dict) -> str:
    """ASCII table over a BENCH record's ``serving`` section (if any).

    Latency/QPS columns are host-dependent and *report-only*: the perf
    gate pins only ``wall_seconds`` (2x) and the simulated series
    (bit-identical), never p50/p99 -- see docs/serving.md.
    """
    entries = payload.get("serving")
    if not isinstance(entries, list) or not entries:
        return ""
    rows = []
    for e in entries:
        epochs = e.get("epochs") or {}
        rows.append([
            str(e.get("label", "-")),
            f"{e.get('churn', 0.0):.2f}",
            str(e.get("requests", "-")),
            f"{e.get('qps', 0.0):.0f}",
            f"{e.get('p50_latency_ms', 0.0):.2f}",
            f"{e.get('p99_latency_ms', 0.0):.2f}",
            " ".join(f"{k}:{v}" for k, v in sorted(epochs.items()))
            or "-",
        ])
    table = _ascii_table(
        ("serving leg", "churn", "requests", "qps", "p50 [ms]",
         "p99 [ms]", "epochs by strategy"), rows)
    return ("serving throughput/latency (report-only; not gated):\n"
            + table)


def regression_text(results: Sequence[Dict]) -> str:
    """ASCII regression table over perf-gate / ledger-diff rows."""
    rows = []
    for r in results:
        ratio = "-" if r["ratio"] is None else f"{r['ratio']:.2f}"
        verdict = "FAIL" if r["failures"] else \
            ("n/a" if r["wall_base"] is None else "ok")
        rows.append([r["name"], _fmt_s(r["wall_fresh"]),
                     _fmt_s(r["wall_base"]), ratio,
                     f"{r['max_ratio']:.1f}",
                     "yes" if r["simulated_ok"] else "NO", verdict])
    table = _ascii_table(
        ("family", "wall fresh", "wall base", "ratio", "limit",
         "sim identical", "verdict"), rows)
    failures = perf_failures(results)
    if failures:
        table += "\n" + "\n".join(f"FAIL: {msg}" for msg in failures)
    return table


def ledger_text(rows: List[Dict], max_ratio: float = 2.0) -> str:
    """ASCII run-history report over ledger rows, plus the latest diff."""
    display = []
    for row in rows[-20:]:
        sim = row.get("simulated") or []
        display.append([
            str(row.get("timestamp", "-")), str(row.get("kind", "-")),
            str(row.get("name", "-")), str(row.get("engine", "-")),
            str(row.get("n_procs", "-")), _fmt_s(row.get("wall_seconds")),
            str(len(sim)), str(row.get("rounds", "-"))])
    out = [f"run ledger: {len(rows)} rows (showing last {len(display)})",
           _ascii_table(("timestamp", "kind", "name", "engine", "p",
                         "wall [s]", "series", "rounds"), display)]
    diffs = ledger_diff(rows, max_ratio)
    if diffs:
        out += ["", "latest vs previous run per name:",
                regression_text(diffs)]
    problems = validate_rows(rows)
    if problems:
        out += ["", "schema problems:"] + [f"  {p}" for p in problems]
    return "\n".join(out)


# ----------------------------------------------------------------------
# Self-contained HTML rendering.
# ----------------------------------------------------------------------
_CSS = """
.viz-root { color-scheme: light;
  --surface-1: #fcfcfb; --surface-2: #f0efec;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --series-1: %(c1)s; --series-2: %(c2)s;
  --series-3: %(c3)s; --series-4: %(c4)s;
  background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.45 system-ui, sans-serif; padding: 24px;
  max-width: 1100px; margin: 0 auto; }
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --surface-2: #383835;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --series-1: %(d1)s; --series-2: %(d2)s;
    --series-3: %(d3)s; --series-4: %(d4)s; } }
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 15px; margin: 28px 0 8px; }
.viz-root .sub { color: var(--text-secondary); margin: 0 0 16px; }
.viz-root .tiles { display: flex; gap: 12px; flex-wrap: wrap; }
.viz-root .tile { background: var(--surface-2); border-radius: 8px;
  padding: 10px 16px; min-width: 130px; }
.viz-root .tile .v { font-size: 22px; font-weight: 600; }
.viz-root .tile .k { color: var(--text-secondary); font-size: 12px; }
.viz-root .barrow { display: grid;
  grid-template-columns: 180px 1fr 90px; gap: 8px;
  align-items: center; margin: 2px 0; }
.viz-root .barrow .lbl { text-align: right;
  color: var(--text-secondary); overflow: hidden;
  text-overflow: ellipsis; white-space: nowrap; }
.viz-root .barrow .track { height: 14px; }
.viz-root .barrow .fill { height: 14px;
  border-radius: 0 4px 4px 0; min-width: 2px; }
.viz-root .barrow .val { font-variant-numeric: tabular-nums; }
.viz-root table { border-collapse: collapse; margin: 6px 0; }
.viz-root th, .viz-root td { padding: 3px 10px; text-align: right;
  font-variant-numeric: tabular-nums; }
.viz-root th { color: var(--text-secondary); font-weight: 500;
  border-bottom: 1px solid var(--surface-2); }
.viz-root td.l, .viz-root th.l { text-align: left; }
.viz-root .hm { display: grid; gap: 2px; margin: 6px 0; }
.viz-root .hm div { min-width: 10px; height: 16px; border-radius: 2px; }
.viz-root .hm .rl { background: none; color: var(--text-secondary);
  font-size: 11px; text-align: right; padding-right: 6px;
  white-space: nowrap; }
.viz-root .legend { display: flex; gap: 16px; flex-wrap: wrap;
  color: var(--text-secondary); font-size: 12px; margin: 6px 0; }
.viz-root .legend span::before { content: ""; display: inline-block;
  width: 10px; height: 10px; border-radius: 2px; margin-right: 5px;
  background: var(--sw); }
.viz-root .fail { color: #b3261e; font-weight: 600; }
.viz-root .ok { color: var(--text-secondary); }
""" % {"c1": PALETTE_LIGHT[0], "c2": PALETTE_LIGHT[1],
       "c3": PALETTE_LIGHT[2], "c4": PALETTE_LIGHT[3],
       "d1": PALETTE_DARK[0], "d2": PALETTE_DARK[1],
       "d3": PALETTE_DARK[2], "d4": PALETTE_DARK[3]}


def _esc(text) -> str:
    """HTML-escape one cell."""
    return _html.escape(str(text))


def _ramp_color(fraction: float) -> str:
    """Sequential ramp hex for a magnitude fraction in [0, 1]."""
    fraction = min(max(fraction, 0.0), 1.0)
    return SEQ_RAMP[round(fraction * (len(SEQ_RAMP) - 1))]


def _html_bars(items: Sequence[Tuple[str, float, str]], unit: str = "s"
               ) -> str:
    """Horizontal bar rows with direct value labels (one row per item).

    ``items`` are ``(label, value, css-color)``; bars share one linear
    scale anchored at zero.
    """
    top = max((v for _, v, _ in items), default=0.0) or 1.0
    rows = []
    for label, value, color in items:
        pct = 100.0 * value / top
        rows.append(
            f'<div class="barrow" title="{_esc(label)}: {value:.6g} {unit}">'
            f'<span class="lbl">{_esc(label)}</span>'
            f'<span class="track"><span class="fill" style="display:block;'
            f'width:{pct:.2f}%;background:{color}"></span></span>'
            f'<span class="val">{value:.6g}&thinsp;{unit}</span></div>')
    return "\n".join(rows)


def _html_heatmap(row_labels: Sequence[str], matrix: Sequence[Sequence[float]]
                  ) -> str:
    """Row-labelled heatmap grid on the sequential ramp (cols = PEs)."""
    if not matrix:
        return ""
    n_cols = max(len(row) for row in matrix)
    top = max((v for row in matrix for v in row), default=0.0) or 1.0
    cells = [f'<div class="hm" style="grid-template-columns:'
             f'minmax(120px,auto) repeat({n_cols}, 1fr)">']
    for label, row in zip(row_labels, matrix):
        cells.append(f'<div class="rl">{_esc(label)}</div>')
        for pe, value in enumerate(row):
            cells.append(
                f'<div style="background:{_ramp_color(value / top)}" '
                f'title="{_esc(label)} / PE {pe}: {value:.6g} s"></div>')
    cells.append("</div>")
    legend = (f'<p class="legend"><span style="--sw:{SEQ_RAMP[0]}">0</span>'
              f'<span style="--sw:{SEQ_RAMP[-1]}">{top:.6g} s (max)</span>'
              f'</p>')
    return "\n".join(cells) + legend


def _html_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                left_cols: int = 1) -> str:
    """Plain HTML table; the first ``left_cols`` columns left-align."""
    def cls(i: int) -> str:
        return ' class="l"' if i < left_cols else ""

    head = "".join(f"<th{cls(i)}>{_esc(h)}</th>"
                   for i, h in enumerate(headers))
    body = "".join(
        "<tr>" + "".join(f"<td{cls(i)}>{cell}</td>"
                         for i, cell in enumerate(row)) + "</tr>"
        for row in rows)
    return f"<table><thead><tr>{head}</tr></thead>" \
           f"<tbody>{body}</tbody></table>"


def _page(title: str, body: str) -> str:
    """Wrap rendered sections into one self-contained HTML document."""
    return (f"<!doctype html><html><head><meta charset='utf-8'>"
            f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
            f"<body><div class='viz-root'>{body}</div></body></html>")


def critpath_html(analysis: "critpath.CritPathAnalysis",
                  per_pe_phases: Optional[Dict[str, Sequence[float]]] = None,
                  title: str = "run report") -> str:
    """Self-contained HTML report for one analyzed trace."""
    kinds = [("compute", analysis.by_kind.get("compute", 0.0),
              "var(--series-1)"),
             ("collective (comm)", analysis.by_kind.get("collective", 0.0),
              "var(--series-2)"),
             ("startup-α (est)",
              analysis.by_kind.get("startup_alpha_est", 0.0),
              "var(--series-4)")]
    body = [
        f"<h1>{_esc(title)}</h1>",
        f"<p class='sub'>critical path anchored on PE "
        f"{analysis.anchor_rank}; analysis is offline and never alters "
        f"simulated numbers</p>",
        "<div class='tiles'>",
        f"<div class='tile'><div class='v'>{analysis.length:.6g} s</div>"
        f"<div class='k'>simulated critical path (= makespan)</div></div>",
        f"<div class='tile'><div class='v'>{analysis.n_procs}</div>"
        f"<div class='k'>PEs</div></div>",
        f"<div class='tile'><div class='v'>{len(analysis.segments)}</div>"
        f"<div class='k'>path segments</div></div>",
        f"<div class='tile'><div class='v'>"
        f"{analysis.wave_benefit_s:.3g} s</div>"
        f"<div class='k'>est. wave-pipelining benefit</div></div>",
        "</div>",
        "<h2>Critical-path breakdown</h2>",
        _html_bars(kinds),
    ]
    if analysis.by_op:
        ops = sorted(analysis.by_op.items(), key=lambda kv: -kv[1])[:10]
        body.append("<h2>Collective path seconds by operation</h2>")
        body.append(_html_bars([(name, val, "var(--series-2)")
                                for name, val in ops]))
    if analysis.phase_times:
        phases = sorted(analysis.phase_times.items(), key=lambda kv: -kv[1])
        body.append("<h2>Exclusive phase attribution (max over PEs)</h2>")
        body.append(_html_bars([(name, val, "var(--series-1)")
                                for name, val in phases]))
    if per_pe_phases:
        labels = sorted(per_pe_phases,
                        key=lambda k: -max(per_pe_phases[k], default=0.0))
        body.append("<h2>Phase &times; PE heatmap (exclusive seconds)</h2>")
        body.append(_html_heatmap(
            labels, [list(per_pe_phases[k]) for k in labels]))
    if analysis.n_procs > 1 and analysis.per_pe_slack:
        body.append("<h2>Per-PE tail slack</h2>")
        body.append(_html_heatmap(["slack [s]"], [analysis.per_pe_slack]))
    if analysis.rounds:
        body.append("<h2>Per-round load imbalance</h2>")
        body.append(_html_table(
            ("round", "max [s]", "mean [s]", "p99 [s]", "straggler",
             "compute", "comm", "wait"),
            [(str(r.round), f"{r.max_s:.6g}", f"{r.mean_s:.6g}",
              f"{r.p99_s:.6g}", str(r.straggler),
              f"{r.attribution.get('compute', 0.0):.6g}",
              f"{r.attribution.get('comm', 0.0):.6g}",
              f"{r.attribution.get('wait', 0.0):.6g}")
             for r in analysis.rounds]))
    if analysis.wave:
        body.append("<h2>Wave-pipelining estimate</h2>")
        body.append(_html_table(
            ("round", "slack mean [s]", "slack max [s]", "prologue [s]",
             "benefit [s]"),
            [(str(w.round), f"{w.slack_mean_s:.6g}",
              f"{w.slack_max_s:.6g}", f"{w.prologue_s:.6g}",
              f"{w.benefit_s:.6g}") for w in analysis.wave]))
    return _page(title, "\n".join(body))


def regression_html(results: Sequence[Dict],
                    title: str = "perf regression report") -> str:
    """Self-contained HTML regression table over perf-gate rows."""
    rows = []
    for r in results:
        verdict = ('<span class="fail">FAIL</span>' if r["failures"]
                   else '<span class="ok">ok</span>')
        ratio = "-" if r["ratio"] is None else f"{r['ratio']:.2f}"
        rows.append((_esc(r["name"]),
                     _fmt_s(r["wall_fresh"]), _fmt_s(r["wall_base"]),
                     ratio, f"{r['max_ratio']:.1f}",
                     "yes" if r["simulated_ok"] else
                     '<span class="fail">NO</span>', verdict))
    failures = perf_failures(results)
    body = [
        f"<h1>{_esc(title)}</h1>",
        f"<p class='sub'>{len(results)} families; gate: wall ratio &le; "
        f"limit and simulated series bit-identical</p>",
        _html_table(("family", "wall fresh [s]", "wall base [s]", "ratio",
                     "limit", "sim identical", "verdict"), rows),
    ]
    if failures:
        body.append("<h2>Failures</h2>")
        body.append("".join(f"<p class='fail'>{_esc(m)}</p>"
                            for m in failures))
    return _page(title, "\n".join(body))


# ----------------------------------------------------------------------
# Top-level report assembly (what the CLI calls).
# ----------------------------------------------------------------------
def report_for_target(target, baseline=None, max_ratio: float = 2.0
                      ) -> Tuple[str, str, List[str]]:
    """Build the report for one target path.

    Returns ``(text, html, failures)``: the ASCII report, the
    self-contained HTML document, and the ``--check`` failure list (empty
    when the target passes every applicable gate).  The target's
    ``schema_version`` is checked on load (unknown majors are failures).
    """
    kind, payload = classify_artifact(target)
    name = Path(target).name
    if kind == "trace":
        other = payload.get("otherData") or {} \
            if isinstance(payload, dict) else {}
        failures = list(check_schema_version(
            other.get("schema_version"), f"{name}: otherData"))
        analysis = critpath.analyze(payload)
        events, n_procs = critpath._normalize(payload, None)
        _, per_pe = critpath.phase_breakdown(events, n_procs)
        text = f"== {name} ==\n" + critpath_text(analysis)
        html_doc = critpath_html(
            analysis, {k: v.tolist() for k, v in per_pe.items()},
            title=name)
        return text, html_doc, failures
    if kind == "ledger":
        failures = validate_rows(payload)
        diffs = ledger_diff(payload, max_ratio)
        failures += perf_failures(diffs)
        text = ledger_text(payload, max_ratio)
        html_doc = regression_html(diffs, title=f"ledger diff: {name}")
        return text, html_doc, failures
    if kind == "bench":
        failures = list(check_schema_version(
            payload.get("schema_version"), f"{name}: schema_version"))
        if baseline is None:
            sim = payload.get("simulated", [])
            wall = payload.get("wall_seconds")
            wall_txt = f"{wall:.2f}s" if isinstance(wall, (int, float)) \
                else "missing"
            text = (f"== {name} ==\nwall {wall_txt}, {len(sim)} simulated "
                    f"entries (no --baseline: nothing to gate against)")
            serving = serving_text(payload)
            if serving:
                text += "\n\n" + serving
            html_doc = regression_html([], title=name)
            return text, html_doc, failures
        results = perf_check(target, baseline, max_ratio)
        failures += perf_failures(results)
        text = regression_text(results)
        serving = serving_text(payload)
        if serving:
            text += "\n\n" + serving
        return text, regression_html(results, title=name), failures
    raise ValueError(f"{target}: metrics dumps have no report view; point "
                     f"repro report at the matching .trace.json instead")


def report_for_directory(target, baseline=None, max_ratio: float = 2.0
                         ) -> Tuple[str, str, List[str]]:
    """Report over a directory of BENCH records (``--baseline`` required).

    Without a baseline the directory's ledger (if any) is reported
    instead, so ``repro report traces-dir/`` does the obvious thing.
    """
    target = Path(target)
    if baseline is not None:
        results = perf_check(target, baseline, max_ratio)
        failures = perf_failures(results)
        return (regression_text(results),
                regression_html(results, title=str(target)), failures)
    ledger = target / "ledger.jsonl"
    if ledger.exists():
        return report_for_target(ledger, None, max_ratio)
    raise ValueError(
        f"{target}: directory has no ledger.jsonl; pass --baseline DIR to "
        f"run the BENCH perf gate against it")
