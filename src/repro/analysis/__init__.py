"""Experiment harness: sweeps, result records, tables, reports.

Besides the sweep runner and formatting helpers, this package hosts the
reporting/regression layer (:mod:`repro.analysis.report`) behind the
``repro report`` subcommand and ``benchmarks/check_perf.py``.
"""

from .runner import (
    ExperimentResult,
    default_configs,
    env_max_cores,
    env_scale,
    run_algorithm,
    strong_scaling,
    weak_scaling,
)
from .plots import ascii_plot, plot_results
from .tables import csv_lines, series_table, speedup_summary
from .report import (
    compare_bench,
    ledger_diff,
    perf_check,
    perf_failures,
    report_for_directory,
    report_for_target,
    simulated_diffs,
)

__all__ = [
    "ExperimentResult",
    "default_configs",
    "env_max_cores",
    "env_scale",
    "run_algorithm",
    "strong_scaling",
    "weak_scaling",
    "ascii_plot",
    "plot_results",
    "csv_lines",
    "series_table",
    "speedup_summary",
    "compare_bench",
    "ledger_diff",
    "perf_check",
    "perf_failures",
    "report_for_directory",
    "report_for_target",
    "simulated_diffs",
]
