"""Experiment harness: sweeps, result records, table/CSV formatting."""

from .runner import (
    ExperimentResult,
    default_configs,
    env_max_cores,
    env_scale,
    run_algorithm,
    strong_scaling,
    weak_scaling,
)
from .plots import ascii_plot, plot_results
from .tables import csv_lines, series_table, speedup_summary

__all__ = [
    "ExperimentResult",
    "default_configs",
    "env_max_cores",
    "env_scale",
    "run_algorithm",
    "strong_scaling",
    "weak_scaling",
    "ascii_plot",
    "plot_results",
    "csv_lines",
    "series_table",
    "speedup_summary",
]
