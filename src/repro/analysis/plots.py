"""ASCII charts for benchmark reports.

The paper presents its evaluation as log-log line plots (throughput or time
vs core count).  The benches run headless, so this module renders the same
series as text: one fixed-height canvas, one glyph per algorithm, log-scaled
axes -- enough to *see* crossovers and divergence in
``benchmarks/results/*.txt`` without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Plot glyphs assigned to series in order.
GLYPHS = "ox+*#@%&"


def _log_positions(values: Sequence[float], lo: float, hi: float,
                   cells: int) -> List[int]:
    out = []
    if hi <= lo:
        return [0 for _ in values]
    for v in values:
        frac = (math.log10(v) - math.log10(lo)) / (
            math.log10(hi) - math.log10(lo))
        out.append(int(round(frac * (cells - 1))))
    return out


def ascii_plot(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "cores",
    y_label: str = "value",
) -> str:
    """Render (x, y) series as a log-log ASCII scatter/line chart.

    ``series`` maps a name to its (x, y) points; non-finite y values are
    skipped (e.g. OOM'd configurations).  Returns a multi-line string with a
    legend.
    """
    points = [(x, y) for pts in series.values() for x, y in pts
              if np.isfinite(y) and y > 0 and x > 0]
    if not points:
        return "(no finite data to plot)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    canvas = [[" "] * width for _ in range(height)]

    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        glyph = GLYPHS[idx % len(GLYPHS)]
        legend.append(f"{glyph} = {name}")
        pts = [(x, y) for x, y in pts if np.isfinite(y) and y > 0]
        if not pts:
            continue
        cols = _log_positions([p[0] for p in pts], x_lo, x_hi, width)
        rows = _log_positions([p[1] for p in pts], y_lo, y_hi, height)
        for c, r in zip(cols, rows):
            rr = height - 1 - r
            cell = canvas[rr][c]
            canvas[rr][c] = glyph if cell == " " else "*"

    lines = []
    for r, row in enumerate(canvas):
        label = ""
        if r == 0:
            label = _fmt(y_hi)
        elif r == height - 1:
            label = _fmt(y_lo)
        lines.append(f"{label:>9s} |" + "".join(row))
    lines.append(" " * 9 + " +" + "-" * width)
    lines.append(f"{'':9s}  {_fmt(x_lo)}{' ' * (width - 16)}{_fmt(x_hi):>8s}"
                 f"  ({x_label}, log-log, y={y_label})")
    lines.append(" " * 11 + "   ".join(legend))
    return "\n".join(lines)


def _fmt(v: float) -> str:
    if v >= 1e4 or v < 1e-2:
        return f"{v:.1e}"
    if v == int(v):
        return str(int(v))
    return f"{v:.2f}"


def plot_results(results, value: str = "throughput",
                 width: int = 64, height: int = 16) -> str:
    """ASCII chart of :class:`~repro.analysis.runner.ExperimentResult` rows.

    Series = algorithms, x = cores, y = the requested attribute.
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    for r in results:
        y = getattr(r, value)
        series.setdefault(r.algorithm, []).append((float(r.cores),
                                                   float(y)))
    for pts in series.values():
        pts.sort()
    return ascii_plot(series, width=width, height=height,
                      y_label=value)
