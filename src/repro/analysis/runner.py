"""Experiment harness: run algorithms over machine configurations.

Wraps one algorithm execution on one simulated machine configuration into an
:class:`ExperimentResult` record (including graceful handling of simulated
out-of-memory crashes, which the paper's competitors exhibit), and provides
the weak- and strong-scaling sweep drivers used by every benchmark in
``benchmarks/``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.config import BoruvkaConfig, FilterConfig
from ..core.mst import minimum_spanning_forest
from ..graphgen.base import GeneratedGraph
from ..simmpi.costmodel import CostModel
from ..simmpi.machine import Machine, SimulatedOutOfMemory

#: Monotone sequence number for trace artifacts within one process, so
#: sweep runs emit distinctly named files in ``REPRO_TRACE_DIR``.
_TRACE_SEQ = [0]

_LIBC = None

#: Trim the host heap only after runs at least this many directed edges
#: large (``REPRO_HEAP_TRIM_EDGES`` to override, 0 disables trimming).
#: Trimming is not free -- the pages madvised away must be faulted back in
#: by the next run -- so only the runs whose transients dominate peak RSS
#: are worth the cleanup; trimming after every small run costs seconds of
#: refaults over a long sweep for no peak reduction.
_TRIM_EDGES_MIN = int(os.environ.get("REPRO_HEAP_TRIM_EDGES",
                                     str(1 << 18)))


def _trim_host_heap(n_directed_edges: int) -> None:
    """Hand freed allocator arenas back to the OS (glibc only, best-effort).

    Sweeps run dozens of algorithm executions in one process; glibc keeps
    multi-MB freed blocks in its arenas (it raises the mmap threshold under
    churn), so resident memory creeps up run over run even though nothing
    is referenced.  A ``malloc_trim`` after the big runs keeps the
    between-run baseline flat, which is what the benchmark peak-RSS
    figures measure.
    """
    global _LIBC
    if _LIBC is False or _TRIM_EDGES_MIN <= 0 \
            or n_directed_edges < _TRIM_EDGES_MIN:
        return
    try:
        if _LIBC is None:
            import ctypes

            _LIBC = ctypes.CDLL("libc.so.6")
        _LIBC.malloc_trim(0)
    except Exception:
        _LIBC = False  # non-glibc platform: permanently disable


def _export_trace_artifacts(machine: Machine, graph: GeneratedGraph,
                            algorithm: str) -> None:
    """Write trace + metrics artifacts for one traced run, if requested.

    Artifacts land in ``REPRO_TRACE_DIR`` (created on demand) as
    ``{seq:03d}-{instance}-{algorithm}-p{cores}.trace.json`` plus the
    matching ``.metrics.json``.  A no-op when the machine is untraced or
    the variable is unset, so benchmark timing paths never pay for it.
    """
    out_dir = os.environ.get("REPRO_TRACE_DIR")
    if not out_dir or not machine.tracing:
        return
    from ..obs import write_chrome_trace, write_metrics

    os.makedirs(out_dir, exist_ok=True)
    seq = _TRACE_SEQ[0]
    _TRACE_SEQ[0] += 1
    safe = graph.name.replace("/", "_").replace(" ", "_")
    stem = os.path.join(out_dir,
                        f"{seq:03d}-{safe}-{algorithm}-p{machine.cores}")
    meta = {"instance": graph.name, "algorithm": algorithm,
            "procs": machine.n_procs, "threads": machine.threads}
    write_chrome_trace(machine.events, stem + ".trace.json", metadata=meta)
    write_metrics(machine.metrics, stem + ".metrics.json")


def env_scale(default: int = 1) -> int:
    """Workload multiplier from the ``REPRO_SCALE`` environment variable."""
    return int(os.environ.get("REPRO_SCALE", default))


def env_max_cores(default: int = 256) -> int:
    """Sweep ceiling from the ``REPRO_MAX_CORES`` environment variable."""
    return int(os.environ.get("REPRO_MAX_CORES", default))


@dataclass
class ExperimentResult:
    """One (instance, algorithm, machine) measurement."""

    instance: str
    algorithm: str
    cores: int
    n_procs: int
    threads: int
    n_vertices: int
    m_directed: int
    #: Simulated seconds ("crashed" runs hold NaN).
    elapsed: float
    status: str = "ok"  # ok | oom | error
    phase_times: Dict[str, float] = field(default_factory=dict)
    stats: Dict = field(default_factory=dict)
    total_weight: int = 0

    @property
    def throughput(self) -> float:
        """Edges per simulated second (the paper's Fig. 3 metric)."""
        if not np.isfinite(self.elapsed) or self.elapsed <= 0:
            return float("nan")
        return self.m_directed / self.elapsed


def run_algorithm(
    graph: GeneratedGraph,
    algorithm: str,
    n_procs: int,
    threads: int = 1,
    config: Optional[object] = None,
    memory_limit_bytes: Optional[float] = None,
    cost: Optional[CostModel] = None,
    verify: bool = False,
    seed: int = 0,
    trace_events: Optional[bool] = None,
    faults: Optional[object] = None,
) -> ExperimentResult:
    """Execute one algorithm on a fresh simulated machine.

    ``trace_events=None`` defers to ``REPRO_TRACE`` (the machine default);
    traced runs additionally export Chrome-trace/metrics artifacts when
    ``REPRO_TRACE_DIR`` names a directory.  ``faults`` is forwarded to the
    machine (a spec string, :class:`~repro.faults.FaultSchedule`, or None
    for the ``REPRO_FAULTS`` default; see docs/faults.md).
    """
    machine = Machine(n_procs, threads=threads, cost=cost,
                      memory_limit_bytes=memory_limit_bytes, seed=seed,
                      trace_events=trace_events, faults=faults)
    base = ExperimentResult(
        instance=graph.name,
        algorithm=algorithm,
        cores=machine.cores,
        n_procs=n_procs,
        threads=threads,
        n_vertices=graph.n_vertices,
        m_directed=graph.n_directed_edges,
        elapsed=float("nan"),
    )
    try:
        # Holding the partitioned input already counts against the limit
        # (the paper needs >= 4096 cores before wdc-14 even fits).
        dg = graph.distribute(machine)
        res = minimum_spanning_forest(dg, algorithm=algorithm, config=config)
    except SimulatedOutOfMemory:
        base.status = "oom"
        _export_trace_artifacts(machine, graph, algorithm)
        _trim_host_heap(graph.n_directed_edges)
        return base
    base.elapsed = res.elapsed
    base.phase_times = res.phase_times
    base.stats = res.stats
    base.total_weight = res.total_weight
    if machine.faults is not None:
        base.stats["fault_events"] = machine.faults.summary()
    _export_trace_artifacts(machine, graph, algorithm)
    if verify:
        from ..seq.verify import verify_msf

        verify_msf(res.msf_edges(), graph.edges, graph.n_vertices,
                   check_edges=False)
    _trim_host_heap(graph.n_directed_edges)
    return base


def default_configs(scale_hint: int) -> Dict[str, object]:
    """Simulation-scale algorithm configs (thresholds matched to input size)."""
    base_min = max(64, scale_hint // 8)
    b = BoruvkaConfig(base_case_min=base_min)
    return {
        "boruvka": b,
        "filter-boruvka": FilterConfig(boruvka=b),
        "awerbuch-shiloach": None,
        "mnd-mst": None,
    }


def weak_scaling(
    make_graph,
    algorithms: Sequence[str],
    cores_list: Sequence[int],
    per_core_vertices: int,
    per_core_edges: int,
    threads: int = 1,
    memory_limit_per_core: Optional[float] = None,
    competitor_core_cap: Optional[int] = None,
    seed: int = 0,
    verify: bool = False,
) -> List[ExperimentResult]:
    """Weak-scaling sweep: workload grows with the core count (Fig. 3 style).

    ``make_graph(n, m, seed)`` builds the instance for one configuration.
    ``competitor_core_cap`` mirrors the paper's methodology of running the
    (slow) competitors only up to a bounded core count.
    """
    out: List[ExperimentResult] = []
    for cores in cores_list:
        n_procs = max(1, cores // threads)
        n = per_core_vertices * cores
        m = per_core_edges * cores
        graph = make_graph(n, m, seed)
        cfgs = default_configs(per_core_vertices)
        for alg in algorithms:
            if (competitor_core_cap is not None
                    and alg in ("awerbuch-shiloach", "mnd-mst")
                    and cores > competitor_core_cap):
                continue
            limit = (memory_limit_per_core * threads
                     if memory_limit_per_core else None)
            out.append(run_algorithm(
                graph, alg, n_procs, threads=threads,
                config=cfgs.get(alg),
                memory_limit_bytes=limit, seed=seed, verify=verify,
            ))
    return out


def strong_scaling(
    graph: GeneratedGraph,
    algorithms: Sequence[str],
    cores_list: Sequence[int],
    threads: int = 1,
    memory_limit_per_core: Optional[float] = None,
    seed: int = 0,
    verify: bool = False,
) -> List[ExperimentResult]:
    """Strong-scaling sweep: fixed instance, growing machine (Fig. 5 style)."""
    out: List[ExperimentResult] = []
    cfgs = default_configs(max(64, graph.n_vertices // 64))
    for cores in cores_list:
        n_procs = max(1, cores // threads)
        for alg in algorithms:
            limit = (memory_limit_per_core * threads
                     if memory_limit_per_core else None)
            out.append(run_algorithm(
                graph, alg, n_procs, threads=threads, config=cfgs.get(alg),
                memory_limit_bytes=limit, seed=seed, verify=verify,
            ))
    return out
