"""Shared-memory transport for per-PE task payloads.

Packs a task payload (a dict of numpy arrays plus small scalars) into one
``multiprocessing.shared_memory`` segment so worker processes attach to the
bytes instead of receiving a pickled copy through a pipe.  The driver owns
the segment: it creates, fills and -- after the worker's result arrives --
closes and unlinks it, so segment lifetime never depends on worker health
(a crashed worker cannot leak the mapping).

Layout: arrays are stored back to back at 64-byte-aligned offsets; the
side-channel metadata (name, dtype, shape, offset per array, plus the
non-array scalars) travels with the task submission and is tiny.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, List, Tuple

import numpy as np

#: Alignment of each array inside the segment (cache-line).
_ALIGN = 64


def _aligned(nbytes: int) -> int:
    """Round ``nbytes`` up to the segment alignment."""
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


def payload_nbytes(payload: dict) -> int:
    """Total array bytes a payload would occupy in shared memory."""
    return sum(int(v.nbytes) for v in payload.values()
               if isinstance(v, np.ndarray))


def pack_payload(payload: dict
                 ) -> Tuple[shared_memory.SharedMemory, List[tuple], dict]:
    """Copy a payload's arrays into a fresh shared-memory segment.

    Returns ``(segment, meta, scalars)`` where ``meta`` is a list of
    ``(key, dtype_str, shape, offset)`` records describing the arrays and
    ``scalars`` holds the payload's non-array values verbatim.  The caller
    owns the segment and must ``close()`` + ``unlink()`` it.
    """
    arrays: Dict[str, np.ndarray] = {}
    scalars: dict = {}
    for key, value in payload.items():
        if isinstance(value, np.ndarray):
            arrays[key] = np.ascontiguousarray(value)
        else:
            scalars[key] = value
    total = sum(_aligned(a.nbytes) for a in arrays.values())
    seg = shared_memory.SharedMemory(create=True, size=max(total, 1))
    meta: List[tuple] = []
    offset = 0
    for key, arr in arrays.items():
        if arr.nbytes:
            dst = np.frombuffer(seg.buf, dtype=arr.dtype, count=arr.size,
                                offset=offset).reshape(arr.shape)
            dst[...] = arr
        meta.append((key, arr.dtype.str, arr.shape, offset))
        offset += _aligned(arr.nbytes)
    return seg, meta, scalars


def unpack_payload(buf, meta: List[tuple], scalars: dict) -> dict:
    """Rebuild a payload dict from a shared-memory buffer and its meta.

    Array entries are read-only views into ``buf`` -- zero-copy on the
    worker side.  Tasks must treat inputs as immutable (they already do:
    tasks are pure), and anything they *return* is fresh memory, so no
    result can alias the segment after it is unlinked.
    """
    payload = dict(scalars)
    for key, dtype_str, shape, offset in meta:
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape)) if shape else 1
        view = np.frombuffer(buf, dtype=dtype, count=count,
                             offset=offset).reshape(shape)
        view.flags.writeable = False
        payload[key] = view
    return payload
