"""Registry of per-PE engine tasks (the unit of engine fan-out).

A *task* is a named pure function of one PE's explicit inputs -- no machine
handle, no RNG, no cost charging -- that returns a dict of plain numpy
arrays / scalars.  Purity is what makes engine fan-out safe: a task may run
in the driving process (in-process / batched engines, and the multiprocess
engine below its offload threshold) or in a worker process attached to a
shared-memory copy of the payload, and the result is bit-for-bit the same.

Tasks are registered by name so worker processes can resolve them after a
``fork``/``spawn`` without pickling code objects; the heavy per-PE kernels
themselves live next to the algorithms they serve (``repro.core``) and are
imported lazily on first execution.
"""

from __future__ import annotations

from typing import Callable, Dict

_TASKS: Dict[str, Callable[..., dict]] = {}


def engine_task(name: str) -> Callable:
    """Decorator registering a per-PE task under ``name``."""

    def deco(fn: Callable[..., dict]) -> Callable[..., dict]:
        _TASKS[name] = fn
        return fn

    return deco


def task_names() -> list:
    """Registered task names (diagnostics / tests)."""
    return sorted(_TASKS)


def run_task(name: str, payload: dict) -> dict:
    """Execute the registered task ``name`` on one PE's payload dict."""
    try:
        fn = _TASKS[name]
    except KeyError:
        raise KeyError(
            f"unknown engine task {name!r}; registered: {task_names()}")
    return fn(**payload)


# ----------------------------------------------------------------------
# Built-in tasks.  Lazy imports keep this module import-light for worker
# bootstrap and avoid cycles (repro.core imports repro.engines).
# ----------------------------------------------------------------------
@engine_task("minedges")
def _minedges_task(u, v, w, eid, starts) -> dict:
    """MINEDGES on one PE: lightest incident edge per contiguous group."""
    from ..core.minedges import min_edges_one_pe

    to, weight, edge_id = min_edges_one_pe(u, v, w, eid, starts)
    return {"to": to, "weight": weight, "edge_id": edge_id}


@engine_task("sort_partition")
def _sort_partition_task(rows, n_key_cols) -> dict:
    """Local lexicographic row sort of one PE's partition."""
    from ..sorting.common import local_lexsort

    return {"rows": local_lexsort(rows, int(n_key_cols))}


@engine_task("resolve_labels")
def _resolve_labels_task(u, v, w, eid, vids, labels, ghosts,
                         glabels) -> dict:
    """RELABEL on one PE: rewrite endpoints to roots, drop self loops."""
    from ..core.labels import _relabel_one_pe

    ku, kv, kw, kid = _relabel_one_pe(u, v, w, eid, vids, labels, ghosts,
                                      glabels)
    return {"u": ku, "v": kv, "w": kw, "id": kid}


@engine_task("local_contract")
def _local_contract_task(u, v, w, eid, vids, shared_mask,
                         use_filter) -> dict:
    """One PE's local-preprocessing contraction (Section IV-A)."""
    import numpy as np

    from ..core.local_preprocessing import _contract_one_pe
    from ..dgraph.edges import Edges

    labels, ids, ws, rounds = _contract_one_pe(
        Edges(u, v, w, eid), vids, shared_mask, bool(use_filter))
    return {"labels": labels, "ids": ids, "ws": ws,
            "rounds": np.int64(rounds)}
