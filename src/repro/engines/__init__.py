"""Pluggable execution engines for the simulated machine.

``Machine(engine=...)`` / the ``REPRO_ENGINE`` environment variable select
*how* the simulator's per-PE work executes on the host -- in-process
reference loops, flat batched kernels, or a shared-memory multiprocess
pool -- without changing a single simulated bit: clocks, phase times, RNG
draws, traces and MSF weights are engine-invariant (docs/engines.md, and
tests/test_engines.py as the conformance harness).

Selection precedence:

1. an explicit ``Machine(engine=...)`` argument (name or instance);
2. ``REPRO_ENGINE`` (``inprocess`` / ``batched`` / ``multiprocess``);
3. the legacy ``REPRO_KERNELS`` knob (``loop`` maps to the in-process
   engine, ``batched`` -- the default -- to the batched engine).
"""

from __future__ import annotations

import os
from typing import Optional, Union

from .base import (
    BatchedEngine,
    EngineError,
    ExecutionEngine,
    InProcessEngine,
    WorkerFailure,
)
from .multiprocess import MultiprocessEngine
from .tasks import engine_task, run_task, task_names

#: Engine names accepted by ``REPRO_ENGINE`` and ``Machine(engine=...)``.
ENGINE_NAMES = ("inprocess", "batched", "multiprocess")

_ENGINE_CLASSES = {
    "inprocess": InProcessEngine,
    "batched": BatchedEngine,
    "multiprocess": MultiprocessEngine,
}


def engine_env_name() -> Optional[str]:
    """The validated ``REPRO_ENGINE`` value, or ``None`` when unset."""
    value = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if not value:
        return None
    if value not in ENGINE_NAMES:
        raise ValueError(
            f"REPRO_ENGINE must be one of {ENGINE_NAMES}, got {value!r}")
    return value


def default_engine_name() -> str:
    """Engine selected by the environment (docstring precedence rules)."""
    name = engine_env_name()
    if name is not None:
        return name
    from ..kernels.engine import kernel_engine

    return "inprocess" if kernel_engine() == "loop" else "batched"


def make_engine(spec: Union[None, str, ExecutionEngine] = None
                ) -> ExecutionEngine:
    """Resolve an engine spec (``None`` / name / instance) to an engine."""
    if isinstance(spec, ExecutionEngine):
        return spec
    if spec is None:
        name = default_engine_name()
    else:
        name = str(spec).strip().lower()
        if name not in ENGINE_NAMES:
            raise ValueError(
                f"engine must be one of {ENGINE_NAMES} (or an "
                f"ExecutionEngine instance), got {spec!r}")
    return _ENGINE_CLASSES[name]()


__all__ = [
    "ENGINE_NAMES",
    "BatchedEngine",
    "EngineError",
    "ExecutionEngine",
    "InProcessEngine",
    "MultiprocessEngine",
    "WorkerFailure",
    "default_engine_name",
    "engine_env_name",
    "engine_task",
    "make_engine",
    "run_task",
    "task_names",
]
