"""The execution-engine interface (:class:`ExecutionEngine`).

An execution engine is the *strategy* that turns the per-PE work of the
simulated machine into host computation.  It is strictly orthogonal to the
semantic subsystems of :class:`~repro.simmpi.machine.Machine` -- the cost
model, sanitizer, tracer and fault injector all observe the same simulated
run regardless of which engine executes it.  Three engines ship with the
package (see docs/engines.md):

``inprocess``
    The reference strategy: every hot path runs its per-PE numpy loop in
    the driving process (the original ``REPRO_KERNELS=loop`` behaviour).

``batched``
    All PEs' data packed flat and processed by the segmented kernels of
    :mod:`repro.kernels` in single numpy passes (the original
    ``REPRO_KERNELS=batched`` behaviour, and the default).

``multiprocess``
    Batched layout plus genuine host parallelism: per-PE independent tasks
    fan out over a pool of ``multiprocessing`` workers communicating
    through ``multiprocessing.shared_memory`` numpy buffers (see
    :mod:`repro.engines.multiprocess`).

Hard invariant
--------------
Engines change only the *wall-clock* of running the simulator.  Simulated
seconds, per-PE clocks, phase breakdowns, RNG draws, communication traces
and MSF weights are bit-for-bit identical across engines.  The rules that
make this hold:

* workers only ever execute **pure** per-PE functions of explicit inputs;
* all cost charging, RNG consumption and result reduction happen in the
  driving process, in fixed (ascending-rank) order;
* per-PE results are collected into rank order before any aggregation.

``tests/test_engines.py`` is the conformance harness that enforces the
invariant over the full (engine x algorithm x graph family) matrix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .tasks import run_task


class EngineError(RuntimeError):
    """Base class for execution-engine failures."""


class WorkerFailure(EngineError):
    """A worker failed (raised, crashed or hung) while executing PE work.

    Carries the failing PE's rank and the simulated round the machine was
    in, so multiprocess failures surface as one actionable error instead
    of a hang or an anonymous pool traceback.
    """

    def __init__(self, pe: int, round_no: int, task: str, detail: str):
        self.pe = int(pe)
        self.round_no = int(round_no)
        self.task = task
        round_part = (f"round {round_no}" if round_no >= 0
                      else "outside the round loop")
        super().__init__(
            f"engine worker failed on PE {pe} ({round_part}, "
            f"task {task!r}): {detail}")


class ExecutionEngine:
    """Base execution strategy: in-line, rank-ordered per-PE execution.

    Subclasses override the class attributes (and :meth:`pe_map` for real
    fan-out).  ``uses_batched_kernels`` selects between the per-PE
    reference loops and the flat segmented kernels at every dispatch site
    (see :func:`repro.kernels.engine.batched_for`); ``fanout`` marks
    engines whose :meth:`pe_map` may leave the driving process, which is
    what the fan-out-aware paths in :mod:`repro.core` key on.
    """

    #: Engine name as accepted by ``REPRO_ENGINE`` / ``Machine(engine=...)``.
    name: str = "abstract"
    #: Whether dispatch sites should use the batched segmented kernels.
    uses_batched_kernels: bool = True
    #: Whether :meth:`pe_map` may execute tasks outside the driver process.
    fanout: bool = False

    def __init__(self) -> None:
        self._machine = None
        self._round = -1
        # Host-side dispatch statistics for the run ledger.  Purely
        # diagnostic (never read by simulation code), so tracking them
        # cannot perturb simulated quantities.
        self._util: Dict[str, float] = {
            "pe_map_calls": 0, "tasks_inline": 0,
            "tasks_offloaded": 0, "offloaded_bytes": 0.0}

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def bind(self, machine) -> "ExecutionEngine":
        """Attach to the machine this engine executes for; returns self."""
        self._machine = machine
        return self

    @property
    def machine(self):
        """The bound machine (or ``None`` before :meth:`bind`)."""
        return self._machine

    def note_round(self, round_no: int) -> None:
        """Record the driver's current round for failure attribution.

        Purely diagnostic: never touches clocks, RNGs or cost accounting,
        so calling it cannot perturb the simulation.
        """
        self._round = int(round_no)

    def reset(self) -> None:
        """Drop engine state for a machine reset (pools respawn lazily)."""
        self._round = -1
        self._util = {"pe_map_calls": 0, "tasks_inline": 0,
                      "tasks_offloaded": 0, "offloaded_bytes": 0.0}

    def utilization(self) -> Dict[str, float]:
        """Host-side dispatch statistics for the run ledger.

        Counts of :meth:`pe_map` invocations and of per-PE tasks executed
        in-line vs shipped to workers (with the shipped payload bytes);
        fan-out engines extend the dict with pool facts.  Wall-clock-side
        observability only -- nothing simulated depends on these numbers.
        """
        out: Dict[str, float] = dict(self._util)
        out["engine"] = self.name
        return out

    def close(self) -> None:
        """Release engine resources (worker pools, shared memory)."""

    def __enter__(self) -> "ExecutionEngine":
        """Context-manager entry (engines close on exit)."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def pe_map(self, task: str, payloads: Sequence[Optional[dict]]
               ) -> List[Optional[dict]]:
        """Run registered ``task`` over per-PE payloads, results rank-ordered.

        ``payloads[i]`` is a dict of numpy arrays / scalars for PE ``i`` or
        ``None`` to skip that PE (its result is ``None``).  The base
        implementation executes in-line in ascending rank order -- the
        reference semantics every fan-out implementation must reproduce
        exactly.
        """
        self._util["pe_map_calls"] += 1
        out: List[Optional[dict]] = []
        for rank, payload in enumerate(payloads):
            if payload is None:
                out.append(None)
                continue
            self._util["tasks_inline"] += 1
            try:
                out.append(run_task(task, payload))
            except EngineError:
                raise
            except Exception as exc:  # surface rank context uniformly
                raise WorkerFailure(rank, self._round, task,
                                    f"{type(exc).__name__}: {exc}") from exc
        return out

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human description (CLI / docs)."""
        return f"{self.name} engine"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class InProcessEngine(ExecutionEngine):
    """Reference engine: per-PE numpy loops in the driving process."""

    name = "inprocess"
    uses_batched_kernels = False

    def describe(self) -> str:
        """One-line human description (CLI / docs)."""
        return "inprocess engine (per-PE reference loops, single process)"


class BatchedEngine(ExecutionEngine):
    """Batched engine: flat segmented kernels over all PEs at once."""

    name = "batched"
    uses_batched_kernels = True

    def describe(self) -> str:
        """One-line human description (CLI / docs)."""
        return "batched engine (segmented kernels, single process)"
