"""The multiprocess execution engine (real host parallelism).

Fans per-PE tasks out over a persistent pool of ``multiprocessing`` worker
processes.  Payloads travel through ``multiprocessing.shared_memory`` numpy
buffers (:mod:`repro.engines.shm`); results come back through the pool's
result pipe (they are fresh, typically much smaller arrays).  Everything
that defines the simulation -- cost charging, RNG streams, reductions --
stays in the driving process in ascending-rank order, which is what makes
the engine bit-identical to the in-process reference (docs/engines.md).

Failure semantics (the part a naive pool gets wrong):

* a task that *raises* in a worker comes back as a structured error and is
  re-raised as :class:`~repro.engines.base.WorkerFailure` carrying the
  failing PE's rank and the current round;
* a worker that *dies* (SIGKILL, segfault) breaks the pool, which
  surfaces as ``WorkerFailure`` too -- never a hang;
* every result wait is bounded by ``REPRO_MP_TIMEOUT`` seconds as a last
  line of defence against driver deadlock;
* after any failure the pool is torn down; the next use (or
  ``Machine.reset()``) respawns it with fresh workers.

Knobs (environment, overridable per instance):

``REPRO_MP_WORKERS``    pool size (default: host CPU count)
``REPRO_MP_START``      start method, ``fork``/``spawn``/``forkserver``
                        (default: ``fork`` where available)
``REPRO_MP_MIN_BYTES``  minimum total payload bytes before a call fans
                        out; below it tasks run in-line (default 65536)
``REPRO_MP_TIMEOUT``    per-result timeout in seconds (default 120)
"""

from __future__ import annotations

import concurrent.futures
import os
import traceback
import weakref
from multiprocessing import get_context, get_all_start_methods, shared_memory
from typing import List, Optional, Sequence

from .base import ExecutionEngine, WorkerFailure
from .shm import pack_payload, payload_nbytes, unpack_payload
from .tasks import run_task


def _env_int(name: str, default: int) -> int:
    """Integer environment knob with a default."""
    value = os.environ.get(name, "").strip()
    return int(value) if value else default


def _env_float(name: str, default: float) -> float:
    """Float environment knob with a default."""
    value = os.environ.get(name, "").strip()
    return float(value) if value else default


def _default_start_method() -> str:
    """``fork`` where the platform offers it (cheap), else ``spawn``."""
    preferred = os.environ.get("REPRO_MP_START", "").strip().lower()
    if preferred:
        return preferred
    return "fork" if "fork" in get_all_start_methods() else "spawn"


def _own_arrays(result):
    """Copy result arrays that do not own their data.

    A task may return an array aliasing its shared-memory input (e.g. an
    echoed payload field); the copy both detaches it from the segment --
    so the worker can unmap before the driver unlinks -- and keeps the
    result valid after the segment is gone.
    """
    import numpy as np

    if isinstance(result, dict):
        return {k: (v.copy()
                    if isinstance(v, np.ndarray) and not v.flags.owndata
                    else v)
                for k, v in result.items()}
    return result


def _worker_run(task: str, shm_name: Optional[str], meta, scalars: dict,
                rank: int):
    """Pool-side task execution: attach, compute, detach, report.

    Returns ``("ok", result)`` or ``("err", detail)`` -- exceptions never
    propagate raw through the pool, so the driver can attribute them to
    the PE rank and round with full context.
    """
    try:
        if shm_name is None:
            return ("ok", run_task(task, dict(scalars)))
        seg = shared_memory.SharedMemory(name=shm_name)
        payload = None
        try:
            payload = unpack_payload(seg.buf, meta, scalars)
            return ("ok", _own_arrays(run_task(task, payload)))
        finally:
            del payload  # release buffer views before closing the map
            try:
                seg.close()
            except BufferError:  # pragma: no cover - error-path only
                # An in-flight exception's traceback still references a
                # payload view, so the mapping cannot close here.  The
                # driver unlinks the segment regardless; the stale
                # mapping dies with this worker (the driver tears the
                # pool down after any task failure).
                pass
    except Exception as exc:
        return ("err", f"{type(exc).__name__}: {exc}\n"
                       f"{traceback.format_exc()}")


class MultiprocessEngine(ExecutionEngine):
    """Shared-memory multiprocess engine (``REPRO_ENGINE=multiprocess``).

    Uses the batched segmented kernels for everything that is not worth
    fanning out, and ships per-PE independent tasks to worker processes
    when a call's total payload exceeds ``min_offload_bytes``.  Pass
    ``min_offload_bytes=0`` to force every eligible call through the
    workers (the conformance tests do) or ``workers=0`` to disable
    fan-out entirely while keeping the engine's dispatch behaviour.
    """

    name = "multiprocess"
    uses_batched_kernels = True
    fanout = True

    def __init__(self, workers: Optional[int] = None,
                 start_method: Optional[str] = None,
                 min_offload_bytes: Optional[int] = None,
                 timeout: Optional[float] = None):
        super().__init__()
        self.workers = (_env_int("REPRO_MP_WORKERS", os.cpu_count() or 1)
                        if workers is None else int(workers))
        self.start_method = (start_method or _default_start_method())
        self.min_offload_bytes = (
            _env_int("REPRO_MP_MIN_BYTES", 65536)
            if min_offload_bytes is None else int(min_offload_bytes))
        self.timeout = (_env_float("REPRO_MP_TIMEOUT", 120.0)
                        if timeout is None else float(timeout))
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._finalizer = None
        #: Pool generation counter (diagnostics; bumps on every respawn).
        self.generation = 0

    # ------------------------------------------------------------------
    # Pool lifecycle.
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            ctx = get_context(self.start_method)
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=max(self.workers, 1), mp_context=ctx)
            self.generation += 1
            # Guarantee no orphaned workers even if close() is never
            # called (gc'd machines, interpreter exit).
            self._finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool)
        return self._pool

    def worker_pids(self) -> List[int]:
        """PIDs of the live pool workers (spawning the pool if needed)."""
        pool = self._ensure_pool()
        # Touch the pool so the workers actually exist.
        if not pool._processes:
            pool.submit(int, 0).result(timeout=self.timeout)
        return [p.pid for p in pool._processes.values()]

    def _teardown(self, *, kill: bool = True) -> None:
        pool, self._pool = self._pool, None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if pool is not None:
            _shutdown_pool(pool, kill=kill)

    def reset(self) -> None:
        """Tear the worker pool down; the next use respawns fresh workers.

        Called by :meth:`Machine.reset` so a reset machine never reuses
        workers that may hold poisoned module state from a failed run.
        """
        super().reset()
        self._teardown()

    def close(self) -> None:
        """Shut the pool down for good (also runs via a gc finalizer)."""
        self._teardown()

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def pe_map(self, task: str, payloads: Sequence[Optional[dict]]
               ) -> List[Optional[dict]]:
        """Fan per-PE payloads out over the worker pool, rank-ordered.

        Falls back to in-line execution (identical results by task purity)
        when fan-out cannot pay: a disabled pool (``workers=0``) or a
        total payload below ``min_offload_bytes``.
        """
        total = sum(payload_nbytes(p) for p in payloads if p is not None)
        if self.workers < 1 or total < self.min_offload_bytes:
            return super().pe_map(task, payloads)
        self._util["pe_map_calls"] += 1
        self._util["tasks_offloaded"] += sum(
            1 for p in payloads if p is not None)
        self._util["offloaded_bytes"] += float(total)
        pool = self._ensure_pool()
        segments: List[Optional[shared_memory.SharedMemory]] = []
        futures = []
        try:
            for rank, payload in enumerate(payloads):
                if payload is None:
                    segments.append(None)
                    futures.append(None)
                    continue
                seg, meta, scalars = pack_payload(payload)
                segments.append(seg)
                futures.append(pool.submit(_worker_run, task, seg.name,
                                           meta, scalars, rank))
            out: List[Optional[dict]] = []
            for rank, fut in enumerate(futures):
                if fut is None:
                    out.append(None)
                    continue
                try:
                    status, value = fut.result(timeout=self.timeout)
                except concurrent.futures.TimeoutError:
                    self._teardown()
                    raise WorkerFailure(
                        rank, self._round, task,
                        f"no result within {self.timeout:.0f}s -- worker "
                        f"hung or was killed; pool torn down") from None
                except concurrent.futures.process.BrokenProcessPool as exc:
                    self._teardown()
                    raise WorkerFailure(
                        rank, self._round, task,
                        f"worker process died abruptly ({exc}); pool torn "
                        f"down") from exc
                if status == "err":
                    raise WorkerFailure(rank, self._round, task, value)
                out.append(value)
            return out
        finally:
            for seg in segments:
                if seg is not None:
                    seg.close()
                    try:
                        seg.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass

    # ------------------------------------------------------------------
    def utilization(self) -> dict:
        """Dispatch statistics plus pool facts for the run ledger."""
        out = super().utilization()
        out["workers"] = self.workers
        out["pool_generation"] = self.generation
        out["min_offload_bytes"] = self.min_offload_bytes
        return out

    def describe(self) -> str:
        """One-line human description (CLI / docs)."""
        return (f"multiprocess engine ({self.workers} workers, "
                f"{self.start_method} start, shared-memory payloads, "
                f"offload >= {self.min_offload_bytes} B)")


def _shutdown_pool(pool: concurrent.futures.ProcessPoolExecutor,
                   *, kill: bool = True) -> None:
    """Shut a pool down without waiting on wedged workers."""
    # Snapshot the worker handles first: shutdown() clears _processes.
    procs = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - interpreter-shutdown races
        pass
    if kill:
        for proc in procs:
            if proc.is_alive():
                proc.kill()
