"""Fault schedules: the deterministic, seed-driven fault plan of a run.

A :class:`FaultSchedule` describes *which* faults a simulated run should
suffer -- fail-stop PEs, dropped messages, corrupted payloads, stragglers
and permanently slow links -- plus the recovery knobs (detection timeout,
retry budget, replay budget).  It is parsed from a compact spec string, the
same way ``sanitize=`` / ``trace_events=`` runs are requested:

* ``Machine(..., faults="seed=7,msg_drop=0.01")`` attaches an injector
  explicitly;
* the ``REPRO_FAULTS`` environment variable supplies the spec for machines
  created without an explicit ``faults=`` argument.

Spec grammar (items separated by ``,`` or ``;``, see docs/faults.md)::

    seed=INT               base seed of the injector RNG stream (default 0)
    pe_fail=PROB           per-PE per-round fail-stop probability
    pe_fail@ROUND:PE       one-shot fail-stop of PE at end of Boruvka ROUND
    msg_drop=PROB          per-operation message-loss probability
    corrupt=PROB           per-exchange payload-corruption probability
    straggle=PROB[xF]      per-operation per-rank slowdown by factor F (8)
    slow_link=PE[xF]       permanent comm slowdown of PE by factor F (4)
    timeout=SECONDS        failure-detection timeout (default 1e-4)
    retries=INT            max retransmit attempts per operation (default 5)
    max_replays=INT        max replays of one Boruvka round (default 8)

All decisions an injector makes from a schedule are drawn from one
dedicated RNG stream seeded by ``seed`` -- never from the machine's per-PE
streams -- so a fault schedule perturbs *when faults strike* but not the
algorithms' own random choices, and two runs with the same schedule inject
bit-identically.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Default straggler slowdown factor (``straggle=P`` without ``xF``).
DEFAULT_STRAGGLE_FACTOR = 8.0
#: Default slow-link slowdown factor (``slow_link=PE`` without ``xF``).
DEFAULT_SLOW_LINK_FACTOR = 4.0

#: ``REPRO_FAULTS`` values treated as "disabled" rather than parsed.
_DISABLED_VALUES = ("", "0", "false", "no", "off")


def faults_env_spec() -> Optional[str]:
    """The ``REPRO_FAULTS`` spec string, or ``None`` when unset/disabled."""
    value = os.environ.get("REPRO_FAULTS", "").strip()
    if value.lower() in _DISABLED_VALUES:
        return None
    return value


def _prob(key: str, text: str) -> float:
    try:
        p = float(text)
    except ValueError:
        raise ValueError(f"fault spec: {key}={text!r} is not a probability")
    if not 0.0 <= p < 1.0:
        raise ValueError(
            f"fault spec: {key}={p} out of range (need 0 <= p < 1)")
    return p


def _factor(key: str, text: str, default: float) -> Tuple[str, float]:
    """Split ``VALUExF`` into (value, factor >= 1)."""
    if "x" in text:
        value, _, f = text.rpartition("x")
        try:
            factor = float(f)
        except ValueError:
            raise ValueError(f"fault spec: {key}={text!r} has a bad factor")
    else:
        value, factor = text, default
    if factor < 1.0:
        raise ValueError(
            f"fault spec: {key} slowdown factor {factor} must be >= 1")
    return value, factor


@dataclass
class FaultSchedule:
    """Parsed fault plan; all fields have fault-free defaults.

    An all-defaults schedule (``FaultSchedule()`` or a spec naming only
    ``seed=``/knobs) injects nothing: a machine carrying it behaves
    bit-for-bit like one with no fault subsystem attached (the empty-
    schedule identity invariant, tested in
    ``tests/test_property_differential.py``).
    """

    #: Base seed of the injector's dedicated RNG stream.
    seed: int = 0
    #: Per-PE per-round fail-stop probability.
    pe_fail: float = 0.0
    #: One-shot fail-stop events: (round, pe) pairs, fired at round end.
    pe_fail_at: List[Tuple[int, int]] = field(default_factory=list)
    #: Per-operation message-loss probability.
    msg_drop: float = 0.0
    #: Per-exchange payload-corruption probability.
    corrupt: float = 0.0
    #: Per-operation per-rank straggler probability.
    straggle: float = 0.0
    #: Straggler slowdown factor.
    straggle_factor: float = DEFAULT_STRAGGLE_FACTOR
    #: Permanently slow PEs: pe -> comm slowdown factor.
    slow_links: Dict[int, float] = field(default_factory=dict)
    #: Failure-detection timeout charged per detected fault, in seconds.
    timeout: float = 1e-4
    #: Maximum retransmit attempts per operation before giving up.
    retries: int = 5
    #: Maximum replays of a single Boruvka round before giving up.
    max_replays: int = 8

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        """Parse a spec string (see the module docstring for the grammar)."""
        sched = cls()
        for raw in spec.replace(";", ",").split(","):
            item = raw.strip()
            if not item:
                continue
            if item.startswith("pe_fail@"):
                body = item[len("pe_fail@"):]
                round_s, sep, pe_s = body.partition(":")
                if not sep:
                    raise ValueError(
                        f"fault spec: {item!r} must be pe_fail@ROUND:PE")
                try:
                    event = (int(round_s), int(pe_s))
                except ValueError:
                    raise ValueError(
                        f"fault spec: {item!r} must be pe_fail@ROUND:PE "
                        f"with integer round and PE")
                if event[0] < 0 or event[1] < 0:
                    raise ValueError(
                        f"fault spec: {item!r} round and PE must be >= 0")
                sched.pe_fail_at.append(event)
                continue
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(
                    f"fault spec: {item!r} is not KEY=VALUE (grammar in "
                    f"docs/faults.md)")
            key = key.strip()
            value = value.strip()
            if key == "seed":
                sched.seed = int(value)
            elif key == "pe_fail":
                sched.pe_fail = _prob(key, value)
            elif key == "msg_drop":
                sched.msg_drop = _prob(key, value)
            elif key == "corrupt":
                sched.corrupt = _prob(key, value)
            elif key == "straggle":
                prob, factor = _factor(key, value, DEFAULT_STRAGGLE_FACTOR)
                sched.straggle = _prob(key, prob)
                sched.straggle_factor = factor
            elif key == "slow_link":
                pe, factor = _factor(key, value, DEFAULT_SLOW_LINK_FACTOR)
                sched.slow_links[int(pe)] = factor
            elif key == "timeout":
                sched.timeout = float(value)
                if sched.timeout < 0:
                    raise ValueError("fault spec: timeout must be >= 0")
            elif key == "retries":
                sched.retries = int(value)
                if sched.retries < 1:
                    raise ValueError("fault spec: retries must be >= 1")
            elif key == "max_replays":
                sched.max_replays = int(value)
                if sched.max_replays < 1:
                    raise ValueError("fault spec: max_replays must be >= 1")
            else:
                raise ValueError(
                    f"fault spec: unknown item {key!r} (grammar in "
                    f"docs/faults.md)")
        return sched

    @classmethod
    def from_env(cls) -> Optional["FaultSchedule"]:
        """Schedule from ``REPRO_FAULTS``, or ``None`` when unset/disabled."""
        spec = faults_env_spec()
        return cls.parse(spec) if spec is not None else None

    # ------------------------------------------------------------------
    @property
    def injects_anything(self) -> bool:
        """Whether this schedule can produce at least one fault event."""
        return bool(
            self.pe_fail > 0.0
            or self.pe_fail_at
            or self.msg_drop > 0.0
            or self.corrupt > 0.0
            or self.straggle > 0.0
            or self.slow_links
        )

    @property
    def protects_rounds(self) -> bool:
        """Whether fail-stop events are possible (checkpointing required)."""
        return self.pe_fail > 0.0 or bool(self.pe_fail_at)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        active = {k: v for k, v in (
            ("pe_fail", self.pe_fail), ("pe_fail_at", self.pe_fail_at),
            ("msg_drop", self.msg_drop), ("corrupt", self.corrupt),
            ("straggle", self.straggle), ("slow_links", self.slow_links),
        ) if v}
        return f"FaultSchedule(seed={self.seed}, {active})"
