"""repro.faults: deterministic fault injection and recovery (docs/faults.md).

Attach with ``Machine(..., faults="pe_fail=0.05,seed=7")`` or via the
``REPRO_FAULTS`` environment variable.  The subsystem injects PE
fail-stop, message drop, payload corruption and straggler/slow-link
events into the simulated machine, detects them (timeouts, checksums,
round heartbeats) and recovers (retry with exponential backoff,
retransmission, round-granularity checkpoint/restart) -- charging every
recovery action through the alpha+beta*l cost model so degraded runs
report honest simulated times, while the *data* outcome of any surviving
run stays bit-identical to the fault-free run.
"""

from .checksum import buffer_checksum, flip_bit
from .injector import FaultInjector, UnrecoverableFault
from .recovery import ArrayCheckpoint, RoundCheckpoint
from .schedule import FaultSchedule, faults_env_spec

__all__ = [
    "FaultSchedule",
    "FaultInjector",
    "ArrayCheckpoint",
    "RoundCheckpoint",
    "UnrecoverableFault",
    "buffer_checksum",
    "flip_bit",
    "faults_env_spec",
]
