"""Lightweight checksums for communicated buffers.

The injector corrupts payloads by flipping a single bit in a received
buffer; detection must therefore be sensitive to any one-bit change *and*
to position swaps of equal values (a plain xor-fold of words would miss
the latter).  :func:`buffer_checksum` mixes each 64-bit word with its
position using two odd multiplicative constants (splitmix64's) before
xor-folding, which makes every single-bit flip and every transposition of
unequal words change the digest.

The checksum is an *accounting device* of the simulation: its simulated
cost is charged through the ``c_scan`` per-byte term of the cost model
(one pass over the payload on each side), while the Python-level work is
a handful of vectorised numpy ops.
"""

from __future__ import annotations

import numpy as np

_MIX_A = np.uint64(0x9E3779B97F4A7C15)
_MIX_B = np.uint64(0xBF58476D1CE4E5B9)


def buffer_checksum(buf: np.ndarray) -> int:
    """Position-mixed 64-bit checksum of an integer/float buffer.

    Any single-bit flip anywhere in the buffer changes the digest, as does
    swapping two unequal words -- the properties the corruption detector
    relies on.  Empty buffers hash to 0.
    """
    flat = np.ascontiguousarray(buf).reshape(-1)
    if flat.size == 0:
        return 0
    if flat.dtype.itemsize != 8:
        flat = flat.astype(np.int64)
    words = flat.view(np.uint64)
    idx = np.arange(words.size, dtype=np.uint64)
    with np.errstate(over="ignore"):
        # Inject the position *before* the multiply-shift avalanche: a
        # separable mix like (w * A) ^ (i * B) would xor-fold to the same
        # digest under any permutation of the words.
        x = words ^ ((idx + np.uint64(1)) * _MIX_B)
        x = x * _MIX_A
        x ^= x >> np.uint64(31)
        x = x * _MIX_B
        x ^= x >> np.uint64(27)
    return int(np.bitwise_xor.reduce(x))


def flip_bit(buf: np.ndarray, pos: int, bit: int) -> np.ndarray:
    """A copy of ``buf`` with one bit flipped at flat position ``pos``.

    Used by the injector to build the corrupted payload it then *detects*
    (and discards) via :func:`buffer_checksum`; the original buffer is
    never modified, so a detected-and-retransmitted corruption leaves the
    delivered data bit-identical to the fault-free run.

    Works for any element width: ``bit`` is taken modulo the element's bit
    count, so the injector can keep drawing ``bit`` uniformly from [0, 64)
    regardless of how narrow the host's transport storage is (the RNG
    stream -- and hence the simulated run -- is unchanged by narrowing).
    """
    out = np.array(buf, copy=True)
    flat = out.reshape(-1)
    itemsize = flat.dtype.itemsize
    if itemsize not in (1, 2, 4, 8):
        raise ValueError(f"flip_bit cannot address dtype {flat.dtype}")
    utype = np.dtype(f"u{itemsize}")
    words = flat.view(utype)
    width = np.uint64(8 * itemsize)
    words[pos] ^= utype.type(np.uint64(1) << (np.uint64(bit) % width))
    return out
