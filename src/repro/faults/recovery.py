"""Round-granularity checkpoint/restart for the round scheduler.

When a schedule can fail-stop PEs (``pe_fail`` / ``pe_fail@``), the
unified round loop in :class:`repro.core.rounds.RoundScheduler` brackets
every round of every round-looped driver (Borůvka, Filter-Borůvka's
kernel phase, and the competitors; see docs/rounds.md):

1. before the round, :meth:`RoundCheckpoint.take` snapshots the round's
   input -- each PE's edge block is copied locally and replicated to a
   buddy PE (rank+1 mod p), together with the per-PE MST-record lengths
   and the machine's RNG-stream states.  The copy scan and the buddy
   point-to-point transfers are charged through the cost model and fed to
   the comm trace / sanitizer shadow / metrics like any other exchange;
2. the round runs normally;
3. at the round barrier the injector's heartbeat
   (:meth:`~repro.faults.injector.FaultInjector.poll_pe_failures`) reports
   fail-stopped PEs.  If any: :meth:`RoundCheckpoint.restore` charges the
   detection timeout, re-fetches the failed PEs' partitions from their
   buddies (a replacement PE takes over the failed rank's slot -- the
   simulation keeps the rank numbering), restores the RNG streams,
   truncates the MST records back to the checkpoint, and rebuilds the
   :class:`~repro.dgraph.dist_graph.DistGraph` (whose constructor
   re-issues the metadata allgather -- honest re-communication cost).
   The driver then replays the round.

Because the RNG streams are restored and the injector draws from its own
stream, a replayed round recomputes *exactly* the same edges, labels and
MST records as the failed attempt -- only the clocks differ.  Duplicate
label-sink reports from the replay are value-idempotent (the same
(vertex, root) assignments are applied twice), so Filter-Borůvka's P
array is also bit-identical after recovery.

:class:`RoundCheckpoint` is the Borůvka-shaped instance (edge-block
partitions).  :class:`ArrayCheckpoint` generalises the same protocol to
arbitrary per-PE array state -- Awerbuch-Shiloach's parent-pointer
blocks, MND-MST's subgraphs + contraction maps, distributed Prim's
replicated in-tree flags -- which is what lets the scheduler offer
fail-stop recovery to every round-looped competitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from ..dgraph.edges import Edges

#: Bytes per checkpointed edge row: (u, v, w, id) int64 quadruples.
_EDGE_ROW_BYTES = 32.0


def _edges_copy(part: Edges) -> Edges:
    """A private (plain-ndarray) copy of one PE's edge block."""
    return Edges(np.array(part.u, copy=True), np.array(part.v, copy=True),
                 np.array(part.w, copy=True), np.array(part.id, copy=True))


@dataclass
class RoundCheckpoint:
    """Snapshot of one Borůvka round's input, replicated to buddy PEs."""

    round_no: int
    parts: List[Edges]
    mst_lens: List[int]
    rng_state: Dict[int, dict]

    @classmethod
    def take(cls, graph, run) -> "RoundCheckpoint":
        """Checkpoint the round input and charge its simulated cost.

        Each PE copies its block (a linear scan over the four edge
        columns) and ships it to buddy ``(rank+1) % p`` -- one
        point-to-point message each way per PE, bulk-synchronous like
        every other exchange in the simulator.
        """
        from ..simmpi.alltoall import _record_trace

        machine = graph.machine
        p = machine.n_procs
        sizes = np.array([len(part) for part in graph.parts],
                         dtype=np.float64)
        send_bytes = sizes * _EDGE_ROW_BYTES
        recv_bytes = send_bytes[(np.arange(p) - 1) % p]
        cm = machine.cost
        cost = (cm.c_scan * 4.0 * sizes / cm.effective_threads(machine.threads)
                + cm.p2p(send_bytes) + cm.p2p(recv_bytes))
        counts = np.zeros((p, p), dtype=np.int64)
        counts[np.arange(p), (np.arange(p) + 1) % p] = sizes.astype(np.int64)
        machine.bytes_communicated += float(send_bytes.sum())
        _record_trace(run.comm, counts, _EDGE_ROW_BYTES,
                      op="faults/checkpoint")
        run.comm._sync_and_charge(cost, op="faults/checkpoint",
                                  nbytes=float(send_bytes.sum()))
        return cls(
            round_no=run.rounds,
            parts=[_edges_copy(part) for part in graph.parts],
            mst_lens=[len(lst) for lst in run.mst_ids],
            rng_state=machine.rng_snapshot(),
        )

    def restore(self, run, failed: np.ndarray):
        """Roll the run back to this checkpoint after ``failed`` PEs died.

        Returns the rebuilt :class:`~repro.dgraph.dist_graph.DistGraph`.
        Recovery cost charged: the detection timeout on every PE, the
        buddy-to-replacement re-fetch of each failed partition, and the
        re-adoption scan on the replacement -- plus the metadata allgather
        the graph constructor issues.
        """
        from ..dgraph.dist_graph import DistGraph
        from ..obs.hooks import observe_recovery
        from ..simmpi.alltoall import _record_trace

        machine = run.machine
        fi = machine.faults
        p = machine.n_procs
        sizes = np.array([len(part) for part in self.parts],
                         dtype=np.float64)
        refetch = np.zeros(p, dtype=np.float64)
        refetch[failed] = sizes[failed] * _EDGE_ROW_BYTES
        buddies = (failed + 1) % p
        sent = np.zeros(p, dtype=np.float64)
        np.add.at(sent, buddies, refetch[failed])
        cm = machine.cost
        readopt = (refetch > 0) * cm.c_scan * 4.0 * sizes
        cost = (fi.schedule.timeout + cm.c_call
                + cm.p2p(sent) + cm.p2p(refetch)
                + readopt / cm.effective_threads(machine.threads))
        counts = np.zeros((p, p), dtype=np.int64)
        counts[buddies, failed] = sizes[failed].astype(np.int64)
        machine.bytes_communicated += float(refetch.sum())
        _record_trace(run.comm, counts, _EDGE_ROW_BYTES, op="faults/refetch")
        run.comm._sync_and_charge(cost, op="faults/refetch",
                                  nbytes=float(refetch.sum()))
        machine.rng_restore(self.rng_state)
        for i, n in enumerate(self.mst_lens):
            del run.mst_ids[i][n:]
        observe_recovery(machine, self.round_no,
                         [int(pe) for pe in np.atleast_1d(failed)])
        # Fresh copies again: the same checkpoint must survive a second
        # restore if the replay fails too.
        parts = [_edges_copy(part) for part in self.parts]
        return DistGraph(machine, parts, check=False)


@dataclass
class ArrayCheckpoint:
    """Buddy-replicated snapshot of arbitrary per-PE array state.

    The generic sibling of :class:`RoundCheckpoint` for drivers whose
    round state is not an edge partition: ``blocks[i]`` is the list of
    arrays constituting PE ``i``'s round input (parent-pointer vectors,
    contraction maps, replicated flags...).  Checkpoint and restore charge
    the same cost shape as the Borůvka checkpoint -- one linear copy scan
    per PE plus the buddy ``(rank+1) % p`` point-to-point each way, and on
    restore the detection timeout plus the buddy-to-replacement re-fetch
    -- except sized by the arrays' actual byte footprint instead of the
    fixed 32-byte edge row.

    ``on_restore`` receives fresh copies of the snapshotted blocks and
    reinstates them (plus any host-side scalars the closure captured) into
    the driver; it may be invoked repeatedly, so implementations must not
    consume the copies they are handed destructively across calls.
    """

    round_no: int
    blocks: List[List[np.ndarray]]
    mst_lens: List[int]
    rng_state: Dict[int, dict]
    on_restore: Callable[[List[List[np.ndarray]]], None]

    @classmethod
    def take(cls, run, blocks: List[List[np.ndarray]],
             on_restore: Callable[[List[List[np.ndarray]]], None]
             ) -> "ArrayCheckpoint":
        """Snapshot per-PE array state and charge its simulated cost."""
        from ..simmpi.alltoall import _record_trace

        machine = run.machine
        p = machine.n_procs
        elems = np.array([sum(len(a) for a in blk) for blk in blocks],
                         dtype=np.float64)
        send_bytes = np.array([float(sum(a.nbytes for a in blk))
                               for blk in blocks])
        recv_bytes = send_bytes[(np.arange(p) - 1) % p]
        cm = machine.cost
        cost = (cm.c_scan * elems / cm.effective_threads(machine.threads)
                + cm.p2p(send_bytes) + cm.p2p(recv_bytes))
        counts = np.zeros((p, p), dtype=np.int64)
        counts[np.arange(p), (np.arange(p) + 1) % p] = \
            send_bytes.astype(np.int64)
        machine.bytes_communicated += float(send_bytes.sum())
        _record_trace(run.comm, counts, 1.0, op="faults/checkpoint")
        run.comm._sync_and_charge(cost, op="faults/checkpoint",
                                  nbytes=float(send_bytes.sum()))
        return cls(
            round_no=run.rounds,
            blocks=[[np.array(a, copy=True) for a in blk]
                    for blk in blocks],
            mst_lens=[len(lst) for lst in run.mst_ids],
            rng_state=machine.rng_snapshot(),
            on_restore=on_restore,
        )

    def restore(self, run, failed: np.ndarray) -> None:
        """Roll the driver back to this checkpoint after ``failed`` died."""
        from ..obs.hooks import observe_recovery
        from ..simmpi.alltoall import _record_trace

        machine = run.machine
        fi = machine.faults
        p = machine.n_procs
        sizes = np.array([float(sum(a.nbytes for a in blk))
                          for blk in self.blocks])
        elems = np.array([sum(len(a) for a in blk) for blk in self.blocks],
                         dtype=np.float64)
        refetch = np.zeros(p, dtype=np.float64)
        refetch[failed] = sizes[failed]
        buddies = (failed + 1) % p
        sent = np.zeros(p, dtype=np.float64)
        np.add.at(sent, buddies, refetch[failed])
        cm = machine.cost
        readopt = (refetch > 0) * cm.c_scan * elems
        cost = (fi.schedule.timeout + cm.c_call
                + cm.p2p(sent) + cm.p2p(refetch)
                + readopt / cm.effective_threads(machine.threads))
        counts = np.zeros((p, p), dtype=np.int64)
        counts[buddies, failed] = sizes[failed].astype(np.int64)
        machine.bytes_communicated += float(refetch.sum())
        _record_trace(run.comm, counts, 1.0, op="faults/refetch")
        run.comm._sync_and_charge(cost, op="faults/refetch",
                                  nbytes=float(refetch.sum()))
        machine.rng_restore(self.rng_state)
        for i, n in enumerate(self.mst_lens):
            del run.mst_ids[i][n:]
        observe_recovery(machine, self.round_no,
                         [int(pe) for pe in np.atleast_1d(failed)])
        # Fresh copies: the same checkpoint must survive a second restore
        # if the replay fails too.
        self.on_restore([[np.array(a, copy=True) for a in blk]
                         for blk in self.blocks])
