"""The fault injector: consults a schedule at the machine's choke points.

A :class:`FaultInjector` is attached to a machine as ``machine.faults``
(mirroring ``machine.sanitizer`` / ``machine.events``) and is consulted at
exactly three well-defined points:

``on_collective``
    inside :meth:`Comm._sync_and_charge`, the single choke point every
    collective and all-to-all charges through.  Injects message drops
    (detected by timeout; the operation is retried with exponential
    backoff, each attempt re-charged) and straggler / slow-link slowdowns
    (the drawn ranks' costs are multiplied, so degraded runs produce
    honest alpha+beta*l times).  Returns the adjusted per-rank cost.

``on_exchange``
    in the all-to-all implementations, once per hop, *before* the hop is
    charged.  Adds the checksum-pass overhead for every communicated byte
    and occasionally corrupts one received payload: a bit is flipped in a
    *copy* of a victim buffer, the checksum mismatch is verified (genuine
    detection, see :mod:`repro.faults.checksum`), the retransmission is
    charged, and the clean data is delivered -- so the data path of a
    recovered run stays bit-identical to the fault-free run.

``poll_pe_failures``
    at the end of every Borůvka round (heartbeat semantics: fail-stop is
    detected when a PE misses the round barrier).  Returns the PEs that
    failed this round; the driver restores the last round checkpoint and
    replays (see :mod:`repro.faults.recovery`).

All randomness comes from one dedicated RNG stream seeded by the
schedule's seed -- never from the machine's per-PE streams -- so fault
timing never perturbs algorithmic random choices, and a surviving run's
MST is bit-identical to the fault-free run's.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..obs.hooks import observe_fault
from .checksum import buffer_checksum, flip_bit
from .schedule import FaultSchedule


class UnrecoverableFault(RuntimeError):
    """A fault exceeded the configured recovery budget (retries/replays)."""


class FaultInjector:
    """Seed-driven fault injection + recovery accounting for one machine."""

    def __init__(self, machine, schedule: FaultSchedule):
        self.machine = machine
        self.schedule = schedule
        #: Injected/recovered event counts by fault kind (CLI summary).
        self.counts: Dict[str, int] = {}
        self._slow = None
        if schedule.slow_links:
            bad = [pe for pe in schedule.slow_links if pe >= machine.n_procs]
            if bad:
                raise ValueError(
                    f"fault spec: slow_link PE {bad[0]} out of range "
                    f"(machine has {machine.n_procs} PEs)")
            self._slow = np.ones(machine.n_procs, dtype=np.float64)
            for pe, factor in schedule.slow_links.items():
                self._slow[pe] = factor
        self.reset()

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether this injector can produce any fault event at all.

        An inactive injector must be arithmetically invisible: every hook
        returns its cost argument unchanged and draws nothing, which is
        what makes an empty ``REPRO_FAULTS`` schedule bit-identical to no
        fault subsystem (the empty-schedule identity invariant).
        """
        return self.schedule.injects_anything

    @property
    def protects_rounds(self) -> bool:
        """Whether the Borůvka drivers must checkpoint rounds."""
        return self.schedule.protects_rounds

    def reset(self) -> None:
        """Re-arm the injector for a bit-identical rerun (Machine.reset)."""
        self.rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.schedule.seed,
                                   spawn_key=(0xFA117,))
        )
        self.counts.clear()
        self._pending_one_shot = list(self.schedule.pe_fail_at)
        self._replays: Dict[int, int] = {}

    def _count(self, key: str, n: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + n

    # ------------------------------------------------------------------
    # Hook 1: every collective charge (Comm._sync_and_charge).
    # ------------------------------------------------------------------
    def on_collective(self, op: str, ranks: np.ndarray, per_rank_cost,
                      nbytes: float):
        """Adjust one collective's per-rank cost for injected comm faults.

        Called before the sanitizer validates the charge, so the adjusted
        cost still has to satisfy every cost-accounting invariant (finite,
        strictly positive for all participants) -- slowdowns multiply and
        retries add, so it does by construction.
        """
        sched = self.schedule
        cost = per_rank_cost
        if self._slow is not None:
            cost = np.asarray(cost, dtype=np.float64) * self._slow[ranks]
            # Counted (once per operation touching a slow PE) but not traced:
            # a permanent link degradation on every collective would bury
            # the sporadic fault instants in the exported timeline.
            if (self._slow[ranks] > 1.0).any():
                self._count("slow_link")
        if sched.straggle > 0.0:
            hits = self.rng.random(len(ranks)) < sched.straggle
            if hits.any():
                cost = np.asarray(cost, dtype=np.float64) * np.where(
                    hits, sched.straggle_factor, 1.0)
                self._count("straggle", int(hits.sum()))
                for r in ranks[hits]:
                    observe_fault(self.machine, "straggle", op, rank=int(r))
        if sched.msg_drop > 0.0:
            # Timeout/retry with exponential backoff: every failed attempt
            # costs a full (slowed-down) operation plus the detection
            # timeout, doubled per attempt; all participants wait (the
            # operation is bulk-synchronous, so the retry is too).
            attempt = 0
            while self.rng.random() < sched.msg_drop:
                attempt += 1
                if attempt > sched.retries:
                    raise UnrecoverableFault(
                        f"{op}: message dropped {attempt} times "
                        f"(retries={sched.retries})")
                cost = cost + self.machine.cost.retry(cost, sched.timeout,
                                                      attempt)
                self._count("msg_drop")
                observe_fault(self.machine, "msg_drop",
                              f"{op} attempt {attempt}")
            if attempt:
                self._count("msg_drop_recovered", attempt)
        return cost

    # ------------------------------------------------------------------
    # Hook 2: every all-to-all hop, before it is charged.
    # ------------------------------------------------------------------
    def on_exchange(self, comm, op: str, recvbufs: List[np.ndarray],
                    row_bytes: float, bytes_out, bytes_in, cost):
        """Checksum overhead + payload corruption for one exchange hop.

        ``cost`` is the hop's per-rank cost array; returns it adjusted.
        ``recvbufs`` is inspected (a corruption victim is drawn from the
        non-empty ones) but never mutated -- the corrupted copy exists
        only long enough to be detected and discarded.
        """
        sched = self.schedule
        if sched.corrupt <= 0.0:
            return cost
        cm = self.machine.cost
        # Checksum accounting: one linear pass over the payload on the
        # sending side and one on the receiving side of every hop.
        cost = (np.asarray(cost, dtype=np.float64)
                + cm.c_scan * (np.asarray(bytes_out, dtype=np.float64)
                               + np.asarray(bytes_in, dtype=np.float64)))
        if self.rng.random() < sched.corrupt:
            victims = [j for j, b in enumerate(recvbufs)
                       if isinstance(b, np.ndarray) and b.size > 0]
            if victims:
                j = victims[int(self.rng.integers(len(victims)))]
                buf = np.atleast_1d(recvbufs[j])
                pos = int(self.rng.integers(buf.size))
                bit = int(self.rng.integers(64))
                clean_sum = buffer_checksum(buf)
                corrupted = flip_bit(buf, pos, bit)
                if buffer_checksum(corrupted) == clean_sum:
                    raise AssertionError(
                        "checksum failed to detect a single-bit flip")
                self._count("corrupt")
                self._count("corrupt_detected")
                observe_fault(self.machine, "corrupt",
                              f"{op} -> rank {j} (bit {bit} of row "
                              f"{pos // max(1, int(row_bytes) // 8)})",
                              rank=int(comm.ranks[j]))
                # Detection timeout + retransmission of the victim's whole
                # incoming payload; bulk-synchronous, so everyone waits.
                resend = cm.p2p(float(np.asarray(bytes_in).reshape(-1)[j]))
                cost = cost + (sched.timeout + resend)
        return cost

    # ------------------------------------------------------------------
    # Hook 3: fail-stop heartbeat at Borůvka round boundaries.
    # ------------------------------------------------------------------
    def poll_pe_failures(self, round_no: int) -> np.ndarray:
        """PEs that fail-stopped during round ``round_no`` (may be empty).

        One-shot ``pe_fail@ROUND:PE`` events fire exactly once (they are
        consumed here, so the replayed round does not re-fail
        deterministically); the ``pe_fail`` rate draws fresh per poll, so
        a replay can fail again -- bounded by the ``max_replays`` budget
        enforced in :meth:`count_replay`.
        """
        failed = [pe for r, pe in self._pending_one_shot if r == round_no]
        self._pending_one_shot = [
            (r, pe) for r, pe in self._pending_one_shot if r != round_no]
        if self.schedule.pe_fail > 0.0:
            draws = self.rng.random(self.machine.n_procs) < self.schedule.pe_fail
            failed.extend(int(pe) for pe in np.flatnonzero(draws))
        if not failed:
            return np.empty(0, dtype=np.int64)
        out = np.unique(np.asarray(failed, dtype=np.int64))
        bad = out[out >= self.machine.n_procs]
        if len(bad):
            raise ValueError(
                f"fault spec: pe_fail@ names PE {int(bad[0])} but the "
                f"machine has {self.machine.n_procs} PEs")
        self._count("pe_fail", len(out))
        for pe in out:
            observe_fault(self.machine, "pe_fail", f"round {round_no}",
                          rank=int(pe))
        return out

    def count_replay(self, round_no: int) -> None:
        """Enforce the per-round replay budget; called once per replay."""
        n = self._replays.get(round_no, 0) + 1
        self._replays[round_no] = n
        if n > self.schedule.max_replays:
            raise UnrecoverableFault(
                f"round {round_no} replayed {n} times "
                f"(max_replays={self.schedule.max_replays})")
        self._count("round_replay")

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Injected/recovered event counts (stable key order)."""
        return dict(sorted(self.counts.items()))
