"""Metrics registry: counters, gauges, histograms and per-round series.

GBBS-style structured statistics for the simulated machine: instead of one
float per phase, a traced run accumulates named metrics --
bytes/messages per collective flavour, vertices/edges surviving each
Borůvka round, filter-recursion depth, segmented-kernel invocation counts
and host time, per-PE clock skew and send-volume imbalance per round --
that exporters dump as JSON (:func:`repro.obs.export.metrics_to_dict`) or
render as the per-round ASCII progress table
(:func:`repro.obs.export.progress_table`).

All instruments are plain Python objects with numpy-free hot paths (a
counter increment is one float add); like the event tracer, they never read
or write machine clocks, so metrics collection cannot perturb simulated
time.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np


class Counter:
    """Monotonically increasing float accumulator."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """Last-written value plus the running maximum."""

    __slots__ = ("value", "max")

    def __init__(self) -> None:
        self.value = 0.0
        self.max = 0.0

    def set(self, value: float) -> None:
        """Record the current value, tracking the high-water mark."""
        self.value = float(value)
        if self.value > self.max:
            self.max = self.value


class Histogram:
    """Power-of-two bucketed distribution (count/sum/min/max + buckets).

    Bucket ``k`` counts observations ``v`` with ``2^(k-1) < v <= 2^k``;
    observations at most 1 (including non-positive ones) land in bucket 0.
    Compact enough to record every exchange without memory concern and
    precise enough for imbalance triage.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        bucket = 0 if value <= 1.0 else int(math.ceil(math.log2(value)))
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


class Series:
    """Step-indexed samples, e.g. per-round vertex counts."""

    __slots__ = ("points",)

    def __init__(self) -> None:
        self.points: List[Tuple[int, float]] = []

    def record(self, step: int, value: float) -> None:
        """Append the sample ``value`` for integer step ``step``."""
        self.points.append((int(step), float(value)))

    def last(self) -> Optional[Tuple[int, float]]:
        """The most recent (step, value) pair, or None when empty."""
        return self.points[-1] if self.points else None


class PECounter:
    """Per-PE float accumulator (numpy-backed), e.g. sent bytes per PE."""

    __slots__ = ("values",)

    def __init__(self, n_procs: int) -> None:
        self.values = np.zeros(int(n_procs), dtype=np.float64)

    def add(self, amounts, ranks=None) -> None:
        """Accumulate ``amounts`` onto all PEs or the ``ranks`` subset."""
        if ranks is None:
            self.values += amounts
        else:
            self.values[ranks] += amounts


class MetricsRegistry:
    """Name -> instrument map with get-or-create accessors.

    One registry is attached per traced machine (``machine.metrics``).
    Instruments live in separate namespaces per kind, so a counter and a
    series may share a name without colliding.  ``scratch`` is a free-form
    dict the instrumentation hooks use for cross-call snapshots (for
    example byte totals at round start); it is excluded from exports.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, Series] = {}
        self._pe_counters: Dict[str, PECounter] = {}
        #: Hook-private snapshot storage (not exported).
        self.scratch: Dict = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name``, created on first use."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    def series(self, name: str) -> Series:
        """The series named ``name``, created on first use."""
        s = self._series.get(name)
        if s is None:
            s = self._series[name] = Series()
        return s

    def pe_counter(self, name: str, n_procs: int) -> PECounter:
        """The per-PE counter named ``name``, created on first use."""
        p = self._pe_counters.get(name)
        if p is None:
            p = self._pe_counters[name] = PECounter(n_procs)
        return p

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, Counter]:
        """All counters by name (live view)."""
        return self._counters

    def gauges(self) -> Dict[str, Gauge]:
        """All gauges by name (live view)."""
        return self._gauges

    def histograms(self) -> Dict[str, Histogram]:
        """All histograms by name (live view)."""
        return self._histograms

    def all_series(self) -> Dict[str, Series]:
        """All series by name (live view)."""
        return self._series

    def pe_counters(self) -> Dict[str, PECounter]:
        """All per-PE counters by name (live view)."""
        return self._pe_counters

    def reset(self) -> None:
        """Drop every instrument and snapshot (mirrors ``Machine.reset``)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._series.clear()
        self._pe_counters.clear()
        self.scratch.clear()
