"""Chrome-trace schema validation (shared by tests and CI's trace-smoke).

:func:`validate_chrome_trace` checks the structural contract a trace viewer
relies on -- and that the CI smoke job enforces on every emitted artifact:

* top-level shape: a ``traceEvents`` array of objects;
* every event has a known ``ph``, a string ``name`` and integer-valued
  non-negative ``pid``/``tid`` (metadata events excepted from ts checks);
* timestamps are finite, non-negative, and **monotone non-decreasing per
  thread** in file order (per-PE simulated clocks are monotone, so a
  violation means instrumentation emitted out of order);
* ``B``/``E`` events are properly matched and nested per thread -- every
  ``E`` closes the innermost open ``B`` of the same name, and no span is
  left open at the end.

A trace whose ring buffer dropped events (``otherData.dropped_events > 0``)
is only checked for the per-event invariants, because the missing prefix
legitimately breaks span matching.
"""

from __future__ import annotations

from typing import Dict, List

#: Event phases the validator accepts.
KNOWN_PHASES = {"B", "E", "i", "I", "C", "M", "X"}


def validate_chrome_trace(payload: Dict) -> List[str]:
    """Validate a Chrome trace JSON object; returns a list of problems.

    An empty list means the trace is well-formed.  Every string in the
    returned list describes one independent violation (the validator keeps
    going so CI logs show all problems at once).
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array traceEvents"]
    dropped = 0
    other = payload.get("otherData")
    if isinstance(other, dict):
        dropped = int(other.get("dropped_events", 0) or 0)

    last_ts: Dict[tuple, float] = {}
    open_spans: Dict[tuple, List[str]] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event is not an object")
            continue
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where}: unknown ph {ph!r}")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing/empty name")
        pid, tid = ev.get("pid"), ev.get("tid")
        for label, v in (("pid", pid), ("tid", tid)):
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                errors.append(f"{where}: {label} must be a non-negative "
                              f"integer, got {v!r}")
        if ph == "M":
            continue  # metadata events carry no timestamp
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) \
                or ts != ts or ts in (float("inf"), float("-inf")) or ts < 0:
            errors.append(f"{where}: ts must be a finite non-negative "
                          f"number, got {ts!r}")
            continue
        key = (pid, tid)
        prev = last_ts.get(key)
        if prev is not None and ts < prev:
            errors.append(f"{where}: ts {ts} < previous {prev} on "
                          f"pid/tid {key} (non-monotone thread timeline)")
        last_ts[key] = float(ts)
        if dropped == 0:
            if ph == "B":
                open_spans.setdefault(key, []).append(name)
            elif ph == "E":
                stack = open_spans.get(key, [])
                if not stack:
                    errors.append(f"{where}: E {name!r} with no open B on "
                                  f"pid/tid {key}")
                elif stack[-1] != name:
                    errors.append(f"{where}: E {name!r} closes open B "
                                  f"{stack[-1]!r} on pid/tid {key} "
                                  f"(improper nesting)")
                    stack.pop()
                else:
                    stack.pop()
    if dropped == 0:
        for key, stack in open_spans.items():
            if stack:
                errors.append(f"unclosed span(s) {stack} on pid/tid {key}")
    return errors
