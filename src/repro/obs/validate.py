"""Schema validation for exported observability artifacts.

:func:`validate_chrome_trace` checks the structural contract a trace viewer
relies on -- and that the CI smoke job enforces on every emitted artifact:

* top-level shape: a ``traceEvents`` array of objects;
* every event has a known ``ph``, a string ``name`` and integer-valued
  non-negative ``pid``/``tid`` (metadata events excepted from ts checks);
* timestamps are finite, non-negative, and **monotone non-decreasing per
  thread** in file order (per-PE simulated clocks are monotone, so a
  violation means instrumentation emitted out of order);
* ``B``/``E`` events are properly matched and nested per thread -- every
  ``E`` closes the innermost open ``B`` of the same name, and no span is
  left open at the end.

A trace whose ring buffer dropped events (``otherData.dropped_events > 0``)
is only checked for the per-event invariants, because the missing prefix
legitimately breaks span matching.

Every JSON artifact this package writes (Chrome trace, metrics dump, BENCH
record, ledger row) carries a ``schema_version`` string stamped from
:data:`SCHEMA_VERSION`; :func:`check_schema_version` enforces the
compatibility policy -- **reject** unknown major versions (the reader would
misinterpret the payload), **warn** on newer minors (forward-compatible
additions), and warn on pre-versioned artifacts missing the field.
:func:`validate_ledger_record` applies the same policy to run-ledger rows
(see :mod:`repro.obs.ledger`).
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Tuple

#: Event phases the validator accepts.
KNOWN_PHASES = {"B", "E", "i", "I", "C", "M", "X"}

#: Current schema version stamped into every exported JSON artifact
#: (trace ``otherData``, metrics dump, BENCH record, ledger row).
#: Major bumps break readers; minor bumps add fields.
SCHEMA_VERSION = "1.0"

#: Parsed (major, minor) of :data:`SCHEMA_VERSION`.
SCHEMA_MAJOR, SCHEMA_MINOR = (int(part) for part in
                              SCHEMA_VERSION.split("."))


def parse_schema_version(value) -> Optional[Tuple[int, int]]:
    """Parse a ``"major.minor"`` schema string; None when malformed."""
    if not isinstance(value, str):
        return None
    parts = value.split(".")
    if len(parts) != 2:
        return None
    try:
        return int(parts[0]), int(parts[1])
    except ValueError:
        return None


def check_schema_version(value, where: str = "payload") -> List[str]:
    """Apply the compatibility policy to one ``schema_version`` field.

    Returns a list of *errors* (unknown major, malformed value); newer
    minors and missing fields are forward/backward compatible and are
    reported through :mod:`warnings` instead.
    """
    if value is None:
        warnings.warn(
            f"{where}: no schema_version (pre-versioned artifact); "
            f"assuming {SCHEMA_VERSION}", stacklevel=2)
        return []
    parsed = parse_schema_version(value)
    if parsed is None:
        return [f"{where}: malformed schema_version {value!r} "
                f"(expected 'major.minor')"]
    major, minor = parsed
    if major != SCHEMA_MAJOR:
        return [f"{where}: unsupported schema major version {value!r} "
                f"(this reader understands {SCHEMA_MAJOR}.x)"]
    if minor > SCHEMA_MINOR:
        warnings.warn(
            f"{where}: schema_version {value} is newer than this reader's "
            f"{SCHEMA_VERSION}; unknown fields will be ignored",
            stacklevel=2)
    return []


def validate_chrome_trace(payload: Dict) -> List[str]:
    """Validate a Chrome trace JSON object; returns a list of problems.

    An empty list means the trace is well-formed.  Every string in the
    returned list describes one independent violation (the validator keeps
    going so CI logs show all problems at once).
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array traceEvents"]
    dropped = 0
    other = payload.get("otherData")
    if isinstance(other, dict):
        dropped = int(other.get("dropped_events", 0) or 0)
        errors.extend(check_schema_version(
            other.get("schema_version"), "otherData.schema_version"))

    last_ts: Dict[tuple, float] = {}
    open_spans: Dict[tuple, List[str]] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event is not an object")
            continue
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where}: unknown ph {ph!r}")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing/empty name")
        pid, tid = ev.get("pid"), ev.get("tid")
        for label, v in (("pid", pid), ("tid", tid)):
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                errors.append(f"{where}: {label} must be a non-negative "
                              f"integer, got {v!r}")
        if ph == "M":
            continue  # metadata events carry no timestamp
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) \
                or ts != ts or ts in (float("inf"), float("-inf")) or ts < 0:
            errors.append(f"{where}: ts must be a finite non-negative "
                          f"number, got {ts!r}")
            continue
        key = (pid, tid)
        prev = last_ts.get(key)
        if prev is not None and ts < prev:
            errors.append(f"{where}: ts {ts} < previous {prev} on "
                          f"pid/tid {key} (non-monotone thread timeline)")
        last_ts[key] = float(ts)
        if dropped == 0:
            if ph == "B":
                open_spans.setdefault(key, []).append(name)
            elif ph == "E":
                stack = open_spans.get(key, [])
                if not stack:
                    errors.append(f"{where}: E {name!r} with no open B on "
                                  f"pid/tid {key}")
                elif stack[-1] != name:
                    errors.append(f"{where}: E {name!r} closes open B "
                                  f"{stack[-1]!r} on pid/tid {key} "
                                  f"(improper nesting)")
                    stack.pop()
                else:
                    stack.pop()
    if dropped == 0:
        for key, stack in open_spans.items():
            if stack:
                errors.append(f"unclosed span(s) {stack} on pid/tid {key}")
    return errors


def validate_ledger_record(record, where: str = "record") -> List[str]:
    """Validate one run-ledger row (see :mod:`repro.obs.ledger`).

    Checks the stable part of the ledger schema: a JSON object carrying a
    compatible ``schema_version``, non-empty ``kind``/``name`` strings,
    finite non-negative ``wall_seconds``/``peak_rss_bytes`` when present,
    and well-formed ``simulated`` entries (``label`` + numeric
    ``simulated_seconds``).  Returns a list of problems (empty = valid);
    minor-version skew warns rather than errors, matching
    :func:`check_schema_version`.
    """
    if not isinstance(record, dict):
        return [f"{where}: ledger record is not a JSON object"]
    errors = check_schema_version(record.get("schema_version"),
                                  f"{where}.schema_version")
    for field in ("kind", "name"):
        value = record.get(field)
        if not isinstance(value, str) or not value:
            errors.append(f"{where}: missing/empty {field}")
    for field in ("wall_seconds", "peak_rss_bytes"):
        value = record.get(field)
        if value is None:
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value != value or value < 0:
            errors.append(f"{where}: {field} must be a finite non-negative "
                          f"number, got {value!r}")
    simulated = record.get("simulated")
    if simulated is not None:
        if not isinstance(simulated, list):
            errors.append(f"{where}: simulated must be an array")
        else:
            for j, entry in enumerate(simulated):
                # simulated_seconds may be null: crashed/oom sweep points
                # are recorded as None (BenchRecorder.add).
                sim = entry.get("simulated_seconds") \
                    if isinstance(entry, dict) else False
                if not isinstance(entry, dict) \
                        or not isinstance(entry.get("label"), str) \
                        or not (sim is None or isinstance(sim, (int, float))):
                    errors.append(
                        f"{where}: simulated[{j}] must be an object with a "
                        f"string label and numeric (or null) "
                        f"simulated_seconds")
    return errors
