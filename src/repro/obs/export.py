"""Exporters: Chrome/Perfetto trace JSON, metrics dump, progress table.

Three views of one traced run:

``chrome_trace`` / ``write_chrome_trace``
    The Chrome trace-event JSON format (the ``traceEvents`` array flavour),
    loadable directly in ``ui.perfetto.dev`` or ``chrome://tracing``.  Each
    simulated PE becomes one pseudo-thread of a single process, so a 64-PE
    run opens as 64 parallel timelines; the event timestamps are the
    *simulated* per-PE clocks in microseconds, and the host wall clock of
    every event travels in its ``args`` for wall-vs-simulated triage.

``metrics_to_dict`` / ``write_metrics``
    JSON dump of the metrics registry: counters, gauges, histograms,
    per-round series and per-PE accumulators.

``progress_table``
    ASCII per-round table (vertices/edges surviving, bytes moved, clock
    skew, send imbalance) -- the quick-look companion to the paper's
    Section VII round-shrinkage discussion.
"""

from __future__ import annotations

import json
import math
import warnings
from pathlib import Path
from typing import Dict, List, Optional

from .metrics import MetricsRegistry
from .tracer import EventTracer
from .validate import SCHEMA_VERSION

#: pid used for the single simulated-machine process in exported traces.
TRACE_PID = 1
#: tid offset: PE ``r`` maps to tid ``r + 1`` (tid 0 is the machine-global
#: pseudo-thread that carries counter samples and machine-wide marks).
TID_BASE = 1


def _event_json(ev, deterministic: bool = False) -> Dict:
    """One tracer tuple -> one Chrome trace-event object."""
    ph, name, cat, rank, ts_sim, ts_wall, round_, phase, value = ev
    out: Dict = {
        "ph": ph,
        "name": name,
        "cat": cat,
        "pid": TRACE_PID,
        "tid": TID_BASE + rank if rank >= 0 else 0,
        "ts": ts_sim * 1e6,  # simulated seconds -> trace microseconds
    }
    args: Dict = {} if deterministic else {"wall_s": round(ts_wall, 9)}
    if round_ >= 0:
        args["round"] = round_
    if phase is not None and cat != "phase":
        args["phase"] = phase
    if ph == "C":
        args = {name: value}
    elif ph == "i":
        out["s"] = "t"  # instant scope: thread
    out["args"] = args
    return out


def chrome_trace(tracer: EventTracer,
                 metadata: Optional[Dict] = None,
                 deterministic: bool = False) -> Dict:
    """Render a tracer's ring buffer as a Chrome trace-event JSON object.

    The returned dict has a ``traceEvents`` array (metadata events naming
    the process and one thread per PE, then the recorded events in
    chronological order) plus ``otherData`` carrying machine facts and the
    ring-buffer drop count.

    ``deterministic=True`` omits the per-event host wall clock, leaving only
    simulated quantities: two runs of the same seeded workload then export
    byte-identical traces regardless of execution engine or host load (the
    engine-conformance tests rely on this; see docs/engines.md).
    """
    events: List[Dict] = [{
        "ph": "M", "name": "process_name", "pid": TRACE_PID, "tid": 0,
        "args": {"name": f"simulated machine (p={tracer.n_procs})"},
    }, {
        "ph": "M", "name": "thread_name", "pid": TRACE_PID, "tid": 0,
        "args": {"name": "machine"},
    }]
    for r in range(tracer.n_procs):
        events.append({
            "ph": "M", "name": "thread_name", "pid": TRACE_PID,
            "tid": TID_BASE + r, "args": {"name": f"PE {r}"},
        })
        events.append({
            "ph": "M", "name": "thread_sort_index", "pid": TRACE_PID,
            "tid": TID_BASE + r, "args": {"sort_index": r},
        })
    events.extend(_event_json(ev, deterministic) for ev in tracer.events())
    if tracer.dropped:
        warnings.warn(
            f"trace ring buffer dropped {tracer.dropped} events (capacity "
            f"{tracer.capacity}); the exported trace is truncated -- raise "
            f"REPRO_TRACE_CAP to keep the full stream", stacklevel=2)
    other = {
        "schema_version": SCHEMA_VERSION,
        "n_procs": tracer.n_procs,
        "n_events": len(tracer),
        "dropped_events": tracer.dropped,
        "time_unit": "simulated microseconds",
    }
    if metadata:
        other.update(metadata)
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": other}


def write_chrome_trace(tracer: EventTracer, path,
                       metadata: Optional[Dict] = None,
                       deterministic: bool = False) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace(tracer, metadata, deterministic)) + "\n")
    return path


# ----------------------------------------------------------------------
# Metrics dump.
# ----------------------------------------------------------------------
def _finite(x: float):
    """JSON-safe float: infinities from empty histograms become None."""
    return x if math.isfinite(x) else None


def metrics_to_dict(registry: MetricsRegistry,
                    deterministic: bool = False) -> Dict:
    """Serialise a metrics registry into plain JSON-ready structures.

    ``deterministic=True`` drops the host-wall-clock counters
    (``kernel/*/host_seconds``): everything remaining is a pure function of
    the simulated run, so same-seed runs serialise byte-identically across
    execution engines (docs/engines.md).
    """
    counters = sorted(registry.counters().items())
    if deterministic:
        counters = [(k, c) for k, c in counters
                    if not k.endswith("/host_seconds")]
    return {
        "schema_version": SCHEMA_VERSION,
        "counters": {k: c.value for k, c in counters},
        "gauges": {k: {"value": g.value, "max": g.max}
                   for k, g in sorted(registry.gauges().items())},
        "histograms": {
            k: {"count": h.count, "sum": h.total, "mean": h.mean,
                "min": _finite(h.min), "max": _finite(h.max),
                "buckets_pow2": {str(b): n
                                 for b, n in sorted(h.buckets.items())}}
            for k, h in sorted(registry.histograms().items())
        },
        "series": {k: [[step, value] for step, value in s.points]
                   for k, s in sorted(registry.all_series().items())},
        "per_pe": {k: list(p.values)
                   for k, p in sorted(registry.pe_counters().items())},
    }


def write_metrics(registry: MetricsRegistry, path,
                  metadata: Optional[Dict] = None,
                  deterministic: bool = False) -> Path:
    """Write the metrics dump as indented JSON; returns the path."""
    payload = metrics_to_dict(registry, deterministic)
    if metadata:
        payload["metadata"] = metadata
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# ASCII per-round progress table.
# ----------------------------------------------------------------------
#: Round-series names rendered by :func:`progress_table`, with headers.
ROUND_COLUMNS = (
    ("round/vertices", "vertices"),
    ("round/edges", "edges"),
    ("round/bytes", "bytes"),
    ("round/clock_skew_s", "skew [s]"),
    ("round/send_imbalance", "imbal"),
)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.3g}"


def kernel_pool_table(registry: MetricsRegistry, top: int = 10) -> str:
    """ASCII summary of kernel host time and buffer-pool reuse counters.

    One row per instrumented kernel (``kernel/*`` counters, descending
    host seconds, top ``top``), followed by a one-line pool summary from
    the ``pool/*`` counters.  Returns a short notice when the run recorded
    neither (untraced machines attach no sink).
    """
    counters = registry.counters()
    names = sorted({name.split("/")[1] for name in counters
                    if name.startswith("kernel/")})
    lines = []
    if names:
        stats = [(n, counters[f"kernel/{n}/calls"].value,
                  counters[f"kernel/{n}/host_seconds"].value)
                 for n in names]
        stats.sort(key=lambda s: -s[2])
        w = max(len(n) for n, _, _ in stats[:top])
        lines.append(f"{'kernel'.ljust(w)}  {'calls':>8}  {'host [s]':>9}")
        lines.append(f"{'-' * w}  {'-' * 8}  {'-' * 9}")
        for name, calls, secs in stats[:top]:
            lines.append(f"{name.ljust(w)}  {int(calls):>8}  {secs:>9.4f}")
    pool_keys = ("pool/hits", "pool/misses", "pool/bytes_reused")
    if any(k in counters for k in pool_keys):
        hits = int(counters["pool/hits"].value) if "pool/hits" in counters \
            else 0
        misses = int(counters["pool/misses"].value) \
            if "pool/misses" in counters else 0
        reused = counters["pool/bytes_reused"].value \
            if "pool/bytes_reused" in counters else 0.0
        total = hits + misses
        rate = 100.0 * hits / total if total else 0.0
        lines.append(f"buffer pool: {hits} hits / {misses} misses "
                     f"({rate:.0f}% reuse, {reused / 2**20:.1f} MiB "
                     f"served from pool)")
    dropped = _dropped_events(registry)
    if dropped:
        lines.append(_truncation_warning(dropped))
    return "\n".join(lines) if lines else \
        "(no kernel/pool counters recorded)"


def _dropped_events(registry: MetricsRegistry) -> int:
    """Ring-buffer drops mirrored into the ``trace/dropped_events`` counter."""
    counter = registry.counters().get("trace/dropped_events")
    return int(counter.value) if counter is not None else 0


def _truncation_warning(dropped: int) -> str:
    """One-line truncated-trace warning shown in table exports."""
    return (f"WARNING: trace ring buffer dropped {dropped} events -- "
            f"per-round data above is incomplete (raise REPRO_TRACE_CAP)")


def progress_table(registry: MetricsRegistry) -> str:
    """ASCII table of the per-round series (one row per algorithm round).

    Columns are the canonical ``round/*`` series recorded by the algorithm
    drivers; rounds missing a sample show ``-``.  Returns a short notice
    when no round series were recorded (e.g. the run never entered the
    Borůvka main loop).
    """
    series = registry.all_series()
    present = [(name, hdr) for name, hdr in ROUND_COLUMNS if name in series]
    if not present:
        return "(no per-round series recorded)"
    dropped = _dropped_events(registry)
    steps = sorted({step for name, _ in present
                    for step, _ in series[name].points})
    by_col = {name: dict(series[name].points) for name, _ in present}
    rows = [["round"] + [hdr for _, hdr in present]]
    for step in steps:
        rows.append([str(step)]
                    + [_fmt(by_col[name].get(step)) for name, _ in present])
    widths = [max(len(r[c]) for r in rows) for c in range(len(rows[0]))]
    lines = []
    for idx, r in enumerate(rows):
        lines.append("  ".join(cell.rjust(widths[c])
                               for c, cell in enumerate(r)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    if dropped:
        lines.append(_truncation_warning(dropped))
    return "\n".join(lines)
