"""Observability for the simulated machine: tracing, metrics, exporters.

The paper's experimental narrative hangs on knowing where simulated time
goes (Fig. 6 phase attribution, Fig. 2 all-to-all contention, Section VII
per-round shrinkage); this package is the structured-statistics layer that
makes those questions answerable *per round, per PE, per collective*
without a debugger:

* :class:`EventTracer` -- spans and instant events keyed by
  ``(phase, round, rank, collective)`` with both simulated and host wall
  clocks, in a bounded ring buffer (``Machine(trace_events=True)`` or
  ``REPRO_TRACE=1``);
* :class:`MetricsRegistry` -- counters, gauges, histograms, per-round
  series and per-PE accumulators;
* exporters -- Chrome/Perfetto trace JSON (one pseudo-thread per PE),
  a JSON metrics dump, and an ASCII per-round progress table;
* :func:`validate_chrome_trace` -- the schema checker CI's trace-smoke
  job runs on every emitted artifact, plus the ``schema_version``
  compatibility policy shared by every exported JSON artifact;
* :mod:`~repro.obs.critpath` -- the offline critical-path analyzer
  (span-DAG reconstruction, per-PE slack, per-round imbalance,
  wave-pipelining estimates) over a recorded event stream;
* :mod:`~repro.obs.ledger` -- the append-only JSONL run ledger every
  CLI/benchmark run appends its config + outcome row to.

Hard invariant (tested in ``tests/test_obs.py``): with tracing off *and*
on, simulated seconds, cost charging and sanitizer behaviour are
bit-for-bit identical -- observation never perturbs the machine.
See ``docs/observability.md``.
"""

from .tracer import DEFAULT_CAPACITY, EventTracer, trace_env_enabled
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PECounter,
    Series,
)
from .export import (
    chrome_trace,
    kernel_pool_table,
    metrics_to_dict,
    progress_table,
    write_chrome_trace,
    write_metrics,
)
from .validate import (
    SCHEMA_VERSION,
    check_schema_version,
    validate_chrome_trace,
    validate_ledger_record,
)
from .critpath import (
    CritPathAnalysis,
    TruncatedTraceError,
    analyze,
)
from .ledger import (
    append_record,
    ledger_path,
    make_record,
    read_ledger,
)
from .hooks import (
    observe_exchange,
    observe_filter_level,
    observe_filter_survivors,
    observe_round_end,
    observe_round_start,
    observe_sort,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "EventTracer",
    "trace_env_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PECounter",
    "Series",
    "chrome_trace",
    "metrics_to_dict",
    "kernel_pool_table",
    "progress_table",
    "write_chrome_trace",
    "write_metrics",
    "SCHEMA_VERSION",
    "check_schema_version",
    "validate_chrome_trace",
    "validate_ledger_record",
    "CritPathAnalysis",
    "TruncatedTraceError",
    "analyze",
    "append_record",
    "ledger_path",
    "make_record",
    "read_ledger",
    "observe_exchange",
    "observe_filter_level",
    "observe_filter_survivors",
    "observe_round_end",
    "observe_round_start",
    "observe_sort",
]
