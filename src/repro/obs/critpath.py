"""Offline critical-path analysis of a traced simulated run.

The paper argues from attribution: Fig. 6 splits time into phases, Fig. 2
splits all-to-all cost into startups vs volume, and Section VII reasons
about per-round shrink rates.  This module answers the sharper question
those figures gesture at -- *which PE and which collective actually
determined the simulated makespan* -- by reconstructing the per-PE span
DAG from an :class:`~repro.obs.tracer.EventTracer` stream (or an exported
Chrome trace) and walking the synchronisation edges backwards:

* every collective span records, per participating PE, the simulated
  clock at entry (``B``) and exit (``E``);
* the machine's collective semantics are ``clock[ranks] = max(entry
  clocks) + per_rank_cost``, so the *straggler* -- the participant with
  the latest entry clock -- is the unique predecessor that determined
  when the collective fired;
* the critical path is the backward chain anchor -> straggler ->
  straggler, alternating local-compute segments (clock advanced by
  ``Machine.charge`` between collectives) and collective segments.

Everything here is strictly offline: the analyzer only *reads* recorded
events and never touches machine state, so it lives outside the
tracing-invisibility invariant entirely (see docs/observability.md).

Exactness
---------
Analyzed directly from a live :class:`EventTracer`, the reported
:attr:`CritPathAnalysis.length` is the final simulated clock **bit-for-
bit** (it is the same float the machine stored), and
:func:`phase_breakdown` replays the machine's exclusive phase accounting
with identical per-PE arithmetic, so its totals equal
``Machine.phase_times`` exactly.  Analyzed from an exported Chrome trace,
timestamps round-trip through microseconds and may differ in the last
ulp; the structure of the path is unaffected.

A trace whose ring buffer dropped events is *refused*
(:class:`TruncatedTraceError`): the missing prefix would silently break
span matching and misattribute the path.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .tracer import EventTracer

#: Default message-startup latency used for the startup-share *estimate*
#: when the caller provides none (mirrors ``CostModel.alpha``).
DEFAULT_ALPHA = 2e-6


class TruncatedTraceError(ValueError):
    """The trace ring buffer dropped events; the stream cannot be analyzed.

    A truncated stream is missing its oldest spans, so span matching --
    and therefore the reconstructed DAG -- would be silently wrong.  Raise
    ``REPRO_TRACE_CAP`` (default 2^18 events) and re-record instead.
    """


@dataclass(frozen=True)
class CollectiveInstance:
    """One collective execution reconstructed from its per-PE spans.

    ``ranks[i]`` entered at simulated clock ``begins[i]`` and left at
    ``ends[i]``; the machine synchronised everyone to ``sync_time``
    (the latest entry) before charging per-rank costs.
    """

    name: str
    round: int
    phase: Optional[str]
    ranks: Tuple[int, ...]
    begins: Tuple[float, ...]
    ends: Tuple[float, ...]

    @property
    def sync_time(self) -> float:
        """The barrier instant: the latest participant entry clock."""
        return max(self.begins)

    @property
    def straggler(self) -> int:
        """The participant whose late arrival determined :attr:`sync_time`."""
        return self.ranks[max(range(len(self.ranks)),
                              key=lambda i: self.begins[i])]

    @property
    def finish(self) -> float:
        """The latest participant exit clock."""
        return max(self.ends)


@dataclass(frozen=True)
class PathSegment:
    """One interval of the critical path on one PE's timeline.

    ``kind`` is ``"compute"`` (clock advanced by local charges between
    collectives) or ``"collective"`` (the sync-to-exit interval of the
    collective named ``name``).
    """

    rank: int
    start: float
    end: float
    kind: str
    name: str
    phase: Optional[str]
    round: int

    @property
    def duration(self) -> float:
        """Simulated seconds covered by this segment."""
        return self.end - self.start


@dataclass(frozen=True)
class RoundImbalance:
    """Per-round load-imbalance statistics over the participating PEs.

    ``attribution`` splits the straggler PE's in-round time into
    ``compute`` (outside collective spans), ``wait`` (arrival-to-sync
    inside spans), ``comm`` (sync-to-exit inside spans) and
    ``startup_alpha_est`` (the estimated message-startup share of
    ``comm``).
    """

    round: int
    max_s: float
    mean_s: float
    p99_s: float
    straggler: int
    attribution: Dict[str, float]


@dataclass(frozen=True)
class WaveRound:
    """Wave-pipelining estimate for one round boundary.

    ``slack_mean_s``/``slack_max_s`` describe how long PEs idled at the
    boundary after round ``round``; ``prologue_s`` is the post-sync
    duration of round ``round + 1``'s first collective; ``benefit_s`` is
    the overlappable portion -- ``min(prologue, mean slack)``, an
    optimistic upper bound on what wave-pipelining the prologue into the
    barrier could save (docs/rounds.md, ROADMAP wave-scheduler item).
    """

    round: int
    slack_mean_s: float
    slack_max_s: float
    prologue_s: float
    benefit_s: float


@dataclass
class CritPathAnalysis:
    """Full analysis of one traced run (see :func:`analyze`).

    ``length`` equals the final simulated clock witnessed by the trace;
    ``segments`` tile ``[0, length]`` in chronological order.
    """

    n_procs: int
    #: Simulated critical-path length == final simulated seconds.
    length: float
    #: PE whose clock finished last (the path anchor).
    anchor_rank: int
    #: Chronological critical-path segments tiling ``[0, length]``.
    segments: List[PathSegment] = field(default_factory=list)
    #: Path seconds by ``compute`` / ``collective`` / ``startup_alpha_est``.
    by_kind: Dict[str, float] = field(default_factory=dict)
    #: Collective path seconds by operation name.
    by_op: Dict[str, float] = field(default_factory=dict)
    #: Exclusive per-phase simulated seconds (max over PEs), Fig. 6 shaped.
    phase_times: Dict[str, float] = field(default_factory=dict)
    #: Final witnessed clock per PE (0.0 for PEs without events).
    per_pe_finish: List[float] = field(default_factory=list)
    #: ``length`` minus each PE's final clock (idle tail slack).
    per_pe_slack: List[float] = field(default_factory=list)
    #: Per-round imbalance statistics (rounds seen in the trace).
    rounds: List[RoundImbalance] = field(default_factory=list)
    #: Per-boundary wave-pipelining estimates.
    wave: List[WaveRound] = field(default_factory=list)
    #: Total estimated wave-pipelining benefit (sum of per-round benefits).
    wave_benefit_s: float = 0.0

    def summary(self) -> Dict:
        """Compact JSON-ready summary (the ledger's ``critical_path`` field)."""
        return {
            "length_s": self.length,
            "anchor_rank": self.anchor_rank,
            "n_segments": len(self.segments),
            "by_kind": dict(self.by_kind),
            "by_op": dict(self.by_op),
            "phase_times": dict(self.phase_times),
            "slack_max_s": max(self.per_pe_slack, default=0.0),
            "slack_mean_s": (sum(self.per_pe_slack) / len(self.per_pe_slack)
                             if self.per_pe_slack else 0.0),
            "rounds": len(self.rounds),
            "wave_benefit_s": self.wave_benefit_s,
        }


# ----------------------------------------------------------------------
# Event normalisation: tracer tuples or Chrome-trace JSON -> tuples.
# ----------------------------------------------------------------------
def _events_from_tracer(tracer: EventTracer) -> List[Tuple]:
    """Snapshot a tracer's retained events, refusing truncated streams."""
    if tracer.dropped:
        raise TruncatedTraceError(
            f"trace ring buffer dropped {tracer.dropped} events (capacity "
            f"{tracer.capacity}); the span stream is incomplete -- raise "
            f"REPRO_TRACE_CAP and re-record before analyzing")
    return list(tracer.events())


def _events_from_chrome(payload: Dict) -> Tuple[List[Tuple], Optional[int]]:
    """Convert Chrome-trace JSON back into tracer-shaped event tuples.

    Timestamps are divided back from microseconds to seconds, so values
    may differ from the live tracer's in the last ulp (module docstring).
    Returns ``(events, n_procs)`` with ``n_procs`` from ``otherData`` when
    present.
    """
    other = payload.get("otherData") or {}
    dropped = int(other.get("dropped_events", 0) or 0)
    if dropped:
        raise TruncatedTraceError(
            f"trace reports {dropped} dropped events (otherData."
            f"dropped_events); the span stream is incomplete -- raise "
            f"REPRO_TRACE_CAP and re-record before analyzing")
    events: List[Tuple] = []
    for ev in payload.get("traceEvents", []):
        ph = ev.get("ph")
        if ph == "M":
            continue
        args = ev.get("args") or {}
        tid = ev.get("tid", 0)
        rank = tid - 1 if isinstance(tid, int) and tid >= 1 else -1
        ts = float(ev.get("ts", 0.0)) / 1e6
        value = None
        if ph == "C" and args:
            value = next(iter(args.values()))
        events.append((ph, ev.get("name", ""), ev.get("cat", ""), rank,
                       ts, 0.0, int(args.get("round", -1)),
                       args.get("phase"), value))
    n_procs = other.get("n_procs")
    return events, (int(n_procs) if n_procs is not None else None)


def _normalize(source, n_procs: Optional[int]) -> Tuple[List[Tuple], int]:
    """Accept a tracer or a Chrome-trace payload; return (events, n_procs)."""
    if isinstance(source, EventTracer):
        events = _events_from_tracer(source)
        return events, (n_procs if n_procs is not None else source.n_procs)
    if isinstance(source, dict):
        events, payload_procs = _events_from_chrome(source)
        if n_procs is None:
            n_procs = payload_procs
    elif isinstance(source, (list, tuple)):
        events = list(source)
    else:
        raise TypeError(
            f"analyze() takes an EventTracer, a Chrome-trace payload dict "
            f"or an event-tuple sequence, got {type(source).__name__}")
    if n_procs is None:
        n_procs = max((ev[3] for ev in events), default=-1) + 1
    return events, max(int(n_procs), 1)


# ----------------------------------------------------------------------
# DAG reconstruction.
# ----------------------------------------------------------------------
def collect_instances(events: Sequence[Tuple]) -> List[CollectiveInstance]:
    """Group per-PE collective spans into :class:`CollectiveInstance` s.

    Recording is single-threaded, so one collective's ``B`` events form a
    contiguous run in the stream (one per participant, emitted by
    ``begin_ranks``), as do its ``E`` events; ``B`` and ``E`` runs of the
    same name pair up FIFO because collectives never nest within a rank.
    """
    b_runs: Dict[str, List[Tuple[List, int, Optional[str]]]] = {}
    instances: List[Tuple[int, CollectiveInstance]] = []
    run_name: Optional[str] = None
    run_ph: Optional[str] = None
    run: List[Tuple[int, float]] = []
    run_round, run_phase = -1, None
    seq = 0

    def flush() -> None:
        nonlocal run_name, run_ph, run, seq
        if run_name is None:
            return
        if run_ph == "B":
            b_runs.setdefault(run_name, []).append(
                (run, run_round, run_phase))
        else:  # E run: close the oldest open B run of the same name
            pending = b_runs.get(run_name)
            if pending:
                begins, rnd, phase = pending.pop(0)
                bmap = dict(begins)
                ranks = tuple(r for r, _ in begins)
                ends_map = dict(run)
                instances.append((seq, CollectiveInstance(
                    name=run_name, round=rnd, phase=phase, ranks=ranks,
                    begins=tuple(bmap[r] for r in ranks),
                    ends=tuple(ends_map.get(r, bmap[r]) for r in ranks))))
                seq += 1
        run_name, run_ph, run = None, None, []

    for ev in events:
        ph, name, cat, rank, ts_sim = ev[0], ev[1], ev[2], ev[3], ev[4]
        if cat != "collective" or ph not in ("B", "E"):
            flush()
            continue
        if run_name == name and run_ph == ph:
            run.append((rank, ts_sim))
            continue
        flush()
        run_name, run_ph = name, ph
        run = [(rank, ts_sim)]
        run_round, run_phase = ev[6], ev[7]
    flush()
    return [inst for _, inst in instances]


def _startup_estimate(name: str, group_size: int, alpha: float) -> float:
    """Estimated message-startup (alpha) share of one collective's cost.

    Heuristic keyed on the operation name, mirroring the cost model
    (docs/cost_model.md): direct all-to-all pays ``alpha * p``, a grid hop
    ``alpha * sqrt(p)``, a hypercube dimension one startup, and tree
    collectives ``alpha * ceil(log2 p)``.
    """
    if group_size <= 1:
        return alpha
    if name.startswith("alltoallv_direct"):
        return alpha * group_size
    if name.startswith("alltoallv_grid"):
        return alpha * math.sqrt(group_size)
    if name.startswith("alltoallv_hypercube"):
        return alpha
    return alpha * math.ceil(math.log2(group_size))


def critical_path(events: Sequence[Tuple], n_procs: int,
                  alpha: float = DEFAULT_ALPHA,
                  ) -> Tuple[List[PathSegment], float, int,
                             Dict[str, float], Dict[str, float]]:
    """Walk the span DAG backwards from the last event to time zero.

    Returns ``(segments, length, anchor_rank, by_kind, by_op)`` where
    ``segments`` tile ``[0, length]`` chronologically and ``length`` is
    the latest witnessed per-PE clock (bit-for-bit the machine's final
    clock when the run ends in a machine-wide collective, as every
    algorithm here does).
    """
    instances = collect_instances(events)
    # Per-rank chronological index of (exit clock, instance).
    per_rank_ends: Dict[int, List[float]] = {}
    per_rank_inst: Dict[int, List[CollectiveInstance]] = {}
    for inst in instances:
        for r, e in zip(inst.ranks, inst.ends):
            per_rank_ends.setdefault(r, []).append(e)
            per_rank_inst.setdefault(r, []).append(inst)

    anchor_rank, length = -1, 0.0
    for ev in events:
        if ev[3] >= 0 and ev[4] >= length:
            length, anchor_rank = ev[4], ev[3]
    if anchor_rank < 0:
        return [], 0.0, -1, {}, {}

    segments: List[PathSegment] = []
    by_kind: Dict[str, float] = {"compute": 0.0, "collective": 0.0,
                                 "startup_alpha_est": 0.0}
    by_op: Dict[str, float] = {}
    rank, t = anchor_rank, length
    last_phase: Optional[str] = None
    last_round = -1
    for _ in range(2 * len(instances) + 2):
        ends = per_rank_ends.get(rank, [])
        idx = bisect_right(ends, t) - 1
        if idx < 0:
            if t > 0.0:
                segments.append(PathSegment(rank, 0.0, t, "compute",
                                            "local", last_phase, last_round))
                by_kind["compute"] += t
            break
        inst = per_rank_inst[rank][idx]
        exit_clock = ends[idx]
        if t > exit_clock:
            segments.append(PathSegment(rank, exit_clock, t, "compute",
                                        "local", inst.phase, inst.round))
            by_kind["compute"] += t - exit_clock
        sync = inst.sync_time
        if exit_clock > sync:
            segments.append(PathSegment(rank, sync, exit_clock, "collective",
                                        inst.name, inst.phase, inst.round))
            dur = exit_clock - sync
            by_kind["collective"] += dur
            by_op[inst.name] = by_op.get(inst.name, 0.0) + dur
            by_kind["startup_alpha_est"] += min(
                dur, _startup_estimate(inst.name, len(inst.ranks), alpha))
        next_rank, next_t = inst.straggler, sync
        if next_t >= t:  # zero-cost collective: force monotone progress
            next_t = min(next_t, t)
            if next_rank == rank and next_t == t:
                # No progress possible (degenerate zero-duration span):
                # close the path with the remaining prefix as compute so
                # the segments still tile [0, length].
                if t > 0.0:
                    segments.append(PathSegment(rank, 0.0, t, "compute",
                                                "local", inst.phase,
                                                inst.round))
                    by_kind["compute"] += t
                break
        rank, t, last_phase, last_round = (next_rank, next_t, inst.phase,
                                           inst.round)
        if t <= 0.0:
            break
    segments.reverse()
    return segments, length, anchor_rank, by_kind, by_op


# ----------------------------------------------------------------------
# Phase attribution (Fig. 6): exact replay of the machine's accounting.
# ----------------------------------------------------------------------
def phase_breakdown(events: Sequence[Tuple], n_procs: int
                    ) -> Tuple[Dict[str, float], Dict[str, np.ndarray]]:
    """Exclusive per-phase time replayed from the ``phase`` span events.

    Replays exactly the arithmetic of ``Machine.phase`` per PE (freeze the
    outer phase at inner entry, restart its window at inner exit), so on a
    live tracer the returned totals equal ``Machine.phase_times`` --
    and the per-PE arrays ``Machine.phase_times_per_pe`` -- bit-for-bit.
    Returns ``(phase -> max over PEs, phase -> per-PE array)``.
    """
    per_pe: Dict[str, np.ndarray] = {}
    stacks: Dict[int, List[List]] = {}

    def acc(name: str, rank: int, delta: float) -> None:
        arr = per_pe.get(name)
        if arr is None:
            arr = per_pe[name] = np.zeros(n_procs, dtype=np.float64)
        arr[rank] += delta

    for ev in events:
        ph, name, cat, rank, ts = ev[0], ev[1], ev[2], ev[3], ev[4]
        if cat != "phase" or rank < 0:
            continue
        stack = stacks.setdefault(rank, [])
        if ph == "B":
            if stack:
                outer = stack[-1]
                acc(outer[0], rank, ts - outer[1])
            stack.append([name, ts])
        elif ph == "E" and stack:
            top = stack.pop()
            acc(top[0], rank, ts - top[1])
            if stack:
                stack[-1][1] = ts
    totals = {name: float(arr.max()) for name, arr in per_pe.items()}
    return totals, per_pe


# ----------------------------------------------------------------------
# Per-round imbalance and the wave-pipelining estimate.
# ----------------------------------------------------------------------
def _round_windows(events: Sequence[Tuple]
                   ) -> Dict[int, Dict[int, Tuple[float, float]]]:
    """Per round, per rank: (first, last) witnessed simulated clock."""
    windows: Dict[int, Dict[int, Tuple[float, float]]] = {}
    for ev in events:
        rnd, rank, ts = ev[6], ev[3], ev[4]
        if rnd < 0 or rank < 0:
            continue
        ranks = windows.setdefault(rnd, {})
        lo, hi = ranks.get(rank, (ts, ts))
        ranks[rank] = (min(lo, ts), max(hi, ts))
    return windows


def round_imbalance(events: Sequence[Tuple], n_procs: int,
                    alpha: float = DEFAULT_ALPHA) -> List[RoundImbalance]:
    """Max/mean/p99 per-PE time per round, with straggler attribution.

    A PE's time in a round is the span between its first and last
    round-tagged event; PEs without round events contribute zero.  The
    straggler (max time) gets its window split into compute / wait / comm
    / estimated startup from its collective spans in that round.
    """
    windows = _round_windows(events)
    by_round_inst: Dict[int, List[CollectiveInstance]] = {}
    for inst in collect_instances(events):
        by_round_inst.setdefault(inst.round, []).append(inst)
    out: List[RoundImbalance] = []
    for rnd in sorted(windows):
        ranks = windows[rnd]
        times = np.zeros(n_procs, dtype=np.float64)
        for r, (lo, hi) in ranks.items():
            if r < n_procs:
                times[r] = hi - lo
        straggler = int(times.argmax())
        wait = comm = startup = 0.0
        for inst in by_round_inst.get(rnd, ()):
            if straggler not in inst.ranks:
                continue
            i = inst.ranks.index(straggler)
            sync = inst.sync_time
            wait += max(sync - inst.begins[i], 0.0)
            dur = inst.ends[i] - max(sync, inst.begins[i])
            comm += max(dur, 0.0)
            startup += min(max(dur, 0.0),
                           _startup_estimate(inst.name, len(inst.ranks),
                                             alpha))
        compute = max(float(times[straggler]) - wait - comm, 0.0)
        out.append(RoundImbalance(
            round=rnd,
            max_s=float(times.max()),
            mean_s=float(times.mean()),
            p99_s=float(np.percentile(times, 99)),
            straggler=straggler,
            attribution={"compute": compute, "wait": wait, "comm": comm,
                         "startup_alpha_est": min(startup, comm)},
        ))
    return out


def wave_pipelining_estimate(events: Sequence[Tuple], n_procs: int
                             ) -> Tuple[List[WaveRound], float]:
    """Per-boundary estimate of the overlappable wave-pipelining benefit.

    At the boundary after round ``n``, each PE's slack is how long it
    idled before the slowest PE arrived; round ``n+1``'s prologue is the
    post-sync duration of its first collective.  The benefit estimate is
    ``min(prologue, mean slack)`` per boundary -- an optimistic upper
    bound on what executing the prologue inside the barrier could save
    (the ROADMAP wave-scheduler item; see docs/rounds.md).
    """
    windows = _round_windows(events)
    first_inst: Dict[int, CollectiveInstance] = {}
    for inst in collect_instances(events):
        if inst.round >= 0 and inst.round not in first_inst:
            first_inst[inst.round] = inst
    out: List[WaveRound] = []
    total = 0.0
    rounds = sorted(windows)
    for rnd in rounds:
        nxt = first_inst.get(rnd + 1)
        if nxt is None:
            continue
        ends = [hi for _, hi in windows[rnd].values()]
        boundary = max(ends)
        slack = np.asarray([boundary - e for e in ends], dtype=np.float64)
        prologue = max(nxt.finish - nxt.sync_time, 0.0)
        benefit = min(prologue, float(slack.mean()))
        out.append(WaveRound(round=rnd, slack_mean_s=float(slack.mean()),
                             slack_max_s=float(slack.max()),
                             prologue_s=prologue, benefit_s=benefit))
        total += benefit
    return out, total


# ----------------------------------------------------------------------
# Entry point.
# ----------------------------------------------------------------------
def analyze(source, n_procs: Optional[int] = None,
            alpha: float = DEFAULT_ALPHA) -> CritPathAnalysis:
    """Analyze one traced run end to end.

    ``source`` is a live :class:`EventTracer`, a Chrome-trace payload
    dict (as produced by :func:`repro.obs.export.chrome_trace`), or a raw
    event-tuple sequence.  Raises :class:`TruncatedTraceError` when the
    stream dropped events.  ``alpha`` feeds the startup-share estimates
    only; every other number is read directly from the recorded clocks.
    """
    events, n_procs = _normalize(source, n_procs)
    segments, length, anchor, by_kind, by_op = critical_path(
        events, n_procs, alpha)
    phase_totals, _ = phase_breakdown(events, n_procs)
    finish = [0.0] * n_procs
    for ev in events:
        if 0 <= ev[3] < n_procs and ev[4] > finish[ev[3]]:
            finish[ev[3]] = ev[4]
    slack = [length - f for f in finish]
    rounds = round_imbalance(events, n_procs, alpha)
    wave, wave_total = wave_pipelining_estimate(events, n_procs)
    return CritPathAnalysis(
        n_procs=n_procs, length=length, anchor_rank=anchor,
        segments=segments, by_kind=by_kind, by_op=by_op,
        phase_times=phase_totals, per_pe_finish=finish, per_pe_slack=slack,
        rounds=rounds, wave=wave, wave_benefit_s=wave_total)
