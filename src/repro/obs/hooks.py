"""Instrumentation hooks the algorithm drivers call into.

These helpers centralise what a traced run records per Borůvka round and
per all-to-all exchange, so the drivers stay one-liner-instrumented and the
"observation never perturbs the machine" invariant is auditable in one
place: every function here only *reads* machine state (clocks, byte
totals) and writes to the tracer/metrics objects.

All hooks are no-ops (a couple of ``is None`` checks) on untraced
machines, and none of them may issue collectives, charge cost, or consume
RNG draws.
"""

from __future__ import annotations

import numpy as np


def observe_round_start(machine, round_no: int, vertices: int,
                        edges: int, label: str = "round") -> None:
    """Record the state of the contracted graph entering one Borůvka round.

    ``vertices``/``edges`` must be values the driver already computed for
    its own control flow -- recomputing them here would issue extra
    collectives and break the tracing-invisibility invariant.  ``label`` is
    the round body's name (:attr:`repro.core.rounds.RoundBody.label`),
    stamped onto the boundary markers so offline analyzers can tell which
    loop a round belongs to.
    """
    ev, mx = machine.events, machine.metrics
    if ev is None and mx is None:
        return
    now = float(machine.clock.max())
    if ev is not None:
        ev.set_round(round_no)
        ev.instant(f"round {round_no}", -1, now, cat="round")
        ev.counter("vertices", float(vertices), now)
        ev.counter("edges", float(edges), now)
    if mx is not None:
        mx.series("round/vertices").record(round_no, vertices)
        mx.series("round/edges").record(round_no, edges)
        mx.gauge("rounds").set(round_no + 1)
        mx.scratch["round_bytes0"] = machine.bytes_communicated
        # Per-PE clock snapshot for the round-end load-imbalance stats;
        # a copy of values the machine already holds (read-only on it).
        mx.scratch["round_clock0"] = machine.clock.copy()
        pe = mx.pe_counter("alltoall/sent_bytes_per_pe", machine.n_procs)
        mx.scratch["round_pe_bytes0"] = pe.values.copy()


def observe_round_end(machine, round_no: int, label: str = "round") -> None:
    """Record per-round deltas after one Borůvka round completed.

    Derives the round's communicated bytes, per-PE clock skew, send-volume
    imbalance and per-PE time statistics (max/mean/p99 plus the straggler
    rank -- the load-imbalance inputs of the critical-path analyzer) from
    the snapshots taken at round start, and closes the round with a
    boundary marker on the tracer.
    """
    mx = machine.metrics
    if mx is not None:
        clocks = machine.clock
        skew = float(clocks.max() - clocks.min())
        mx.series("round/clock_skew_s").record(round_no, skew)
        bytes0 = mx.scratch.pop("round_bytes0", 0.0)
        mx.series("round/bytes").record(
            round_no, machine.bytes_communicated - bytes0)
        clock0 = mx.scratch.pop("round_clock0", None)
        pe_time = clocks - clock0 if clock0 is not None else clocks
        mx.series("round/pe_time_max_s").record(
            round_no, float(pe_time.max()))
        mx.series("round/pe_time_mean_s").record(
            round_no, float(pe_time.mean()))
        mx.series("round/pe_time_p99_s").record(
            round_no, float(np.percentile(pe_time, 99)))
        mx.series("round/straggler").record(
            round_no, int(pe_time.argmax()))
        pe = mx.pe_counter("alltoall/sent_bytes_per_pe", machine.n_procs)
        prev = mx.scratch.pop("round_pe_bytes0", None)
        delta = pe.values - prev if prev is not None else pe.values
        mean = float(delta.mean())
        imbalance = float(delta.max() / mean) if mean > 0 else 1.0
        mx.series("round/send_imbalance").record(round_no, imbalance)
    ev = machine.events
    if ev is not None:
        # Boundary marker while the round tag is still set, so offline
        # analyzers can delimit rounds without guessing from span tags.
        ev.instant(f"round {round_no} end [{label}]", -1,
                   float(machine.clock.max()), cat="round")
        ev.set_round(-1)


def observe_exchange(comm, op: str, counts, row_bytes: float) -> None:
    """Record one all-to-all exchange (or indirect hop) into the metrics.

    ``counts[i, j]`` rows travel from communicator rank ``i`` to ``j`` at
    ``row_bytes`` bytes per row -- the same matrix the communication trace
    and sanitizer shadow receive, so all three observers agree by
    construction.
    """
    mx = comm.machine.metrics
    if mx is None:
        return
    counts = np.asarray(counts)
    total_rows = float(counts.sum())
    messages = int(np.count_nonzero(counts))
    total_bytes = total_rows * row_bytes
    mx.counter(f"alltoall/{op}/exchanges").inc()
    mx.counter(f"alltoall/{op}/messages").inc(messages)
    mx.counter(f"alltoall/{op}/bytes").inc(total_bytes)
    if messages:
        mx.histogram(f"alltoall/{op}/bytes_per_message").observe(
            total_bytes / messages)
    bytes_out = counts.sum(axis=1).astype(np.float64) * row_bytes
    mx.pe_counter("alltoall/sent_bytes_per_pe",
                  comm.machine.n_procs).add(bytes_out, comm.ranks)


def observe_filter_level(machine, depth: int, edges_before: int) -> None:
    """Record one Filter-Borůvka recursion entering depth ``depth``."""
    mx = machine.metrics
    if mx is not None:
        mx.counter("filter/recursions").inc()
        mx.gauge("filter/max_depth").set(depth)
        mx.series("filter/edges_at_depth").record(depth, edges_before)
    ev = machine.events
    if ev is not None:
        ev.instant(f"filter depth {depth}", -1, float(machine.clock.max()),
                   cat="filter")


def observe_filter_survivors(machine, depth: int, edges_heavy: int,
                             edges_surviving: int) -> None:
    """Record the outcome of one FILTER step at recursion depth ``depth``."""
    mx = machine.metrics
    if mx is not None:
        mx.counter("filter/heavy_edges_filtered").inc(
            edges_heavy - edges_surviving)
        mx.series("filter/survivors_at_depth").record(depth, edges_surviving)


def observe_fault(machine, kind: str, detail: str, rank: int = -1) -> None:
    """Record one injected fault event (repro.faults) into tracer/metrics.

    ``kind`` is the fault flavour (``msg_drop``, ``corrupt``, ``straggle``,
    ``pe_fail``); ``rank`` pins the instant to the affected PE's timeline
    (-1 = machine-global).  Like every hook here this only *observes*: the
    injector does all cost charging itself, before or after calling in.
    """
    ev, mx = machine.events, machine.metrics
    if ev is None and mx is None:
        return
    # Rank-pinned instants must sit on that PE's own timeline -- the global
    # max clock could be ahead of the victim's clock and would render as a
    # non-monotone thread timeline in the exported trace.
    now = float(machine.clock[rank] if rank >= 0 else machine.clock.max())
    if ev is not None:
        ev.instant(f"fault/{kind}: {detail}", rank, now, cat="fault")
    if mx is not None:
        mx.counter(f"faults/{kind}/injected").inc()


def observe_recovery(machine, round_no: int, failed_pes: list) -> None:
    """Record one completed checkpoint-restore (round replay imminent)."""
    ev, mx = machine.events, machine.metrics
    if ev is None and mx is None:
        return
    now = float(machine.clock.max())
    if ev is not None:
        ev.instant(f"recover: round {round_no} restored after PE(s) "
                   f"{failed_pes} failed", -1, now, cat="fault")
    if mx is not None:
        mx.counter("faults/recoveries").inc()
        mx.series("faults/replays_at_round").record(
            round_no, mx.counter("faults/recoveries").value)


def observe_sort(comm, method: str, total_rows: int) -> None:
    """Count one distributed-sort invocation by dispatched method."""
    mx = comm.machine.metrics
    if mx is not None:
        mx.counter(f"sort/{method}/calls").inc()
        mx.counter(f"sort/{method}/rows").inc(total_rows)
