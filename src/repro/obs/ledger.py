"""Append-only JSONL run ledger: every run leaves one auditable row.

The perf-regression observatory needs history: the BENCH JSON records
capture one run each, but answering "did this change regress anything?"
needs *rows over time* -- config, engine, dtype policy, fault schedule,
simulated series, wall seconds, peak RSS, pool hit rates, round counts and
the critical-path summary, per run, in one greppable place.  This module
provides that as newline-delimited JSON under ``REPRO_TRACE_DIR`` (or an
explicit ``REPRO_LEDGER`` path): the CLI's ``mst``/``profile`` commands and
the benchmark recorder append one row per run, and ``repro report`` reads
the file back for diffs and regression tables.

Schema stability: every row carries ``schema_version`` (stamped from
:data:`repro.obs.validate.SCHEMA_VERSION`) and is checked by
:func:`repro.obs.validate.validate_ledger_record` before it is written --
a malformed row never reaches the file.  Rows are purely observational
(host facts plus already-computed simulated numbers); writing the ledger
never touches machine state, so it sits outside the tracing-invisibility
invariant by construction.
"""

from __future__ import annotations

import json
import os
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional

from .validate import SCHEMA_VERSION, validate_ledger_record

#: File name used under ``REPRO_TRACE_DIR`` when no explicit path is set.
LEDGER_FILENAME = "ledger.jsonl"


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process tree so far, in bytes.

    ``ru_maxrss`` covers the whole process lifetime (it never decreases),
    so the value recorded for a run is an upper bound including any
    earlier work in the same interpreter.  Includes worker children (the
    multiprocess engine); returns ``None`` where ``resource`` is missing.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    peak = max(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
               resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    # Linux reports KiB; macOS reports bytes.
    return int(peak) * (1 if sys.platform == "darwin" else 1024)


def ledger_path(explicit=None) -> Optional[Path]:
    """Resolve where ledger rows go, or ``None`` when no ledger is active.

    Precedence: the ``explicit`` argument, then ``REPRO_LEDGER`` (a file
    path), then ``$REPRO_TRACE_DIR/ledger.jsonl``.  With none of the three
    set, ledger appends are silent no-ops -- plain runs never scatter
    files.
    """
    if explicit:
        return Path(explicit)
    env = os.environ.get("REPRO_LEDGER", "").strip()
    if env:
        return Path(env)
    trace_dir = os.environ.get("REPRO_TRACE_DIR", "").strip()
    if trace_dir:
        return Path(trace_dir) / LEDGER_FILENAME
    return None


def _pool_stats(machine) -> Dict[str, float]:
    """Buffer-pool reuse summary from the machine's plain-int pool stats."""
    pool = machine.pool
    total = pool.hits + pool.misses
    return {
        "hits": int(pool.hits),
        "misses": int(pool.misses),
        "hit_rate": (pool.hits / total) if total else 0.0,
        "bytes_reused": int(pool.bytes_reused),
        "bytes_allocated": int(pool.bytes_allocated),
    }


def make_record(kind: str, name: str, *,
                config: Optional[Dict] = None,
                machine=None,
                simulated: Optional[List[Dict]] = None,
                rounds: Optional[int] = None,
                wall_seconds: Optional[float] = None,
                critical_path: Optional[Dict] = None,
                extra: Optional[Dict] = None) -> Dict:
    """Build one ledger row (validated, JSON-ready).

    ``kind`` classifies the producer (``cli`` / ``benchmark`` / test);
    ``name`` identifies the run (subcommand or BENCH family).  When a
    ``machine`` is given, its engine name + utilization, dtype policy,
    fault schedule and pool hit rates are recorded; ``simulated`` entries
    must be ``{"label": ..., "simulated_seconds": ...}`` pairs the caller
    already computed (the ledger never recomputes simulated numbers).
    """
    record: Dict = {
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "name": name,
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "config": dict(config or {}),
        "dtype_policy": os.environ.get("REPRO_DTYPES", "narrow") or "narrow",
        "wall_seconds": wall_seconds,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    if machine is not None:
        record["n_procs"] = machine.n_procs
        record["engine"] = machine.engine.name
        record["utilization"] = machine.engine.utilization()
        record["pool"] = _pool_stats(machine)
        faults = getattr(machine, "faults", None)
        record["fault_schedule"] = (str(faults.schedule)
                                    if faults is not None else None)
    if simulated is not None:
        record["simulated"] = list(simulated)
    if rounds is not None:
        record["rounds"] = int(rounds)
    if critical_path is not None:
        record["critical_path"] = critical_path
    if extra:
        record.update(extra)
    return record


def append_record(record: Dict, path=None) -> Optional[Path]:
    """Validate and append one row; returns the path (None = no-op).

    The row is checked by :func:`validate_ledger_record` first and a
    ``ValueError`` raised on problems -- the ledger file only ever holds
    schema-valid rows.  With no resolvable path (see :func:`ledger_path`)
    nothing is written.
    """
    path = ledger_path(path)
    if path is None:
        return None
    problems = validate_ledger_record(record)
    if problems:
        raise ValueError("refusing to append invalid ledger record: "
                         + "; ".join(problems))
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def read_ledger(path) -> List[Dict]:
    """Read every row of a ledger file (skipping blank lines).

    Raises ``FileNotFoundError`` when the file does not exist and
    ``ValueError`` on unparseable lines; schema validation is left to the
    caller (``repro report`` validates and reports per-row problems).
    """
    path = Path(path)
    rows: List[Dict] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{lineno}: unparseable ledger line: {exc}") from exc
    return rows


def latest_by_name(rows: List[Dict]) -> Dict[str, Dict]:
    """The most recent row per run ``name`` (file order = append order)."""
    out: Dict[str, Dict] = {}
    for row in rows:
        name = row.get("name")
        if isinstance(name, str) and name:
            out[name] = row
    return out
