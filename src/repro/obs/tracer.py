"""Structured event tracing for the simulated machine.

The tracer records *spans* (begin/end pairs) and *instant* events keyed by
``(phase, round, rank, collective)`` into a bounded ring buffer.  Every
event carries **two clocks**:

* the **simulated** per-PE clock (seconds on the cost-model clocks -- the
  quantity the paper's figures are plotted in), and
* the **host wall clock** (``time.perf_counter`` relative to tracer
  creation -- what the kernel engine actually costs us).

Events are plain tuples (see :data:`FIELDS`) so recording is a list append:
with tracing disabled the machine holds no tracer at all and every
instrumentation site reduces to one ``is None`` check, which is what makes
the observation layer safe to leave compiled into every hot path.

The hard invariant of the observability subsystem (see
``docs/observability.md``): recording events never touches the machine's
clocks, RNG streams, cost charging or sanitizer state.  Tracing on, off or
unset must leave every simulated quantity bit-for-bit identical.
"""

from __future__ import annotations

import os
import time
from typing import Iterator, List, Optional, Tuple

import numpy as np

#: Field layout of one event tuple.
FIELDS = ("ph", "name", "cat", "rank", "ts_sim", "ts_wall", "round", "phase",
          "value")

#: Default ring-buffer capacity (events); override with ``REPRO_TRACE_CAP``.
DEFAULT_CAPACITY = 1 << 18


def trace_env_enabled() -> bool:
    """Whether the ``REPRO_TRACE`` environment variable requests tracing.

    Mirrors the ``REPRO_SIMSAN`` convention: any value other than the empty
    string, ``0``, ``false``, ``no`` or ``off`` enables event tracing on
    machines created without an explicit ``trace_events=`` argument.
    """
    value = os.environ.get("REPRO_TRACE", "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


def env_capacity(default: int = DEFAULT_CAPACITY) -> int:
    """Ring-buffer capacity from ``REPRO_TRACE_CAP`` (default 2^18 events)."""
    return int(os.environ.get("REPRO_TRACE_CAP", default))


class EventTracer:
    """Bounded ring buffer of structured machine events.

    Parameters
    ----------
    n_procs:
        Number of simulated PEs; every event's ``rank`` must be below it
        (rank ``-1`` denotes machine-global events).
    capacity:
        Maximum number of retained events.  When the buffer is full the
        *oldest* events are overwritten (ring semantics) and
        :attr:`dropped` counts the overwrites, so exporters can flag
        truncated traces instead of silently presenting them as complete.
    """

    def __init__(self, n_procs: int, capacity: Optional[int] = None):
        if capacity is None:
            capacity = env_capacity()
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.n_procs = int(n_procs)
        self.capacity = int(capacity)
        self._buf: List[Tuple] = []
        self._next = 0  # write cursor once the buffer is full
        #: Events overwritten because the ring filled up.
        self.dropped = 0
        self._metrics = None
        self._drop_counter = None
        #: Current algorithm round (set by the drivers; -1 = outside rounds).
        self.round = -1
        #: Innermost active machine phase name (maintained by Machine.phase).
        self.phase: Optional[str] = None
        self._phase_stack: List[str] = []
        self._t0_wall = time.perf_counter()

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def _emit(self, ph: str, name: str, cat: str, rank: int,
              ts_sim: float, ts_wall: float, value: Optional[float] = None
              ) -> None:
        ev = (ph, name, cat, int(rank), float(ts_sim), ts_wall,
              self.round, self.phase, value)
        if len(self._buf) < self.capacity:
            self._buf.append(ev)
        else:
            self._buf[self._next] = ev
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1
            if self._metrics is not None:
                if self._drop_counter is None:
                    self._drop_counter = self._metrics.counter(
                        "trace/dropped_events")
                self._drop_counter.inc()

    def attach_metrics(self, registry) -> None:
        """Mirror ring-buffer drops into a ``trace/dropped_events`` counter.

        The counter is created lazily on the first drop, so complete traces
        export no spurious zero-valued counter; a truncated run's metrics
        dump then carries the loss alongside the trace's own ``dropped``
        field, and table exporters can warn on it.
        """
        self._metrics = registry
        self._drop_counter = None

    def wall(self) -> float:
        """Host seconds since the tracer was created."""
        return time.perf_counter() - self._t0_wall

    def begin(self, name: str, rank: int, ts_sim: float,
              cat: str = "span") -> None:
        """Open a span on one PE's timeline at simulated time ``ts_sim``."""
        self._emit("B", name, cat, rank, ts_sim, self.wall())

    def end(self, name: str, rank: int, ts_sim: float,
            cat: str = "span") -> None:
        """Close the innermost span named ``name`` on one PE's timeline."""
        self._emit("E", name, cat, rank, ts_sim, self.wall())

    def instant(self, name: str, rank: int, ts_sim: float,
                cat: str = "mark") -> None:
        """Record a zero-duration marker on one PE's timeline."""
        self._emit("i", name, cat, rank, ts_sim, self.wall())

    def counter(self, name: str, value: float, ts_sim: float) -> None:
        """Record a machine-global counter sample (Perfetto counter track).

        Counter events ride on rank ``-1`` (the machine-global pseudo
        thread) and are rendered by trace viewers as value-over-time tracks
        -- e.g. surviving vertices per Borůvka round.
        """
        self._emit("C", name, "counter", -1, ts_sim, self.wall(),
                   float(value))

    # ------------------------------------------------------------------
    # Group helpers used by the machine and collectives.
    # ------------------------------------------------------------------
    def begin_ranks(self, name: str, clocks: np.ndarray,
                    ranks: Optional[np.ndarray] = None,
                    cat: str = "span") -> None:
        """Open one span per participating PE at its own clock value."""
        wall = self.wall()
        if ranks is None:
            for r in range(len(clocks)):
                self._emit("B", name, cat, r, float(clocks[r]), wall)
        else:
            for r in ranks:
                self._emit("B", name, cat, int(r), float(clocks[r]), wall)

    def end_ranks(self, name: str, clocks: np.ndarray,
                  ranks: Optional[np.ndarray] = None,
                  cat: str = "span") -> None:
        """Close one span per participating PE at its own clock value."""
        wall = self.wall()
        if ranks is None:
            for r in range(len(clocks)):
                self._emit("E", name, cat, r, float(clocks[r]), wall)
        else:
            for r in ranks:
                self._emit("E", name, cat, int(r), float(clocks[r]), wall)

    def push_phase(self, name: str, clocks: np.ndarray) -> None:
        """Enter a machine phase: open per-PE spans and update the label."""
        self.begin_ranks(name, clocks, cat="phase")
        self._phase_stack.append(name)
        self.phase = name

    def pop_phase(self, name: str, clocks: np.ndarray) -> None:
        """Leave a machine phase: close per-PE spans and restore the label."""
        self.end_ranks(name, clocks, cat="phase")
        if self._phase_stack and self._phase_stack[-1] == name:
            self._phase_stack.pop()
        self.phase = self._phase_stack[-1] if self._phase_stack else None

    def set_round(self, round_no: int) -> None:
        """Tag subsequent events with an algorithm round number."""
        self.round = int(round_no)

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buf)

    def events(self) -> Iterator[Tuple]:
        """Retained events in chronological (recording) order."""
        if len(self._buf) < self.capacity or self._next == 0:
            yield from self._buf
        else:
            yield from self._buf[self._next:]
            yield from self._buf[:self._next]

    def reset(self) -> None:
        """Forget all events and labels (mirrors ``Machine.reset``)."""
        self._buf.clear()
        self._next = 0
        self.dropped = 0
        self._drop_counter = None
        self.round = -1
        self.phase = None
        self._phase_stack.clear()
        self._t0_wall = time.perf_counter()
