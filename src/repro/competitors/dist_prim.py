"""Distributed Jarník-Prim with replicated vertices (Loncar et al. [24]).

The second of the two algorithms the paper's related work cites from [24]:
the tree grows one vertex per round, with the machine's only parallelism in
the candidate-minimum search.

Each PE holds its edge block; the in-tree flags are replicated.  Per round
every PE scans its block for the lightest edge leaving the tree, an
allreduce (lexicographic-minimum operator) picks the global winner, and all
PEs add its endpoint.  Components are processed one after another (the
original targets connected graphs; the forest extension restarts from the
smallest unvisited vertex).

The structural weaknesses this faithfully reproduces:

* **Theta(n) rounds** with a collective each -- the latency term
  ``alpha * n * log p`` dwarfs everything at scale, so the algorithm only
  makes sense on very small machines (the paper: "an evaluation on up to
  16 cores");
* **replicated vertex state**: Omega(n) memory per PE;
* per-round *full block scans* unless the per-PE candidate heaps are
  maintained -- we keep the simple scan variant of [24].
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..kernels.segmented import packed_lexsort

from ..dgraph.dist_graph import DistGraph
from ..core.boruvka import InputSnapshot, MSTResult, redistribute_mst
from ..core.config import BoruvkaConfig
from ..core.state import MSTRun

#: Candidate sentinel: (weight, cu, cv, id, endpoint) with infinite weight.
_INF = np.int64(1) << 62


def _min_candidate(a, b):
    """Lexicographic minimum of two candidate tuples (allreduce operator)."""
    return min(a, b)


def dist_prim(
    graph: DistGraph,
    cfg: Optional[BoruvkaConfig] = None,
) -> MSTResult:
    """Compute the MSF with the replicated-vertex distributed Prim."""
    machine = graph.machine
    p = machine.n_procs
    cfg = cfg or BoruvkaConfig(alltoall="direct")
    run = MSTRun(machine, cfg)
    comm = run.comm
    snapshot = InputSnapshot.take(graph)

    # Replicated dense vertex set.
    local_vids = [np.unique(np.concatenate([q.u, q.v])) if len(q)
                  else np.empty(0, dtype=np.int64) for q in graph.parts]
    vlabels = np.unique(comm.allgatherv(local_vids))
    n = len(vlabels)
    if n == 0:
        return _result(machine, run, snapshot, comm)
    machine.check_memory(np.full(
        p, n * 1.0 + np.array([len(q) for q in graph.parts]) * 32.0))

    eu = [np.searchsorted(vlabels, q.u) for q in graph.parts]
    ev = [np.searchsorted(vlabels, q.v) for q in graph.parts]

    in_tree = np.zeros(n, dtype=bool)  # replicated
    visited_rounds = 0
    for start in range(n):
        if in_tree[start]:
            continue
        in_tree[start] = True
        while True:
            visited_rounds += 1
            if visited_rounds > 4 * n:
                raise RuntimeError("distributed Prim failed to terminate")
            # Each PE's best frontier-crossing edge.
            candidates = []
            for i in range(p):
                part = graph.parts[i]
                machine.charge_scan(np.array([len(part)]),
                                    ranks=np.array([i]))
                if len(part) == 0:
                    candidates.append((int(_INF), 0, 0, 0, 0))
                    continue
                crossing = in_tree[eu[i]] & ~in_tree[ev[i]]
                if not crossing.any():
                    candidates.append((int(_INF), 0, 0, 0, 0))
                    continue
                cu = np.minimum(eu[i], ev[i])
                cv = np.maximum(eu[i], ev[i])
                idx = np.flatnonzero(crossing)
                order = packed_lexsort((cv[idx], cu[idx], part.w[idx]))
                k = idx[order[0]]
                candidates.append((int(part.w[k]), int(cu[k]), int(cv[k]),
                                   int(part.id[k]), int(ev[i][k])))
            best = comm.allreduce(candidates, op=_min_candidate)
            if best[0] >= _INF:
                break  # component finished
            w, _, _, eid, endpoint = best
            in_tree[endpoint] = True
            run.record_mst(0, np.array([eid]), np.array([w]))
    return _result(machine, run, snapshot, comm)


def _result(machine, run, snapshot, comm) -> MSTResult:
    with machine.phase("mst_output"):
        msf_parts = redistribute_mst(run, snapshot)
    weights = [int(part.w.sum()) for part in msf_parts]
    total = int(comm.allreduce(weights))
    return MSTResult(
        msf_parts=msf_parts,
        total_weight=total,
        elapsed=machine.elapsed(),
        phase_times=dict(machine.phase_times),
        rounds=run.rounds,
        algorithm="dist-prim",
        stats={"bytes_communicated": machine.bytes_communicated,
               "n_collectives": machine.n_collectives},
    )
