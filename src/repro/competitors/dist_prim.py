"""Distributed Jarník-Prim with replicated vertices (Loncar et al. [24]).

The second of the two algorithms the paper's related work cites from [24]:
the tree grows one vertex per round, with the machine's only parallelism in
the candidate-minimum search.

Each PE holds its edge block; the in-tree flags are replicated.  Per round
every PE scans its block for the lightest edge leaving the tree, an
allreduce (lexicographic-minimum operator) picks the global winner, and all
PEs add its endpoint.  Components are processed one after another (the
original targets connected graphs; the forest extension restarts from the
smallest unvisited vertex).

The structural weaknesses this faithfully reproduces:

* **Theta(n) rounds** with a collective each -- the latency term
  ``alpha * n * log p`` dwarfs everything at scale, so the algorithm only
  makes sense on very small machines (the paper: "an evaluation on up to
  16 cores");
* **replicated vertex state**: Omega(n) memory per PE;
* per-round *full block scans* unless the per-PE candidate heaps are
  maintained -- we keep the simple scan variant of [24].
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..kernels.segmented import packed_lexsort

from ..dgraph.dist_graph import DistGraph
from ..core.boruvka import InputSnapshot, MSTResult, redistribute_mst
from ..core.config import BoruvkaConfig
from ..core.rounds import RoundBody, RoundScheduler, RoundStats
from ..core.state import MSTRun

#: Candidate sentinel: (weight, cu, cv, id, endpoint) with infinite weight.
_INF = np.int64(1) << 62


def _min_candidate(a, b):
    """Lexicographic minimum of two candidate tuples (allreduce operator)."""
    return min(a, b)


class PrimRoundBody(RoundBody):
    """One tree-growth step: block scans plus the winner allreduce.

    The pre-scheduler driver nested a per-component ``while True`` inside
    the start-vertex sweep; here the sweep is flattened into the prologue
    (the in-tree flags are replicated and the restart search is pure host
    logic, so advancing to the next component issues no collectives) and
    each candidate allreduce is one scheduler round.  The round that
    discovers a finished component (all-infinite candidates) scanned every
    block and ran the collective, so it counts -- the same convention as
    Awerbuch-Shiloach's detection iteration.

    Fail-stop recovery snapshots the replicated in-tree flag vector (one
    copy per PE -- the state really is replicated) plus, via the restore
    closure, the host-side sweep cursor and in-component flag.
    """

    label = "dist_prim"
    divergence_error = "distributed Prim failed to terminate"

    def __init__(self, graph: DistGraph, run: MSTRun,
                 eu: List[np.ndarray], ev: List[np.ndarray], n: int):
        self.graph = graph
        self.run = run
        self.machine = graph.machine
        self.eu = eu
        self.ev = ev
        self.n = n
        self.in_tree = np.zeros(n, dtype=bool)  # replicated
        self.cursor = 0          # next start-vertex candidate to try
        self.in_component = False
        self.total_edges = sum(len(q) for q in graph.parts)

    def prologue(self, round_no: int) -> Optional[RoundStats]:
        """Advance the component sweep; done when every vertex is visited."""
        if not self.in_component:
            while self.cursor < self.n and self.in_tree[self.cursor]:
                self.cursor += 1
            if self.cursor >= self.n:
                return None
            self.in_tree[self.cursor] = True
            self.in_component = True
        # Replicated flags are host-visible: the stats cost no collectives.
        return RoundStats(self.n - int(self.in_tree.sum()), self.total_edges)

    def round(self, round_no: int) -> bool:
        """Scan every block, allreduce the winner, grow the tree by one."""
        machine, run = self.machine, self.run
        p = machine.n_procs
        in_tree, eu, ev = self.in_tree, self.eu, self.ev
        # Each PE's best frontier-crossing edge.
        candidates = []
        for i in range(p):
            part = self.graph.parts[i]
            machine.charge_scan(np.array([len(part)]),
                                ranks=np.array([i]))
            if len(part) == 0:
                candidates.append((int(_INF), 0, 0, 0, 0))
                continue
            crossing = in_tree[eu[i]] & ~in_tree[ev[i]]
            if not crossing.any():
                candidates.append((int(_INF), 0, 0, 0, 0))
                continue
            cu = np.minimum(eu[i], ev[i])
            cv = np.maximum(eu[i], ev[i])
            idx = np.flatnonzero(crossing)
            order = packed_lexsort((cv[idx], cu[idx], part.w[idx]))
            k = idx[order[0]]
            candidates.append((int(part.w[k]), int(cu[k]), int(cv[k]),
                               int(part.id[k]), int(ev[i][k])))
        best = run.comm.allreduce(candidates, op=_min_candidate)
        if best[0] >= _INF:
            self.in_component = False  # component finished
            return False
        w, _, _, eid, endpoint = best
        in_tree[endpoint] = True
        run.record_mst(0, np.array([eid]), np.array([w]))
        return False  # convergence is the prologue's sweep exhausting

    # -- CheckpointableState ------------------------------------------
    def checkpoint_state(self) -> "PrimRoundBody":
        """The replicated in-tree flags (plus host cursor) are replayable."""
        return self

    def take(self, run: MSTRun):
        """Buddy-replicate the in-tree flags; closure keeps the cursor."""
        from ..faults.recovery import ArrayCheckpoint

        cursor, in_component = self.cursor, self.in_component

        def reinstate(blocks):
            self.in_tree = blocks[0][0]
            self.cursor = cursor
            self.in_component = in_component

        p = self.machine.n_procs
        return ArrayCheckpoint.take(run, [[self.in_tree] for _ in range(p)],
                                    reinstate)


def dist_prim(
    graph: DistGraph,
    cfg: Optional[BoruvkaConfig] = None,
) -> MSTResult:
    """Compute the MSF with the replicated-vertex distributed Prim."""
    machine = graph.machine
    p = machine.n_procs
    cfg = cfg or BoruvkaConfig(alltoall="direct")
    run = MSTRun(machine, cfg)
    comm = run.comm
    snapshot = InputSnapshot.take(graph)

    # Replicated dense vertex set.
    local_vids = [np.unique(np.concatenate([q.u, q.v])) if len(q)
                  else np.empty(0, dtype=np.int64) for q in graph.parts]
    vlabels = np.unique(comm.allgatherv(local_vids))
    n = len(vlabels)
    if n == 0:
        return _result(machine, run, snapshot, comm)
    machine.check_memory(np.full(
        p, n * 1.0 + np.array([len(q) for q in graph.parts]) * 32.0))

    eu = [np.searchsorted(vlabels, q.u) for q in graph.parts]
    ev = [np.searchsorted(vlabels, q.v) for q in graph.parts]

    body = PrimRoundBody(graph, run, eu, ev, n)
    RoundScheduler(run, 4 * n).run_rounds(body)
    return _result(machine, run, snapshot, comm)


def _result(machine, run, snapshot, comm) -> MSTResult:
    with machine.phase("mst_output"):
        msf_parts = redistribute_mst(run, snapshot)
    weights = [int(part.w.sum()) for part in msf_parts]
    total = int(comm.allreduce(weights))
    return MSTResult(
        msf_parts=msf_parts,
        total_weight=total,
        elapsed=machine.elapsed(),
        phase_times=dict(machine.phase_times),
        rounds=run.rounds,
        algorithm="dist-prim",
        stats={"bytes_communicated": machine.bytes_communicated,
               "n_collectives": machine.n_collectives},
    )
