"""Reimplementation of MND-MST (Panja & Vadhiyar [18]) -- CPU path.

The paper's second competitor: a multi-node Borůvka that (quoting Section
VII) "uses Borůvka's algorithm to compute local MST edges and to contract
the incident vertices.  Afterwards, fixed size groups of PEs exchange parts
of the previously contracted vertices and iteratively apply Borůvka's
algorithm on their local input.  Once a threshold on the size of the reduced
graph is reached, all group members send their contracted graphs to the
group leader.  Then, the whole process starts again with only the group
leaders performing computations.  As in our algorithms, they use
1D-partitioning.  However, they do not share vertices beyond process
boundaries which can lead to load imbalances for graphs with very skewed
degree distributions."

Reproduced characteristics:

* **no shared vertices**: all edges of a boundary vertex are first moved to
  one PE, so a high-degree vertex concentrates its entire neighbourhood on
  one process -- the load-imbalance mechanism that hurts MND-MST on
  RMAT/social graphs (the per-PE clocks pick this up automatically);
* **local Borůvka + hierarchical group merge**: each level, groups of
  ``group_size`` PEs ship their remaining graphs *and their accumulated
  contraction maps* to the group leader, which relabels and contracts
  everything it can prove locally; levels repeat until one PE holds the
  remainder and finishes;
* **memory concentration**: leaders accumulate entire subgraphs; with a
  machine memory limit this is what makes the real code crash beyond ~1024
  cores (Section VII-A) -- the simulation raises
  :class:`~repro.simmpi.machine.SimulatedOutOfMemory` in the same regime.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..dgraph.dist_graph import DistGraph
from ..dgraph.edges import Edges
from ..simmpi.alltoall import route_rows
from ..core.boruvka import InputSnapshot, MSTResult, redistribute_mst
from ..core.config import BoruvkaConfig
from ..core.local_preprocessing import _contract_one_pe
from ..core.rounds import RoundBody, RoundScheduler, RoundStats
from ..core.state import MSTRun

#: Merge-hierarchy levels before the scheduler declares divergence.
MAX_LEVELS = 64

#: PEs per merge group (the paper's competitor uses fixed-size groups).
GROUP_SIZE = 8


class _VertexMap:
    """Accumulated vertex -> representative map of one PE's subtree."""

    def __init__(self):
        self.keys = np.empty(0, dtype=np.int64)
        self.vals = np.empty(0, dtype=np.int64)

    def add(self, vertices: np.ndarray, reps: np.ndarray) -> None:
        """Record one contraction's vertex -> representative entries."""
        changed = vertices != reps
        if not changed.any():
            return
        keys = np.concatenate([self.keys, vertices[changed]])
        vals = np.concatenate([self.vals, reps[changed]])
        order = np.argsort(keys, kind="stable")
        # Later entries must win; with distinct contraction keys this is
        # moot, but keep last-wins semantics for safety.
        keys, vals = keys[order], vals[order]
        last = np.ones(len(keys), dtype=bool)
        last[:-1] = keys[1:] != keys[:-1]
        self.keys, self.vals = keys[last], vals[last]

    def merge(self, other_rows: np.ndarray) -> None:
        """Fold a shipped (vertex, rep) row matrix into this map."""
        if len(other_rows):
            self.add(other_rows[:, 0], other_rows[:, 1])

    def rows(self) -> np.ndarray:
        """The map as a (k, 2) row matrix for shipping to a leader."""
        return np.stack([self.keys, self.vals], axis=1) if len(self.keys) \
            else np.empty((0, 2), dtype=np.int64)

    def resolve(self, labels: np.ndarray, max_depth: int = 64) -> np.ndarray:
        """Chase map chains to fixpoint (vectorised)."""
        out = np.asarray(labels, dtype=np.int64).copy()
        if len(self.keys) == 0:
            return out
        for _ in range(max_depth):
            idx = np.searchsorted(self.keys, out)
            idx_c = np.minimum(idx, len(self.keys) - 1)
            hit = (idx < len(self.keys)) & (self.keys[idx_c] == out)
            if not hit.any():
                return out
            out[hit] = self.vals[idx_c[hit]]
        raise RuntimeError("vertex-map chain resolution failed to converge")


class MndMergeRoundBody(RoundBody):
    """One merge-hierarchy level: groups ship graphs + maps to leaders.

    The canonical zero-based round id (``run.rounds``) replaces the old
    driver's ``level - 1`` arithmetic; the reported round count is the
    number of merge levels, exactly as before.

    Fail-stop recovery snapshots every PE's remaining subgraph, its
    accumulated contraction map and (host-side, via the restore closure)
    the active-PE list -- the complete level input -- through
    :class:`~repro.faults.recovery.ArrayCheckpoint`.
    """

    label = "mnd_mst"
    divergence_error = "MND-MST merge hierarchy failed to terminate"

    def __init__(self, run: MSTRun, parts: List[Edges],
                 vmaps: List["_VertexMap"], group_size: int):
        self.run = run
        self.machine = run.machine
        self.parts = parts
        self.vmaps = vmaps
        self.group_size = group_size
        self.active = list(range(run.machine.n_procs))

    def prologue(self, round_no: int) -> Optional[RoundStats]:
        """Done when one active PE remains; stats are host-visible."""
        # The active-PE list and the remaining per-PE contracted subgraphs
        # are host-visible, so the pre-round check and the hook stats cost
        # no collectives.
        if len(self.active) <= 1:
            return None
        return RoundStats(len(self.active),
                          sum(len(self.parts[i]) for i in self.active))

    def round(self, round_no: int) -> bool:
        """Ship group subgraphs + maps to leaders; leaders re-contract."""
        machine, run = self.machine, self.run
        comm, cfg = run.comm, run.cfg
        p = machine.n_procs
        parts, vmaps, active = self.parts, self.vmaps, self.active
        leaders = active[::self.group_size]
        rows, dests = [], []
        map_rows, map_dests = [], []
        for i in range(p):
            if i in active and i not in leaders:
                leader = leaders[active.index(i) // self.group_size]
                rows.append(parts[i].as_matrix())
                dests.append(np.full(len(parts[i]), leader, dtype=np.int64))
                mr = vmaps[i].rows()
                map_rows.append(mr)
                map_dests.append(np.full(len(mr), leader, dtype=np.int64))
                parts[i] = Edges.empty()
                vmaps[i] = _VertexMap()
            else:
                rows.append(np.empty((0, Edges.N_COLS), dtype=np.int64))
                dests.append(np.empty(0, dtype=np.int64))
                map_rows.append(np.empty((0, 2), dtype=np.int64))
                map_dests.append(np.empty(0, dtype=np.int64))
        recv, _, _ = route_rows(comm, rows, dests, method=cfg.alltoall)
        recv_maps, _, _ = route_rows(comm, map_rows, map_dests,
                                     method=cfg.alltoall)
        # The shipped matrices are dead once routed; at the last level one
        # leader's merge holds nearly the whole graph, so every stale copy
        # still referenced here adds directly to peak memory.
        del rows, dests, map_rows, map_dests
        with machine.phase("mnd_merge"):
            mem = np.zeros(p, dtype=np.float64)
            for leader in leaders:
                vmaps[leader].merge(recv_maps[leader])
                merged = Edges.concat(
                    [parts[leader], Edges.from_matrix(recv[leader])])
                recv[leader] = recv_maps[leader] = None
                # Relabel through the combined subtree map.  ``resolve``
                # works in int64; representatives are vertex IDs from the
                # same space as the inputs, so cast back to the stored
                # column dtype -- a leader otherwise drags widened columns
                # (and double-size scratch in ``_contract_one_pe``) through
                # every remaining level of the hierarchy.
                u = vmaps[leader].resolve(merged.u)
                v = vmaps[leader].resolve(merged.v)
                alive = u != v
                merged = Edges(u[alive].astype(merged.u.dtype, copy=False),
                               v[alive].astype(merged.v.dtype, copy=False),
                               merged.w[alive], merged.id[alive]).sort_lex()
                del u, v, alive
                machine.charge_sort(np.array([max(len(merged), 1)]),
                                    ranks=np.array([leader]))
                mem[leader] = len(merged) * 32.0
                parts[leader] = _contract_local(merged, leader, machine,
                                                run, vmaps[leader])
            machine.check_memory(mem)
        self.active = leaders
        return False  # convergence is the prologue's active-count check

    # -- CheckpointableState ------------------------------------------
    def checkpoint_state(self) -> "MndMergeRoundBody":
        """Subgraphs, contraction maps and the active list are replayable."""
        return self

    def take(self, run: MSTRun):
        """Buddy-replicate subgraphs + maps; closure keeps the active list."""
        from ..faults.recovery import ArrayCheckpoint

        active = list(self.active)

        def reinstate(blocks):
            for i, blk in enumerate(blocks):
                u, v, w, ids, keys, vals = blk
                self.parts[i] = Edges(u, v, w, ids)
                vmap = _VertexMap()
                vmap.keys, vmap.vals = keys, vals
                self.vmaps[i] = vmap
            self.active = list(active)

        blocks = [[part.u, part.v, part.w, part.id, vmap.keys, vmap.vals]
                  for part, vmap in zip(self.parts, self.vmaps)]
        return ArrayCheckpoint.take(run, blocks, reinstate)


def mnd_mst(
    graph: DistGraph,
    cfg: Optional[BoruvkaConfig] = None,
    group_size: int = GROUP_SIZE,
) -> MSTResult:
    """Compute the MSF with the MND-MST scheme."""
    machine = graph.machine
    p = machine.n_procs
    cfg = cfg or BoruvkaConfig(alltoall="direct")
    run = MSTRun(machine, cfg)
    comm = run.comm
    snapshot = InputSnapshot.take(graph)

    # ---- Input preparation: eliminate shared vertices (Section VII). ----
    parts = _unshare(graph, run)
    vmaps = [_VertexMap() for _ in range(p)]

    # ---- Level 0: local contraction on every PE. ----
    with machine.phase("mnd_local"):
        for i in range(p):
            parts[i] = _contract_local(parts[i], i, machine, run, vmaps[i])

    # ---- Merge hierarchy: groups ship graphs + maps to leaders. ----
    body = MndMergeRoundBody(run, parts, vmaps, group_size)
    levels = RoundScheduler(run, MAX_LEVELS).run_rounds(body)

    final = body.active[0]
    if len(body.parts[final]):
        raise RuntimeError("MND-MST finished with uncontracted edges")

    with machine.phase("mst_output"):
        msf_parts = redistribute_mst(run, snapshot)
    weights = [int(part.w.sum()) for part in msf_parts]
    total = int(comm.allreduce(weights))
    return MSTResult(
        msf_parts=msf_parts,
        total_weight=total,
        elapsed=machine.elapsed(),
        phase_times=dict(machine.phase_times),
        rounds=levels,
        algorithm="MND-MST",
        stats={"bytes_communicated": machine.bytes_communicated,
               "n_collectives": machine.n_collectives},
    )


# ----------------------------------------------------------------------
def _unshare(graph: DistGraph, run: MSTRun) -> List[Edges]:
    """Move every shared vertex's edges to the first PE of its span."""
    machine = graph.machine
    p = machine.n_procs
    shared = graph.shared_vertex_set()
    if len(shared) == 0:
        return [part.copy() for part in graph.parts]
    first_holder = {}
    for j in range(p):
        if not graph.has_edges[j]:
            continue
        for s in (int(graph.first_src[j]), int(graph.last_src[j])):
            if s not in first_holder:
                first_holder[s] = j
    rows, dests, keep = [], [], []
    for i in range(p):
        part = graph.parts[i]
        if len(part) == 0:
            rows.append(np.empty((0, Edges.N_COLS), dtype=np.int64))
            dests.append(np.empty(0, dtype=np.int64))
            keep.append(part)
            continue
        targets = np.full(len(part), i, dtype=np.int64)
        is_shared_src = np.isin(part.u, shared)
        for s in np.unique(part.u[is_shared_src]):
            targets[part.u == s] = first_holder.get(int(s), i)
        move = targets != i
        rows.append(part.take(move).as_matrix())
        dests.append(targets[move])
        keep.append(part.take(~move))
    recv, _, _ = route_rows(run.comm, rows, dests, method=run.cfg.alltoall)
    out = []
    for i in range(p):
        merged = Edges.concat([keep[i], Edges.from_matrix(recv[i])])
        out.append(merged.sort_lex())
        machine.charge_sort(np.array([max(len(merged), 1)]),
                            ranks=np.array([i]))
    return out


def _contract_local(part: Edges, pe: int, machine, run: MSTRun,
                    vmap: _VertexMap) -> Edges:
    """Contract everything provable from this PE's edges alone.

    Every vertex appearing as a source here owns its complete neighbourhood
    (the unshare step and whole-part merges guarantee it), so the cut-aware
    local Borůvka of the preprocessing module applies with an empty shared
    set.
    """
    if len(part) == 0:
        return part
    vids = np.unique(part.u)
    shared_mask = np.zeros(len(vids), dtype=bool)
    new_labels, ids, ws, rounds = _contract_one_pe(
        part, vids, shared_mask, use_filter=False
    )
    run.record_mst(pe, ids, ws)
    vmap.add(vids, new_labels)
    machine.charge_sort(np.array([max(len(part), 1)]), ranks=np.array([pe]))
    machine.charge_scan(np.array([len(part) * max(rounds, 1)]),
                        ranks=np.array([pe]))
    # Relabel locally, drop self loops and parallel duplicates.
    u_new = new_labels[np.searchsorted(vids, part.u)]
    idx = np.searchsorted(vids, part.v)
    idx_c = np.minimum(idx, len(vids) - 1)
    v_is_local = (idx < len(vids)) & (vids[idx_c] == part.v)
    v_new = np.where(v_is_local, new_labels[idx_c], part.v)
    alive = u_new != v_new
    e = Edges(u_new[alive], v_new[alive], part.w[alive], part.id[alive])
    e = e.sort_lex()
    same = np.zeros(len(e), dtype=bool)
    if len(e) > 1:
        same[1:] = (e.u[1:] == e.u[:-1]) & (e.v[1:] == e.v[:-1])
    return e.take(~same)
