"""Shared-memory reference point (the MASTIFF role in Section VII-C).

The paper compares against MASTIFF [17], a structure-aware shared-memory
MST/MSF code measured on a 128-core 2 TB server.  MASTIFF's source and that
machine are unavailable; per the substitution rule we model a fast
shared-memory MSF as our own sequential Filter-Borůvka executed on a
single-node machine model: work is charged through the same cost-model
constants and divided by the node's effective parallelism.  This preserves
what Section VII-C actually measures -- the *crossover core count* at which
a distributed run overtakes a single big node -- because that crossover is
governed by work/efficiency ratios, not by either code's absolute constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dgraph.edges import Edges
from ..seq.filter_kruskal import filter_boruvka_msf
from ..simmpi.costmodel import CostModel


@dataclass
class SharedMemoryResult:
    """Outcome of a modelled single-node shared-memory run."""

    msf: Edges
    total_weight: int
    elapsed: float
    cores: int


def shared_memory_msf(
    edges: Edges,
    n_vertices: int,
    cores: int = 128,
    cost: CostModel | None = None,
    parallel_efficiency: float = 0.6,
    serial_fraction: float = 0.05,
) -> SharedMemoryResult:
    """Run the shared-memory reference and charge modelled time.

    Amdahl-style model: ``T = W * (serial + (1 - serial) / (cores * eff))``
    with the work ``W`` taken from the cost model's per-element charges for
    the Filter-Borůvka work bound ``O(m + n log n log(m/n))``.
    """
    cost = cost or CostModel()
    m = max(len(edges) // 2, 1)
    n = max(n_vertices, 2)
    msf = filter_boruvka_msf(edges, n_vertices)
    work = cost.c_scan * m + cost.c_sort * n * np.log2(n) * max(
        1.0, np.log2(m / n if m > n else 2))
    elapsed = float(work * (serial_fraction
                            + (1.0 - serial_fraction)
                            / (cores * parallel_efficiency)))
    return SharedMemoryResult(
        msf=msf,
        total_weight=msf.total_weight(),
        elapsed=elapsed,
        cores=cores,
    )
