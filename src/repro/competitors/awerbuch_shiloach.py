"""Reimplementation of *sparseMatrix* (Baer et al. [36]) -- Awerbuch-Shiloach
MSF over distributed sparse-matrix structure.

The paper's strongest published competitor adapts the Awerbuch-Shiloach PRAM
algorithm [1] to distributed memory through generalised sparse tensor
algebra (Cyclops), with a 2D partitioning of the adjacency matrix.  The
algorithmically relevant properties, all reproduced here:

* **no locality exploitation**: the edge set is never contracted; every
  iteration touches the full edge list (candidate minima are recomputed from
  all edges), which is why the paper beats it by orders of magnitude on
  high-locality families;
* **hook-and-shortcut structure**: per iteration, each component root hooks
  onto the neighbouring component across its minimum incident edge
  (2-cycles broken toward the smaller label -- exactly AS conditional star
  hooking), then the parent pointers are shortcut;
* **2D cost profile**: the matrix-algebra formulation broadcasts/reduces
  vertex vectors along grid rows and columns each iteration; we charge those
  collectives explicitly (``O(beta * n / sqrt(p))`` per PE per iteration)
  on top of the genuinely executed exchanges;
* **memory behaviour**: per-PE vertex vectors of length ``~n/sqrt(p)``
  (rather than n/p) are accounted, which is what makes the real code crash
  on large configurations (Section VII-A); with a machine memory limit this
  implementation raises :class:`~repro.simmpi.machine.SimulatedOutOfMemory`
  in the same regimes.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..dgraph.dist_graph import DistGraph
from ..kernels import RaggedArrays, batched_for, segmented_unique
from ..kernels.pool import active_pool
from ..kernels.segmented import packed_lexsort
from ..simmpi.alltoall import route_rows, unsort
from ..simmpi.collectives import Comm
from ..utils.partition import owner_of
from ..core.boruvka import InputSnapshot, MSTResult, redistribute_mst
from ..core.config import BoruvkaConfig
from ..core.rounds import RoundBody, RoundScheduler, RoundStats
from ..core.state import MSTRun
from ..seq.boruvka import pseudo_tree_roots


#: Per-edge per-iteration cost of the generalised sparse-tensor kernels.
#: A Cyclops-style implementation executes every semiring step as a general
#: tensor contraction (materialise, redistribute, contract, rebuild index
#: structures) over the never-shrinking edge block.  Calibrated against the
#: throughput Baer et al. report (and Fig. 3 confirms): sparseMatrix
#: sustains ~2e4 edges/s per core over ~20+ iterations, i.e. roughly 1.5 us
#: of kernel time per edge per iteration, where a direct implementation
#: spends a few ns.
SPARSE_KERNEL_SECONDS_PER_EDGE = 1.5e-6


class AwerbuchShiloachRoundBody(RoundBody):
    """One hook-and-shortcut iteration over the full (fixed) edge set.

    Convergence is detected *inside* the round -- the candidate allreduce
    reports no alive edge -- so the detection iteration performs real
    ``as_resolve`` work plus a collective and counts as a round (the
    scheduler's canonical convention; the pre-scheduler driver ``break``-ed
    before counting it, undercounting versus the Borůvka drivers).

    Fail-stop recovery snapshots the block-distributed parent vector
    ``f`` through :class:`~repro.faults.recovery.ArrayCheckpoint` -- the
    edge blocks are immutable for the whole run, so the parent blocks
    (plus the scheduler-managed MST records and RNG streams) are the
    entire replayable state.
    """

    label = "awerbuch_shiloach"
    divergence_error = "Awerbuch-Shiloach failed to converge"

    def __init__(self, graph: DistGraph, run: MSTRun, n: int):
        machine = graph.machine
        p = machine.n_procs
        self.machine = machine
        self.run = run
        self.comm = run.comm
        self.cfg = run.cfg
        self.n = n
        self.p = p
        self.f_blocks = _identity_blocks(n, p)

        # 2D-grid model constants for the per-iteration algebra collectives.
        self.grid_c = max(1, int(math.isqrt(p)))
        self.row_vec_bytes = 8.0 * n / self.grid_c

        # Edge blocks stay fixed for the whole run (no contraction!) and
        # are never written, so plain views of the partition suffice --
        # copying them would double the resident edge footprint for the
        # entire run.
        self.eu = [part.u for part in graph.parts]
        self.ev = [part.v for part in graph.parts]
        self.ew = [part.w for part in graph.parts]
        self.eid = [part.id for part in graph.parts]

        # Candidate-row dtype for the hook exchange: every column
        # (component labels < n, weights, edge ids) must fit, and every PE
        # must agree so the routed blocks concatenate without promotion.
        self.cand_dt = np.result_type(
            self.f_blocks[0].dtype,
            *([a.dtype for a in self.ew + self.eid if len(a)]
              or [np.int64]))
        self.total_edges = sum(len(x) for x in self.eu)

    def prologue(self, round_no: int) -> RoundStats:
        """Never terminates pre-round; stats come from host-known sizes."""
        # The fixed undirected edge set and vertex universe are known
        # host-side, so the pre-round check costs no collectives and the
        # loop never terminates here -- convergence is the in-round
        # zero-alive-edges allreduce.
        return RoundStats(self.n, self.total_edges)

    def round(self, round_no: int) -> bool:
        """One hook-and-shortcut iteration; True when no edge is alive."""
        machine, comm, run, cfg = self.machine, self.comm, self.run, self.cfg
        n, p = self.n, self.p
        f_blocks = self.f_blocks
        eu, ev, ew, eid = self.eu, self.ev, self.ew, self.eid
        # Resident footprint: the edge block plus the intermediate tensor
        # buffers of the algebra formulation, plus the per-row/column vertex
        # vectors of the 2D distribution.
        machine.check_memory(np.array(
            [len(eu[i]) * 32.0 * 3 + self.row_vec_bytes * 4
             for i in range(p)]))
        # ---- Matrix-formulation overhead: row/column vector collectives
        # and the extra sparse-kernel passes over the full edge block. ----
        machine.charge(np.full(
            p, 2 * machine.cost.collective_tree(self.grid_c,
                                                self.row_vec_bytes)))
        machine.charge(np.array(
            [len(eu[i]) * SPARSE_KERNEL_SECONDS_PER_EDGE for i in range(p)],
            dtype=np.float64) / machine.cost.effective_threads(
                machine.threads))

        # ---- Resolve current components of all endpoints (full edge set). -
        with machine.phase("as_resolve"):
            reps_u = _resolve(comm, f_blocks, n, eu, cfg.alltoall)
            reps_v = _resolve(comm, f_blocks, n, ev, cfg.alltoall)

        # ---- Per-root candidate minima from every edge block. ----
        with machine.phase("as_hook"):
            cand_rows, cand_dests = [], []
            alive_total = 0
            for i in range(p):
                a, b = reps_u[i], reps_v[i]
                alive = a != b
                alive_total += int(alive.sum())
                machine.charge_scan(np.array([len(a)]), ranks=np.array([i]))
                if not alive.any():
                    cand_rows.append(np.empty((0, 6), dtype=self.cand_dt))
                    cand_dests.append(np.empty(0, dtype=np.int64))
                    continue
                aa, bb = a[alive], b[alive]
                w = ew[i][alive]
                ids = eid[i][alive]
                grp = np.concatenate([aa, bb])
                oth = np.concatenate([bb, aa])
                w2 = np.concatenate([w, w])
                id2 = np.concatenate([ids, ids])
                cu = np.minimum(grp, oth)
                cv = np.maximum(grp, oth)
                groups, pick = _group_min(grp, w2, cu, cv, n)
                rows = np.empty((len(groups), 6), dtype=self.cand_dt)
                rows[:, 0] = groups
                rows[:, 1] = w2[pick]
                rows[:, 2] = cu[pick]
                rows[:, 3] = cv[pick]
                rows[:, 4] = id2[pick]
                rows[:, 5] = oth[pick]
                cand_rows.append(rows)
                cand_dests.append(owner_of(groups, n, p))
                del aa, bb, w, ids, grp, oth, w2, id2, cu, cv, rows
            alive_total = comm.allreduce(
                [int(x) for x in _per_pe(alive_total, p)])
            if alive_total == 0:
                return True  # converged: the detection round still counts
            recv, _, _ = route_rows(comm, cand_rows, cand_dests,
                                    method=cfg.alltoall)
            del cand_rows, cand_dests

            # ---- Owners pick the global minimum per root and hook. ----
            hook_from, hook_to, hook_id, hook_w = [], [], [], []
            for i in range(p):
                rows = recv[i]
                if len(rows) == 0:
                    continue
                groups, pick = _group_min(rows[:, 0], rows[:, 1],
                                          rows[:, 2], rows[:, 3], n)
                best = rows[pick]
                hook_from.append(groups)
                hook_to.append(best[:, 5])
                hook_id.append(best[:, 4])
                hook_w.append(best[:, 1])
                machine.charge_scan(np.array([len(rows)]),
                                    ranks=np.array([i]))
            comp = np.concatenate(hook_from) if hook_from else \
                np.empty(0, dtype=np.int64)
            parent = np.concatenate(hook_to) if hook_to else \
                np.empty(0, dtype=np.int64)
            ids_all = np.concatenate(hook_id) if hook_id else \
                np.empty(0, dtype=np.int64)
            ws_all = np.concatenate(hook_w) if hook_w else \
                np.empty(0, dtype=np.int64)
            # Conditional hooking: identical 2-cycle tie-break as AS stars.
            order = np.argsort(comp)
            comp, parent = comp[order], parent[order]
            ids_all, ws_all = ids_all[order], ws_all[order]
            roots = pseudo_tree_roots(comp, parent)
            # Apply hooks at the owners; record the MST edges once (the
            # hooking owner records).
            for i in range(p):
                lo, hi = np.searchsorted(comp, [_lo(n, p, i), _hi(n, p, i)])
                sel = slice(lo, hi)
                c = comp[sel]
                pr = np.where(roots[sel], c, parent[sel])
                f_blocks[i][c - _lo(n, p, i)] = pr
                keep = ~roots[sel]
                run.record_mst(i, ids_all[sel][keep], ws_all[sel][keep])

        # ---- Shortcut: pointer jumping until the forest is a star set. ----
        with machine.phase("as_shortcut"):
            _shortcut(comm, f_blocks, n, cfg.alltoall, machine)
        return False

    # -- CheckpointableState ------------------------------------------
    def checkpoint_state(self) -> "AwerbuchShiloachRoundBody":
        """The parent-pointer blocks are always replayable."""
        return self

    def take(self, run: MSTRun):
        """Buddy-replicate the parent-pointer blocks (ArrayCheckpoint)."""
        from ..faults.recovery import ArrayCheckpoint

        def reinstate(blocks):
            self.f_blocks = [blk[0] for blk in blocks]

        return ArrayCheckpoint.take(run, [[blk] for blk in self.f_blocks],
                                    reinstate)


def awerbuch_shiloach_msf(
    graph: DistGraph,
    cfg: Optional[BoruvkaConfig] = None,
) -> MSTResult:
    """Compute the MSF with the sparseMatrix/Awerbuch-Shiloach approach."""
    machine = graph.machine
    cfg = cfg or BoruvkaConfig(alltoall="direct")
    run = MSTRun(machine, cfg)
    comm = run.comm
    snapshot = InputSnapshot.take(graph)

    # Vertex-label space; the parent vector f is block-distributed.
    max_label = comm.allreduce(
        [int(part.u.max()) if len(part) else -1 for part in graph.parts],
        op="max")
    n = max_label + 1
    if n == 0:
        return _empty_result(machine, run, snapshot)

    body = AwerbuchShiloachRoundBody(graph, run, n)
    RoundScheduler(run, cfg.max_rounds).run_rounds(body)

    with machine.phase("mst_output"):
        msf_parts = redistribute_mst(run, snapshot)
    weights = [int(part.w.sum()) for part in msf_parts]
    total = int(comm.allreduce(weights))
    return MSTResult(
        msf_parts=msf_parts,
        total_weight=total,
        elapsed=machine.elapsed(),
        phase_times=dict(machine.phase_times),
        rounds=run.rounds,
        algorithm="sparseMatrix",
        stats={"bytes_communicated": machine.bytes_communicated,
               "n_collectives": machine.n_collectives},
    )


# ----------------------------------------------------------------------
def _group_min(grp, w, cu, cv, n_groups):
    """Per-group lexicographic minimum of ``(w, cu, cv)``.

    Returns ``(groups, pick)``: the ascending group ids with at least one
    row and, for each, the index of its minimal row (full-key ties broken
    toward the lowest index) -- exactly the first-per-group pick of a
    stable sort keyed ``(cv, cu, w, grp)``, computed with one O(m) scatter
    instead of an O(m log m) sort.  Falls back to the sort when the packed
    key would overflow int64.
    """
    nk = len(grp)
    w_lo, w_hi = int(w.min()), int(w.max())
    cu_lo, cu_hi = int(cu.min()), int(cu.max())
    cv_lo, cv_hi = int(cv.min()), int(cv.max())
    span_cu = cu_hi - cu_lo + 1
    span_cv = cv_hi - cv_lo + 1
    big = 1 << nk.bit_length()
    if (w_hi - w_lo + 1) * span_cu * span_cv * big < (1 << 62):
        # Build the packed key in-place in an int64 scratch buffer: the
        # columns may arrive narrowed (uint32), where the first partial
        # product alone can exceed 32 bits even when the guard admits the
        # full key, and the in-place form avoids the chain of int64
        # temporaries the one-expression version materialises.
        key = active_pool().take(nk, np.int64)
        np.copyto(key, w, casting="unsafe")
        key -= w_lo
        key *= span_cu
        key += cu
        key -= cu_lo
        key *= span_cv
        key += cv
        key -= cv_lo
        key *= big
        key += np.arange(nk, dtype=np.int64)
        best = np.full(n_groups, np.iinfo(np.int64).max)
        np.minimum.at(best, grp, key)
        active_pool().give(key)
        groups = np.flatnonzero(best != np.iinfo(np.int64).max)
        pick = best[groups] & (big - 1)
        del best
        return groups, pick
    order = packed_lexsort((cv, cu, w, grp))
    gs = grp[order]
    first = np.ones(len(gs), dtype=bool)
    first[1:] = gs[1:] != gs[:-1]
    return gs[first], order[first]


def _identity_blocks(n: int, p: int) -> List[np.ndarray]:
    from ..kernels.dtypes import index_dtype
    from ..utils.partition import block_bounds

    # Parent-pointer values are vertex labels < n; the policy dtype keeps
    # the blocks (and everything ``_resolve`` derives from them) narrow.
    b = block_bounds(n, p)
    dt = index_dtype(n - 1)
    return [np.arange(b[i], b[i + 1], dtype=dt) for i in range(p)]


def _lo(n: int, p: int, i: int) -> int:
    from ..utils.partition import block_bounds

    return int(block_bounds(n, p)[i])


def _hi(n: int, p: int, i: int) -> int:
    from ..utils.partition import block_bounds

    return int(block_bounds(n, p)[i + 1])


def _per_pe(total: int, p: int) -> List[int]:
    out = [0] * p
    out[0] = total
    return out


def _resolve(comm: Comm, f_blocks: List[np.ndarray], n: int,
             labels_per_pe: List[np.ndarray], method: str
             ) -> List[np.ndarray]:
    """Look up f[x] for arbitrary per-PE label arrays (deduplicated)."""
    p = comm.size
    # Labels are vertex ids < n; keep the callers' (possibly narrowed)
    # storage dtype through the whole query/reply round trip instead of
    # forcing int64 -- empty blocks take the common dtype so routed
    # concatenations never promote.
    q_dt = np.result_type(
        *([x.dtype for x in labels_per_pe if len(x)] or [np.int64]))
    f_dt = f_blocks[0].dtype if f_blocks else np.dtype(np.int64)
    if batched_for(comm.machine):
        r = RaggedArrays.from_arrays(labels_per_pe, dtype=q_dt)
        uniq, uoff, inv = segmented_unique(r.flat, r.segment_ids(), p)
        uniqs = [uniq[uoff[i]:uoff[i + 1]] for i in range(p)]
        invs = [inv[r.offsets[i]:r.offsets[i + 1]] for i in range(p)]
        dest_flat = owner_of(uniq, n, p) if len(uniq) else \
            np.empty(0, dtype=np.int64)
        dests = [dest_flat[uoff[i]:uoff[i + 1]] for i in range(p)]
        del r
    else:
        uniqs, invs, dests = [], [], []
        for i in range(p):
            uniq, inv = np.unique(
                np.asarray(labels_per_pe[i], dtype=q_dt),
                return_inverse=True)
            uniqs.append(uniq)
            invs.append(inv)
            dests.append(owner_of(uniq, n, p))
    recv, recv_src, orders = route_rows(comm, uniqs, dests, method=method)
    replies = []
    for i in range(p):
        q = recv[i]
        replies.append(f_blocks[i][q - _lo(n, p, i)]
                       if len(q) else np.empty(0, dtype=f_dt))
    comm.machine.charge_hash(
        np.array([len(q) for q in recv], dtype=np.int64),
        ranks=np.arange(p))
    del recv
    back, _, _ = route_rows(comm, replies, recv_src, method=method)
    del replies, recv_src
    out = []
    for i in range(p):
        if len(uniqs[i]) == 0:
            out.append(np.empty(0, dtype=f_dt))
            continue
        out.append(unsort(orders[i], back[i])[invs[i]])
    return out


def _shortcut(comm: Comm, f_blocks: List[np.ndarray], n: int, method: str,
              machine) -> None:
    """f <- f[f] until fixpoint (distributed pointer jumping)."""
    p = comm.size
    for _ in range(64):
        targets = [blk.copy() for blk in f_blocks]
        resolved = _resolve(comm, f_blocks, n, targets, method)
        changed = 0
        for i in range(p):
            delta = resolved[i] != f_blocks[i]
            changed += int(delta.sum())
            f_blocks[i][:] = resolved[i]
            machine.charge_scan(np.array([len(resolved[i])]),
                                ranks=np.array([i]))
        if comm.allreduce(_per_pe(changed, p)) == 0:
            return
    raise RuntimeError("shortcut failed to converge")


def _empty_result(machine, run, snapshot) -> MSTResult:
    msf_parts = redistribute_mst(run, snapshot)
    return MSTResult(msf_parts=msf_parts, total_weight=0,
                     elapsed=machine.elapsed(),
                     phase_times=dict(machine.phase_times),
                     rounds=0, algorithm="sparseMatrix")
