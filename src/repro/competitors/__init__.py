"""Competitor reimplementations (Section VII): sparseMatrix, MND-MST and the
shared-memory reference point."""

from .awerbuch_shiloach import awerbuch_shiloach_msf
from .dist_kruskal import dist_kruskal
from .dist_prim import dist_prim
from .mnd_mst import GROUP_SIZE, mnd_mst
from .shared_memory import SharedMemoryResult, shared_memory_msf

__all__ = [
    "awerbuch_shiloach_msf",
    "dist_kruskal",
    "dist_prim",
    "GROUP_SIZE",
    "mnd_mst",
    "SharedMemoryResult",
    "shared_memory_msf",
]
