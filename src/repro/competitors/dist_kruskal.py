"""Distributed Kruskal with replicated vertices (Loncar et al. [24] style).

The paper's related work covers the pre-framework generation of distributed
MST codes: "Loncar et al. propose distributed variants of the Kruskal and
Jarnik-Prim algorithm that also rely on replicated vertices" (Section III).
These algorithms assume every PE can hold the entire vertex set and follow a
merge-tree structure:

1. every PE sorts its edge block by weight and runs *local* Kruskal over a
   union-find on the replicated vertex set, keeping only its local MSF
   candidates (at most n-1 edges survive per PE);
2. PEs then pair up along a binomial merge tree: the receiver merges the two
   candidate forests with another Kruskal pass; after ``log p`` levels one
   PE holds the global MSF.

Properties reproduced (and why the paper's algorithms beat it):

* **replicated vertices**: per-PE memory is Ω(n) regardless of p -- the
  same constraint as Dehne & Götz's m/n > p assumption -- so weak scaling
  walks into the machine's memory limit (simulated OOM);
* **sequential merge bottleneck**: the final merge levels run on ever-fewer
  PEs over up to n-1 edges each, capping strong scaling at a serial term
  (Amdahl) -- visible directly in the per-PE clocks;
* correctness is exact (verified against sequential Kruskal like every
  other algorithm here).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..kernels.segmented import packed_lexsort

from ..dgraph.dist_graph import DistGraph
from ..dgraph.edges import Edges
from ..simmpi.alltoall import route_rows
from ..core.boruvka import InputSnapshot, MSTResult, redistribute_mst
from ..core.config import BoruvkaConfig
from ..core.rounds import UnsupportedFaultSchedule
from ..core.state import MSTRun
from ..seq.union_find import UnionFind


def dist_kruskal(
    graph: DistGraph,
    cfg: Optional[BoruvkaConfig] = None,
) -> MSTResult:
    """Compute the MSF with the replicated-vertex merge-tree Kruskal."""
    machine = graph.machine
    # The merge tree is not a checkpointable round loop (senders destroy
    # their forests as they ship them), so fail-stop schedules cannot be
    # recovered -- refuse them up front instead of silently not recovering
    # (the same contract the RoundScheduler enforces for round bodies
    # without a CheckpointableState).
    fi = machine.faults
    if fi is not None and fi.protects_rounds:
        raise UnsupportedFaultSchedule(
            f"fault schedule {fi.schedule!r} can fail-stop PEs but "
            "dist-kruskal's merge tree does not support checkpoint/replay; "
            "run it without pe_fail events")
    p = machine.n_procs
    cfg = cfg or BoruvkaConfig(alltoall="direct")
    run = MSTRun(machine, cfg)
    comm = run.comm
    snapshot = InputSnapshot.take(graph)

    # Replicated vertex set: dense remap of all labels (one allgather).
    local_vids = [np.unique(np.concatenate([part.u, part.v]))
                  if len(part) else np.empty(0, dtype=np.int64)
                  for part in graph.parts]
    vlabels = np.unique(comm.allgatherv(local_vids))
    n = len(vlabels)
    if n == 0:
        return _result(machine, run, snapshot, comm, level=0)
    # Ω(n) replicated state per PE -- the memory wall of this approach.
    machine.check_memory(np.full(
        p, n * 8.0 * 2 + np.array([len(q) for q in graph.parts]) * 32.0))

    # ---- Level 0: local Kruskal on every PE's block. ----
    forests: List[Edges] = []
    with machine.phase("dk_local"):
        for i in range(p):
            part = graph.parts[i]
            forests.append(_local_kruskal(part, vlabels, n))
            machine.charge_sort(np.array([max(len(part), 1)]),
                                ranks=np.array([i]))
            machine.charge_scan(np.array([len(part)]), ranks=np.array([i]))

    # ---- Binomial merge tree. ----
    active = list(range(p))
    level = 0
    while len(active) > 1:
        level += 1
        if level > 64:
            raise RuntimeError("merge tree failed to terminate")
        receivers = active[0::2]
        senders = active[1::2]
        rows, dests = [], []
        for i in range(p):
            if i in senders:
                recv_pe = receivers[senders.index(i)]
                rows.append(forests[i].as_matrix())
                dests.append(np.full(len(forests[i]), recv_pe,
                                     dtype=np.int64))
                forests[i] = Edges.empty()
            else:
                rows.append(np.empty((0, Edges.N_COLS), dtype=np.int64))
                dests.append(np.empty(0, dtype=np.int64))
        recv, _, _ = route_rows(comm, rows, dests, method=cfg.alltoall)
        with machine.phase("dk_merge"):
            for r in receivers:
                if len(recv[r]) == 0:
                    continue
                merged = Edges.concat([forests[r],
                                       Edges.from_matrix(recv[r])])
                forests[r] = _local_kruskal(merged, vlabels, n,
                                            already_dense=True)
                machine.charge_sort(np.array([max(len(merged), 1)]),
                                    ranks=np.array([r]))
                machine.check_memory(_mem_vector(p, r, n, len(merged)))
        active = receivers

    root = active[0]
    final = forests[root]
    run.record_mst(root, final.id, final.w)
    return _result(machine, run, snapshot, comm, level)


def _mem_vector(p: int, pe: int, n: int, edges: int) -> np.ndarray:
    out = np.zeros(p)
    out[pe] = n * 16.0 + edges * 32.0
    return out


def _local_kruskal(part: Edges, vlabels: np.ndarray, n: int,
                   already_dense: bool = False) -> Edges:
    """Kruskal over the replicated dense vertex set; returns surviving edges.

    The returned forest keeps *dense* endpoints so merge levels can union
    directly; original ids/weights ride along for the final output.
    """
    if len(part) == 0:
        return Edges.empty()
    if already_dense:
        du, dv = part.u, part.v
    else:
        du = np.searchsorted(vlabels, part.u)
        dv = np.searchsorted(vlabels, part.v)
    order = packed_lexsort((np.maximum(du, dv), np.minimum(du, dv), part.w))
    uf = UnionFind(n)
    keep = uf.union_edges(du[order], dv[order])
    sel = order[keep]
    return Edges(du[sel], dv[sel], part.w[sel], part.id[sel])


def _result(machine, run, snapshot, comm, level) -> MSTResult:
    with machine.phase("mst_output"):
        msf_parts = redistribute_mst(run, snapshot)
    weights = [int(part.w.sum()) for part in msf_parts]
    total = int(comm.allreduce(weights))
    return MSTResult(
        msf_parts=msf_parts,
        total_weight=total,
        elapsed=machine.elapsed(),
        phase_times=dict(machine.phase_times),
        rounds=level,
        algorithm="dist-kruskal",
        stats={"bytes_communicated": machine.bytes_communicated,
               "n_collectives": machine.n_collectives},
    )
