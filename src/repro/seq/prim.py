"""Sequential Jarník-Prim algorithm [10] with a binary heap.

Included as an independent second baseline: it constructs the MSF by a
completely different mechanism than Kruskal (vertex-driven growth vs
edge-driven union), so agreement between the two is a strong correctness
signal for the verification utilities.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..dgraph.edges import Edges


def _csr(edges: Edges, n: int):
    """CSR adjacency (both directions) built vectorised."""
    u = np.concatenate([edges.u, edges.v])
    v = np.concatenate([edges.v, edges.u])
    w = np.concatenate([edges.w, edges.w])
    eid = np.concatenate([edges.id, edges.id])
    order = np.argsort(u, kind="stable")
    u, v, w, eid = u[order], v[order], w[order], eid[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, u + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, v, w, eid, order % len(edges)


def prim_msf(edges: Edges, n_vertices: int) -> Edges:
    """Minimum spanning forest via Jarník-Prim, restarted per component.

    Uses lazy deletion on a binary heap keyed by the shared tie-breaking
    order ``(w, min(u,v), max(u,v))`` so the result matches Kruskal edge for
    edge on inputs without exactly-parallel duplicates.
    """
    n = n_vertices
    if len(edges) == 0 or n == 0:
        return Edges.empty()
    indptr, adj_v, adj_w, adj_id, adj_pos = _csr(edges, n)
    in_tree = np.zeros(n, dtype=bool)
    chosen: list[int] = []  # positions into `edges`

    for start in range(n):
        if in_tree[start]:
            continue
        in_tree[start] = True
        heap: list[tuple[int, int, int, int, int]] = []
        _push_neighbours(heap, start, indptr, adj_v, adj_w, adj_pos, edges)
        while heap:
            w, cu, cv, pos, dst = heapq.heappop(heap)
            if in_tree[dst]:
                continue
            in_tree[dst] = True
            chosen.append(pos)
            _push_neighbours(heap, dst, indptr, adj_v, adj_w, adj_pos, edges)
    return edges.take(np.asarray(sorted(chosen), dtype=np.int64))


def _push_neighbours(heap, vertex, indptr, adj_v, adj_w, adj_pos, edges):
    lo, hi = indptr[vertex], indptr[vertex + 1]
    for k in range(lo, hi):
        dst = int(adj_v[k])
        pos = int(adj_pos[k])
        w = int(adj_w[k])
        cu = min(vertex, dst)
        cv = max(vertex, dst)
        heapq.heappush(heap, (w, cu, cv, pos, dst))
