"""Array-based union-find (disjoint sets) with path compression.

Used by the sequential baselines (Kruskal, Filter-Kruskal), by local
preprocessing on each simulated PE, and by the verification utilities.
Supports both the classic one-at-a-time API and vectorised bulk operations
(the hpc-parallel guides mandate numpy vectorisation for hot loops).
"""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Disjoint-set forest over elements ``0 .. n-1``.

    Union by rank plus full path compression; amortised near-constant time
    per operation.
    """

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.int64)
        self.rank = np.zeros(n, dtype=np.int8)
        self.n_components = n

    def __len__(self) -> int:
        return len(self.parent)

    # ------------------------------------------------------------------
    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path compression)."""
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        # Second pass: compress.
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; returns True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        rank = self.rank
        if rank[ra] < rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if rank[ra] == rank[rb]:
            rank[ra] += 1
        self.n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    # ------------------------------------------------------------------
    # Vectorised bulk operations.
    # ------------------------------------------------------------------
    def find_many(self, xs: np.ndarray) -> np.ndarray:
        """Representatives of many elements at once.

        Iterated pointer jumping on the parent array: ``O(log n)`` vectorised
        passes in the worst case (trees are shallow after compression).
        Compresses the paths of the queried elements.
        """
        xs = np.asarray(xs, dtype=np.int64)
        parent = self.parent
        roots = xs.copy()
        while True:
            nxt = parent[roots]
            if np.array_equal(nxt, roots):
                break
            roots = parent[nxt]  # jump two levels per pass
        parent[xs] = roots
        return roots

    def union_edges(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Union along many edges; returns a bool mask of the tree edges.

        Sequential semantics (edge k is applied before edge k+1), so the mask
        identifies exactly the edges Kruskal would keep if ``(us, vs)`` is
        weight-sorted.  The per-edge loop is unavoidable (each union depends
        on all previous ones) but runs over int64 scalars with compressed
        paths, which is acceptable for the verification-scale inputs here.
        """
        us = np.asarray(us, dtype=np.int64).tolist()
        vs = np.asarray(vs, dtype=np.int64).tolist()
        out = np.zeros(len(us), dtype=bool)
        # find/union inlined: this loop runs millions of times under
        # Filter-Boruvka and method-call overhead dominates.  When the edge
        # count justifies the O(n) conversion, run it over plain Python
        # lists -- list indexing beats numpy scalar indexing several-fold.
        use_lists = len(us) * 4 > len(self.parent)
        if use_lists:
            parent = self.parent.tolist()
            rank = self.rank.tolist()
        else:
            parent = self.parent
            rank = self.rank
        n_components = self.n_components
        for k in range(len(us)):
            a, b = us[k], vs[k]
            root = a
            while parent[root] != root:
                root = parent[root]
            while parent[a] != root:
                parent[a], a = root, parent[a]
            ra = root
            root = b
            while parent[root] != root:
                root = parent[root]
            while parent[b] != root:
                parent[b], b = root, parent[b]
            rb = root
            if ra == rb:
                continue
            if rank[ra] < rank[rb]:
                ra, rb = rb, ra
            parent[rb] = ra
            if rank[ra] == rank[rb]:
                rank[ra] += 1
            n_components -= 1
            out[k] = True
        if use_lists:
            self.parent[:] = parent
            self.rank[:] = rank
        self.n_components = n_components
        return out

    def components(self) -> np.ndarray:
        """Representative of every element (fully compressed)."""
        return self.find_many(np.arange(len(self.parent)))
