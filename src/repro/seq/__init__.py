"""Sequential MST baselines and verification (Sections II-C, III, V)."""

from .union_find import UnionFind
from .kruskal import kruskal_msf, msf_weight
from .prim import prim_msf
from .boruvka import boruvka_msf
from .filter_kruskal import (
    FilterStats,
    filter_boruvka_msf,
    filter_kruskal_msf,
)
from .kkt import NO_PATH, boruvka_round, kkt_msf, max_weight_on_paths
from .verify import (
    is_forest,
    is_spanning_forest,
    networkx_msf_weight,
    spans_same_components,
    verify_msf,
)

__all__ = [
    "UnionFind",
    "kruskal_msf",
    "msf_weight",
    "prim_msf",
    "boruvka_msf",
    "FilterStats",
    "filter_boruvka_msf",
    "filter_kruskal_msf",
    "NO_PATH",
    "boruvka_round",
    "kkt_msf",
    "max_weight_on_paths",
    "is_forest",
    "is_spanning_forest",
    "networkx_msf_weight",
    "spans_same_components",
    "verify_msf",
]
