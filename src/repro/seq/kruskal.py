"""Sequential Kruskal's algorithm [11] -- the ground-truth baseline.

Every distributed run in the test suite is verified against this
implementation: identical total weight always, identical edge multiset under
the shared tie-breaking order (see :meth:`repro.dgraph.edges.Edges.tie_key`).
"""

from __future__ import annotations

from ..dgraph.edges import Edges
from .union_find import UnionFind


def kruskal_msf(edges: Edges, n_vertices: int) -> Edges:
    """Minimum spanning forest of an edge list over vertices ``0..n-1``.

    Directed duplicates (back edges) are tolerated: an edge whose endpoints
    are already connected is simply skipped.

    Parameters
    ----------
    edges:
        Any edge sequence (directed or symmetric, unsorted is fine).
    n_vertices:
        Number of vertex labels; all ``u``/``v`` must lie in ``[0, n)``.

    Returns
    -------
    Edges
        The MSF edges, one *directed representative* per forest edge, in
        tie-break order.
    """
    if len(edges) == 0:
        return Edges.empty()
    if edges.u.min() < 0 or max(edges.u.max(), edges.v.max()) >= n_vertices:
        raise ValueError("vertex labels out of range")
    order = edges.weight_order()
    sorted_e = edges.take(order)
    uf = UnionFind(n_vertices)
    keep = uf.union_edges(sorted_e.u, sorted_e.v)
    return sorted_e.take(keep)


def msf_weight(edges: Edges, n_vertices: int) -> int:
    """Total weight of the minimum spanning forest."""
    return kruskal_msf(edges, n_vertices).total_weight()
