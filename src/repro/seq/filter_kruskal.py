"""Sequential Filter-Kruskal [7] and Filter-Borůvka (paper Section V, Thm. 1).

Filter-Kruskal is "in many respects the best practical sequential algorithm"
(Section I): it quicksort-partitions the edges around a random pivot weight,
recurses on the light part, *filters* the heavy part (dropping edges whose
endpoints already share a component of the partial forest) and only then
recurses on the survivors.

The paper's Theorem 1 swaps the Kruskal base case for Borůvka to cut the span
from linear to polylogarithmic; the sequential :func:`filter_boruvka_msf`
here mirrors that exactly (and its instrumentation --
:class:`FilterStats` -- backs the Theorem-1 bench that counts base-case calls
and per-edge work).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dgraph.edges import Edges
from .boruvka import boruvka_msf
from .union_find import UnionFind


@dataclass
class FilterStats:
    """Instrumentation for the Theorem-1 work/span bench."""

    base_case_calls: int = 0
    base_case_edges: int = 0
    partition_rounds: int = 0
    filtered_out: int = 0
    edges_touched: int = 0


def filter_kruskal_msf(edges: Edges, n_vertices: int,
                       base_case_size: int | None = None,
                       rng: np.random.Generator | None = None,
                       stats: FilterStats | None = None) -> Edges:
    """Minimum spanning forest via Filter-Kruskal [7].

    ``base_case_size`` defaults to ``max(n_vertices, 1024)`` edges, the usual
    "fits in cache / sorting beats partitioning" heuristic.
    """
    return _filter_msf(edges, n_vertices, base_case="kruskal",
                       base_case_size=base_case_size, rng=rng, stats=stats)


def filter_boruvka_msf(edges: Edges, n_vertices: int,
                       base_case_size: int | None = None,
                       rng: np.random.Generator | None = None,
                       stats: FilterStats | None = None) -> Edges:
    """Sequential Filter-Borůvka (paper Section V).

    Same recursion as Filter-Kruskal but with Borůvka in the base case, which
    by Theorem 1 leaves the expected work unchanged at
    ``O(m + n log n log(m/n))`` while making the span polylogarithmic when
    the base case is parallel.
    """
    return _filter_msf(edges, n_vertices, base_case="boruvka",
                       base_case_size=base_case_size, rng=rng, stats=stats)


def _filter_msf(edges: Edges, n_vertices: int, base_case: str,
                base_case_size: int | None, rng, stats) -> Edges:
    n = int(n_vertices)
    if rng is None:
        rng = np.random.default_rng(0)
    if base_case_size is None:
        base_case_size = max(n, 1024)
    if stats is None:
        stats = FilterStats()

    uf = UnionFind(n)
    kept_global: list[Edges] = []

    def recurse(e: Edges) -> None:
        # Relabel by current components so the base case sees the contracted
        # problem and filtering is a pure label comparison.
        if len(e) == 0:
            return
        stats.edges_touched += len(e)
        if len(e) <= base_case_size:
            stats.base_case_calls += 1
            stats.base_case_edges += len(e)
            ru = uf.find_many(e.u)
            rv = uf.find_many(e.v)
            live = ru != rv
            e_live = e.take(live)
            # Positional ids so the base case's picks can be mapped back to
            # rows of ``e_live`` regardless of the caller's id scheme.
            contracted = Edges(ru[live], rv[live], e_live.w,
                               np.arange(len(e_live), dtype=np.int64))
            if base_case == "kruskal":
                order = contracted.weight_order()
                c = contracted.take(order)
                keep = uf.union_edges(c.u, c.v)
                kept_global.append(e_live.take(order[keep]))
            else:
                msf_c = boruvka_msf(contracted, n)
                picked = e_live.take(msf_c.id)
                uf.union_edges(picked.u, picked.v)
                kept_global.append(picked)
            return
        stats.partition_rounds += 1
        pivot = int(e.w[rng.integers(0, len(e))])
        light = e.w <= pivot
        if light.all() or not light.any():
            # Degenerate pivot (many equal weights): fall back to base case.
            stats.base_case_calls += 1
            stats.base_case_edges += len(e)
            ru = uf.find_many(e.u)
            rv = uf.find_many(e.v)
            live = ru != rv
            e_live = e.take(live)
            order = e_live.weight_order()
            c = e_live.take(order)
            keep = uf.union_edges(c.u, c.v)
            kept_global.append(c.take(keep))
            return
        recurse(e.take(light))
        heavy = e.take(~light)
        ru = uf.find_many(heavy.u)
        rv = uf.find_many(heavy.v)
        survivors = ru != rv
        stats.filtered_out += int((~survivors).sum())
        recurse(heavy.take(survivors))

    recurse(edges)
    return Edges.concat(kept_global).sort_lex()
