"""Sequential (vectorised) Borůvka's algorithm [6] -- Section II-C.

This is the algorithmic template of the paper's distributed variants and the
base case of :mod:`repro.seq.filter_kruskal`'s Filter-Borůvka cousin.  The
implementation follows Section II-C exactly:

1. per component, select the lightest incident edge (ties broken by the
   shared total order on vertex pairs);
2. the selected edges form *pseudo trees* (trees plus one 2-cycle); the
   2-cycle is broken by rooting at the smaller label;
3. every non-root component contributes its selected edge to the MST;
4. components are contracted to their roots by pointer doubling, edges are
   relabelled, self loops discarded;
5. repeat until no edges remain.

All steps are numpy-vectorised (lexsort + reduceat group minima, pointer
doubling on the parent array); there is no per-edge Python loop.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..kernels.segmented import packed_lexsort

from ..dgraph.edges import Edges


def _min_edge_per_group(group: np.ndarray, w: np.ndarray, cu: np.ndarray,
                        cv: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Index of the lexicographically (w, cu, cv)-smallest row per group.

    Returns (group labels present, argmin row index per present group).
    """
    order = packed_lexsort((cv, cu, w, group))
    g_sorted = group[order]
    first = np.ones(len(g_sorted), dtype=bool)
    first[1:] = g_sorted[1:] != g_sorted[:-1]
    return g_sorted[first], order[first]


def pseudo_tree_roots(comp: np.ndarray, parent: np.ndarray) -> np.ndarray:
    """Break the 2-cycles of a pseudo forest: smaller label becomes root.

    ``comp[k] -> parent[k]`` is the functional graph induced by minimum-edge
    selection over the present components.  Returns a bool mask (aligned with
    ``comp``) of the components that become roots.
    """
    # ``comp`` is sorted (produced by the group-min), so the parent's row can
    # be located with searchsorted; a parent without a row keeps itself.
    loc = np.searchsorted(comp, parent)
    loc_c = np.minimum(loc, len(comp) - 1)
    has_row = comp[loc_c] == parent
    parent_of_parent = np.where(has_row, parent[loc_c], parent)
    two_cycle = parent_of_parent == comp
    return (two_cycle & (comp < parent)) | (parent == comp)


def boruvka_msf(edges: Edges, n_vertices: int,
                return_components: bool = False):
    """Minimum spanning forest via Borůvka rounds.

    Parameters
    ----------
    edges:
        Edge sequence; treated as undirected (back edges are welcome but not
        required).
    n_vertices:
        Vertex labels live in ``[0, n_vertices)``.
    return_components:
        Also return the component representative of every vertex in the
        final forest (the modified output specification Filter-Borůvka needs,
        Section V).

    Returns
    -------
    Edges  or  (Edges, np.ndarray)
        MSF edges (one directed representative per forest edge, positions
        from the input), and optionally the per-vertex representatives.
    """
    n = int(n_vertices)
    labels = np.arange(n, dtype=np.int64)
    if len(edges) == 0 or n == 0:
        return (Edges.empty(), labels) if return_components else Edges.empty()

    pos = np.arange(len(edges), dtype=np.int64)
    eu, ev, ew = edges.u.copy(), edges.v.copy(), edges.w.copy()
    chosen_positions: list[np.ndarray] = []

    guard = 0
    while len(eu):
        guard += 1
        if guard > 64:  # log2(n) bound with huge slack
            raise RuntimeError("Borůvka failed to converge")
        a = labels[eu]
        b = labels[ev]
        alive = a != b
        a, b, w_, pos_ = a[alive], b[alive], ew[alive], pos[alive]
        eu, ev, ew, pos = eu[alive], ev[alive], ew[alive], pos[alive]
        if len(a) == 0:
            break
        # Symmetrise for selection: each endpoint considers the edge.
        sel_group = np.concatenate([a, b])
        sel_other = np.concatenate([b, a])
        sel_w = np.concatenate([w_, w_])
        sel_pos = np.concatenate([pos_, pos_])
        cu = np.minimum(sel_group, sel_other)
        cv = np.maximum(sel_group, sel_other)
        comp, arg = _min_edge_per_group(sel_group, sel_w, cu, cv)
        parent = sel_other[arg]
        roots = pseudo_tree_roots(comp, parent)
        # Record MST edges of all non-root components.
        chosen_positions.append(np.unique(sel_pos[arg[~roots]]))
        # Contract: pointer-double the parent map to the star.
        parent_map = np.arange(n, dtype=np.int64)
        parent_map[comp] = parent
        parent_map[comp[roots]] = comp[roots]
        while True:
            nxt = parent_map[parent_map]
            if np.array_equal(nxt, parent_map):
                break
            parent_map = nxt
        labels = parent_map[labels]

    msf = edges.take(np.unique(np.concatenate(chosen_positions))
                     if chosen_positions else np.empty(0, dtype=np.int64))
    if return_components:
        return msf, labels
    return msf
