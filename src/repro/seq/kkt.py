"""The Karger-Klein-Tarjan randomised linear-time MST algorithm [12].

The paper's conclusion points here: "single Borůvka rounds are also an
important part of more sophisticated MST algorithms with better performance
guarantees like the expected linear time algorithm [12] ... we believe that
the algorithmic building blocks developed in this work can also be of
interest for distributed implementations of such more complex MST
algorithms."  This module provides the sequential KKT built from the same
Borůvka-round machinery, plus the forest-path maximum-weight oracle
(:func:`max_weight_on_paths`, via binary lifting) that powers its F-heavy
edge filtering -- the piece Filter-Kruskal replaces with its simpler
pivot-based filter.

Algorithm (expected O(m)):

1. two Borůvka rounds contract the graph (edges selected there are MST
   edges; the vertex count at least quarters);
2. sample each remaining edge independently with probability 1/2 -> H;
3. recursively compute the MSF F of H;
4. discard every remaining edge that is *F-heavy* (heavier than the
   maximum-weight edge on the F-path between its endpoints -- the cycle
   property proves such edges are in no MSF);
5. recurse on the survivors and return those MST edges plus step 1's.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..dgraph.edges import Edges
from .boruvka import _min_edge_per_group, pseudo_tree_roots

#: Sentinel for "endpoints disconnected in the forest".
NO_PATH = np.int64(1) << 62


def boruvka_round(edges: Edges, labels: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """One Borůvka round over current component ``labels``.

    Returns ``(chosen_positions, new_labels)`` where positions index into
    ``edges`` and ``new_labels`` maps every original vertex to its new
    component root.  (The shared workhorse of KKT's step 1.)
    """
    n = len(labels)
    a = labels[edges.u]
    b = labels[edges.v]
    alive = a != b
    if not alive.any():
        return np.empty(0, dtype=np.int64), labels
    pos = np.flatnonzero(alive)
    a, b, w = a[alive], b[alive], edges.w[alive]
    grp = np.concatenate([a, b])
    oth = np.concatenate([b, a])
    w2 = np.concatenate([w, w])
    pos2 = np.concatenate([pos, pos])
    cu = np.minimum(grp, oth)
    cv = np.maximum(grp, oth)
    comp, arg = _min_edge_per_group(grp, w2, cu, cv)
    parent = oth[arg]
    roots = pseudo_tree_roots(comp, parent)
    chosen = np.unique(pos2[arg[~roots]])
    parent_map = np.arange(n, dtype=np.int64)
    parent_map[comp] = parent
    parent_map[comp[roots]] = comp[roots]
    while True:
        nxt = parent_map[parent_map]
        if np.array_equal(nxt, parent_map):
            break
        parent_map = nxt
    return chosen, parent_map[labels]


def _forest_structure(forest: Edges, n: int):
    """Root every tree of the forest; returns (parent, parent_w, depth)."""
    parent = np.full(n, -1, dtype=np.int64)
    parent_w = np.zeros(n, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int64)
    if len(forest) == 0:
        return parent, parent_w, depth
    # CSR adjacency of the forest.
    u = np.concatenate([forest.u, forest.v])
    v = np.concatenate([forest.v, forest.u])
    w = np.concatenate([forest.w, forest.w])
    order = np.argsort(u, kind="stable")
    u, v, w = u[order], v[order], w[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, u + 1, 1)
    np.cumsum(indptr, out=indptr)

    visited = np.zeros(n, dtype=bool)
    for root in np.unique(forest.u):
        root = int(root)
        if visited[root]:
            continue
        visited[root] = True
        parent[root] = root
        stack = [root]
        while stack:
            x = stack.pop()
            for k in range(indptr[x], indptr[x + 1]):
                y = int(v[k])
                if not visited[y]:
                    visited[y] = True
                    parent[y] = x
                    parent_w[y] = w[k]
                    depth[y] = depth[x] + 1
                    stack.append(y)
    return parent, parent_w, depth


def max_weight_on_paths(forest: Edges, n: int, qu: np.ndarray,
                        qv: np.ndarray) -> np.ndarray:
    """Maximum edge weight on the forest path between each query pair.

    Vectorised binary lifting: ``O((n + q) log n)``.  Disconnected pairs
    yield :data:`NO_PATH`.
    """
    qu = np.asarray(qu, dtype=np.int64)
    qv = np.asarray(qv, dtype=np.int64)
    parent, parent_w, depth = _forest_structure(forest, n)
    isolated = parent < 0
    parent = np.where(isolated, np.arange(n), parent)

    levels = max(1, int(np.ceil(np.log2(max(n, 2)))))
    up = np.empty((levels, n), dtype=np.int64)
    mx = np.zeros((levels, n), dtype=np.int64)
    up[0] = parent
    mx[0] = parent_w
    for k in range(1, levels):
        up[k] = up[k - 1][up[k - 1]]
        mx[k] = np.maximum(mx[k - 1], mx[k - 1][up[k - 1]])

    a, b = qu.copy(), qv.copy()
    best = np.zeros(len(a), dtype=np.int64)
    # Equalise depths.
    for k in range(levels - 1, -1, -1):
        step = np.int64(1) << k
        deeper_a = depth[a] - depth[b] >= step
        best[deeper_a] = np.maximum(best[deeper_a], mx[k][a[deeper_a]])
        a[deeper_a] = up[k][a[deeper_a]]
        deeper_b = depth[b] - depth[a] >= step
        best[deeper_b] = np.maximum(best[deeper_b], mx[k][b[deeper_b]])
        b[deeper_b] = up[k][b[deeper_b]]
    # Lift both sides to just below the LCA.
    for k in range(levels - 1, -1, -1):
        move = (a != b) & (up[k][a] != up[k][b])
        best[move] = np.maximum(best[move],
                                np.maximum(mx[k][a[move]], mx[k][b[move]]))
        a[move] = up[k][a[move]]
        b[move] = up[k][b[move]]
    last = a != b
    final_same = up[0][a] == up[0][b]
    step_ok = last & final_same
    best[step_ok] = np.maximum(
        best[step_ok], np.maximum(mx[0][a[step_ok]], mx[0][b[step_ok]]))
    a[step_ok] = up[0][a[step_ok]]
    b[step_ok] = up[0][b[step_ok]]
    disconnected = a != b
    best[disconnected] = NO_PATH
    best[qu == qv] = 0
    return best


def kkt_msf(edges: Edges, n_vertices: int,
            rng: np.random.Generator | None = None,
            base_case_size: int = 64) -> Edges:
    """Minimum spanning forest via Karger-Klein-Tarjan [12]."""
    if rng is None:
        rng = np.random.default_rng(0)
    n = int(n_vertices)
    if len(edges) == 0 or n == 0:
        return Edges.empty()

    def recurse(e: Edges, depth: int) -> np.ndarray:
        """Returns positions (into the *original* id space carried in e.id)."""
        if len(e) == 0:
            return np.empty(0, dtype=np.int64)
        if len(e) <= base_case_size or depth > 64:
            from .boruvka import boruvka_msf

            return boruvka_msf(e, n).id

        # Step 1: two Borůvka rounds.
        labels = np.arange(n, dtype=np.int64)
        picked = []
        for _ in range(2):
            chosen, labels = boruvka_round(e, labels)
            picked.append(e.id[chosen])
        a = labels[e.u]
        b = labels[e.v]
        alive = a != b
        contracted = Edges(a[alive], b[alive], e.w[alive], e.id[alive])
        if len(contracted) == 0:
            return np.concatenate(picked)

        # Step 2+3: sample half the edges, recurse for the filter forest F.
        sampled = rng.random(len(contracted)) < 0.5
        h = contracted.take(sampled)
        f_ids = recurse(h, depth + 1)
        in_f = np.isin(contracted.id, f_ids)
        forest = contracted.take(in_f)

        # Step 4: discard F-heavy edges (cycle property).
        rest = contracted.take(~in_f)
        path_max = max_weight_on_paths(forest, n, rest.u, rest.v)
        light = rest.take(rest.w <= path_max)

        # Step 5: recurse on F union the light survivors.
        survivors = Edges.concat([forest, light])
        t_ids = recurse(survivors, depth + 1)
        return np.concatenate(picked + [t_ids])

    # Carry original positions in the id column.
    work = Edges(edges.u, edges.v, edges.w,
                 np.arange(len(edges), dtype=np.int64))
    positions = np.unique(recurse(work, 0))
    return edges.take(positions)
