"""MSF verification utilities.

Every distributed algorithm in this package is checked against these
functions in the test suite.  Verification is stricter than "same weight":

* :func:`is_spanning_forest` -- the candidate is acyclic and connects exactly
  the same vertex pairs as the input graph;
* :func:`verify_msf` -- additionally, its total weight equals sequential
  Kruskal's (which, with the shared tie-breaking order, implies optimality),
  and optionally the edge multiset matches triple-for-triple;
* :func:`networkx_msf_weight` -- an *external* cross-check through networkx,
  so our own baselines cannot be wrong in a correlated way.
"""

from __future__ import annotations

import numpy as np

from ..dgraph.edges import Edges
from .kruskal import kruskal_msf
from .union_find import UnionFind


def is_forest(candidate: Edges, n_vertices: int) -> bool:
    """True iff the candidate edges contain no cycle."""
    uf = UnionFind(n_vertices)
    kept = uf.union_edges(candidate.u, candidate.v)
    return bool(kept.all())


def spans_same_components(candidate: Edges, graph: Edges, n_vertices: int) -> bool:
    """True iff candidate and graph induce identical connected components."""
    uf_g = UnionFind(n_vertices)
    uf_g.union_edges(graph.u, graph.v)
    uf_c = UnionFind(n_vertices)
    uf_c.union_edges(candidate.u, candidate.v)
    return np.array_equal(
        _canonical_components(uf_g), _canonical_components(uf_c)
    )


def _canonical_components(uf: UnionFind) -> np.ndarray:
    comp = uf.components()
    # Renumber groups by order of first occurrence: the result depends only
    # on the partition, not on which element each union picked as root.
    _, first_idx, inverse = np.unique(comp, return_index=True,
                                      return_inverse=True)
    order = np.argsort(first_idx)
    rank = np.empty(len(order), dtype=np.int64)
    rank[order] = np.arange(len(order))
    return rank[inverse]


def is_spanning_forest(candidate: Edges, graph: Edges, n_vertices: int) -> bool:
    """Candidate is a spanning forest of the graph (not necessarily minimum)."""
    return is_forest(candidate, n_vertices) and spans_same_components(
        candidate, graph, n_vertices
    )


def verify_msf(candidate: Edges, graph: Edges, n_vertices: int,
               check_edges: bool = True) -> None:
    """Assert that ``candidate`` is *the* minimum spanning forest of ``graph``.

    Raises ``AssertionError`` with a diagnostic message on any violation.
    With ``check_edges`` the canonical (w, min, max) triples must match
    Kruskal's exactly (valid when the input has no exactly-parallel duplicate
    edges); without it only forest structure and total weight are compared.
    """
    assert is_forest(candidate, n_vertices), "candidate contains a cycle"
    assert spans_same_components(candidate, graph, n_vertices), (
        "candidate does not span the graph's components"
    )
    reference = kruskal_msf(graph, n_vertices)
    got_w, ref_w = candidate.total_weight(), reference.total_weight()
    assert got_w == ref_w, f"weight {got_w} != Kruskal weight {ref_w}"
    if check_edges:
        got = candidate.canonical_triples()
        ref = reference.canonical_triples()
        assert got.shape == ref.shape and np.array_equal(got, ref), (
            "MSF edge multiset differs from Kruskal's"
        )


def networkx_msf_weight(graph: Edges, n_vertices: int) -> int:
    """Independent MSF weight via networkx (keeps the lightest parallel edge)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(n_vertices))
    # add_weighted_edges_from keeps the *last* parallel edge; feed heaviest
    # first so the lightest survives, matching MSF semantics.
    order = np.lexsort((graph.w,))[::-1]
    g.add_weighted_edges_from(
        zip(graph.u[order].tolist(), graph.v[order].tolist(),
            graph.w[order].tolist())
    )
    return int(
        sum(d["weight"] for _, _, d in
            nx.minimum_spanning_edges(g, algorithm="kruskal", data=True))
    )
