"""Phase-time reporting helpers (the data behind the paper's Fig. 6).

:class:`~repro.simmpi.machine.Machine` accumulates simulated time per named
phase while algorithms run inside ``machine.phase(...)`` blocks.  This module
turns those raw accumulators into the normalised breakdowns the paper plots:
Fig. 6 shows, for each graph x core-count configuration, per-phase times
normalised to ``[0, 1]`` by the slowest algorithm variant of that
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

#: Canonical phase names used across the algorithms, in the order the paper's
#: Fig. 6 legend lists the corresponding steps.
PHASES = (
    "local_preprocessing",
    "min_edges",
    "contraction",
    "label_exchange",
    "relabel",
    "redistribute",
    "base_case",
    "pivot_partition",
    "filter",
    "mst_output",
)


@dataclass
class PhaseBreakdown:
    """Per-phase simulated seconds for one algorithm run."""

    algorithm: str
    times: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Sum over all phases."""
        return sum(self.times.values())

    def filled(self) -> Dict[str, float]:
        """Times for every canonical phase (0.0 where a phase did not run)."""
        return {ph: self.times.get(ph, 0.0) for ph in PHASES}


def collect_breakdown(machine, algorithm: str) -> PhaseBreakdown:
    """Snapshot the machine's phase accumulators into a :class:`PhaseBreakdown`."""
    return PhaseBreakdown(algorithm=algorithm, times=dict(machine.phase_times))


def normalise(breakdowns: Sequence[PhaseBreakdown]) -> List[PhaseBreakdown]:
    """Normalise a configuration's breakdowns to [0, 1] by the slowest variant.

    This reproduces the presentation of the paper's Fig. 6: within one
    graph x core-count configuration, every phase time is divided by the
    *total* running time of the slowest algorithm variant, so bars are
    directly comparable across variants.
    """
    slowest = max((b.total for b in breakdowns), default=0.0)
    if slowest <= 0.0:
        return [PhaseBreakdown(b.algorithm, dict(b.times)) for b in breakdowns]
    return [
        PhaseBreakdown(
            b.algorithm, {k: v / slowest for k, v in b.times.items()}
        )
        for b in breakdowns
    ]


def format_table(breakdowns: Mapping[str, PhaseBreakdown] | Sequence[PhaseBreakdown],
                 digits: int = 3) -> str:
    """ASCII table of phase times, one column per algorithm variant.

    Canonical phases come first in Fig. 6 legend order; phases outside
    :data:`PHASES` (the competitors' ``as_*``/``mnd_*``/``dk_*`` steps)
    follow in sorted order rather than being dropped.
    """
    if isinstance(breakdowns, Mapping):
        items = list(breakdowns.values())
    else:
        items = list(breakdowns)
    phases = [ph for ph in PHASES if any(b.times.get(ph, 0.0) > 0 for b in items)]
    extra = sorted({ph for b in items for ph, t in b.times.items()
                    if ph not in PHASES and t > 0})
    phases += extra
    header = ["phase"] + [b.algorithm for b in items]
    rows = [header]
    for ph in phases:
        rows.append([ph] + [f"{b.times.get(ph, 0.0):.{digits}f}" for b in items])
    rows.append(["total"] + [f"{b.total:.{digits}f}" for b in items])
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = []
    for idx, r in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(r)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
