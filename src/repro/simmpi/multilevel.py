"""d-dimensional generalisation of the indirect all-to-all (Section VI-A).

"For larger p, the grid approach can easily be generalized to dimensions
2 < d <= log(p).  For d = log(p), we basically get the hypercube all-to-all
algorithm from [44]."

PEs are arranged in a virtual d-dimensional grid with side lengths
``s_0 >= s_1 >= ... >= s_{d-1}`` (as balanced as possible, product >= p).
A message from ``i`` to ``j`` is routed in ``d`` hops: hop ``k`` fixes the
``k``-th coordinate to the destination's, moving within a *fiber* of the
grid (all PEs agreeing on every other coordinate).  Each hop is one dense
all-to-all over a group of ``s_k`` PEs, so the startup term drops from
``alpha * p`` to ``alpha * sum_k s_k ~ alpha * d * p^(1/d)`` while the
volume is multiplied by ``d``.

PEs beyond the grid (when ``prod(s) > p``) are *virtual*: routing snaps any
intermediate coordinate vector that does not correspond to a real PE to the
nearest real PE in its fiber (the same idea as the paper's incomplete-row
handling for d = 2).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .collectives import Comm
from .alltoall import _move_multi, _row_nbytes, _validate


def grid_sides(p: int, d: int) -> List[int]:
    """Balanced side lengths for a d-dimensional grid covering ``p`` PEs."""
    if d < 1:
        raise ValueError("d must be >= 1")
    sides = []
    remaining = p
    for k in range(d, 0, -1):
        s = int(np.ceil(remaining ** (1.0 / k)))
        s = max(s, 1)
        sides.append(s)
        remaining = int(np.ceil(remaining / s))
    sides.sort(reverse=True)
    return sides


def _coords(ranks: np.ndarray, sides: Sequence[int]) -> np.ndarray:
    """Mixed-radix digits of each rank (least-significant dimension last)."""
    out = np.empty((len(ranks), len(sides)), dtype=np.int64)
    rest = ranks.copy()
    for k in range(len(sides) - 1, -1, -1):
        out[:, k] = rest % sides[k]
        rest //= sides[k]
    return out


def _rank_of(coords: np.ndarray, sides: Sequence[int]) -> np.ndarray:
    rank = np.zeros(len(coords), dtype=np.int64)
    for k in range(len(sides)):
        rank = rank * sides[k] + coords[:, k]
    return rank


def alltoallv_multilevel(
    comm: Comm,
    sendbufs: Sequence[np.ndarray],
    sendcounts: Sequence[np.ndarray],
    d: int = 3,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Indirect all-to-all over a d-dimensional PE grid.

    Semantics identical to the other variants (receive buffers source-major,
    per-pair order preserved); ``d`` hops of dense all-to-alls over groups
    of ``~p^(1/d)`` PEs each.
    """
    size = comm.size
    if size <= 3 or d <= 1:
        from .alltoall import alltoallv_direct

        return alltoallv_direct(comm, sendbufs, sendcounts)
    counts = _validate(sendbufs, sendcounts, size)
    template = next(b for b in sendbufs if isinstance(b, np.ndarray))
    row_bytes = _row_nbytes(template)
    sides = grid_sides(size, d)
    d = len(sides)

    # Per-PE state: rows held, their final destination, their original source.
    held = [np.atleast_1d(sendbufs[i]) for i in range(size)]
    held_dst = [np.repeat(np.arange(size), counts[i]) for i in range(size)]
    held_src = [np.full(len(held[i]), i, dtype=np.int64)
                for i in range(size)]

    my_coords = _coords(np.arange(size), sides)

    hop_rows: List[int] = []
    for k in range(d):
        # Hop k: every row moves to the PE whose coordinates agree with the
        # destination on dims 0..k and with the current holder on dims k+1..
        hop_counts = np.zeros((size, size), dtype=np.int64)
        bufs, dsts, srcs = [], [], []
        for i in range(size):
            rows = held[i]
            if len(rows) == 0:
                bufs.append(rows)
                dsts.append(held_dst[i])
                srcs.append(held_src[i])
                continue
            dst_coords = _coords(held_dst[i], sides)
            target_coords = np.tile(my_coords[i], (len(rows), 1))
            target_coords[:, :k + 1] = dst_coords[:, :k + 1]
            target = _rank_of(target_coords, sides)
            # Snap virtual targets (rank >= p) onto the destination itself:
            # the destination is always real and lies in the same remaining
            # fiber, so the residual hops still converge.
            target = np.where(target >= size, held_dst[i], target)
            order = np.argsort(target, kind="stable")
            bufs.append(rows[order])
            dsts.append(held_dst[i][order])
            srcs.append(held_src[i][order])
            np.add.at(hop_counts[i], target[order], 1)
        new_held, new_dst, new_src = _move_multi((bufs, dsts, srcs),
                                                 hop_counts)
        held, held_dst, held_src = new_held, new_dst, new_src

        group = sides[k]
        bytes_out = hop_counts.sum(axis=1).astype(np.float64) * row_bytes
        bytes_in = hop_counts.sum(axis=0).astype(np.float64) * row_bytes
        cost = np.array([
            comm.machine.cost.alltoall_dense(group, bytes_out[r],
                                             bytes_in[r],
                                             comm.machine.threads)
            for r in range(size)
        ])
        fi = comm.machine.faults
        if fi is not None:
            cost = fi.on_exchange(comm, f"alltoallv_multilevel/hop{k}",
                                  new_held, row_bytes, bytes_out, bytes_in,
                                  cost)
        comm.machine.bytes_communicated += float(bytes_out.sum())
        from .alltoall import _record_trace

        _record_trace(comm, hop_counts, row_bytes,
                      op=f"alltoallv_multilevel/hop{k}")
        comm._sync_and_charge(cost, op=f"alltoallv_multilevel/hop{k}",
                              nbytes=float(bytes_out.sum()))
        hop_rows.append(int(hop_counts.sum()))

    san = comm.machine.sanitizer
    if san is not None:
        san.check_multilevel(size, d, int(counts.sum()), hop_rows, sides)

    recvbufs: List[np.ndarray] = []
    recvcounts: List[np.ndarray] = []
    for j in range(size):
        if len(held_dst[j]) and not (held_dst[j] == j).all():
            raise RuntimeError("multilevel routing failed to converge")
        order = np.argsort(held_src[j], kind="stable")
        recvbufs.append(np.ascontiguousarray(held[j][order]))
        rc = np.zeros(size, dtype=np.int64)
        if len(held_src[j]):
            np.add.at(rc, held_src[j], 1)
        recvcounts.append(rc)
    return recvbufs, recvcounts
