"""simsan: the SPMD runtime sanitizer (distribution & cost-invariant checker).

DESIGN.md Section 4 promises four invariants; until now invariants 2-4 were
only spot-checked.  This module enforces them *at runtime*, opt-in, on any
:class:`~repro.simmpi.machine.Machine`:

Distribution discipline (invariant 2)
    Per-PE numpy arrays registered with the sanitizer (the edge blocks of
    every :class:`~repro.dgraph.dist_graph.DistGraph`) are wrapped in
    :class:`PEArray` views that know their owning rank and are
    write-protected (``ndarray.flags.writeable = False``).  Driver code may
    only write a PE's arrays inside an explicit ``machine.on_pe(rank)``
    block for that same rank (or inside simmpi's own collective machinery);
    any other write raises :class:`DistributionViolation` naming the
    offending (writer, owner) PE pair.  Writes that bypass the wrapper
    (e.g. through ``arr.view(np.ndarray)`` or in-place ``ndarray`` methods)
    are still stopped by the read-only flag, just with numpy's plain
    ``ValueError``.

Cost accounting (invariant 4)
    * per-PE clocks are monotone: every ``Machine.charge`` must be
      non-negative and clocks never drop below the sanitizer's running
      floor (updated after every collective);
    * every collective charges **all** participant ranks with a strictly
      positive cost;
    * ``machine.bytes_communicated`` stays consistent with the per-pair
      byte matrix the sanitizer shadows from every exchange (the same data
      ``trace=True`` records, but kept internally so tracing semantics are
      unchanged);
    * the two-level all-to-all moves at most 2x the direct volume using
      groups of ``O(sqrt p)`` PEs (and the d-dimensional generalisation at
      most d-times the volume with groups of ``O(p^(1/d))``).

Sortedness (invariant 3)
    After every REDISTRIBUTE the edge list must be globally
    lexicographically sorted and the replicated min-lex array must agree
    with the actual per-PE first edges (:meth:`Sanitizer.check_redistributed`,
    called from :func:`repro.core.redistribute.redistribute`).

Enable with ``Machine(..., sanitize=True)``, the ``REPRO_SIMSAN``
environment variable (picked up when ``sanitize`` is left at ``None``), the
``--simsan`` CLI flag, or the pytest ``--simsan`` option (on by default in
the test suite).  See docs/sanitizer.md for semantics and overhead.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

__all__ = [
    "SanitizerViolation",
    "DistributionViolation",
    "CostAccountingViolation",
    "SortednessViolation",
    "PEArray",
    "Sanitizer",
]

#: Sentinel key component used by DistGraph's replicated min-lex array.
_KEY_SENTINEL = np.iinfo(np.int64).max


class SanitizerViolation(RuntimeError):
    """Base class for every invariant violation simsan reports."""


class DistributionViolation(SanitizerViolation):
    """A PE's arrays were written outside its ``on_pe`` context.

    ``writer_pe`` is the rank whose context was active (``None`` when the
    write happened outside any ``on_pe`` block); ``owner_pe`` owns the
    violated array.
    """

    def __init__(self, writer_pe: Optional[int], owner_pe: int, op: str):
        self.writer_pe = writer_pe
        self.owner_pe = owner_pe
        self.op = op
        writer = (f"PE {writer_pe}" if writer_pe is not None
                  else "driver code outside any on_pe context")
        super().__init__(
            f"distribution discipline violated: {writer} wrote to "
            f"PE {owner_pe}'s array via {op}; per-PE state may only move "
            f"between PEs through simmpi communication calls"
        )


class CostAccountingViolation(SanitizerViolation):
    """Clocks went backwards, a participant was skipped, or volumes lie."""


class SortednessViolation(SanitizerViolation):
    """The distributed edge list broke invariant 3 after a redistribute."""


class PEArray(np.ndarray):
    """An ndarray view that knows which PE owns it.

    Write access (``__setitem__`` and ufunc ``out=`` targets) is checked
    against the sanitizer's active ``on_pe`` context; views keep the owner,
    copies (fancy indexing, ``.copy()``, arithmetic results) drop it and
    behave like plain arrays.
    """

    _simsan: Optional["Sanitizer"] = None
    _simsan_owner: Optional[int] = None

    def __array_finalize__(self, obj):
        if obj is None:
            return
        # Ownership follows *views* of the registered buffer only: copies
        # (including fancy-index results, which arrive as views of a fresh
        # intermediate buffer) are private memory and are unrestricted.
        if isinstance(obj, PEArray) and obj._simsan is not None \
                and self.base is not None and np.may_share_memory(self, obj):
            self._simsan = obj._simsan
            self._simsan_owner = obj._simsan_owner
        else:
            self._simsan = None
            self._simsan_owner = None

    def _check_write(self, op: str) -> None:
        san, owner = self._simsan, self._simsan_owner
        if san is not None and owner is not None:
            san.check_write(owner, op)

    def __setitem__(self, key, value):
        self._check_write("setitem")
        # The check authorised this write; the read-only flag is only the
        # backstop against raw (unwrapped) access, so lift it temporarily
        # for views created while the buffer was locked.
        if self.flags.writeable:
            np.ndarray.__setitem__(self, key, value)
            return
        try:
            self.flags.writeable = True
        except ValueError:
            np.ndarray.__setitem__(self, key, value)  # read-only base: raise
            return
        try:
            np.ndarray.__setitem__(self, key, value)
        finally:
            self.flags.writeable = False

    def __array_ufunc__(self, ufunc, method, *inputs, out=None, **kwargs):
        # Delegate on plain views: ndarray's default implementation defers
        # (returns NotImplemented) whenever an operand overrides
        # __array_ufunc__, so results are computed -- and returned -- as
        # base-class arrays (copies carry no ownership anyway).
        unlocked = []
        if out:
            for o in out:
                if isinstance(o, PEArray):
                    o._check_write(f"ufunc:{ufunc.__name__}")
                    if not o.flags.writeable:
                        try:
                            o.flags.writeable = True
                            unlocked.append(o)
                        except ValueError:
                            pass  # read-only base: numpy will raise below
            kwargs["out"] = tuple(
                o.view(np.ndarray) if isinstance(o, PEArray) else o
                for o in out)
        plain = tuple(i.view(np.ndarray) if isinstance(i, PEArray) else i
                      for i in inputs)
        try:
            return getattr(ufunc, method)(*plain, **kwargs)
        finally:
            for o in unlocked:
                o.flags.writeable = False


class Sanitizer:
    """Runtime invariant checker bound to one simulated machine.

    Created by ``Machine(..., sanitize=True)``; algorithms and the simmpi
    substrate call its hooks.  All checks raise a
    :class:`SanitizerViolation` subclass; ``counters`` records how many
    checks of each kind actually ran (useful to assert coverage in tests).
    """

    #: Relative tolerance for the bytes-vs-traced-matrix consistency check.
    BYTES_RTOL = 1e-6

    def __init__(self, machine):
        self.machine = machine
        p = machine.n_procs
        #: Rank whose ``on_pe`` context is active (None = driver code).
        self.current_pe: Optional[int] = None
        self._collective_depth = 0
        #: Weak refs to the registered wrapper views, per owning rank.
        self._arrays: Dict[int, List[weakref.ref]] = {}
        #: Shadow per-pair byte matrix (same data a CommTrace records).
        self.comm_matrix = np.zeros((p, p), dtype=np.float64)
        self._traced_bytes = 0.0
        #: Monotone per-PE clock floor, advanced after every collective.
        self._clock_floor = np.zeros(p, dtype=np.float64)
        self.counters: Dict[str, int] = {
            "write_checks": 0,
            "charges": 0,
            "collectives": 0,
            "exchanges": 0,
            "alltoall_bounds": 0,
            "redistribute_checks": 0,
            "checkpoints": 0,
        }

    def reset(self) -> None:
        """Forget accumulated state (mirrors ``Machine.reset``)."""
        self.comm_matrix[:] = 0.0
        self._traced_bytes = 0.0
        self._clock_floor[:] = 0.0

    # ------------------------------------------------------------------
    # Ownership tracking (invariant 2).
    # ------------------------------------------------------------------
    def wrap(self, pe: int, arr: np.ndarray) -> PEArray:
        """Register ``arr`` as PE ``pe``'s state; returns the locked view."""
        if isinstance(arr, PEArray) and arr._simsan is self \
                and arr._simsan_owner == pe:
            return arr
        view = np.asarray(arr).view(PEArray)
        view._simsan = self
        view._simsan_owner = pe
        try:
            view.flags.writeable = False
        except ValueError:  # base chain already read-only: stays locked
            pass
        self._arrays.setdefault(pe, []).append(weakref.ref(view))
        return view

    def adopt_edges(self, pe: int, edges) -> None:
        """Register all four arrays of an edge block as PE ``pe``'s state."""
        edges.u = self.wrap(pe, edges.u)
        edges.v = self.wrap(pe, edges.v)
        edges.w = self.wrap(pe, edges.w)
        edges.id = self.wrap(pe, edges.id)

    def _set_writeable(self, pe: int, flag: bool) -> List[np.ndarray]:
        toggled = []
        live = []
        for ref in self._arrays.get(pe, ()):
            arr = ref()
            if arr is None:
                continue
            live.append(ref)
            try:
                arr.flags.writeable = flag
                toggled.append(arr)
            except ValueError:
                pass  # view of a read-only base; wrapper check still applies
        self._arrays[pe] = live
        return toggled

    @contextmanager
    def on_pe(self, rank: int) -> Iterator[None]:
        """Execute the block as PE ``rank``: its arrays become writeable."""
        if not 0 <= rank < self.machine.n_procs:
            raise ValueError(f"on_pe rank {rank} out of range")
        prev = self.current_pe
        self.current_pe = rank
        unlocked = self._set_writeable(rank, True)
        try:
            yield
        finally:
            self.current_pe = prev
            if prev != rank:
                for arr in unlocked:
                    arr.flags.writeable = False

    @contextmanager
    def collective(self) -> Iterator[None]:
        """Mark a block as simmpi communication machinery (writes allowed)."""
        self._collective_depth += 1
        try:
            yield
        finally:
            self._collective_depth -= 1

    def check_write(self, owner: int, op: str) -> None:
        """Validate a write to PE ``owner``'s array (called by PEArray)."""
        self.counters["write_checks"] += 1
        if self._collective_depth > 0:
            return
        if self.current_pe == owner:
            return
        raise DistributionViolation(self.current_pe, owner, op)

    # ------------------------------------------------------------------
    # Cost accounting (invariant 4).
    # ------------------------------------------------------------------
    def on_charge(self, seconds, ranks=None) -> None:
        """Validate one ``Machine.charge`` (clock monotonicity)."""
        self.counters["charges"] += 1
        s = np.asarray(seconds, dtype=np.float64)
        if not np.all(np.isfinite(s)):
            raise CostAccountingViolation(
                f"non-finite charge {seconds!r}: clocks must stay finite")
        if np.any(s < 0):
            raise CostAccountingViolation(
                f"negative charge {seconds!r}: per-PE clocks must be "
                f"monotone (invariant 4)")

    def on_comm(self, ranks: np.ndarray, bytes_matrix: np.ndarray) -> None:
        """Shadow one exchange's per-pair byte volume."""
        self.counters["exchanges"] += 1
        self.comm_matrix[np.ix_(ranks, ranks)] += bytes_matrix
        self._traced_bytes += float(bytes_matrix.sum())

    def pre_collective(self, ranks: np.ndarray, per_rank_cost) -> None:
        """Validate one collective *before* its clocks are advanced."""
        self.counters["collectives"] += 1
        c = np.asarray(per_rank_cost, dtype=np.float64)
        if c.ndim > 0 and c.shape != (len(ranks),):
            raise CostAccountingViolation(
                f"collective charged {c.shape[0] if c.ndim else 1} ranks "
                f"but has {len(ranks)} participants: every collective must "
                f"charge all participant ranks")
        if not np.all(np.isfinite(c)) or np.any(c < 0):
            raise CostAccountingViolation(
                f"collective cost {per_rank_cost!r} is negative or "
                f"non-finite: clocks must be monotone")
        if np.any(c == 0):
            skipped = (np.asarray(ranks)[np.atleast_1d(c) == 0]
                       if c.ndim else np.asarray(ranks))
            raise CostAccountingViolation(
                f"collective skipped charging rank(s) {skipped.tolist()}: "
                f"every participant pays at least the startup cost")
        m = self.machine
        floor = self._clock_floor
        if np.any(m.clock < floor - 1e-12):
            bad = int(np.argmax(floor - m.clock))
            raise CostAccountingViolation(
                f"PE {bad}'s clock went backwards: {m.clock[bad]!r} is "
                f"below its previous value {floor[bad]!r}")
        drift = abs(m.bytes_communicated - self._traced_bytes)
        if drift > self.BYTES_RTOL * max(self._traced_bytes, 1.0):
            raise CostAccountingViolation(
                f"bytes_communicated ({m.bytes_communicated:.1f}) is "
                f"inconsistent with the traced per-pair matrix "
                f"({self._traced_bytes:.1f}): some exchange moved data "
                f"without accounting for it (or vice versa)")

    def post_collective(self, ranks: np.ndarray) -> None:
        """Advance the clock floor after a collective completed."""
        self._clock_floor[ranks] = self.machine.clock[ranks]

    def checkpoint(self, label: str = "") -> None:
        """Assert monotone progress at an algorithm-level checkpoint."""
        self.counters["checkpoints"] += 1
        m = self.machine
        if np.any(m.clock < self._clock_floor - 1e-12):
            bad = int(np.argmax(self._clock_floor - m.clock))
            raise CostAccountingViolation(
                f"checkpoint {label!r}: PE {bad}'s clock went backwards "
                f"({m.clock[bad]!r} < {self._clock_floor[bad]!r})")
        np.maximum(self._clock_floor, m.clock, out=self._clock_floor)

    def check_two_level(self, size: int, direct_rows: int,
                        hop_rows: Sequence[int],
                        group_sizes: Sequence[int]) -> None:
        """Bound the grid all-to-all: <= 2x volume, O(sqrt p) startups."""
        self.counters["alltoall_bounds"] += 1
        total = int(np.sum(hop_rows))
        if total > 2 * direct_rows:
            raise CostAccountingViolation(
                f"two-level all-to-all moved {total} rows for "
                f"{direct_rows} direct rows: must stay within 2x the "
                f"direct volume")
        bound = int(np.ceil(np.sqrt(size))) + 2
        for g in group_sizes:
            if g > bound:
                raise CostAccountingViolation(
                    f"two-level all-to-all used a group of {g} PEs on a "
                    f"{size}-PE machine: groups must stay O(sqrt p) "
                    f"(<= {bound})")

    def check_multilevel(self, size: int, d: int, direct_rows: int,
                         hop_rows: Sequence[int],
                         group_sizes: Sequence[int]) -> None:
        """Bound the d-dim all-to-all: <= d x volume, O(p^(1/d)) groups."""
        self.counters["alltoall_bounds"] += 1
        total = int(np.sum(hop_rows))
        if total > d * direct_rows:
            raise CostAccountingViolation(
                f"{d}-level all-to-all moved {total} rows for "
                f"{direct_rows} direct rows: must stay within {d}x the "
                f"direct volume")
        bound = int(np.ceil(size ** (1.0 / d))) + 2
        for g in group_sizes:
            if g > bound:
                raise CostAccountingViolation(
                    f"{d}-level all-to-all used a group of {g} PEs on a "
                    f"{size}-PE machine: groups must stay O(p^(1/{d})) "
                    f"(<= {bound})")

    # ------------------------------------------------------------------
    # Sortedness (invariant 3).
    # ------------------------------------------------------------------
    def check_redistributed(self, graph) -> None:
        """Verify invariant 3 on a freshly redistributed graph.

        The distributed edge list must be locally and globally
        lexicographically sorted, and the replicated metadata (min-lex
        array, part sizes) must agree with the actual per-PE blocks.
        """
        self.counters["redistribute_checks"] += 1
        parts = graph.parts
        p = len(parts)
        prev_last = None
        for i, part in enumerate(parts):
            # force=True: re-verify even when the part carries a cached
            # known-sorted flag, so the sanitizer check stays non-vacuous.
            if not part.is_sorted_lex(force=True):
                raise SortednessViolation(
                    f"PE {i}: local edge block is not lexicographically "
                    f"sorted after redistribute")
            if int(graph.part_sizes[i]) != len(part):
                raise SortednessViolation(
                    f"PE {i}: replicated part size "
                    f"{int(graph.part_sizes[i])} disagrees with the actual "
                    f"block length {len(part)}")
            if len(part) == 0:
                continue
            first = (int(part.u[0]), int(part.v[0]), int(part.w[0]))
            if prev_last is not None and first < prev_last:
                raise SortednessViolation(
                    f"global sortedness violated at PE {i}: first edge "
                    f"{first} sorts before the previous non-empty PE's "
                    f"last edge {prev_last}")
            prev_last = (int(part.u[-1]), int(part.v[-1]), int(part.w[-1]))
        # Replicated min-lex agreement: every PE's key must equal the first
        # edge of the next non-empty part (sentinel past the last one).
        nk_u, nk_v, nk_w = graph.min_keys
        expected = (_KEY_SENTINEL, _KEY_SENTINEL, _KEY_SENTINEL)
        for i in range(p - 1, -1, -1):
            part = parts[i]
            if len(part):
                expected = (int(part.u[0]), int(part.v[0]), int(part.w[0]))
            actual = (int(nk_u[i]), int(nk_v[i]), int(nk_w[i]))
            if actual != expected:
                raise SortednessViolation(
                    f"replicated min-lex array disagrees at PE {i}: "
                    f"replicated {actual}, actual first edge {expected}")

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        done = {k: v for k, v in self.counters.items() if v}
        return f"Sanitizer(p={self.machine.n_procs}, checks={done})"
