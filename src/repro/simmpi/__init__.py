"""Simulated distributed-memory machine (the MPI substrate substitution).

See DESIGN.md Section 1: the paper's algorithms run unchanged on ``p``
virtual PEs with genuinely partitioned state; communication really moves data
between per-PE buffers and charges per-PE clocks with the paper's
``alpha + beta * l`` cost model.
"""

from .costmodel import CostModel
from .machine import Machine, SimulatedOutOfMemory, simsan_env_enabled
from .collectives import Comm
from .sanitizer import (
    CostAccountingViolation,
    DistributionViolation,
    PEArray,
    Sanitizer,
    SanitizerViolation,
    SortednessViolation,
)
from .alltoall import (
    ALLTOALL_METHODS,
    GRID_DISPATCH_THRESHOLD_BYTES,
    alltoallv_auto,
    alltoallv_direct,
    alltoallv_grid,
    alltoallv_hypercube,
    route_rows,
    unsort,
)
from .multilevel import alltoallv_multilevel, grid_sides
from .trace import CommTrace, comm_heatmap, hotspot_summary
from .timers import PHASES, PhaseBreakdown, collect_breakdown, format_table, normalise

__all__ = [
    "CostModel",
    "Machine",
    "SimulatedOutOfMemory",
    "simsan_env_enabled",
    "Comm",
    "Sanitizer",
    "SanitizerViolation",
    "DistributionViolation",
    "CostAccountingViolation",
    "SortednessViolation",
    "PEArray",
    "ALLTOALL_METHODS",
    "GRID_DISPATCH_THRESHOLD_BYTES",
    "alltoallv_auto",
    "alltoallv_direct",
    "alltoallv_grid",
    "alltoallv_hypercube",
    "route_rows",
    "unsort",
    "alltoallv_multilevel",
    "grid_sides",
    "CommTrace",
    "comm_heatmap",
    "hotspot_summary",
    "PHASES",
    "PhaseBreakdown",
    "collect_breakdown",
    "format_table",
    "normalise",
]
