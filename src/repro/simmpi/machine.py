"""The simulated distributed-memory machine.

A :class:`Machine` models ``n_procs`` MPI processes, each with ``threads``
OpenMP threads (so ``cores = n_procs * threads``).  The *unit of distribution*
is the MPI process -- exactly as in the paper, where the graph is
1D-partitioned over MPI processes and threads only accelerate local work.

Simulation semantics
--------------------
* Each process ("PE" throughout, matching the paper's terminology) owns local
  numpy state managed by the algorithms, never touched directly by other PEs.
* Every data movement between PEs goes through :mod:`repro.simmpi.collectives`
  or :mod:`repro.simmpi.alltoall`, which really move the data between per-PE
  buffers *and* charge simulated time to per-PE clocks using the
  :class:`~repro.simmpi.costmodel.CostModel`.
* Local computation is charged explicitly via :meth:`Machine.charge`.

The machine also provides:

* **Phase timers** (:meth:`phase`) that attribute elapsed simulated time to
  named algorithm phases -- the data behind the paper's Fig. 6 breakdown.
* **Memory accounting** (:meth:`check_memory`): when a per-PE memory limit is
  configured, exceeding it raises :class:`SimulatedOutOfMemory`.  The paper's
  competitors crash / cannot process some configurations for exactly this
  reason (Section VII), and the benchmark harness reproduces that behaviour.
* **Per-PE deterministic RNGs** (:meth:`pe_rng`) so simulated runs are exactly
  reproducible.
"""

from __future__ import annotations

import os
from contextlib import contextmanager, nullcontext
from typing import Dict, Iterator, Optional

import numpy as np

from .costmodel import CostModel


def simsan_env_enabled() -> bool:
    """Whether the ``REPRO_SIMSAN`` environment variable requests simsan."""
    value = os.environ.get("REPRO_SIMSAN", "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


def trace_events_env_enabled() -> bool:
    """Whether the ``REPRO_TRACE`` environment variable requests tracing."""
    from ..obs.tracer import trace_env_enabled

    return trace_env_enabled()


class SimulatedOutOfMemory(RuntimeError):
    """Raised when a PE would exceed its configured memory limit.

    Mirrors the crashes / out-of-memory failures the paper reports for the
    competitor codes on large configurations (Section VII-A/B).
    """

    def __init__(self, pe: int, requested_bytes: float, limit_bytes: float):
        self.pe = pe
        self.requested_bytes = requested_bytes
        self.limit_bytes = limit_bytes
        super().__init__(
            f"PE {pe} requested {requested_bytes / 1e6:.1f} MB "
            f"(limit {limit_bytes / 1e6:.1f} MB)"
        )


class Machine:
    """A simulated distributed-memory machine with per-PE clocks.

    Parameters
    ----------
    n_procs:
        Number of MPI processes (PEs).  Local graph data is partitioned over
        these.
    threads:
        OpenMP threads per process.  ``cores = n_procs * threads``.  Threads
        accelerate local computation per the cost model's thread model but do
        not change the distribution.
    cost:
        Machine constants; defaults to :class:`CostModel`'s calibration.
    memory_limit_bytes:
        Optional per-PE memory budget.  ``None`` disables accounting.
    seed:
        Base seed for the per-PE RNG streams.
    trace:
        Record a per-pair communication matrix (see repro.simmpi.trace).
    sanitize:
        Attach the runtime invariant checker (see repro.simmpi.sanitizer).
        ``None`` (the default) defers to the ``REPRO_SIMSAN`` environment
        variable; pass ``True``/``False`` to force it on/off.
    trace_events:
        Attach the structured event tracer and metrics registry (see
        repro.obs and docs/observability.md).  ``None`` (the default)
        defers to the ``REPRO_TRACE`` environment variable; pass
        ``True``/``False`` to force it on/off.  Tracing never perturbs
        simulated time: clocks, cost charging, RNG streams and sanitizer
        behaviour are bit-for-bit identical with tracing on and off.
    faults:
        Attach the fault-injection and recovery subsystem (see
        repro.faults and docs/faults.md).  ``None`` (the default) defers
        to the ``REPRO_FAULTS`` environment variable; pass a spec string
        (e.g. ``"seed=7,pe_fail=0.05"``), a parsed
        :class:`~repro.faults.FaultSchedule`, or ``False`` to force it
        off.  With no subsystem attached -- or an attached one whose
        schedule injects nothing -- simulated times are bit-for-bit
        identical to a machine without the knob.
    engine:
        The execution engine that runs the simulated PEs on the host
        (see repro.engines and docs/engines.md): ``"inprocess"``,
        ``"batched"``, ``"multiprocess"``, or a ready
        :class:`~repro.engines.ExecutionEngine` instance.  ``None`` (the
        default) defers to the ``REPRO_ENGINE`` environment variable and
        then the legacy ``REPRO_KERNELS`` knob.  Engines never change
        simulated behaviour -- clocks, phase times, RNG draws, traces
        and MSF weights are bit-for-bit identical across all of them.
    """

    def __init__(
        self,
        n_procs: int,
        threads: int = 1,
        cost: Optional[CostModel] = None,
        memory_limit_bytes: Optional[float] = None,
        seed: int = 0,
        trace: bool = False,
        sanitize: Optional[bool] = None,
        trace_events: Optional[bool] = None,
        faults=None,
        engine=None,
    ):
        if n_procs < 1:
            raise ValueError(f"n_procs must be >= 1, got {n_procs}")
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.n_procs = int(n_procs)
        self.threads = int(threads)
        from ..engines import make_engine

        #: Execution engine (see repro.engines / docs/engines.md).
        self.engine = make_engine(engine).bind(self)
        self.cost = cost if cost is not None else CostModel()
        self.memory_limit_bytes = memory_limit_bytes
        self.seed = int(seed)
        #: Per-PE simulated clocks in seconds.
        self.clock = np.zeros(self.n_procs, dtype=np.float64)
        #: Accumulated simulated seconds per named phase (max over PEs of the
        #: per-PE deltas accumulated while the phase was active).
        self.phase_times: Dict[str, float] = {}
        #: Per-PE accumulated phase times (phase -> array of length n_procs).
        self.phase_times_per_pe: Dict[str, np.ndarray] = {}
        self._phase_stack: list[tuple[str, np.ndarray]] = []
        #: Total bytes moved between PEs (diagnostic).
        self.bytes_communicated = 0.0
        #: Total number of collective operations issued (diagnostic).
        self.n_collectives = 0
        self._rngs: Dict[int, np.random.Generator] = {}
        #: Optional per-pair communication trace (see repro.simmpi.trace).
        if trace:
            from .trace import CommTrace

            self.trace: Optional["CommTrace"] = CommTrace(self.n_procs)
        else:
            self.trace = None
        if sanitize is None:
            sanitize = simsan_env_enabled()
        if sanitize:
            from .sanitizer import Sanitizer

            self.sanitizer: Optional["Sanitizer"] = Sanitizer(self)
        else:
            self.sanitizer = None
        if trace_events is None:
            trace_events = trace_events_env_enabled()
        if trace_events:
            from ..kernels.engine import set_kernel_sink
            from ..obs import EventTracer, MetricsRegistry

            #: Structured event ring buffer (None when tracing is off).
            self.events: Optional["EventTracer"] = EventTracer(self.n_procs)
            #: Metrics registry (None when tracing is off).
            self.metrics: Optional["MetricsRegistry"] = MetricsRegistry()
            # Ring-buffer overwrites surface as a trace/dropped_events
            # counter so truncation is visible in metrics exports too.
            self.events.attach_metrics(self.metrics)
            # Segmented kernels report invocation counts / host time to the
            # most recently created traced machine (docs/observability.md).
            set_kernel_sink(self.metrics)
        else:
            self.events = None
            self.metrics = None
        from ..kernels.pool import BufferPool, set_active_pool

        #: Per-machine scratch-buffer arena for the batched kernels
        #: (docs/kernels.md): kernels driven by the most recently created
        #: machine recycle this machine's blocks, and the whole arena dies
        #: with the machine instead of accreting in a process-global pool.
        self.pool = BufferPool()
        if self.metrics is not None:
            self.pool.attach_sink(self.metrics)
        set_active_pool(self.pool)
        if faults is None:
            from ..faults.schedule import faults_env_spec

            faults = faults_env_spec()
        if faults is None or faults is False:
            #: Fault injector (None when the fault subsystem is off).
            self.faults = None
        else:
            from ..faults import FaultInjector, FaultSchedule

            if isinstance(faults, str):
                faults = FaultSchedule.parse(faults)
            elif not isinstance(faults, FaultSchedule):
                raise TypeError(
                    f"faults= takes a spec string, a FaultSchedule or "
                    f"False, got {faults!r}")
            self.faults = FaultInjector(self, faults)

    @property
    def faulting(self) -> bool:
        """Whether the fault-injection subsystem is attached."""
        return self.faults is not None

    @property
    def sanitizing(self) -> bool:
        """Whether the runtime invariant checker is attached."""
        return self.sanitizer is not None

    @property
    def tracing(self) -> bool:
        """Whether the structured event tracer is attached."""
        return self.events is not None

    def on_pe(self, rank: int):
        """Context manager executing the block as PE ``rank``.

        Under the sanitizer, PE ``rank``'s registered arrays become
        writeable for the duration and writes to any *other* PE's arrays
        raise :class:`~repro.simmpi.sanitizer.DistributionViolation`.
        Without the sanitizer this is a no-op context.
        """
        if self.sanitizer is None:
            return nullcontext()
        return self.sanitizer.on_pe(rank)

    def checkpoint(self, label: str = "") -> None:
        """Sanitizer checkpoint: assert per-PE clock monotonicity here."""
        if self.sanitizer is not None:
            self.sanitizer.checkpoint(label)

    def record_comm(self, counts_matrix: np.ndarray, row_bytes: float) -> None:
        """Record one exchange's per-pair volume when tracing is enabled."""
        if self.trace is not None:
            self.trace.record(np.asarray(counts_matrix, dtype=np.float64)
                              * row_bytes)

    # ------------------------------------------------------------------
    # Basic properties.
    # ------------------------------------------------------------------
    @property
    def cores(self) -> int:
        """Total hardware cores modelled (processes x threads)."""
        return self.n_procs * self.threads

    def elapsed(self) -> float:
        """Simulated makespan so far: the maximum over all PE clocks."""
        return float(self.clock.max())

    def reset(self) -> None:
        """Zero all clocks, phase timers, diagnostics and RNG streams.

        After a reset the machine reproduces a run bit-for-bit: the per-PE
        RNG cache is dropped so :meth:`pe_rng` hands out fresh streams from
        the original seed again.
        """
        self.clock[:] = 0.0
        self.phase_times.clear()
        self.phase_times_per_pe.clear()
        self._phase_stack.clear()
        self.bytes_communicated = 0.0
        self.n_collectives = 0
        self._rngs.clear()
        self.pool.clear()
        if self.trace is not None:
            self.trace.reset()
        if self.sanitizer is not None:
            self.sanitizer.reset()
        if self.events is not None:
            self.events.reset()
        if self.metrics is not None:
            self.metrics.reset()
        if self.faults is not None:
            self.faults.reset()
        # Engine last: the multiprocess engine tears its worker pool down
        # here and respawns it lazily, so a reset machine never reuses
        # workers that may have been poisoned by a failed run.
        self.engine.reset()

    def pe_rng(self, pe: int) -> np.random.Generator:
        """Deterministic per-PE random generator (stable across calls)."""
        if pe not in self._rngs:
            self._rngs[pe] = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed, spawn_key=(pe,))
            )
        return self._rngs[pe]

    def rng_snapshot(self) -> Dict[int, dict]:
        """Deep-copied states of every per-PE RNG stream handed out so far.

        The round checkpoints of the fault-recovery subsystem capture this
        so a replayed round draws exactly what the failed attempt drew
        (pivot selection, sample sort) -- the property that makes a
        recovered run's MST bit-identical to the fault-free run's.
        """
        import copy

        return {pe: copy.deepcopy(gen.bit_generator.state)
                for pe, gen in self._rngs.items()}

    def rng_restore(self, snapshot: Dict[int, dict]) -> None:
        """Reset the per-PE RNG streams to a :meth:`rng_snapshot`.

        Streams not present in the snapshot are dropped entirely, so a
        stream first consumed *after* the snapshot restarts from its
        seeded origin -- exactly the state at snapshot time.
        """
        import copy

        self._rngs.clear()
        for pe, state in snapshot.items():
            gen = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed, spawn_key=(pe,))
            )
            gen.bit_generator.state = copy.deepcopy(state)
            self._rngs[pe] = gen

    # ------------------------------------------------------------------
    # Time accounting.
    # ------------------------------------------------------------------
    def charge(self, seconds, ranks: Optional[np.ndarray] = None) -> None:
        """Advance clocks by ``seconds`` (scalar or per-rank array).

        ``ranks`` restricts the charge to a PE subset (used by sub-group
        collectives); by default all PEs are charged.
        """
        if self.sanitizer is not None:
            self.sanitizer.on_charge(seconds, ranks)
        if ranks is None:
            self.clock += seconds
        else:
            self.clock[ranks] += seconds

    def charge_scan(self, elements, ranks: Optional[np.ndarray] = None) -> None:
        """Charge a thread-parallel linear pass of ``elements`` per PE."""
        elements = np.asarray(elements, dtype=np.float64)
        self.charge(self.cost.c_scan * elements
                    / self.cost.effective_threads(self.threads), ranks)

    def charge_sort(self, elements, ranks: Optional[np.ndarray] = None) -> None:
        """Charge a thread-parallel local sort of ``elements`` per PE."""
        elements = np.asarray(elements, dtype=np.float64)
        levels = np.log2(np.maximum(elements, 2.0))
        self.charge(self.cost.c_sort * elements * levels
                    / self.cost.effective_threads(self.threads), ranks)

    def charge_hash(self, operations, ranks: Optional[np.ndarray] = None) -> None:
        """Charge thread-parallel hash-table operations per PE."""
        operations = np.asarray(operations, dtype=np.float64)
        self.charge(self.cost.c_hash * operations
                    / self.cost.effective_threads(self.threads), ranks)

    def barrier(self, ranks: Optional[np.ndarray] = None) -> None:
        """Synchronise clocks of ``ranks`` (default: all) to their maximum."""
        if ranks is None:
            self.clock[:] = self.clock.max() + self.cost.collective_tree(
                self.n_procs, 0
            )
        else:
            size = len(ranks)
            self.clock[ranks] = self.clock[ranks].max() + self.cost.collective_tree(
                size, 0
            )

    # ------------------------------------------------------------------
    # Phase timers (Fig. 6 data).
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute simulated time spent inside the block to phase ``name``.

        Nested phases attribute time to the innermost phase only, mirroring
        the exclusive phase accounting of the paper's Fig. 6.
        """
        # Freeze outer phase: record its partial delta before switching.
        if self._phase_stack:
            outer_name, outer_start = self._phase_stack[-1]
            self._accumulate(outer_name, self.clock - outer_start)
        self._phase_stack.append((name, self.clock.copy()))
        if self.events is not None:
            self.events.push_phase(name, self.clock)
        try:
            yield
        finally:
            _, start = self._phase_stack.pop()
            self._accumulate(name, self.clock - start)
            if self._phase_stack:
                # Restart outer phase's window from now.
                outer_name, _ = self._phase_stack[-1]
                self._phase_stack[-1] = (outer_name, self.clock.copy())
            if self.events is not None:
                self.events.pop_phase(name, self.clock)

    @contextmanager
    def span(self, name: str, cat: str = "span") -> Iterator[None]:
        """Trace a per-PE span over the block without phase accounting.

        Sub-phase instrumentation (sorting dispatch, kernel batches):
        opens one span per PE at its current clock on entry and closes it
        on exit.  A no-op when event tracing is off -- in particular it
        never touches clocks or phase timers.
        """
        ev = self.events
        if ev is None:
            yield
            return
        ev.begin_ranks(name, self.clock, cat=cat)
        try:
            yield
        finally:
            ev.end_ranks(name, self.clock, cat=cat)

    def _accumulate(self, name: str, delta: np.ndarray) -> None:
        per_pe = self.phase_times_per_pe.setdefault(
            name, np.zeros(self.n_procs, dtype=np.float64)
        )
        per_pe += delta
        self.phase_times[name] = float(per_pe.max())

    # ------------------------------------------------------------------
    # Memory accounting.
    # ------------------------------------------------------------------
    def check_memory(self, per_pe_bytes) -> None:
        """Raise :class:`SimulatedOutOfMemory` if any PE exceeds the limit.

        ``per_pe_bytes`` is a scalar or an array of length ``n_procs`` giving
        the current (or about-to-be-allocated) resident bytes per PE.
        """
        if self.memory_limit_bytes is None:
            return
        per_pe_bytes = np.atleast_1d(np.asarray(per_pe_bytes, dtype=np.float64))
        worst = int(np.argmax(per_pe_bytes))
        if per_pe_bytes[worst] > self.memory_limit_bytes:
            raise SimulatedOutOfMemory(
                worst, float(per_pe_bytes[worst]), float(self.memory_limit_bytes)
            )

    # ------------------------------------------------------------------
    # Engine lifecycle.
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release host resources held by the execution engine.

        Only the multiprocess engine holds any (its worker pool); calling
        this is optional -- engines also clean up via gc finalizers --
        but deterministic teardown keeps test output free of straggler
        processes.  A closed machine remains usable: the engine respawns
        its resources lazily on the next use.
        """
        self.engine.close()

    def __enter__(self) -> "Machine":
        """Context-manager entry: the machine itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Machine(n_procs={self.n_procs}, threads={self.threads}, "
            f"cores={self.cores}, elapsed={self.elapsed():.6f}s)"
        )
