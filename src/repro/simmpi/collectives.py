"""SPMD collectives over the simulated machine.

A :class:`Comm` binds a :class:`~repro.simmpi.machine.Machine` to an ordered
subset of its PEs (like an MPI communicator).  Because the simulator drives
all PEs from one Python process, collectives take a *list of per-rank values*
(index = rank within the communicator) and return either a replicated value
(for bcast/allreduce-style operations -- every rank holds the same result) or
a list of per-rank results.

Every operation

1. really computes the result from the per-rank inputs (data semantics are
   identical to MPI), and
2. charges simulated time to the participants' clocks using the collective
   bounds from Section II-A of the paper
   (``O(alpha log p + beta l)`` for tree collectives,
   ``O(alpha log p + beta L)`` with total length ``L`` for allgather).

Collectives synchronise the participants' clocks to their maximum before the
operation completes (bulk-synchronous semantics), which matches how the
paper's algorithms use them.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Union

import numpy as np

from ..kernels.dtypes import logical_nbytes
from .machine import Machine

#: Reduction operators accepted by name.
_OPS: dict[str, Callable] = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
}


def _nbytes(value) -> int:
    """Communication size in *logical* bytes of one per-rank contribution.

    The simulated machine moves 8-byte words for every integer payload
    regardless of the host storage width (repro.kernels.dtypes narrowing),
    so integer arrays count ``size * 8`` -- keeping every simulated cost
    bit-identical between narrow and wide storage.  Floats and bools keep
    their true width, as they always did.
    """
    if isinstance(value, np.ndarray):
        return logical_nbytes(value)
    if isinstance(value, (list, tuple)):
        return sum(_nbytes(v) for v in value)
    return 8  # scalars travel as one machine word


def _resolve_op(op: Union[str, Callable]) -> Callable:
    if callable(op):
        return op
    try:
        return _OPS[op]
    except KeyError:
        raise ValueError(f"unknown reduction op {op!r}; use one of {sorted(_OPS)}")


class Comm:
    """An ordered group of PEs supporting collective operations.

    Parameters
    ----------
    machine:
        The simulated machine.
    ranks:
        Global PE ids that form this communicator, in rank order.  ``None``
        means all PEs (the world communicator).
    """

    def __init__(self, machine: Machine, ranks: Sequence[int] | None = None):
        self.machine = machine
        if ranks is None:
            self.ranks = np.arange(machine.n_procs)
        else:
            self.ranks = np.asarray(ranks, dtype=np.int64)
            if len(np.unique(self.ranks)) != len(self.ranks):
                raise ValueError("communicator ranks must be distinct")
        self.size = len(self.ranks)

    # ------------------------------------------------------------------
    def _sync_and_charge(self, per_rank_cost, op: str = "collective",
                         nbytes: float = 0.0) -> None:
        """Barrier-synchronise participants, then charge per-rank costs.

        ``op`` names the collective for the observability layer (span
        events and per-operation metrics); ``nbytes`` is its per-rank
        payload size.  Both are observation-only: the synchronisation and
        charging sequence is identical whether or not tracing is attached.

        When a fault injector is attached (repro.faults) it adjusts the
        per-rank cost here -- dropped messages are retried with backoff,
        stragglers and slow links multiply their ranks' costs -- before
        the sanitizer validates the charge, so every injected fault still
        has to satisfy the cost-accounting invariants.
        """
        m = self.machine
        m.n_collectives += 1
        san = m.sanitizer
        ev = m.events
        if ev is not None:
            ev.begin_ranks(op, m.clock, self.ranks, cat="collective")
        if m.metrics is not None:
            m.metrics.counter(f"collective/{op}/count").inc()
            m.metrics.counter(f"collective/{op}/bytes").inc(nbytes)
        if m.faults is not None:
            per_rank_cost = m.faults.on_collective(op, self.ranks,
                                                   per_rank_cost, nbytes)
        if san is not None:
            san.pre_collective(self.ranks, per_rank_cost)
        clocks = m.clock[self.ranks]
        m.clock[self.ranks] = clocks.max() + per_rank_cost
        if san is not None:
            san.post_collective(self.ranks)
        if ev is not None:
            ev.end_ranks(op, m.clock, self.ranks, cat="collective")

    def sub(self, local_ranks: Sequence[int]) -> "Comm":
        """Sub-communicator from rank indices *within this communicator*."""
        return Comm(self.machine, self.ranks[np.asarray(local_ranks, dtype=np.int64)])

    # ------------------------------------------------------------------
    # Rooted / replicated collectives.
    # ------------------------------------------------------------------
    def bcast(self, value, root: int = 0):
        """Broadcast ``value`` held by ``root`` to all ranks (returned replicated)."""
        nb = _nbytes(value)
        cost = self.machine.cost.collective_tree(self.size, nb)
        self._sync_and_charge(cost, op="bcast", nbytes=nb)
        return value

    def reduce(self, values: Sequence, op: Union[str, Callable] = "sum", root: int = 0):
        """Reduce per-rank ``values``; only ``root`` semantically holds the result."""
        result = self._reduced(values, op)
        nb = _nbytes(values[0])
        cost = self.machine.cost.collective_tree(self.size, nb)
        self._sync_and_charge(cost, op="reduce", nbytes=nb)
        return result

    def allreduce(self, values: Sequence, op: Union[str, Callable] = "sum"):
        """Reduce per-rank ``values`` and replicate the result on every rank.

        ``values`` may be scalars or numpy arrays of identical shape (the
        paper's base case relies on a *vector* allreduce of length n',
        Section IV-D).
        """
        result = self._reduced(values, op)
        nb = _nbytes(values[0])
        cost = self.machine.cost.collective_tree(self.size, nb)
        self._sync_and_charge(cost, op="allreduce", nbytes=nb)
        return result

    def _reduced(self, values: Sequence, op: Union[str, Callable]):
        if len(values) != self.size:
            raise ValueError(
                f"expected {self.size} per-rank values, got {len(values)}"
            )
        fn = _resolve_op(op)
        acc = values[0]
        if isinstance(acc, np.ndarray):
            acc = acc.copy()
        for v in values[1:]:
            acc = fn(acc, v)
        return acc

    # ------------------------------------------------------------------
    # Prefix sums.
    # ------------------------------------------------------------------
    def exscan(self, values: Sequence, op: Union[str, Callable] = "sum") -> List:
        """Exclusive prefix reduction: rank r receives op(values[0..r-1]).

        Rank 0 receives the operation's identity (0 for sum; for general ops
        rank 0 receives ``None`` and callers must handle it).
        """
        fn = _resolve_op(op)
        out: List = []
        acc = None
        for r in range(self.size):
            if acc is None:
                out.append(0 if fn is np.add else None)
            else:
                out.append(acc)
            acc = values[r] if acc is None else fn(acc, values[r])
        nb = _nbytes(values[0])
        cost = self.machine.cost.collective_tree(self.size, nb)
        self._sync_and_charge(cost, op="exscan", nbytes=nb)
        return out

    def scan(self, values: Sequence, op: Union[str, Callable] = "sum") -> List:
        """Inclusive prefix reduction: rank r receives op(values[0..r])."""
        fn = _resolve_op(op)
        out: List = []
        acc = None
        for r in range(self.size):
            acc = values[r] if acc is None else fn(acc, values[r])
            out.append(acc)
        nb = _nbytes(values[0])
        cost = self.machine.cost.collective_tree(self.size, nb)
        self._sync_and_charge(cost, op="scan", nbytes=nb)
        return out

    # ------------------------------------------------------------------
    # Gather family.
    # ------------------------------------------------------------------
    def allgather(self, values: Sequence) -> List:
        """Each rank contributes one value; all ranks receive the full list."""
        total = sum(_nbytes(v) for v in values)
        cost = self.machine.cost.allgather(self.size, total)
        self._sync_and_charge(cost, op="allgather", nbytes=total)
        return list(values)

    def allgatherv(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate per-rank arrays; every rank receives the concatenation."""
        total = sum(logical_nbytes(a) for a in arrays)
        cost = self.machine.cost.allgather(self.size, total)
        self._sync_and_charge(cost, op="allgatherv", nbytes=total)
        return np.concatenate([np.atleast_1d(a) for a in arrays])

    def gatherv(self, arrays: Sequence[np.ndarray], root: int = 0) -> np.ndarray:
        """Concatenate per-rank arrays at ``root`` (returned; only root holds it)."""
        total = sum(logical_nbytes(a) for a in arrays)
        cost = self.machine.cost.allgather(self.size, total)
        self._sync_and_charge(cost, op="gatherv", nbytes=total)
        return np.concatenate([np.atleast_1d(a) for a in arrays])

    def barrier(self) -> None:
        """Synchronise all participants."""
        self._sync_and_charge(self.machine.cost.collective_tree(self.size, 0),
                              op="barrier")

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Comm(size={self.size})"
