"""Analytic cost model for the simulated distributed-memory machine.

The paper (Section II-A) assumes single-ported point-to-point communication
where sending a message of length ``l`` bytes costs ``alpha + beta * l``
seconds: ``alpha`` is the message-startup latency and ``beta`` the per-byte
transfer time.  All collective-operation costs used by the simulator are
derived from these two parameters plus a small set of calibrated per-element
charges for local computation.

Only *simulated* time is ever reported by this package; the wall-clock time of
running the simulator itself is meaningless (the whole point of the
substitution documented in DESIGN.md is that we cannot run the paper's C++/MPI
code on 2^16 real cores from Python).

Calibration
-----------
The default constants approximate a 2018-era HPC node on an OmniPath-class
interconnect (SuperMUC-NG, the paper's machine):

* ``alpha = 2e-6`` s      -- MPI point-to-point startup latency (~2 us).
* ``beta = 4e-9`` s/B     -- ~0.25 GB/s effective per-PE bandwidth share: a
  48-core node shares one 100 Gbit/s OmniPath port, and all-to-all traffic
  under contention reaches nowhere near line rate.
* ``c_scan = 1e-9`` s     -- one pass over one 8-byte element (~1 GHz
  effective scan rate per core, memory bound).
* ``c_sort = 8e-9`` s     -- per element *per log2-level* of a comparison
  sort (local ``np.sort`` style).
* ``c_hash = 6e-9`` s     -- one hash-table insert/lookup.

The *shape* of every reproduced figure is insensitive to moderate changes of
these constants; EXPERIMENTS.md reports a sensitivity check.

Thread model
------------
The paper's implementation is hybrid MPI+OpenMP with *funneled* MPI (one
communication thread per process).  We model ``threads`` hardware threads per
MPI process:

* local computation marked *parallel* is sped up by
  ``effective_threads = 1 + (threads - 1) * thread_efficiency``;
* the ``beta`` term and the per-message software overhead are **not** sped up
  (single-threaded MPI progress engine) -- this asymmetry is what produces
  the paper's observed 1-thread-vs-8-thread tradeoff (Section VII-A).
"""

from __future__ import annotations

from dataclasses import dataclass


#: Bytes occupied by one logical edge element in communication buffers.
#: Edges travel as (src, dst, weight, id) int64 quadruples = 32 bytes; most
#: messages in the algorithms are smaller records, so callers pass explicit
#: byte counts computed from the actual numpy dtypes.
BYTES_PER_INT64 = 8


@dataclass
class CostModel:
    """Collection of machine constants used to charge simulated time.

    Parameters mirror Section II-A of the paper; see the module docstring for
    the calibration rationale.  All times are in seconds.
    """

    #: Message startup latency (the paper's alpha).
    alpha: float = 2e-6
    #: Per-byte transfer time (the paper's beta).
    beta: float = 4e-9
    #: Per-byte single-threaded MPI software overhead (packing/copying inside
    #: MPI_Alltoallv; responsible for the funneled-MPI bottleneck).
    beta_sw: float = 1e-9
    #: Per-element charge for a linear scan / elementwise pass.
    c_scan: float = 1e-9
    #: Per-element-per-log2-level charge for local comparison sorting.
    c_sort: float = 8e-9
    #: Per-operation charge for a hash-table insert or lookup.
    c_hash: float = 6e-9
    #: Fixed software overhead per collective-operation call per PE.
    c_call: float = 5e-7
    #: Fraction of ideal speedup attained per extra OpenMP thread.
    thread_efficiency: float = 0.85

    def effective_threads(self, threads: int) -> float:
        """Speedup factor for thread-parallel local work with ``threads`` threads."""
        if threads <= 1:
            return 1.0
        return 1.0 + (threads - 1) * self.thread_efficiency

    # ------------------------------------------------------------------
    # Point-to-point / collective building blocks (per-PE costs).
    # ------------------------------------------------------------------
    def p2p(self, nbytes: float) -> float:
        """Cost of one point-to-point message of ``nbytes`` bytes."""
        return self.alpha + self.beta * nbytes

    def collective_tree(self, group_size: int, nbytes: float) -> float:
        """Cost of a tree/butterfly collective (bcast, (all)reduce, prefix sum).

        ``O(alpha * log p + beta * l)`` per Section II-A, where ``nbytes`` is
        the per-PE vector length in bytes (pipelined-binary-tree bound).
        """
        if group_size <= 1:
            return self.c_call
        log_p = max(1, (group_size - 1).bit_length())
        return self.c_call + self.alpha * log_p + self.beta * nbytes

    def allgather(self, group_size: int, total_nbytes: float) -> float:
        """Cost of an allgather where ``total_nbytes`` sums all contributions."""
        if group_size <= 1:
            return self.c_call
        log_p = max(1, (group_size - 1).bit_length())
        return self.c_call + self.alpha * log_p + self.beta * total_nbytes

    def alltoall_dense(
        self, group_size: int, bytes_out: float, bytes_in: float, threads: int = 1
    ) -> float:
        """Per-PE cost of one dense ``MPI_Alltoallv`` over ``group_size`` PEs.

        The built-in routine posts an exchange with every group member, so the
        startup term is ``alpha * group_size`` regardless of how many
        messages are actually non-empty -- this is precisely the overhead the
        paper's two-level scheme removes (Section VI-A, Fig. 2).  The
        software (packing) term is charged single-threaded per the funneled
        MPI model.
        """
        volume = bytes_out + bytes_in
        return (
            self.c_call
            + self.alpha * group_size
            + self.beta * volume
            + self.beta_sw * volume
        )

    def retry(self, base_cost, timeout: float, attempt: int):
        """Cost of the ``attempt``-th retransmission of a failed operation.

        Fault recovery (repro.faults) re-pays the full operation plus the
        failure-detection timeout, doubled per attempt (exponential
        backoff): attempt 1 waits ``timeout``, attempt 2 ``2 * timeout``,
        and so on.  ``base_cost`` may be a per-rank array.
        """
        return base_cost + timeout * float(2 ** (attempt - 1))

    # ------------------------------------------------------------------
    # Local computation charges.
    # ------------------------------------------------------------------
    def scan(self, elements: float, threads: int = 1) -> float:
        """Thread-parallel linear pass over ``elements`` items."""
        return self.c_scan * elements / self.effective_threads(threads)

    def sort(self, elements: float, threads: int = 1) -> float:
        """Thread-parallel local comparison sort of ``elements`` items."""
        if elements <= 1:
            return 0.0
        import math

        levels = max(1.0, math.log2(elements))
        return self.c_sort * elements * levels / self.effective_threads(threads)

    def hash_ops(self, operations: float, threads: int = 1) -> float:
        """Thread-parallel hash-table operations (Section VI-B dedup)."""
        return self.c_hash * operations / self.effective_threads(threads)
