"""Communication tracing: who sends how much to whom.

The paper attributes most of its running time to communication phases
(Fig. 6) and motivates the two-level all-to-all with contention; a
communication *matrix* (bytes exchanged per PE pair) is the standard tool
for seeing both.  When a machine is created with ``trace=True``, every
all-to-all records its per-pair byte counts here; :func:`comm_heatmap`
renders the aggregate as an ASCII heat map and :func:`hotspot_summary`
quantifies imbalance (max/mean row volume -- the load-imbalance signal that
MND-MST's unsplit high-degree vertices trip over).
"""

from __future__ import annotations

import numpy as np

#: Heat-map glyph ramp, light to heavy.
RAMP = " .:-=+*#%@"


class CommTrace:
    """Accumulated per-pair communication volume of one machine."""

    def __init__(self, n_procs: int):
        self.n_procs = n_procs
        self.matrix = np.zeros((n_procs, n_procs), dtype=np.float64)
        self.n_exchanges = 0

    def record(self, bytes_matrix: np.ndarray) -> None:
        """Add one exchange's (p, p) byte-count matrix."""
        self.matrix += bytes_matrix
        self.n_exchanges += 1

    def reset(self) -> None:
        """Forget all recorded traffic (mirrors ``Machine.reset``)."""
        self.matrix[:] = 0.0
        self.n_exchanges = 0

    # ------------------------------------------------------------------
    def total_bytes(self) -> float:
        """All bytes recorded across all exchanges."""
        return float(self.matrix.sum())

    def row_volumes(self) -> np.ndarray:
        """Bytes sent per PE."""
        return self.matrix.sum(axis=1)

    def imbalance(self) -> float:
        """max/mean of per-PE sent volume (1.0 = perfectly balanced)."""
        rows = self.row_volumes()
        mean = rows.mean()
        if mean <= 0:
            return 1.0
        return float(rows.max() / mean)


def comm_heatmap(trace: CommTrace, max_cells: int = 32) -> str:
    """ASCII heat map of the communication matrix (log-scaled).

    Machines larger than ``max_cells`` PEs are binned down so the map stays
    terminal-sized.
    """
    m = trace.matrix
    p = trace.n_procs
    if p > max_cells:
        bins = max_cells
        edges = np.linspace(0, p, bins + 1).astype(int)
        binned = np.zeros((bins, bins))
        for i in range(bins):
            for j in range(bins):
                binned[i, j] = m[edges[i]:edges[i + 1],
                                 edges[j]:edges[j + 1]].sum()
        m = binned
    if m.max() <= 0:
        return "(no traffic recorded)"
    scaled = np.log1p(m)
    scaled = scaled / scaled.max()
    lines = ["receiver ->"]
    for i in range(m.shape[0]):
        row = "".join(RAMP[min(int(v * (len(RAMP) - 1)), len(RAMP) - 1)]
                      for v in scaled[i])
        lines.append(f"{i:4d} |{row}|")
    lines.append(f"total {trace.total_bytes():.3e} B over "
                 f"{trace.n_exchanges} exchanges, "
                 f"imbalance {trace.imbalance():.2f}x")
    return "\n".join(lines)


def hotspot_summary(trace: CommTrace, top: int = 3) -> str:
    """The heaviest senders and pairs -- contention candidates."""
    rows = trace.row_volumes()
    order = np.argsort(rows)[::-1][:top]
    lines = ["heaviest senders: "
             + ", ".join(f"PE{int(i)}={rows[i]:.2e}B" for i in order)]
    flat = trace.matrix.ravel()
    pairs = np.argsort(flat)[::-1][:top]
    p = trace.n_procs
    lines.append("heaviest pairs  : "
                 + ", ".join(f"PE{int(k // p)}->PE{int(k % p)}"
                             f"={flat[k]:.2e}B" for k in pairs))
    return "\n".join(lines)
