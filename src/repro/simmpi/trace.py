"""Communication tracing: who sends how much to whom.

The paper attributes most of its running time to communication phases
(Fig. 6) and motivates the two-level all-to-all with contention; a
communication *matrix* (bytes exchanged per PE pair) is the standard tool
for seeing both.  When a machine is created with ``trace=True``, every
all-to-all records its per-pair byte counts here; :func:`comm_heatmap`
renders the aggregate as an ASCII heat map and :func:`hotspot_summary`
quantifies imbalance (max/mean row volume -- the load-imbalance signal that
MND-MST's unsplit high-degree vertices trip over).
"""

from __future__ import annotations

import numpy as np

#: Heat-map glyph ramp, light to heavy.
RAMP = " .:-=+*#%@"


class CommTrace:
    """Accumulated per-pair communication volume of one machine."""

    def __init__(self, n_procs: int):
        self.n_procs = n_procs
        self.matrix = np.zeros((n_procs, n_procs), dtype=np.float64)
        self.n_exchanges = 0

    def record(self, bytes_matrix: np.ndarray) -> None:
        """Add one exchange's (p, p) byte-count matrix.

        Raises ``ValueError`` for anything other than a numeric
        ``(n_procs, n_procs)`` matrix -- a malformed record would silently
        corrupt every later heat map and imbalance number.
        """
        bytes_matrix = np.asarray(bytes_matrix)
        if bytes_matrix.shape != (self.n_procs, self.n_procs):
            raise ValueError(
                f"expected a ({self.n_procs}, {self.n_procs}) matrix, "
                f"got shape {bytes_matrix.shape}")
        if bytes_matrix.dtype.kind not in "fiub":
            raise ValueError(
                f"byte counts must be numeric, got dtype "
                f"{bytes_matrix.dtype}")
        self.matrix += bytes_matrix
        self.n_exchanges += 1

    def reset(self) -> None:
        """Forget all recorded traffic (mirrors ``Machine.reset``)."""
        self.matrix[:] = 0.0
        self.n_exchanges = 0

    # ------------------------------------------------------------------
    def total_bytes(self) -> float:
        """All bytes recorded across all exchanges."""
        return float(self.matrix.sum())

    def row_volumes(self) -> np.ndarray:
        """Bytes sent per PE."""
        return self.matrix.sum(axis=1)

    def imbalance(self) -> float:
        """max/mean of per-PE sent volume (1.0 = perfectly balanced)."""
        rows = self.row_volumes()
        mean = rows.mean()
        if mean <= 0:
            return 1.0
        return float(rows.max() / mean)


def comm_heatmap(trace: CommTrace, max_cells: int = 32) -> str:
    """ASCII heat map of the communication matrix (log-scaled).

    Machines larger than ``max_cells`` PEs are binned down so the map stays
    terminal-sized.
    """
    m = trace.matrix
    p = trace.n_procs
    if p > max_cells:
        bins = max_cells
        edges = np.linspace(0, p, bins + 1).astype(int)
        # p > bins makes the integer edges strictly increasing, so the
        # reduceat segments are all non-empty (an empty segment would
        # return the row at its start index instead of a zero sum).
        m = np.add.reduceat(np.add.reduceat(m, edges[:-1], axis=0),
                            edges[:-1], axis=1)
    if m.max() <= 0:
        return "(no traffic recorded)"
    scaled = np.log1p(m)
    scaled = scaled / scaled.max()
    lines = ["receiver ->"]
    for i in range(m.shape[0]):
        row = "".join(RAMP[min(int(v * (len(RAMP) - 1)), len(RAMP) - 1)]
                      for v in scaled[i])
        lines.append(f"{i:4d} |{row}|")
    lines.append(f"total {trace.total_bytes():.3e} B over "
                 f"{trace.n_exchanges} exchanges, "
                 f"imbalance {trace.imbalance():.2f}x")
    return "\n".join(lines)


def hotspot_summary(trace: CommTrace, top: int = 3) -> str:
    """The heaviest senders and pairs -- contention candidates.

    Only PEs/pairs that actually sent bytes are listed: a machine with
    fewer than ``top`` active senders reports just those, rather than
    padding the list with meaningless zero-volume entries.
    """
    rows = trace.row_volumes()
    order = [int(i) for i in np.argsort(rows)[::-1][:top] if rows[i] > 0]
    if not order:
        return "(no traffic recorded)"
    lines = ["heaviest senders: "
             + ", ".join(f"PE{i}={rows[i]:.2e}B" for i in order)]
    flat = trace.matrix.ravel()
    pairs = [int(k) for k in np.argsort(flat)[::-1][:top] if flat[k] > 0]
    p = trace.n_procs
    lines.append("heaviest pairs  : "
                 + ", ".join(f"PE{k // p}->PE{k % p}"
                             f"={flat[k]:.2e}B" for k in pairs))
    return "\n".join(lines)
