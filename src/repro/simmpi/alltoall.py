"""Sparse personalized all-to-all exchanges (direct, two-level grid, hypercube).

This module implements the communication primitive at the heart of the
paper's algorithms (Sections II-A and VI-A).  Three delivery schemes are
provided, all with identical semantics but different cost profiles:

``alltoallv_direct``
    One dense ``MPI_Alltoallv``: startup ``O(alpha * p)`` per PE regardless of
    how many messages are non-empty, plus ``beta * l`` for bottleneck volume
    ``l``.  This is what becomes prohibitive at scale (Fig. 2).

``alltoallv_grid``
    The paper's two-level scheme (Section VI-A): PEs are arranged in a
    virtual ``c x r`` grid with ``c = floor(sqrt(p))`` columns and
    ``r = ceil(p / c)`` rows.  A message from ``i`` to ``j`` is first routed
    to the intermediate PE in row ``row(j)`` / column ``col(i)`` (an
    all-to-all *within columns*), then delivered within the row.  Startup
    drops to ``O(alpha * sqrt(p))`` at the cost of doubling the communicated
    volume.  The incomplete-last-row case is handled exactly as described in
    the paper: if ``j`` lies in the incomplete last row, the intermediate is
    the PE in row ``col(j)`` / column ``col(i)`` and ``j`` is virtually
    appended to row ``col(j)`` for the second exchange.

``alltoallv_hypercube``
    The ``d = log p`` extreme of the grid generalisation [Johnsson & Ho]:
    ``log p`` pairwise exchange rounds, moving data up to ``log p`` times,
    with startup ``O(alpha * log p)``.

``alltoallv_auto``
    The dispatch rule from Section VI-A: use the indirect grid scheme when
    the average number of bytes per message is below a threshold (the paper
    uses 500 bytes on SuperMUC-NG), the direct scheme otherwise.

Message representation
----------------------
A payload is a numpy array whose *rows* are the message units (1-D arrays are
treated as single-column rows).  ``sendcounts[i]`` gives, for PE ``i``, the
number of rows destined to each rank, destination-major: ``sendbufs[i]`` rows
must be grouped by destination rank in ascending order.  Receivers obtain
rows grouped by *source* rank in ascending order, preserving per-pair
ordering -- exactly the ``MPI_Alltoallv`` contract.  All three schemes return
bit-identical results (a property the test suite checks exhaustively).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from ..kernels import RaggedArrays, batched_for, route_plan
from ..kernels.dtypes import logical_itemsize
from .collectives import Comm

#: Average-bytes-per-message threshold below which the auto dispatcher picks
#: the indirect two-level scheme (Section VI-A: "we use 500 on our system").
GRID_DISPATCH_THRESHOLD_BYTES = 500.0


def _row_nbytes(buf: np.ndarray) -> int:
    """*Logical* bytes per message row of a payload array.

    Integer elements always count 8 bytes -- the simulated machine's word --
    so host-side dtype narrowing (repro.kernels.dtypes) never changes a
    simulated cost, traced byte or sanitizer shadow entry.
    """
    item = logical_itemsize(buf.dtype)
    if buf.ndim == 1:
        return item
    return item * int(np.prod(buf.shape[1:]))


def _empty_like_rows(template: np.ndarray, n: int = 0) -> np.ndarray:
    """An ``n``-row array with the same row shape/dtype as ``template``."""
    shape = (n,) + template.shape[1:]
    return np.empty(shape, dtype=template.dtype)


def _validate(sendbufs: Sequence[np.ndarray], sendcounts: Sequence[np.ndarray],
              size: int) -> np.ndarray:
    if len(sendbufs) != size or len(sendcounts) != size:
        raise ValueError(f"need {size} send buffers/count vectors")
    counts = np.empty((size, size), dtype=np.int64)
    for i in range(size):
        c = np.asarray(sendcounts[i], dtype=np.int64)
        if c.shape != (size,):
            raise ValueError(f"sendcounts[{i}] must have length {size}")
        counts[i] = c
    buf_lens = np.fromiter((len(b) for b in sendbufs), dtype=np.int64,
                           count=size)
    bad = np.flatnonzero(counts.sum(axis=1) != buf_lens)
    if len(bad):
        i = int(bad[0])
        raise ValueError(
            f"sendcounts[{i}] sums to {counts[i].sum()} but buffer has "
            f"{len(sendbufs[i])} rows"
        )
    return counts


def _gather_order(counts: np.ndarray, total: int
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Shared gather index transposing (src, dst) cell order to (dst, src).

    The concatenated send buffers are laid out in (src, dst) cell-major
    order; receivers need (dst, src)-major.  The stable sort by destination
    is exactly the block transpose of the cell structure, so build the
    gather index directly in O(rows + size^2) instead of an
    O(rows log rows) argsort.  Returns the gather order plus per-receiver
    offsets into the gathered sequence.
    """
    size = counts.shape[0]
    lens = counts.ravel()
    src_start = np.zeros(size * size, dtype=np.int64)
    np.cumsum(lens[:-1], out=src_start[1:])
    cells = np.arange(size * size).reshape(size, size).T.ravel()
    tlens = lens[cells]
    dst_start = np.zeros(size * size, dtype=np.int64)
    np.cumsum(tlens[:-1], out=dst_start[1:])
    order = np.arange(total) + np.repeat(src_start[cells] - dst_start, tlens)
    offs = np.zeros(size + 1, dtype=np.int64)
    np.cumsum(counts.sum(axis=0), out=offs[1:])
    return order, offs


def _move_multi(bufs_lists: Sequence[Sequence[np.ndarray]],
                counts: np.ndarray) -> List[List[np.ndarray]]:
    """Move several parallel payload lists through one exchange step.

    Every payload list shares the same counts matrix, so the gather order
    is computed once and reused -- the exchanges that ship rows together
    with per-row metadata (grid/hypercube routing) pay for one transpose
    instead of one per payload.
    """
    size = counts.shape[0]
    order = offs = None
    out: List[List[np.ndarray]] = []
    for sendbufs in bufs_lists:
        template = None
        for b in sendbufs:
            if isinstance(b, np.ndarray):
                template = b
                break
        assert template is not None
        big = np.concatenate(
            [b if isinstance(b, np.ndarray) and b.ndim else np.atleast_1d(b)
             for b in sendbufs], axis=0)
        if len(big) == 0:
            out.append([_empty_like_rows(template) for _ in range(size)])
            continue
        if order is None:
            order, offs = _gather_order(counts, len(big))
        routed = big[order]
        big = None  # only the gathered copy is needed from here on
        # Ranks that receive nothing get a standalone empty array: a
        # zero-length *slice* would pin the whole routed block in memory
        # for as long as any receiver keeps its (empty) buffer alive.
        out.append([routed[offs[j]:offs[j + 1]]
                    if offs[j + 1] > offs[j] else _empty_like_rows(routed)
                    for j in range(size)])
    return out


def _move(sendbufs: Sequence[np.ndarray], counts: np.ndarray
          ) -> Tuple[List[np.ndarray], np.ndarray]:
    """Pure data movement for one exchange step (no cost accounting).

    ``counts[i, j]`` rows go from rank ``i`` to rank ``j``.  Returns per-rank
    receive buffers (rows source-major, per-pair order preserved) and the
    counts matrix transposed view for receivers.
    """
    (recvbufs,) = _move_multi((sendbufs,), counts)
    return recvbufs, counts


def _record_trace(comm: Comm, counts: np.ndarray, row_bytes: float,
                  op: str = "alltoall") -> None:
    """Accumulate one exchange into the machine's communication trace.

    The sanitizer keeps its own shadow of the same per-pair matrix (fed
    unconditionally when attached) so it can cross-check
    ``bytes_communicated`` without changing tracing semantics.  ``op``
    names the exchange flavour for the metrics registry
    (bytes/messages per collective, per-PE send volumes); metrics see the
    exact same counts matrix as the trace and the sanitizer shadow.
    """
    m = comm.machine
    if m.metrics is not None:
        from ..obs.hooks import observe_exchange

        observe_exchange(comm, op, counts, row_bytes)
    tr, san = m.trace, m.sanitizer
    if tr is None and san is None:
        return
    sub = np.asarray(counts, dtype=np.float64) * row_bytes
    if tr is not None:
        tr.matrix[np.ix_(comm.ranks, comm.ranks)] += sub
        tr.n_exchanges += 1
    if san is not None:
        san.on_comm(comm.ranks, sub)


def alltoallv_direct(
    comm: Comm,
    sendbufs: Sequence[np.ndarray],
    sendcounts: Sequence[np.ndarray],
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Dense one-level all-to-all (built-in ``MPI_Alltoallv`` model)."""
    size = comm.size
    counts = _validate(sendbufs, sendcounts, size)
    recvbufs, _ = _move(sendbufs, counts)
    row_bytes = max((_row_nbytes(b) for b in sendbufs if isinstance(b, np.ndarray)),
                    default=8)
    bytes_out = counts.sum(axis=1).astype(np.float64) * row_bytes
    bytes_in = counts.sum(axis=0).astype(np.float64) * row_bytes
    # alltoall_dense is elementwise in its byte arguments, so one array call
    # computes every rank's cost with the exact scalar-loop float semantics.
    cost = comm.machine.cost.alltoall_dense(size, bytes_out, bytes_in,
                                            comm.machine.threads)
    fi = comm.machine.faults
    if fi is not None:
        cost = fi.on_exchange(comm, "alltoallv_direct", recvbufs, row_bytes,
                              bytes_out, bytes_in, cost)
    comm.machine.bytes_communicated += float(bytes_out.sum())
    _record_trace(comm, counts, row_bytes, op="alltoallv_direct")
    comm._sync_and_charge(cost, op="alltoallv_direct",
                          nbytes=float(bytes_out.sum()))
    return recvbufs, [counts[:, j].copy() for j in range(size)]


def _grid_shape(size: int) -> Tuple[int, int]:
    """Columns ``c = floor(sqrt(p))`` and rows ``r = ceil(p / c)``."""
    c = int(math.isqrt(size))
    r = (size + c - 1) // c
    return c, r


def _grid_intermediate(size: int) -> np.ndarray:
    """``T[i, j]``: intermediate PE for a message from ``i`` to ``j``.

    Implements the routing rule of Section VI-A including the special case
    for destinations in an incomplete last grid row.
    """
    c, r = _grid_shape(size)
    i = np.arange(size)[:, None]
    j = np.arange(size)[None, :]
    col_i = i % c
    row_j = j // c
    col_j = j % c
    T = row_j * c + col_i
    if size != c * r:
        # j in the incomplete last row: reroute via row col(j).
        incomplete = row_j == r - 1
        T = np.where(incomplete, col_j * c + col_i, T)
    return T.astype(np.int64)


def alltoallv_grid(
    comm: Comm,
    sendbufs: Sequence[np.ndarray],
    sendcounts: Sequence[np.ndarray],
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Two-level grid all-to-all (Section VI-A).

    Each message travels via one intermediate PE; the two hops are charged as
    two dense all-to-alls over groups of at most ``sqrt(p) + 2`` PEs, cutting
    the per-PE startup from ``alpha * p`` to ``O(alpha * sqrt(p))`` while
    doubling the communicated volume.
    """
    size = comm.size
    if size <= 3:
        return alltoallv_direct(comm, sendbufs, sendcounts)
    counts = _validate(sendbufs, sendcounts, size)
    template = next(b for b in sendbufs if isinstance(b, np.ndarray))
    row_bytes = _row_nbytes(template)
    c, r = _grid_shape(size)
    T = _grid_intermediate(size)

    # ---- Phase 1: route rows to their intermediates (within columns). ----
    # Each row additionally carries (final_dst, orig_src); these metadata
    # travel as parallel payloads through the same exchanges.
    if batched_for(comm.machine):
        row_lens = counts.sum(axis=1)
        src_of_row = np.repeat(np.arange(size), row_lens)
        dst_of_row = np.repeat(np.tile(np.arange(size), size), counts.ravel())
        t_of_row = T[src_of_row, dst_of_row]
        # Fused sort+count over the (src, intermediate) routing key.
        order_g, phase1_counts = route_plan(src_of_row, t_of_row, size, size)
        big = np.concatenate([np.atleast_1d(b) for b in sendbufs], axis=0)
        off = np.zeros(size + 1, dtype=np.int64)
        np.cumsum(row_lens, out=off[1:])
        sorted_rows = big[order_g]
        sorted_dst = dst_of_row[order_g]
        p1_bufs = [sorted_rows[off[i]:off[i + 1]] for i in range(size)]
        p1_dst = [sorted_dst[off[i]:off[i + 1]] for i in range(size)]
    else:
        phase1_counts = np.zeros((size, size), dtype=np.int64)
        p1_bufs = []
        p1_dst = []
        for i in range(size):
            dst_of_row = np.repeat(np.arange(size), counts[i])
            t_of_row = T[i][dst_of_row] if len(dst_of_row) else dst_of_row
            order = np.argsort(t_of_row, kind="stable")
            p1_bufs.append(np.atleast_1d(sendbufs[i])[order])
            p1_dst.append(dst_of_row[order])
            np.add.at(phase1_counts[i], t_of_row, 1)
    mid_bufs, mid_dst = _move_multi((p1_bufs, p1_dst), phase1_counts)
    # Received rows are source-major with per-pair order preserved, so each
    # intermediate's per-row source ranks are derivable from the counts
    # column -- no need to build and ship a parallel source payload.
    mid_src = [np.repeat(np.arange(size), phase1_counts[:, t])
               for t in range(size)]

    # Phase-1 cost: an all-to-all within each grid column (group size <= r).
    bytes_out1 = phase1_counts.sum(axis=1).astype(np.float64) * row_bytes
    bytes_in1 = phase1_counts.sum(axis=0).astype(np.float64) * row_bytes
    cost1 = comm.machine.cost.alltoall_dense(r, bytes_out1, bytes_in1,
                                             comm.machine.threads)
    fi = comm.machine.faults
    if fi is not None:
        cost1 = fi.on_exchange(comm, "alltoallv_grid/hop1", mid_bufs,
                               row_bytes, bytes_out1, bytes_in1, cost1)
    comm.machine.bytes_communicated += float(bytes_out1.sum())
    _record_trace(comm, phase1_counts, row_bytes, op="alltoallv_grid/hop1")
    comm._sync_and_charge(cost1, op="alltoallv_grid/hop1",
                          nbytes=float(bytes_out1.sum()))

    # ---- Phase 2: deliver from intermediates to final destinations. ----
    if batched_for(comm.machine):
        mid_r = RaggedArrays.from_arrays(mid_dst)
        seg = mid_r.segment_ids()
        order_g, phase2_counts = route_plan(seg, mid_r.flat, size, size)
        moff = mid_r.offsets
        big = np.concatenate([np.atleast_1d(b) for b in mid_bufs], axis=0)
        src_flat = np.concatenate(mid_src)
        sorted_rows = big[order_g]
        sorted_src = src_flat[order_g]
        p2_bufs = [sorted_rows[moff[t]:moff[t + 1]] for t in range(size)]
        p2_src = [sorted_src[moff[t]:moff[t + 1]] for t in range(size)]
    else:
        phase2_counts = np.zeros((size, size), dtype=np.int64)
        p2_bufs = []
        p2_src = []
        for t in range(size):
            d = mid_dst[t]
            order = np.argsort(d, kind="stable")
            p2_bufs.append(mid_bufs[t][order])
            p2_src.append(mid_src[t][order])
            np.add.at(phase2_counts[t], d, 1)
    out_bufs, out_src = _move_multi((p2_bufs, p2_src), phase2_counts)

    group2 = c + (0 if size == c * r else 2)
    bytes_out2 = phase2_counts.sum(axis=1).astype(np.float64) * row_bytes
    bytes_in2 = phase2_counts.sum(axis=0).astype(np.float64) * row_bytes
    cost2 = comm.machine.cost.alltoall_dense(group2, bytes_out2, bytes_in2,
                                             comm.machine.threads)
    if fi is not None:
        cost2 = fi.on_exchange(comm, "alltoallv_grid/hop2", out_bufs,
                               row_bytes, bytes_out2, bytes_in2, cost2)
    comm.machine.bytes_communicated += float(bytes_out2.sum())
    _record_trace(comm, phase2_counts, row_bytes, op="alltoallv_grid/hop2")
    comm._sync_and_charge(cost2, op="alltoallv_grid/hop2",
                          nbytes=float(bytes_out2.sum()))

    san = comm.machine.sanitizer
    if san is not None:
        san.check_two_level(
            size,
            int(counts.sum()),
            [int(phase1_counts.sum()), int(phase2_counts.sum())],
            [r, group2],
        )

    # ---- Restore the MPI_Alltoallv contract: rows source-major. ----
    if batched_for(comm.machine):
        src_r = RaggedArrays.from_arrays(out_src)
        seg = src_r.segment_ids()
        order_g, rc_mat = route_plan(seg, src_r.flat, size, size)
        soff = src_r.offsets
        big = np.concatenate([np.atleast_1d(b) for b in out_bufs], axis=0)
        sorted_rows = np.ascontiguousarray(big[order_g])
        recvbufs = [sorted_rows[soff[j]:soff[j + 1]] for j in range(size)]
        recvcounts = [rc_mat[j] for j in range(size)]
        return recvbufs, recvcounts
    recvbufs: List[np.ndarray] = []
    recvcounts: List[np.ndarray] = []
    for j in range(size):
        order = np.argsort(out_src[j], kind="stable")
        recvbufs.append(np.ascontiguousarray(out_bufs[j][order]))
        rc = np.zeros(size, dtype=np.int64)
        np.add.at(rc, out_src[j], 1)
        recvcounts.append(rc)
    return recvbufs, recvcounts


def alltoallv_hypercube(
    comm: Comm,
    sendbufs: Sequence[np.ndarray],
    sendcounts: Sequence[np.ndarray],
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Hypercube all-to-all: ``log p`` pairwise rounds, data moved each round.

    Requires a power-of-two communicator size; other sizes fall back to the
    two-level grid scheme (the paper's generalisation covers the gap).
    """
    size = comm.size
    if size & (size - 1) != 0:
        return alltoallv_grid(comm, sendbufs, sendcounts)
    if size == 1:
        return alltoallv_direct(comm, sendbufs, sendcounts)
    counts = _validate(sendbufs, sendcounts, size)
    template = next(b for b in sendbufs if isinstance(b, np.ndarray))
    row_bytes = _row_nbytes(template)

    held = [np.atleast_1d(sendbufs[i]) for i in range(size)]
    held_dst = [np.repeat(np.arange(size), counts[i]) for i in range(size)]
    held_src = [np.full(len(held[i]), i, dtype=np.int64) for i in range(size)]

    dims = size.bit_length() - 1
    for k in range(dims):
        bit = 1 << k
        new_held: List[np.ndarray] = [None] * size  # type: ignore[list-item]
        new_dst: List[np.ndarray] = [None] * size  # type: ignore[list-item]
        new_src: List[np.ndarray] = [None] * size  # type: ignore[list-item]
        sent_bytes = np.zeros(size)
        for i in range(size):
            partner = i ^ bit
            if i > partner:
                continue
            stay_i = (held_dst[i] & bit) == (i & bit)
            stay_p = (held_dst[partner] & bit) == (partner & bit)
            go_i = held[i][~stay_i]
            go_p = held[partner][~stay_p]
            new_held[i] = np.concatenate([held[i][stay_i], go_p], axis=0)
            new_dst[i] = np.concatenate([held_dst[i][stay_i],
                                         held_dst[partner][~stay_p]])
            new_src[i] = np.concatenate([held_src[i][stay_i],
                                         held_src[partner][~stay_p]])
            new_held[partner] = np.concatenate([held[partner][stay_p], go_i],
                                               axis=0)
            new_dst[partner] = np.concatenate([held_dst[partner][stay_p],
                                               held_dst[i][~stay_i]])
            new_src[partner] = np.concatenate([held_src[partner][stay_p],
                                               held_src[i][~stay_i]])
            sent_bytes[i] = len(go_i) * row_bytes
            sent_bytes[partner] = len(go_p) * row_bytes
        cm = comm.machine.cost
        recv_bytes = sent_bytes[np.arange(size) ^ bit]
        cost = (cm.c_call + cm.alpha
                + (cm.beta + cm.beta_sw) * (sent_bytes + recv_bytes))
        fi = comm.machine.faults
        if fi is not None:
            cost = fi.on_exchange(comm, f"alltoallv_hypercube/dim{k}",
                                  new_held, row_bytes, sent_bytes,
                                  recv_bytes, cost)
        comm.machine.bytes_communicated += float(sent_bytes.sum())
        m = comm.machine
        if (m.trace is not None or m.sanitizer is not None
                or m.metrics is not None):
            hop = np.zeros((size, size))
            hop[np.arange(size), np.arange(size) ^ bit] = sent_bytes
            _record_trace(comm, hop, 1.0,
                          op=f"alltoallv_hypercube/dim{k}")
        comm._sync_and_charge(cost, op=f"alltoallv_hypercube/dim{k}",
                              nbytes=float(sent_bytes.sum()))
        held, held_dst, held_src = new_held, new_dst, new_src

    recvbufs: List[np.ndarray] = []
    recvcounts: List[np.ndarray] = []
    for j in range(size):
        assert len(held_dst[j]) == 0 or (held_dst[j] == j).all()
        order = np.argsort(held_src[j], kind="stable")
        recvbufs.append(np.ascontiguousarray(held[j][order]))
        rc = np.zeros(size, dtype=np.int64)
        np.add.at(rc, held_src[j], 1)
        recvcounts.append(rc)
    return recvbufs, recvcounts


def alltoallv_auto(
    comm: Comm,
    sendbufs: Sequence[np.ndarray],
    sendcounts: Sequence[np.ndarray],
    threshold_bytes: float = GRID_DISPATCH_THRESHOLD_BYTES,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Dispatch between direct and grid scheme by average message size.

    Section VI-A: the indirect grid variant is used when the average number
    of bytes sent per message is below ``threshold_bytes``.
    """
    size = comm.size
    if size <= 3:
        return alltoallv_direct(comm, sendbufs, sendcounts)
    template = next((b for b in sendbufs if isinstance(b, np.ndarray)), None)
    if template is None:
        raise ValueError("at least one send buffer must be a numpy array")
    total_rows = sum(len(np.atleast_1d(b)) for b in sendbufs)
    avg_bytes = total_rows * _row_nbytes(template) / float(size * size)
    if avg_bytes < threshold_bytes:
        return alltoallv_grid(comm, sendbufs, sendcounts)
    return alltoallv_direct(comm, sendbufs, sendcounts)


def _alltoallv_grid3(comm, sendbufs, sendcounts):
    """Three-level indirect delivery (the d = 3 point of Section VI-A's
    generalisation; see :mod:`repro.simmpi.multilevel`)."""
    from .multilevel import alltoallv_multilevel

    return alltoallv_multilevel(comm, sendbufs, sendcounts, d=3)


#: Name -> implementation map for experiment configuration.
ALLTOALL_METHODS = {
    "direct": alltoallv_direct,
    "grid": alltoallv_grid,
    "grid3": _alltoallv_grid3,
    "hypercube": alltoallv_hypercube,
    "auto": alltoallv_auto,
}


# ----------------------------------------------------------------------
# Higher-level conveniences used by the MST algorithms.
# ----------------------------------------------------------------------
def route_rows(
    comm: Comm,
    rows_per_pe: Sequence[np.ndarray],
    dest_per_row: Sequence[np.ndarray],
    method: str = "auto",
) -> Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray]]:
    """Deliver arbitrary per-PE rows to per-row destination ranks.

    This is the workhorse wrapper the algorithms use: it sorts each PE's rows
    by destination (stable), performs the exchange, and returns

    ``recv_rows``
        per-PE received rows (source-major, per-pair order preserved),
    ``recv_src``
        per-PE source rank of every received row, and
    ``send_order``
        the permutation applied to each sender's rows.  Because replies to a
        request arrive back in exactly the order requests were sent (both
        directions are source/destination-major with per-pair order
        preserved), ``reply[invert_permutation(send_order)]`` restores the
        original query order -- see :func:`unsort`.
    """
    size = comm.size
    fn = ALLTOALL_METHODS[method]
    if batched_for(comm.machine):
        rows_r = RaggedArrays.from_arrays(rows_per_pe)
        dest_r = RaggedArrays.from_arrays(
            [np.asarray(d, dtype=np.int64) for d in dest_per_row])
        mismatch = np.flatnonzero(rows_r.lengths != dest_r.lengths)
        if len(mismatch):
            i = int(mismatch[0])
            raise ValueError(
                f"PE {i}: {rows_r.lengths[i]} rows but "
                f"{dest_r.lengths[i]} destinations"
            )
        seg = rows_r.segment_ids()
        order_g, counts_mat = route_plan(seg, dest_r.flat, size, size)
        off = rows_r.offsets
        sorted_rows = rows_r.flat[order_g]
        sendbufs = [sorted_rows[off[i]:off[i + 1]] for i in range(size)]
        sendcounts = [counts_mat[i] for i in range(size)]
        local_order = order_g - np.repeat(off[:-1], rows_r.lengths)
        orders = [local_order[off[i]:off[i + 1]] for i in range(size)]
        recvbufs, recvcounts = fn(comm, sendbufs, sendcounts)
        rc_mat = np.stack([np.asarray(rc) for rc in recvcounts])
        src_flat = np.repeat(np.tile(np.arange(size), size), rc_mat.ravel())
        rlens = rc_mat.sum(axis=1)
        roff = np.zeros(size + 1, dtype=np.int64)
        np.cumsum(rlens, out=roff[1:])
        recv_src = [src_flat[roff[i]:roff[i + 1]] for i in range(size)]
        return recvbufs, recv_src, orders
    sendbufs: List[np.ndarray] = []
    sendcounts: List[np.ndarray] = []
    orders: List[np.ndarray] = []
    for i in range(size):
        dest = np.asarray(dest_per_row[i], dtype=np.int64)
        rows = np.atleast_1d(rows_per_pe[i])
        if len(dest) != len(rows):
            raise ValueError(
                f"PE {i}: {len(rows)} rows but {len(dest)} destinations"
            )
        order = np.argsort(dest, kind="stable")
        counts = np.zeros(size, dtype=np.int64)
        if len(dest):
            np.add.at(counts, dest, 1)
        sendbufs.append(rows[order])
        sendcounts.append(counts)
        orders.append(order)
    recvbufs, recvcounts = fn(comm, sendbufs, sendcounts)
    recv_src = [np.repeat(np.arange(size), rc) for rc in recvcounts]
    return recvbufs, recv_src, orders


def unsort(order: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Undo the send permutation from :func:`route_rows` on reply rows."""
    out = np.empty_like(values)
    out[order] = values
    return out
