"""Distributed sorting algorithms (Sections II-A, VI-C)."""

from .api import HYPERCUBE_THRESHOLD, sort_rows
from .common import is_globally_sorted, is_locally_sorted, local_lexsort, rebalance_blocks
from .hypercube import sort_hypercube
from .samplesort import OVERSAMPLING, sort_samplesort

__all__ = [
    "HYPERCUBE_THRESHOLD",
    "sort_rows",
    "is_globally_sorted",
    "is_locally_sorted",
    "local_lexsort",
    "rebalance_blocks",
    "sort_hypercube",
    "sort_samplesort",
    "OVERSAMPLING",
]
