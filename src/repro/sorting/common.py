"""Shared helpers for the distributed sorters.

Rows are ``(k, c)`` int64 matrices sorted by the lexicographic order of their
first ``n_key_cols`` columns (remaining columns are payload that travels with
the row).  Edges sort as ``[u, v, w, id]`` with three key columns -- the
paper's lexicographic edge order with the id carried along.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..kernels import RaggedArrays, batched_for, segmented_lexsort
from ..kernels.segmented import packed_lexsort


def as_row_matrix(x: np.ndarray) -> np.ndarray:
    """Coerce to a 2-D integer row matrix (1-D input becomes one column).

    Integer inputs keep their storage dtype (narrowed matrices travel as
    uint32); anything else is coerced to int64.
    """
    x = np.asarray(x)
    if x.dtype.kind not in "iu":
        x = x.astype(np.int64)
    if x.ndim == 1:
        return x.reshape(-1, 1)
    if x.ndim != 2:
        raise ValueError(f"rows must be 1-D or 2-D, got ndim={x.ndim}")
    return x


def local_lexsort(rows: np.ndarray, n_key_cols: int) -> np.ndarray:
    """Rows sorted by the lexicographic order of the first ``n_key_cols``."""
    if len(rows) <= 1:
        return rows
    keys = tuple(rows[:, c] for c in reversed(range(n_key_cols)))
    return rows[packed_lexsort(keys)]


def local_lexsort_parts(parts: Sequence[np.ndarray],
                        n_key_cols: int, machine=None) -> List[np.ndarray]:
    """Every PE's :func:`local_lexsort` -- one segmented lexsort when batched."""
    eng = getattr(machine, "engine", None)
    if eng is not None and eng.fanout:
        # Pure per-PE sorts fan out to workers; payloads ship narrowed so
        # the shared-memory segments carry the compact representation.
        from ..kernels import narrow_payload

        payloads = [None if len(x) <= 1 else
                    narrow_payload({"rows": x, "n_key_cols": int(n_key_cols)})
                    for x in parts]
        results = eng.pe_map("sort_partition", payloads)
        return [parts[i] if results[i] is None else results[i]["rows"]
                for i in range(len(parts))]
    if not batched_for(machine):
        return [local_lexsort(x, n_key_cols) for x in parts]
    r = RaggedArrays.from_arrays(parts)
    if len(r.flat) == 0:
        return list(parts)
    keys = tuple(r.flat[:, c] for c in reversed(range(n_key_cols)))
    order = segmented_lexsort(keys, r.segment_ids())
    s = r.flat[order]
    return [s[r.offsets[i]:r.offsets[i + 1]] for i in range(r.n_segments)]


def is_locally_sorted(rows: np.ndarray, n_key_cols: int) -> bool:
    """Whether one part is sorted by its first ``n_key_cols`` columns.

    Comparison-based on purpose: ``np.diff`` on uint32 columns wraps.
    """
    if len(rows) <= 1:
        return True
    tie = None
    for c in range(n_key_cols):
        lo, hi = rows[:-1, c], rows[1:, c]
        lt = hi < lo
        if c == 0:
            if lt.any():
                return False
            tie = hi == lo
        else:
            if (lt & tie).any():
                return False
            tie = tie & (hi == lo)
    return True


def is_globally_sorted(parts: Sequence[np.ndarray], n_key_cols: int) -> bool:
    """Concatenation of per-PE parts is lexicographically sorted."""
    prev_last = None
    for part in parts:
        if not is_locally_sorted(part, n_key_cols):
            return False
        if len(part) == 0:
            continue
        first = tuple(int(x) for x in part[0, :n_key_cols])
        if prev_last is not None and first < prev_last:
            return False
        prev_last = tuple(int(x) for x in part[-1, :n_key_cols])
    return True


def rebalance_blocks(comm, parts: Sequence[np.ndarray],
                     method: str = "auto") -> List[np.ndarray]:
    """Redistribute globally sorted parts into exact block partition.

    Keeps the global order; afterwards PE ``i`` holds rows
    ``[bounds[i], bounds[i+1])`` of the global sequence (numpy
    ``array_split`` convention).  One exscan for the global offsets plus one
    all-to-all.
    """
    from ..simmpi.alltoall import route_rows
    from ..utils.partition import owner_of

    p = comm.size
    sizes = [len(part) for part in parts]
    offsets = comm.exscan(sizes)
    total = int(np.sum(sizes))
    if total == 0:
        return [part.copy() for part in parts]
    if batched_for(comm.machine):
        # Concatenated per-PE global indices are exactly arange(total): the
        # exscan offsets are the cumulative sizes in rank order.
        dest_flat = owner_of(np.arange(total, dtype=np.int64), total, p)
        soff = np.zeros(p + 1, dtype=np.int64)
        np.cumsum(np.asarray(sizes, dtype=np.int64), out=soff[1:])
        dests = [dest_flat[soff[i]:soff[i + 1]] for i in range(p)]
    else:
        dests = []
        for i in range(p):
            if sizes[i] == 0:
                dests.append(np.empty(0, dtype=np.int64))
                continue
            global_idx = offsets[i] + np.arange(sizes[i], dtype=np.int64)
            dests.append(owner_of(global_idx, total, p))
    recv, _, _ = route_rows(comm, parts, dests, method=method)
    # Rows arrive source-major = global order (sources are ordered runs).
    return recv
