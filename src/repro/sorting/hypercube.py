"""Distributed hypercube quicksort (Axtmann & Sanders [9], simplified).

The paper uses hypercube quicksort for *small* inputs (at most 512 elements
per PE on average, Section VI-C): its ``O((alpha + beta l) log p)``-style
cost profile beats sample sort's ``alpha * p`` startup when there is little
data.

Scheme: recursively split the communicator in half; a pivot (the median of a
small gathered sample) partitions every PE's rows into low/high; low rows are
scattered evenly over the lower half, high rows over the upper half; recurse
until single PEs remain, then sort locally.  Data therefore moves
``ceil(log2 p)`` times.  The classic formulation pairs PEs along hypercube
dimensions; splitting arbitrary communicator halves generalises it to
non-power-of-two ``p`` (the paper's d-dimensional grid generalisation covers
the same gap).

The output is globally sorted but only approximately balanced -- callers that
need exact block balance chain :func:`repro.sorting.common.rebalance_blocks`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..kernels import RaggedArrays, batched_for
from ..simmpi.alltoall import route_rows
from ..simmpi.collectives import Comm
from .common import as_row_matrix, local_lexsort

#: Sample rows gathered per PE for pivot selection.
_PIVOT_SAMPLE = 4


def _row_tuple_keys(rows: np.ndarray, n_key_cols: int):
    return [tuple(int(x) for x in r[:n_key_cols]) for r in rows]


def _le_pivot(rows: np.ndarray, pivot: tuple, n_key_cols: int) -> np.ndarray:
    """Boolean mask: row key <= pivot key (vectorised lexicographic compare)."""
    if len(rows) == 0:
        return np.zeros(0, dtype=bool)
    le = np.zeros(len(rows), dtype=bool)
    tie = np.ones(len(rows), dtype=bool)
    for c in range(n_key_cols):
        col = rows[:, c]
        le |= tie & (col < pivot[c])
        tie &= col == pivot[c]
    return le | tie


def sort_hypercube(
    comm: Comm,
    parts: Sequence[np.ndarray],
    n_key_cols: int,
    seed: int = 0,
) -> List[np.ndarray]:
    """Globally sort per-PE row matrices with recursive quick-splitting."""
    p = comm.size
    parts = [as_row_matrix(x) for x in parts]
    machine = comm.machine

    def recurse(sub: Comm, sub_parts: List[np.ndarray], depth: int
                ) -> List[np.ndarray]:
        g = sub.size
        if g == 1:
            machine.charge_sort(np.array([len(sub_parts[0])]),
                                ranks=sub.ranks)
            return [local_lexsort(sub_parts[0], n_key_cols)]

        # --- Pivot selection: median of a gathered sample. ---
        samples = []
        for r in range(g):
            rows = sub_parts[r]
            if len(rows) == 0:
                samples.append(rows[:0])
            else:
                rng = machine.pe_rng(int(sub.ranks[r]))
                take = rng.integers(0, len(rows), min(_PIVOT_SAMPLE, len(rows)))
                samples.append(rows[take])
        gathered = sub.allgatherv(samples)
        total = sum(len(x) for x in sub_parts)
        if total == 0:
            return sub_parts
        if len(gathered) == 0:
            gathered = np.concatenate([x for x in sub_parts if len(x)])[:1]
        keys = sorted(_row_tuple_keys(gathered, n_key_cols))
        pivot = keys[len(keys) // 2]

        # --- Partition and detect degenerate splits. ---
        if batched_for(machine):
            r = RaggedArrays.from_arrays(sub_parts)
            mask_flat = _le_pivot(r.flat, pivot, n_key_cols)
            low_masks = [mask_flat[r.offsets[k]:r.offsets[k + 1]]
                         for k in range(g)]
        else:
            low_masks = [_le_pivot(x, pivot, n_key_cols) for x in sub_parts]
        machine.charge_scan(np.array([len(x) for x in sub_parts]),
                            ranks=sub.ranks)
        low_total = int(sub.allreduce([int(m.sum()) for m in low_masks]))
        g_low = g // 2
        lows = list(range(g_low))
        highs = list(range(g_low, g))
        if low_total == total or low_total == 0:
            # All rows on one side of the pivot.  If every key equals the
            # pivot the data is already "sorted"; spread evenly and stop
            # recursing on it.  Otherwise retry cannot help (pivot is the
            # min/max); fall back to even spread + recursion with the
            # offending rows forced apart by a strict comparison.
            all_min = sub.allreduce(
                [_global_extreme(x, n_key_cols, np.lexsort) for x in sub_parts],
                op=_tuple_min,
            )
            all_max = sub.allreduce(
                [_global_extreme(x, n_key_cols, _lexsort_desc) for x in sub_parts],
                op=_tuple_max,
            )
            if all_min == all_max:
                spread = _spread_evenly(sub, sub_parts)
                machine.charge_scan(np.array([len(x) for x in spread]),
                                    ranks=sub.ranks)
                return spread
            # Use a strict split at the pivot: rows < pivot go low.
            low_masks = [
                _le_pivot(x, pivot, n_key_cols) & ~_eq_key(x, pivot, n_key_cols)
                for x in sub_parts
            ]
            low_total = int(sub.allreduce([int(m.sum()) for m in low_masks]))
            if low_total == 0:
                # pivot is the unique minimum: route only its copies low.
                low_masks = [_eq_key(x, pivot, n_key_cols) for x in sub_parts]

        # --- Scatter low rows over the lower half, high over the upper. ---
        if batched_for(machine):
            r = RaggedArrays.from_arrays(sub_parts)
            mask_flat = np.concatenate(low_masks) if len(r.flat) \
                else np.zeros(0, dtype=bool)
            seg = r.segment_ids()
            high_flag = (~mask_flat).astype(np.int8)
            # Stable per-segment reorder: low rows first, both in original
            # order -- identical to the per-PE concatenate([low, high]).
            order = np.lexsort((high_flag, seg))
            rows_flat = r.flat[order]
            is_high = high_flag[order].astype(bool)
            pos = (np.arange(len(r.flat), dtype=np.int64)
                   - np.repeat(r.offsets[:-1], r.lengths))
            nlow = np.bincount(seg[mask_flat], minlength=g)
            lows_arr = np.asarray(lows, dtype=np.int64)
            highs_arr = np.asarray(highs, dtype=np.int64)
            k_high = pos - nlow[seg]
            dest_flat = np.where(
                is_high,
                highs_arr[k_high % len(highs)],
                lows_arr[pos % len(lows)],
            )
            rows_out = [rows_flat[r.offsets[k]:r.offsets[k + 1]]
                        for k in range(g)]
            dest_out = [dest_flat[r.offsets[k]:r.offsets[k + 1]]
                        for k in range(g)]
        else:
            rows_out = []
            dest_out = []
            for rk in range(g):
                mask = low_masks[rk]
                rows = sub_parts[rk]
                low_rows, high_rows = rows[mask], rows[~mask]
                dl = np.asarray(lows, dtype=np.int64)[
                    np.arange(len(low_rows)) % len(lows)]
                dh = np.asarray(highs, dtype=np.int64)[
                    np.arange(len(high_rows)) % len(highs)]
                rows_out.append(np.concatenate([low_rows, high_rows], axis=0))
                dest_out.append(np.concatenate([dl, dh]))
        recv, _, _ = route_rows(sub, rows_out, dest_out, method="auto")

        left = recurse(sub.sub(lows), recv[:g_low], depth + 1)
        right = recurse(sub.sub(highs), recv[g_low:], depth + 1)
        return left + right

    return recurse(comm, parts, 0)


def _eq_key(rows: np.ndarray, pivot: tuple, n_key_cols: int) -> np.ndarray:
    if len(rows) == 0:
        return np.zeros(0, dtype=bool)
    eq = np.ones(len(rows), dtype=bool)
    for c in range(n_key_cols):
        eq &= rows[:, c] == pivot[c]
    return eq


def _global_extreme(rows: np.ndarray, n_key_cols: int, sorter):
    if len(rows) == 0:
        return None
    order = sorter(tuple(rows[:, c] for c in reversed(range(n_key_cols))))
    return tuple(int(x) for x in rows[order[0], :n_key_cols])


def _lexsort_desc(keys):
    return np.lexsort(keys)[::-1]


def _tuple_min(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _tuple_max(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def _spread_evenly(sub: Comm, sub_parts: List[np.ndarray]) -> List[np.ndarray]:
    """Evenly redistribute (all-equal) rows over the sub-communicator."""
    from ..utils.partition import owner_of

    g = sub.size
    sizes = [len(x) for x in sub_parts]
    offsets = sub.exscan(sizes)
    total = int(np.sum(sizes))
    dests = []
    for r in range(g):
        if sizes[r] == 0:
            dests.append(np.empty(0, dtype=np.int64))
        else:
            idx = offsets[r] + np.arange(sizes[r], dtype=np.int64)
            dests.append(owner_of(idx, total, g))
    recv, _, _ = route_rows(sub, sub_parts, dests, method="auto")
    return recv
