"""Sorting dispatcher (Section VI-C).

"Regarding distributed sorting we use distributed hypercube quicksort [9] if
the average number of elements to sort per PE is below 512.  For larger
inputs we use our own implementation of distributed two-level sample sort."
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..obs.hooks import observe_sort
from ..simmpi.collectives import Comm
from .common import as_row_matrix, rebalance_blocks
from .hypercube import sort_hypercube
from .samplesort import sort_samplesort

#: Average elements per PE below which hypercube quicksort is used.
HYPERCUBE_THRESHOLD = 512


def sort_rows(
    comm: Comm,
    parts: Sequence[np.ndarray],
    n_key_cols: int,
    method: str = "auto",
    rebalance: bool = True,
    hypercube_threshold: int = HYPERCUBE_THRESHOLD,
) -> List[np.ndarray]:
    """Globally sort per-PE row matrices by their first ``n_key_cols`` columns.

    Parameters
    ----------
    method:
        ``"auto"`` (the paper's dispatch rule), ``"hypercube"`` or
        ``"samplesort"``.
    rebalance:
        Restore the exact block partition afterwards (the MST algorithms'
        REDISTRIBUTE requires balanced parts).
    """
    parts = [as_row_matrix(x) for x in parts]
    total = sum(len(x) for x in parts)
    if method == "auto":
        avg = total / max(1, comm.size)
        method = "hypercube" if avg < hypercube_threshold else "samplesort"
    if method == "hypercube":
        observe_sort(comm, "hypercube", total)
        with comm.machine.span("sort_hypercube", cat="sort"):
            out = sort_hypercube(comm, parts, n_key_cols)
    elif method == "samplesort":
        observe_sort(comm, "samplesort", total)
        with comm.machine.span("sort_samplesort", cat="sort"):
            out = sort_samplesort(comm, parts, n_key_cols)
    else:
        raise ValueError(f"unknown sorting method {method!r}")
    if rebalance:
        out = rebalance_blocks(comm, out)
    return out
