"""Distributed two-level sample sort (AMS-style [9], [45]).

The workhorse sorter for large inputs (Section VI-C): local sort, splitter
selection from a random sample -- the sample itself is sorted with the
*hypercube* algorithm exactly as the paper describes -- then a single
personalised all-to-all partitions the data, and a local multiway merge
finishes.  Expected cost ``O((k log k + beta k) / p + alpha p)`` with direct
delivery; the all-to-all uses the auto dispatcher, so small exchanges take
the two-level grid route.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..dgraph.search import lex_searchsorted
from ..kernels import RaggedArrays, batched_for
from ..simmpi.alltoall import route_rows
from ..simmpi.collectives import Comm
from .common import as_row_matrix, local_lexsort_parts
from .hypercube import sort_hypercube

#: Oversampling factor: splitter sample size per PE.
OVERSAMPLING = 16


def sort_samplesort(
    comm: Comm,
    parts: Sequence[np.ndarray],
    n_key_cols: int,
    seed: int = 0,
    alltoall_method: str = "auto",
) -> List[np.ndarray]:
    """Globally sort per-PE row matrices with one data exchange."""
    p = comm.size
    machine = comm.machine
    parts = [as_row_matrix(x) for x in parts]
    total = sum(len(x) for x in parts)
    if total == 0 or p == 1:
        machine.charge_sort(np.array([len(x) for x in parts]))
        return local_lexsort_parts(parts, n_key_cols, machine)

    # ---- Local sort. ----
    machine.charge_sort(np.array([len(x) for x in parts]))
    parts = local_lexsort_parts(parts, n_key_cols, machine)

    # ---- Sample and select p-1 splitters. ----
    samples = []
    for i in range(p):
        rows = parts[i]
        if len(rows) == 0:
            samples.append(rows[:0])
            continue
        rng = machine.pe_rng(i)
        take = rng.integers(0, len(rows), min(OVERSAMPLING, len(rows)))
        samples.append(rows[take])
    # Sort the sample with the hypercube algorithm (paper, Section VI-C),
    # then replicate it to pick evenly spaced splitters.
    sorted_sample_parts = sort_hypercube(comm, samples, n_key_cols, seed=seed)
    sample = comm.allgatherv(
        [x if len(x) else parts[0][:0] for x in sorted_sample_parts]
    ).reshape(-1, parts[0].shape[1] if parts[0].ndim == 2 else 1)
    if len(sample) == 0:
        return parts
    splitter_idx = (np.arange(1, p) * len(sample)) // p
    splitters = sample[splitter_idx]

    # ---- Partition by splitters and exchange. ----
    if batched_for(machine):
        # The splitter keys are replicated, so every PE's binary search is
        # one flat lex_searchsorted call over all rows at once.
        r = RaggedArrays.from_arrays(parts)
        bucket = lex_searchsorted(
            tuple(splitters[:, c] for c in range(n_key_cols)),
            tuple(r.flat[:, c] for c in range(n_key_cols)),
            side="right",
        )
        dests = [bucket[r.offsets[i]:r.offsets[i + 1]] for i in range(p)]
        lengths = r.lengths
        nz = np.flatnonzero(lengths)
        machine.charge_scan(lengths[nz] * max(1, int(np.log2(p))), ranks=nz)
    else:
        dests = []
        for i in range(p):
            rows = parts[i]
            if len(rows) == 0:
                dests.append(np.empty(0, dtype=np.int64))
                continue
            bucket = lex_searchsorted(
                tuple(splitters[:, c] for c in range(n_key_cols)),
                tuple(rows[:, c] for c in range(n_key_cols)),
                side="right",
            )
            dests.append(bucket)
            machine.charge_scan(
                np.array([len(rows) * max(1, int(np.log2(p)))]),
                ranks=np.array([i]))
    recv, _, _ = route_rows(comm, parts, dests, method=alltoall_method)

    # ---- Local merge of the received sorted runs. ----
    machine.charge_sort(np.array([len(x) for x in recv]))
    return local_lexsort_parts(recv, n_key_cols, machine)
