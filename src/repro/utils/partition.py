"""1D block-partitioning helpers.

The paper partitions both the edge sequence (Section II-B) and the
component-representative array ``P`` of Filter-Boruvka (Section V) into
contiguous blocks of near-equal size over the ``p`` PEs.  These helpers
centralise the arithmetic so every module splits ranges identically.

The convention is numpy's ``array_split``: the first ``n % p`` blocks get
``ceil(n / p)`` elements, the rest ``floor(n / p)``.
"""

from __future__ import annotations

import numpy as np


def block_bounds(n: int, p: int) -> np.ndarray:
    """Boundaries ``b`` of the block partition: block i is ``[b[i], b[i+1])``."""
    if p < 1:
        raise ValueError("p must be >= 1")
    base, extra = divmod(n, p)
    sizes = np.full(p, base, dtype=np.int64)
    sizes[:extra] += 1
    bounds = np.zeros(p + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


def block_size(n: int, p: int, i: int) -> int:
    """Number of elements in block ``i``."""
    base, extra = divmod(n, p)
    return base + (1 if i < extra else 0)


def owner_of(indices: np.ndarray, n: int, p: int) -> np.ndarray:
    """Block id owning each global index, for the block partition of ``n``.

    Vectorised inverse of :func:`block_bounds`; used e.g. to locate the home
    PE of an entry of the distributed array ``P`` in Filter-Boruvka.
    """
    idx = np.asarray(indices, dtype=np.int64)
    base, extra = divmod(n, p)
    if base == 0:
        # Fewer elements than PEs: blocks 0..extra-1 hold one element each.
        return idx.copy()
    split = extra * (base + 1)
    small = idx < split
    out = np.empty(idx.shape, dtype=np.int64)
    out[small] = idx[small] // (base + 1)
    out[~small] = extra + (idx[~small] - split) // base
    return out


def split_evenly(array: np.ndarray, p: int) -> list[np.ndarray]:
    """Split ``array`` into the ``p`` blocks of the block partition."""
    bounds = block_bounds(len(array), p)
    return [array[bounds[i]:bounds[i + 1]] for i in range(p)]
