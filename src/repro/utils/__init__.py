"""Shared utilities: varint compression, block partitioning."""

from .partition import block_bounds, block_size, owner_of, split_evenly
from .varint import CompressedEdgeList, decode_varints, encode_varints

__all__ = [
    "block_bounds",
    "block_size",
    "owner_of",
    "split_evenly",
    "CompressedEdgeList",
    "decode_varints",
    "encode_varints",
]
