"""7-bit variable-length delta encoding of sorted edge lists (Section VI-C).

The paper keeps a compressed copy of each PE's initial edge list so the
original endpoints of an identified MST edge can be looked up by edge id:
"this copy is stored with 7-bit variable length encoding on the differences
of consecutive vertices".  We reproduce that scheme:

* the edge list is flattened as ``src_0, dst_0, src_1, dst_1, ...``;
* each ``src`` is delta-encoded against the previous edge's ``src`` (the list
  is lexicographically sorted, so deltas are small non-negative ints);
* each ``dst`` is stored zig-zag-delta-encoded against the previous edge's
  ``dst`` (destination order within a source group is ascending but resets
  between groups, so deltas may be negative);
* every value is emitted as a little-endian base-128 varint: 7 payload bits
  per byte, high bit = continuation.

The decoder is vectorised with numpy (no per-byte Python loop): continuation
bits are found with a mask, value boundaries with a cumulative segment id,
and payloads combined with per-segment shifts.
"""

from __future__ import annotations

import numpy as np


def _zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed to unsigned ints: 0,-1,1,-2,2.. -> 0,1,2,3,4.."""
    v = values.astype(np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def _unzigzag(values: np.ndarray) -> np.ndarray:
    v = values.astype(np.uint64)
    return ((v >> np.uint64(1)).astype(np.int64)) ^ -(v & np.uint64(1)).astype(np.int64)


def encode_varints(values: np.ndarray) -> np.ndarray:
    """Encode an array of unsigned ints as a base-128 varint byte stream."""
    v = np.asarray(values, dtype=np.uint64)
    if v.size == 0:
        return np.empty(0, dtype=np.uint8)
    # Number of 7-bit groups per value (at least one): one binary search
    # against the nine 2^(7g) thresholds instead of a per-bit clz sweep.
    ngroups = np.searchsorted(_GROUP_THRESHOLDS, v, side="right") + 1
    total = int(ngroups.sum())
    out = np.empty(total, dtype=np.uint8)
    # Position of each value's first byte.
    starts = np.zeros(len(v), dtype=np.int64)
    np.cumsum(ngroups[:-1], out=starts[1:])
    # Byte index within its value for every output byte.
    byte_value = np.repeat(np.arange(len(v)), ngroups)
    byte_pos = np.arange(total) - starts[byte_value]
    payload = (v[byte_value] >> (byte_pos.astype(np.uint64) * np.uint64(7))) & np.uint64(0x7F)
    is_last = byte_pos == (ngroups[byte_value] - 1)
    out[:] = payload.astype(np.uint8)
    out[~is_last] |= 0x80
    return out


def decode_varints(stream: np.ndarray) -> np.ndarray:
    """Decode a base-128 varint byte stream back to unsigned ints."""
    b = np.asarray(stream, dtype=np.uint8)
    if b.size == 0:
        return np.empty(0, dtype=np.uint64)
    cont = (b & 0x80) != 0
    is_last = ~cont
    if cont[-1]:
        raise ValueError("truncated varint stream")
    # Value id of every byte: number of completed values before it.
    value_id = np.zeros(len(b), dtype=np.int64)
    value_id[1:] = np.cumsum(is_last)[:-1]
    n_values = int(is_last.sum())
    # Position of each byte within its value.
    starts = np.flatnonzero(np.concatenate(([True], is_last[:-1])))
    byte_pos = np.arange(len(b)) - starts[value_id]
    # A 64-bit value needs at most 10 varint bytes (9 * 7 = 63 payload bits
    # before the last byte).  An 11th byte (byte_pos 10) would shift its
    # payload past bit 63 and silently vanish, so reject it outright.
    if byte_pos.max() >= 10:
        raise ValueError("varint too long for 64-bit value")
    payload = (b & 0x7F).astype(np.uint64) << (byte_pos.astype(np.uint64) * np.uint64(7))
    out = np.zeros(n_values, dtype=np.uint64)
    np.add.at(out, value_id, payload)
    return out


# Smallest value needing g+1 varint bytes, for g = 1..9.
_GROUP_THRESHOLDS = np.uint64(1) << (
    np.uint64(7) * np.arange(1, 10, dtype=np.uint64))


def _clz64(v: np.ndarray) -> np.ndarray:
    """Count leading zeros of each uint64 (vectorised)."""
    v = v.copy()
    n = np.full(v.shape, 64, dtype=np.int64)
    for s in (32, 16, 8, 4, 2, 1):
        su = np.uint64(s)
        mask = (v >> su) != 0
        n[mask] -= s
        v[mask] >>= su
    n[v != 0] -= 1
    return n


class CompressedEdgeList:
    """A varint-delta compressed copy of a sorted (src, dst) edge list.

    Used exactly like the paper's compressed initial edge list: built once
    before the MST computation, decoded to look up the original endpoints of
    MST edge ids afterwards (Section VI-C).  ``decode`` is charged twice by
    the experiment harness (before and after the computation), matching the
    paper's accounting.
    """

    def __init__(self, src: np.ndarray, dst: np.ndarray):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src/dst length mismatch")
        self.n_edges = len(src)
        d_src = np.diff(src, prepend=0)
        if self.n_edges and (d_src < 0).any():
            raise ValueError("edge list must be sorted by source")
        d_dst = np.diff(dst, prepend=0)
        interleaved = np.empty(2 * self.n_edges, dtype=np.uint64)
        interleaved[0::2] = d_src.astype(np.uint64)  # non-negative deltas
        interleaved[1::2] = _zigzag(d_dst)
        self.stream = encode_varints(interleaved)

    @property
    def nbytes(self) -> int:
        """Size of the compressed representation in bytes."""
        return int(self.stream.nbytes)

    def decode(self) -> tuple[np.ndarray, np.ndarray]:
        """Reconstruct the original (src, dst) arrays."""
        flat = decode_varints(self.stream)
        if len(flat) != 2 * self.n_edges:
            raise ValueError("corrupt compressed edge list")
        src = np.cumsum(flat[0::2].astype(np.int64))
        dst = np.cumsum(_unzigzag(flat[1::2]))
        return src, dst

    def lookup(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Original endpoints of the edges at local ``indices``."""
        src, dst = self.decode()
        idx = np.asarray(indices, dtype=np.int64)
        return src[idx], dst[idx]
