"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``gen``     generate an instance (weak-scaling family or Table-I stand-in)
            and save it as ``.npz``;
``mst``     compute an MSF on a simulated machine, printing weight, timings
            and the phase breakdown;
``cc``      count connected components;
``sweep``   run a weak- or strong-scaling sweep and print the series table;
``profile`` run one algorithm with event tracing on and export a
            Chrome/Perfetto trace plus a JSON metrics dump;
``faults``  run one algorithm twice -- fault-free and under an injected
            fault schedule -- verify the recovered MST weight matches
            bit-for-bit, and report the recovery overhead;
``report``  render an ASCII (and optionally self-contained HTML) report
            from a recorded artifact: a ``.trace.json`` (critical path,
            phase x PE heatmap, round imbalance), a run ledger
            (``ledger.jsonl`` -- run history + latest-vs-previous diff),
            or BENCH records vs ``--baseline`` (the perf-regression
            gate; ``--check`` exits non-zero on failures);
``info``    show instance statistics of a saved ``.npz`` graph;
``serve``   keep a session alive and answer NDJSON MSF queries/mutations
            over stdin/stdout or localhost TCP, recomputing the forest
            incrementally under edge churn (docs/serving.md).

Runs of ``mst``/``profile`` append one row to the run ledger when one is
active (``REPRO_LEDGER`` or ``REPRO_TRACE_DIR`` set; see
docs/observability.md).

Examples
--------
::

    python -m repro gen --family GNM -n 4096 -m 16384 -o gnm.npz
    python -m repro mst gnm.npz --algorithm filter-boruvka --procs 16 --threads 4
    python -m repro sweep --family 2D-RGG --cores 4,16,64 --algorithms boruvka,mnd-mst
    python -m repro profile --algo boruvka --procs 16 --trace-out b.trace.json
    python -m repro faults --algo boruvka --procs 16 \\
        --schedule "seed=7,pe_fail=0.05,msg_drop=0.01,corrupt=0.05"
    python -m repro info gnm.npz
    python -m repro report traces/profile.trace.json --html report.html
    python -m repro report benchmarks/results --baseline /tmp/base --check
    python -m repro gen --family GNM -n 512 -m 2048 -o g.npz
    echo '{"id":1,"op":"msf_weight"}' | python -m repro serve g.npz
"""

from __future__ import annotations

import argparse
import os
import sys


def _add_gen(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("gen", help="generate a graph instance")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--family", choices=_families(),
                       help="weak-scaling family (Section VII)")
    group.add_argument("--instance", choices=_instances(),
                       help="Table-I real-world stand-in")
    p.add_argument("-n", type=int, default=1024, help="vertices")
    p.add_argument("-m", type=int, default=4096,
                   help="undirected edges (families only)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True, help="output .npz path")


def _add_mst(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("mst", help="compute a minimum spanning forest")
    p.add_argument("graph", help="instance .npz (from `repro gen`)")
    p.add_argument("--algorithm", default="boruvka",
                   help="boruvka | filter-boruvka | awerbuch-shiloach | "
                        "mnd-mst")
    p.add_argument("--procs", type=int, default=8, help="MPI processes")
    p.add_argument("--threads", type=int, default=1,
                   help="OpenMP threads per process")
    p.add_argument("--engine", default=None,
                   choices=["inprocess", "batched", "multiprocess"],
                   help="execution engine (default: REPRO_ENGINE, "
                        "see docs/engines.md)")
    p.add_argument("--alltoall", default="auto",
                   choices=["auto", "direct", "grid", "grid3", "hypercube"])
    p.add_argument("--no-preprocessing", action="store_true")
    p.add_argument("--verify", action="store_true",
                   help="check against sequential Kruskal")
    p.add_argument("--simsan", action="store_true",
                   help="run under the runtime invariant sanitizer "
                        "(see docs/sanitizer.md)")
    p.add_argument("--output", help="save the MSF edge list as .npz")


def _add_cc(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("cc", help="count connected components")
    p.add_argument("graph", help="instance .npz")
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--simsan", action="store_true",
                   help="run under the runtime invariant sanitizer")


def _add_sweep(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("sweep", help="run a scaling sweep")
    p.add_argument("--family", choices=_families(), default="GNM")
    p.add_argument("--cores", default="4,16,64",
                   help="comma-separated core counts")
    p.add_argument("--per-core-vertices", type=int, default=256)
    p.add_argument("--per-core-edges", type=int, default=1024)
    p.add_argument("--algorithms",
                   default="boruvka,filter-boruvka",
                   help="comma-separated algorithm names")
    p.add_argument("--threads", type=int, default=1)
    p.add_argument("--strong", action="store_true",
                   help="strong scaling (fixed size = per-core x max cores)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--simsan", action="store_true",
                   help="run under the runtime invariant sanitizer")


def _add_profile(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "profile",
        help="run one algorithm traced; export Chrome trace + metrics")
    p.add_argument("graph", nargs="?",
                   help="instance .npz (default: a generated instance)")
    p.add_argument("--algo", "--algorithm", dest="algorithm",
                   default="boruvka",
                   help="boruvka | filter-boruvka | awerbuch-shiloach | "
                        "mnd-mst | dist-prim | dist-kruskal")
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--threads", type=int, default=1)
    p.add_argument("--family", choices=_families(), default="GNM",
                   help="generated family when no graph file is given")
    p.add_argument("-n", type=int, default=4096, help="generated vertices")
    p.add_argument("-m", type=int, default=16384, help="generated edges")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--alltoall", default="auto",
                   choices=["auto", "direct", "grid", "grid3", "hypercube"])
    p.add_argument("--base-case-min", type=int, default=64,
                   help="base-case vertex threshold (small keeps more "
                        "distributed rounds visible in the profile)")
    p.add_argument("--engine", default=None,
                   choices=["inprocess", "batched", "multiprocess"],
                   help="execution engine (default: REPRO_ENGINE, "
                        "see docs/engines.md)")
    p.add_argument("--trace-out", default=None,
                   help="Chrome/Perfetto trace JSON output path (default: "
                        "profile.trace.json under $REPRO_TRACE_DIR, which "
                        "itself defaults to ./traces)")
    p.add_argument("--metrics-out", default=None,
                   help="metrics JSON output path (default: "
                        "profile.metrics.json under $REPRO_TRACE_DIR)")
    p.add_argument("--simsan", action="store_true",
                   help="run under the runtime invariant sanitizer")


def _add_faults(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "faults",
        help="inject a fault schedule, verify recovery, report overhead")
    p.add_argument("graph", nargs="?",
                   help="instance .npz (default: a generated instance)")
    p.add_argument("--algo", "--algorithm", dest="algorithm",
                   default="boruvka",
                   help="any round-looped algorithm: boruvka | "
                        "filter-boruvka | awerbuch-shiloach | mnd-mst | "
                        "dist-prim (dist-kruskal refuses fail-stop "
                        "schedules -- its merge tree cannot replay)")
    p.add_argument("--schedule", default="seed=0,pe_fail=0.05,msg_drop=0.01,"
                                         "corrupt=0.05,straggle=0.02",
                   help="fault spec string (grammar in docs/faults.md)")
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--threads", type=int, default=1)
    p.add_argument("--family", choices=_families(), default="GNM",
                   help="generated family when no graph file is given")
    p.add_argument("-n", type=int, default=4096, help="generated vertices")
    p.add_argument("-m", type=int, default=16384, help="generated edges")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--base-case-min", type=int, default=64,
                   help="base-case vertex threshold (small keeps more "
                        "distributed rounds exposed to fail-stop events)")
    p.add_argument("--simsan", action="store_true",
                   help="run both the baseline and the faulty run under "
                        "the runtime invariant sanitizer")


def _add_report(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "report",
        help="render reports / perf-regression diffs from run artifacts")
    p.add_argument("target",
                   help="a .trace.json, a ledger.jsonl, a BENCH_*.json, or "
                        "a directory of BENCH records")
    p.add_argument("--baseline", default=None,
                   help="baseline BENCH record or directory to gate the "
                        "target against (regression table)")
    p.add_argument("--html", default=None, metavar="OUT",
                   help="also write a self-contained HTML report here")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero when any gate fails (wall ratio > "
                        "--max-ratio, simulated drift, schema problems)")
    p.add_argument("--max-ratio", type=float, default=2.0,
                   help="wall-clock regression tolerance (default 2.0)")


def _add_info(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("info", help="show instance statistics")
    p.add_argument("graph", help="instance .npz")


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve", help="serve MSF queries/mutations over a live session")
    p.add_argument("graph", help="initial instance .npz (from `repro gen`)")
    p.add_argument("--procs", type=int, default=8, help="MPI processes")
    p.add_argument("--threads", type=int, default=1)
    p.add_argument("--engine", default=None,
                   choices=["inprocess", "batched", "multiprocess"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--schedule", default=None,
                   help="fault schedule active during epoch recomputes "
                        "(docs/faults.md grammar)")
    p.add_argument("--tcp", default=None, metavar="HOST:PORT",
                   help="listen on TCP instead of stdin/stdout "
                        "(port 0 picks an ephemeral port)")
    p.add_argument("--max-depth", type=int, default=64,
                   help="in-flight request bound (backpressure)")
    p.add_argument("--readers", type=int, default=4,
                   help="query reader threads")
    p.add_argument("--epoch-batch", type=int, default=32,
                   help="mutations per epoch before a forced commit")
    p.add_argument("--epoch-delay-ms", type=float, default=50.0,
                   help="max staging delay before an epoch commits")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="default per-request deadline")
    p.add_argument("--log-rounds", type=int, default=64,
                   help="checkpointed rounds retained for incremental "
                        "replay (0 disables replay)")
    p.add_argument("--simsan", action="store_true",
                   help="run the session machine under the sanitizer")


def _families():
    from .graphgen import FAMILIES

    return list(FAMILIES)


def _instances():
    from .graphgen import TABLE_I

    return sorted(TABLE_I)


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to the subcommand handlers."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="kamsta-py: distributed MST algorithms on a simulated "
                    "machine (Sanders & Schimek, IPDPS 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_gen(sub)
    _add_mst(sub)
    _add_cc(sub)
    _add_sweep(sub)
    _add_profile(sub)
    _add_faults(sub)
    _add_report(sub)
    _add_info(sub)
    _add_serve(sub)
    args = parser.parse_args(argv)
    if getattr(args, "simsan", False):
        # Machines default their sanitize= argument from this variable, so
        # every machine the subcommand creates runs under the checker.
        os.environ["REPRO_SIMSAN"] = "1"
    return {
        "gen": _cmd_gen,
        "mst": _cmd_mst,
        "cc": _cmd_cc,
        "sweep": _cmd_sweep,
        "profile": _cmd_profile,
        "faults": _cmd_faults,
        "report": _cmd_report,
        "info": _cmd_info,
        "serve": _cmd_serve,
    }[args.command](args)


def _cmd_gen(args) -> int:
    from .graphgen import gen_family, gen_realworld, save_npz

    if args.family:
        g = gen_family(args.family, args.n, args.m, seed=args.seed)
    else:
        g = gen_realworld(args.instance, n=args.n, seed=args.seed)
    save_npz(g, args.output)
    print(f"wrote {args.output}: {g.name} n={g.n_vertices} "
          f"m={g.n_undirected_edges}")
    return 0


def _cmd_mst(args) -> int:
    import time

    from .core import BoruvkaConfig, FilterConfig, minimum_spanning_forest
    from .graphgen import load_npz, save_npz
    from .simmpi import Machine

    g = load_npz(args.graph)
    machine = Machine(args.procs, threads=args.threads,
                      engine=args.engine)
    b = BoruvkaConfig(alltoall=args.alltoall,
                      local_preprocessing=not args.no_preprocessing)
    config = (FilterConfig(boruvka=b)
              if args.algorithm == "filter-boruvka" else b)
    wall0 = time.perf_counter()
    result = minimum_spanning_forest(g.distribute(machine),
                                     algorithm=args.algorithm,
                                     config=config)
    wall_seconds = time.perf_counter() - wall0
    print(f"instance        : {g.name} (n={g.n_vertices}, "
          f"m={g.n_undirected_edges})")
    print(f"machine         : {args.procs} procs x {args.threads} threads "
          f"= {machine.cores} cores")
    print(f"engine          : {machine.engine.describe()}")
    print(f"algorithm       : {result.algorithm}")
    print(f"MSF weight      : {result.total_weight}")
    print(f"MSF edges       : {len(result.msf_edges())}")
    print(f"simulated time  : {result.elapsed * 1e3:.4f} ms")
    print(f"throughput      : {g.n_directed_edges / result.elapsed:.3e} "
          f"edges/s")
    print("phase breakdown :")
    for phase, t in sorted(result.phase_times.items(), key=lambda kv: -kv[1]):
        print(f"  {phase:20s} {t * 1e3:10.4f} ms")
    if args.verify:
        from .seq import verify_msf

        verify_msf(result.msf_edges(), g.edges, g.n_vertices,
                   check_edges=False)
        print("verification    : OK (matches sequential Kruskal)")
    if args.output:
        from .graphgen.base import GeneratedGraph

        out = GeneratedGraph(name=f"{g.name}-msf",
                             n_vertices=g.n_vertices,
                             edges=result.msf_edges(),
                             params={"algorithm": result.algorithm})
        save_npz(out, args.output)
        print(f"MSF saved       : {args.output}")
    _append_ledger("cli", f"mst-{result.algorithm}", machine=machine,
                   config={"instance": g.name, "algorithm": result.algorithm,
                           "procs": args.procs, "threads": args.threads,
                           "alltoall": args.alltoall},
                   simulated=[{"label": f"{g.name}-{result.algorithm}"
                                        f"-p{args.procs}",
                               "simulated_seconds": result.elapsed}],
                   rounds=getattr(result, "rounds", None),
                   wall_seconds=wall_seconds)
    return 0


def _append_ledger(kind, name, **kwargs) -> None:
    """Append one run-ledger row when a ledger is active (else no-op)."""
    from .obs import append_record, ledger_path, make_record

    if ledger_path() is None:
        return
    path = append_record(make_record(kind, name, **kwargs))
    print(f"ledger          : appended to {path}")


def _cmd_cc(args) -> int:
    from .core import connected_components
    from .graphgen import load_npz
    from .simmpi import Machine

    g = load_npz(args.graph)
    machine = Machine(args.procs)
    res = connected_components(g.distribute(machine))
    print(f"{g.name}: {res.n_components} connected components "
          f"({res.elapsed * 1e3:.4f} simulated ms on {args.procs} PEs)")
    return 0


def _cmd_sweep(args) -> int:
    from .analysis import series_table, speedup_summary, strong_scaling, weak_scaling
    from .graphgen import gen_family

    cores = [int(c) for c in args.cores.split(",")]
    algorithms = args.algorithms.split(",")

    if args.strong:
        g = gen_family(args.family, args.per_core_vertices * max(cores),
                       args.per_core_edges * max(cores), seed=args.seed)
        results = strong_scaling(g, algorithms, cores,
                                 threads=args.threads, seed=args.seed)
    else:
        results = weak_scaling(
            lambda n, m, seed: gen_family(args.family, n, m, seed=seed),
            algorithms, cores, args.per_core_vertices, args.per_core_edges,
            threads=args.threads, seed=args.seed,
        )
    mode = "strong" if args.strong else "weak"
    print(f"{args.family} {mode} scaling "
          f"({args.per_core_vertices}v/{args.per_core_edges}e per core)")
    print(series_table(results, value="throughput"))
    print(speedup_summary(results))
    return 0


def _cmd_profile(args) -> int:
    import time

    from .core import BoruvkaConfig, FilterConfig, minimum_spanning_forest
    from .graphgen import gen_family, load_npz
    from .obs import (
        TruncatedTraceError,
        analyze,
        chrome_trace,
        kernel_pool_table,
        progress_table,
        validate_chrome_trace,
        write_chrome_trace,
        write_metrics,
    )
    from .simmpi import Machine

    if args.graph:
        g = load_npz(args.graph)
    else:
        g = gen_family(args.family, args.n, args.m, seed=args.seed)
    machine = Machine(args.procs, threads=args.threads, trace_events=True,
                      engine=args.engine)
    b = BoruvkaConfig(alltoall=args.alltoall,
                      base_case_min=args.base_case_min)
    config = (FilterConfig(boruvka=b)
              if args.algorithm == "filter-boruvka" else b)
    wall0 = time.perf_counter()
    result = minimum_spanning_forest(g.distribute(machine),
                                     algorithm=args.algorithm,
                                     config=config)
    wall_seconds = time.perf_counter() - wall0
    meta = {"instance": g.name, "algorithm": result.algorithm,
            "procs": args.procs, "threads": args.threads}
    # Default outputs live under REPRO_TRACE_DIR (./traces), not the CWD:
    # profile artifacts are run products, not repository content.
    trace_dir = os.environ.get("REPRO_TRACE_DIR", "traces")
    trace_out = args.trace_out or os.path.join(trace_dir,
                                               "profile.trace.json")
    metrics_out = args.metrics_out or os.path.join(trace_dir,
                                                   "profile.metrics.json")
    for path in (trace_out, metrics_out):
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
    write_chrome_trace(machine.events, trace_out, metadata=meta)
    write_metrics(machine.metrics, metrics_out)
    problems = validate_chrome_trace(chrome_trace(machine.events, meta))
    print(f"instance        : {g.name} (n={g.n_vertices}, "
          f"m={g.n_undirected_edges})")
    print(f"algorithm       : {result.algorithm} on {args.procs} procs "
          f"x {args.threads} threads")
    print(f"MSF weight      : {result.total_weight}")
    print(f"simulated time  : {result.elapsed * 1e3:.4f} ms")
    print(f"events recorded : {len(machine.events)} "
          f"({machine.events.dropped} dropped)")
    print(f"trace           : {trace_out} "
          f"({'valid' if not problems else 'INVALID'})")
    print(f"metrics         : {metrics_out}")
    critpath_summary = None
    try:
        analysis = analyze(machine.events)
        critpath_summary = analysis.summary()
        print(f"critical path   : {analysis.length * 1e3:.4f} ms "
              f"(anchor PE {analysis.anchor_rank}; "
              f"compute {analysis.by_kind.get('compute', 0.0) * 1e3:.4f} ms, "
              f"collective "
              f"{analysis.by_kind.get('collective', 0.0) * 1e3:.4f} ms)")
        print(f"wave estimate   : {analysis.wave_benefit_s * 1e3:.4f} ms "
              f"overlappable slack across {len(analysis.rounds)} rounds")
    except TruncatedTraceError as exc:
        print(f"critical path   : unavailable -- {exc}", file=sys.stderr)
    print()
    print(progress_table(machine.metrics))
    print()
    print(kernel_pool_table(machine.metrics))
    _append_ledger("cli", f"profile-{result.algorithm}", machine=machine,
                   config={"instance": g.name, "algorithm": result.algorithm,
                           "procs": args.procs, "threads": args.threads,
                           "alltoall": args.alltoall},
                   simulated=[{"label": f"{g.name}-{result.algorithm}"
                                        f"-p{args.procs}",
                               "simulated_seconds": result.elapsed}],
                   rounds=getattr(result, "rounds", None),
                   wall_seconds=wall_seconds,
                   critical_path=critpath_summary)
    if problems:
        for msg in problems[:10]:
            print(f"trace problem   : {msg}", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args) -> int:
    from pathlib import Path

    from .analysis import report_for_directory, report_for_target

    target = Path(args.target)
    if not target.exists():
        print(f"repro report: {target}: no such file or directory",
              file=sys.stderr)
        return 2
    try:
        if target.is_dir():
            text, html_doc, failures = report_for_directory(
                target, args.baseline, args.max_ratio)
        else:
            text, html_doc, failures = report_for_target(
                target, args.baseline, args.max_ratio)
    except ValueError as exc:
        print(f"repro report: {exc}", file=sys.stderr)
        return 2
    print(text)
    if args.html:
        out = Path(args.html)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(html_doc)
        print(f"\nHTML report: {out}")
    if failures:
        print()
        for msg in failures:
            print(f"CHECK FAIL: {msg}",
                  file=sys.stderr if args.check else sys.stdout)
        if args.check:
            return 1
    elif args.check:
        print("\ncheck: all gates pass")
    return 0


def _cmd_faults(args) -> int:
    from .core import BoruvkaConfig, FilterConfig, minimum_spanning_forest
    from .faults import FaultSchedule
    from .graphgen import gen_family, load_npz
    from .simmpi import Machine

    schedule = FaultSchedule.parse(args.schedule)
    if args.graph:
        g = load_npz(args.graph)
    else:
        g = gen_family(args.family, args.n, args.m, seed=args.seed)

    def run(faults):
        machine = Machine(args.procs, threads=args.threads, faults=faults)
        b = BoruvkaConfig(base_case_min=args.base_case_min)
        config = (FilterConfig(boruvka=b)
                  if args.algorithm == "filter-boruvka" else b)
        result = minimum_spanning_forest(g.distribute(machine),
                                         algorithm=args.algorithm,
                                         config=config)
        return machine, result

    _, clean = run(faults=False)
    machine, faulty = run(faults=schedule)

    print(f"instance        : {g.name} (n={g.n_vertices}, "
          f"m={g.n_undirected_edges})")
    print(f"algorithm       : {faulty.algorithm} on {args.procs} procs "
          f"x {args.threads} threads")
    print(f"schedule        : {args.schedule}")
    print(f"fault-free time : {clean.elapsed * 1e3:.4f} ms "
          f"({clean.rounds} rounds)")
    print(f"faulty time     : {faulty.elapsed * 1e3:.4f} ms "
          f"({faulty.rounds} rounds)")
    print(f"recovery cost   : {(faulty.elapsed / clean.elapsed - 1) * 100:+.2f}%")
    counts = machine.faults.summary() if machine.faults is not None else {}
    print("injected events :" + ("" if counts else " none"))
    for kind, n in counts.items():
        print(f"  {kind:20s} {n:6d}")
    ok = faulty.total_weight == clean.total_weight
    verdict = ("OK, matches fault-free run" if ok
               else f"MISMATCH vs {clean.total_weight}")
    print(f"MSF weight      : {faulty.total_weight} ({verdict})")
    return 0 if ok else 1


def _cmd_info(args) -> int:
    from .graphgen import graph_statistics, load_npz

    g = load_npz(args.graph)
    s = graph_statistics(g)
    print(f"name        : {g.name}")
    print(f"vertices    : {s.n_vertices}")
    print(f"edges       : {s.m_undirected} undirected "
          f"({g.n_directed_edges} directed)")
    print(f"avg degree  : {s.avg_degree:.2f}")
    print(f"max degree  : {s.max_degree}")
    print(f"degree gini : {s.degree_gini:.3f} (0 = regular, 1 = one hub)")
    print(f"locality    : {s.locality_fraction:.1%} local edges on "
          f"{s.locality_parts} PEs")
    print(f"weights     : [{s.weight_min}, {s.weight_max}]")
    if g.params:
        print(f"params      : {g.params}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .graphgen import load_npz
    from .serve import GraphSession, serve_stdio, serve_tcp

    g = load_npz(args.graph)
    session = GraphSession(
        g.n_vertices, g.edges,
        n_procs=args.procs, threads=args.threads, seed=args.seed,
        engine=args.engine, faults=args.schedule,
        log_max_rounds=args.log_rounds,
    )
    queue_opts = dict(
        max_depth=args.max_depth,
        readers=args.readers,
        epoch_max_batch=args.epoch_batch,
        epoch_max_delay_s=args.epoch_delay_ms / 1e3,
        default_deadline_s=(args.deadline_ms / 1e3
                            if args.deadline_ms else None),
    )
    # Responses own stdout in stdio mode; humans read stderr.
    print(f"serving {g.name} (n={g.n_vertices}, "
          f"m={g.n_undirected_edges}) on {args.procs} procs, "
          f"engine={session.machine.engine.name}, "
          f"weight={session.view.total_weight}", file=sys.stderr)
    try:
        if args.tcp:
            host, _, port = args.tcp.rpartition(":")
            summary = asyncio.run(serve_tcp(
                session, host or "127.0.0.1", int(port),
                ready=lambda hp: print(f"listening on {hp[0]}:{hp[1]}",
                                       file=sys.stderr, flush=True),
                **queue_opts))
        else:
            summary = serve_stdio(session, **queue_opts)
    finally:
        session.close()
    print(f"served {summary.get('requests', 0)} requests, "
          f"{summary.get('errors', 0)} errors; epochs="
          f"{summary.get('epochs', {})}; p99="
          f"{summary.get('p99_latency_ms', 0.0):.2f} ms", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
