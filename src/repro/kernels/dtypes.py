"""Adaptive integer-dtype narrowing policy (docs/kernels.md).

The simulated machine's *logical* word is 8 bytes: every cost-model charge,
communicated-byte count and memory-accounting figure is expressed in 8-byte
words regardless of how the host stores the values (see
``repro.simmpi.collectives`` / ``repro.simmpi.alltoall``).  Host storage is
free to be narrower: vertex ids, labels, weights and edge ids of every
benchmark-scale instance fit ``uint32``, which halves the bytes the host
moves through sorts, gathers, transport matrices and shared-memory engine
payloads.

Policy
------
Exactly two storage widths: ``uint32`` when every value provably fits
``[0, 2**32)``, ``int64`` otherwise.  A binary policy keeps numpy promotion
predictable (no ``uint8 + uint16`` surprises) and keeps the fallback trivially
safe.  ``REPRO_DTYPES=wide`` disables narrowing everywhere -- the escape
hatch the differential tests use to prove narrowing never changes simulated
seconds or results.

The hard invariant of :mod:`repro.kernels` extends to this module: narrowing
changes host wall-clock and host RSS only.  Simulated seconds, RNG draws,
traces and MSF weights are bit-for-bit identical under either policy.
"""

from __future__ import annotations

import os

import numpy as np

#: Largest value the narrow storage dtype can hold.
UINT32_MAX = int(np.iinfo(np.uint32).max)

#: The two storage widths of the policy.
NARROW_DTYPE = np.dtype(np.uint32)
WIDE_DTYPE = np.dtype(np.int64)


def narrowing_enabled() -> bool:
    """Whether adaptive narrowing is active (``REPRO_DTYPES`` knob).

    ``narrow`` (the default) enables the policy; ``wide`` forces every
    array the policy touches back to ``int64`` -- the pre-narrowing
    behaviour, kept as a first-class mode for differential testing.
    """
    value = os.environ.get("REPRO_DTYPES", "narrow").strip().lower()
    if value in ("", "narrow", "auto", "1", "on"):
        return True
    if value in ("wide", "int64", "0", "off"):
        return False
    raise ValueError(f"REPRO_DTYPES must be 'narrow' or 'wide', got {value!r}")


def index_dtype(max_value: int) -> np.dtype:
    """Smallest safe storage dtype for values in ``[0, max_value]``.

    ``uint32`` when the bound fits (and narrowing is enabled), ``int64``
    otherwise.  Negative bounds mean "no elements" and narrow safely.
    """
    if narrowing_enabled() and int(max_value) <= UINT32_MAX:
        return NARROW_DTYPE
    return WIDE_DTYPE


def narrow(a: np.ndarray, max_value: int | None = None) -> np.ndarray:
    """``a`` cast to the narrowest safe policy dtype (or ``a`` unchanged).

    Only integer arrays narrow; the value bound is ``max_value`` when the
    caller already knows it (skipping the reduction scans) and
    ``a.min()/a.max()`` otherwise.  Arrays containing negatives, or values
    above ``UINT32_MAX``, stay at their original dtype -- narrowing is
    always a no-op fallback, never an error.
    """
    if not narrowing_enabled():
        return widen(a)
    a = np.asarray(a)
    if a.dtype == NARROW_DTYPE or a.dtype.kind not in "iu" or a.size == 0:
        return a
    if max_value is None:
        lo = int(a.min())
        if lo < 0:
            return a
        max_value = int(a.max())
    if 0 <= int(max_value) <= UINT32_MAX:
        return a.astype(NARROW_DTYPE)
    return a


def widen(a: np.ndarray) -> np.ndarray:
    """``a`` cast back to the wide ``int64`` storage dtype."""
    a = np.asarray(a)
    if a.dtype == WIDE_DTYPE or a.dtype.kind not in "iu":
        return a
    return a.astype(WIDE_DTYPE)


def narrow_payload(payload: dict) -> dict:
    """Narrow every eligible array of an engine-task payload.

    Applied at fan-out payload-build time -- before the engine decides
    between in-line execution and shared-memory offload -- so every engine
    computes on identical arrays and the shared-memory segments ship the
    narrow representation (about half the bytes for index-like arrays).
    """
    if not narrowing_enabled():
        return payload
    out = {}
    for key, value in payload.items():
        if isinstance(value, np.ndarray):
            out[key] = narrow(value)
        else:
            out[key] = value
    return out


def logical_nbytes(a: np.ndarray) -> int:
    """Bytes the *simulated machine* moves for array ``a``.

    Integer payloads always count 8 bytes per element -- the machine's
    logical word -- so host-side dtype narrowing never changes a single
    simulated cost, traced byte or sanitizer shadow entry.  Non-integer
    payloads (float64 costs, bool flags) keep their true width, which was
    already their pre-narrowing accounting.
    """
    if a.dtype.kind in "iu":
        return int(a.size) * 8
    return int(a.nbytes)


def logical_itemsize(dtype) -> int:
    """Per-element logical bytes (8 for any integer dtype)."""
    dtype = np.dtype(dtype)
    if dtype.kind in "iu":
        return 8
    return int(dtype.itemsize)
