"""Ragged per-PE arrays: one flat array plus per-segment offsets.

The container behind every batched kernel: segment ``i`` holds PE ``i``'s
rows as the contiguous slice ``flat[offsets[i]:offsets[i+1]]``.  Conversion
from the existing per-PE list-of-arrays is one concatenate; conversion back
hands out views (no copies), so crossing an engine boundary costs O(total)
once instead of O(p) numpy dispatches per operation.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class RaggedArrays:
    """All PEs' arrays packed flat, with per-PE offsets.

    ``flat`` is a single numpy array (1-D values or 2-D rows); ``offsets``
    has length ``p + 1`` with segment ``i`` spanning
    ``flat[offsets[i]:offsets[i+1]]``.
    """

    __slots__ = ("flat", "offsets", "_lengths")

    def __init__(self, flat: np.ndarray, offsets: np.ndarray):
        self.flat = flat
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self._lengths = None
        if len(self.offsets) == 0 or self.offsets[-1] != len(flat):
            raise ValueError(
                f"offsets end at {self.offsets[-1] if len(self.offsets) else None}"
                f" but flat has {len(flat)} entries"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, arrays: Sequence[np.ndarray],
                    dtype=None) -> "RaggedArrays":
        """Pack a per-PE list of arrays into one flat array + offsets.

        With ``dtype`` given, the flat array is coerced to exactly that
        dtype (narrow or wide); without it, numpy's concatenation
        promotion decides -- the inputs' own dtype when they agree.
        """
        arrays = [a if isinstance(a, np.ndarray) and a.ndim
                  else np.atleast_1d(a) for a in arrays]
        lengths = np.fromiter((len(a) for a in arrays), dtype=np.int64,
                              count=len(arrays))
        offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        if arrays:
            flat = np.concatenate(arrays, axis=0)
            if dtype is not None and flat.dtype != np.dtype(dtype):
                flat = flat.astype(dtype)
        else:
            flat = np.empty(0, dtype=dtype if dtype is not None else np.int64)
        out = cls(flat, offsets)
        out._lengths = lengths
        return out

    @classmethod
    def from_offsets_template(cls, flat: np.ndarray,
                              like: "RaggedArrays") -> "RaggedArrays":
        """Wrap ``flat`` (aligned with ``like.flat``) in the same offsets."""
        return cls(flat, like.offsets)

    # ------------------------------------------------------------------
    @property
    def n_segments(self) -> int:
        """Number of segments (PEs)."""
        return len(self.offsets) - 1

    @property
    def lengths(self) -> np.ndarray:
        """Per-segment lengths (cached)."""
        if self._lengths is None:
            self._lengths = self.offsets[1:] - self.offsets[:-1]
        return self._lengths

    def __len__(self) -> int:
        return len(self.flat)

    def segment(self, i: int) -> np.ndarray:
        """PE ``i``'s slice of the flat array (a view)."""
        return self.flat[self.offsets[i]:self.offsets[i + 1]]

    def to_arrays(self) -> List[np.ndarray]:
        """Per-PE list of views into the flat array."""
        return [self.flat[self.offsets[i]:self.offsets[i + 1]]
                for i in range(self.n_segments)]

    def segment_ids(self) -> np.ndarray:
        """Segment id of every flat entry (``repeat(arange(p), lengths)``)."""
        return np.repeat(np.arange(self.n_segments, dtype=np.int64),
                         self.lengths)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RaggedArrays(p={self.n_segments}, total={len(self.flat)}, "
                f"dtype={self.flat.dtype})")
