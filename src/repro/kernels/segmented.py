"""Segmented kernels: one numpy pass over all PEs' data at once.

Every kernel takes flat arrays plus segment information (ids or offsets) and
reproduces, per segment, exactly what the corresponding per-PE numpy
operation computes -- same values, same orders, same dtypes.  This is what
makes the batched engine a drop-in for the reference loops: a stable
``lexsort`` keyed by ``(segment, ...)`` restricted to one segment *is* that
segment's own stable lexsort.

All kernels are O(total log total) or better with no per-segment Python
loop.
"""

from __future__ import annotations

import functools
import time
from typing import Optional, Sequence, Tuple

import numpy as np

from .dtypes import index_dtype
from .engine import kernel_sink, record_kernel
from .pool import active_pool


def _instrumented(fn):
    """Report calls and host seconds to the kernel sink when one is attached.

    With no sink attached (the default, untraced case) the wrapper is a
    single ``is None`` check around the call -- the timing path only runs
    for traced machines, keeping the disabled overhead near zero.
    """
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        """Forward to the kernel, timing it when a sink is attached."""
        if kernel_sink() is None:
            return fn(*args, **kwargs)
        t0 = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            record_kernel(fn.__name__, time.perf_counter() - t0)
    return wrapper


@_instrumented
def segment_ids(offsets: np.ndarray) -> np.ndarray:
    """Segment id of every flat position for ``p + 1`` offsets."""
    offsets = np.asarray(offsets, dtype=np.int64)
    return np.repeat(np.arange(len(offsets) - 1, dtype=np.int64),
                     np.diff(offsets))


def _narrow_perm(perm: np.ndarray, n: int) -> np.ndarray:
    """Permutation indices in the narrowest safe policy dtype."""
    dt = index_dtype(max(n - 1, 0))
    if perm.dtype != dt:
        return perm.astype(dt)
    return perm


@_instrumented
def packed_lexsort(keys: Sequence[np.ndarray],
                   ranges: Optional[Sequence] = None) -> np.ndarray:
    """Permutation equal to ``np.lexsort(keys)`` (least-significant first).

    Fast path: pack the integer columns into one mixed-radix scalar --
    strictly monotone in the lexicographic order, equal exactly on full-key
    ties -- and run a single stable argsort, one sort pass instead of one
    per key.  Falls back to ``np.lexsort`` when a column is non-integer or
    the combined value ranges overflow int64.

    ``ranges`` optionally supplies a known ``(lo, hi)`` value bound per key
    (aligned with ``keys``, ``None`` entries computed as usual), skipping
    the per-column min/max reduction scans.  The packed key accumulates in
    a pooled scratch buffer (no per-column temporaries) and sorts as int32
    when the combined capacity fits, which roughly halves the bytes the
    stable argsort touches.  Returned indices use the narrowest safe policy
    dtype (:mod:`repro.kernels.dtypes`).
    """
    keys = tuple(keys)
    if not keys:
        return np.empty(0, dtype=index_dtype(0))
    n = len(keys[0])
    if n <= 64 or len(keys) == 1:
        # Packing overhead only pays off once the argsort itself dominates;
        # tiny inputs go straight to lexsort.
        return _narrow_perm(np.lexsort(keys), n)
    capacity = 1
    cols = []
    for pos, k in enumerate(keys):
        k = np.asarray(k)
        if k.dtype.kind not in "iub":
            return _narrow_perm(np.lexsort(keys), n)
        bound = ranges[pos] if ranges is not None else None
        if bound is None:
            lo = int(k.min())
            hi = int(k.max())
        else:
            lo, hi = int(bound[0]), int(bound[1])
        span = hi - lo + 1
        capacity *= span
        # Also bail out when raw values themselves overflow int64 arithmetic.
        if capacity >= (1 << 62) or hi >= (1 << 62) or lo <= -(1 << 62):
            return _narrow_perm(np.lexsort(keys), n)
        cols.append((k, lo, span))
    pool = active_pool()
    packed = pool.take(n, np.int64)
    col_buf = None
    first = True
    for k, lo, span in reversed(cols):  # most-significant column first
        if first:
            np.subtract(k, lo, out=packed, casting="unsafe")
            first = False
            continue
        np.multiply(packed, span, out=packed)
        if col_buf is None:
            col_buf = pool.take(n, np.int64)
        np.subtract(k, lo, out=col_buf, casting="unsafe")
        np.add(packed, col_buf, out=packed)
    if capacity < (1 << 31):
        key32 = pool.take(n, np.int32)
        key32[:] = packed  # values fit by the capacity bound
        perm = np.argsort(key32, kind="stable")
        pool.give(key32)
    else:
        perm = np.argsort(packed, kind="stable")
    pool.give(col_buf)
    pool.give(packed)
    return _narrow_perm(perm, n)


@_instrumented
def segmented_lexsort(keys: Sequence[np.ndarray],
                      seg_ids: np.ndarray) -> np.ndarray:
    """Flat permutation equal to a per-segment stable ``np.lexsort``.

    ``keys`` follow numpy's convention (least significant first); the
    segment id is applied as the most significant key.  Because segments are
    contiguous and ascending in flat order, the returned permutation maps
    each segment's range onto itself, so ``perm[off[i]:off[i+1]] - off[i]``
    is exactly ``np.lexsort(keys_of_segment_i)``.
    """
    return packed_lexsort(tuple(keys) + (seg_ids,))


@_instrumented
def first_in_group(group_ids: np.ndarray) -> np.ndarray:
    """Mask of the first element of every run of equal adjacent group ids."""
    n = len(group_ids)
    first = np.ones(n, dtype=bool)
    if n > 1:
        first[1:] = group_ids[1:] != group_ids[:-1]
    return first


@_instrumented
def segmented_unique(
    values: np.ndarray,
    seg_ids: np.ndarray,
    n_segments: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-segment ``np.unique(values, return_inverse=True)`` in one pass.

    Returns ``(uniq, uniq_offsets, inverse)``: ``uniq`` concatenates each
    segment's sorted distinct values (segment ``i`` spanning
    ``uniq[uniq_offsets[i]:uniq_offsets[i+1]]``) and ``inverse`` maps every
    input position to the index of its value *within its own segment's*
    unique list -- exactly numpy's ``return_inverse`` semantics per segment.
    """
    order = packed_lexsort((values, seg_ids))
    sv = values[order]
    sseg = seg_ids[order]
    first = np.ones(len(sv), dtype=bool)
    if len(sv) > 1:
        first[1:] = (sv[1:] != sv[:-1]) | (sseg[1:] != sseg[:-1])
    uniq = sv[first]
    useg = sseg[first]
    counts = np.bincount(useg, minlength=n_segments)
    uniq_offsets = np.zeros(n_segments + 1, dtype=np.int64)
    np.cumsum(counts, out=uniq_offsets[1:])
    global_rank = np.cumsum(first) - 1
    inverse = np.empty(len(values), dtype=np.int64)
    inverse[order] = global_rank - uniq_offsets[sseg]
    return uniq, uniq_offsets, inverse


@_instrumented
def segmented_searchsorted(
    haystack: np.ndarray,
    hay_offsets: np.ndarray,
    needles: np.ndarray,
    needle_seg: np.ndarray,
    side: str = "left",
) -> np.ndarray:
    """Per-segment ``np.searchsorted`` with a different haystack per segment.

    Each segment's haystack slice must be sorted.  Fast path: when the value
    range is narrow enough, shift each segment's values by ``seg * span`` --
    the flat haystack becomes globally sorted and one plain binary search
    answers every query (O((h+q) log h)).  Values too wide to pack fall back
    to one merged stable lexsort over haystack and needles combined (the
    same trick as :func:`repro.dgraph.search.lex_searchsorted`, with the
    segment id as the most significant key).  Either way no per-segment
    Python loop runs.
    """
    if side not in ("left", "right"):
        raise ValueError("side must be 'left' or 'right'")
    hay_offsets = np.asarray(hay_offsets, dtype=np.int64)
    h, q = len(haystack), len(needles)
    if q == 0:
        return np.empty(0, dtype=np.int64)
    if h == 0:
        return np.zeros(q, dtype=np.int64)
    haystack = np.asarray(haystack)
    needles = np.asarray(needles)
    needle_seg = np.asarray(needle_seg, dtype=np.int64)
    lo = min(int(haystack.min()), int(needles.min()))
    hi = max(int(haystack.max()), int(needles.max()))
    span = hi - lo + 1
    n_segments = len(hay_offsets) - 1
    if (haystack.dtype.kind in "iub" and needles.dtype.kind in "iub"
            and n_segments * span < (1 << 62)  # packed keys fit int64
            and -(1 << 62) < lo and hi < (1 << 62)):
        hkey = (haystack.astype(np.int64) - lo
                + segment_ids(hay_offsets) * span)
        nkey = needles.astype(np.int64) - lo + needle_seg * span
        return (np.searchsorted(hkey, nkey, side=side)
                - hay_offsets[needle_seg])
    merged = np.concatenate([haystack, needles])
    seg = np.concatenate([segment_ids(hay_offsets),
                          np.asarray(needle_seg, dtype=np.int64)])
    is_query = np.zeros(h + q, dtype=np.int8)
    is_query[h:] = 1
    tie = is_query if side == "right" else (1 - is_query)
    order = np.lexsort((tie, merged, seg))
    sorted_is_query = is_query[order] == 1
    keys_before = np.cumsum(~sorted_is_query)
    qpos = order[sorted_is_query] - h
    result = np.empty(q, dtype=np.int64)
    result[qpos] = (keys_before[sorted_is_query]
                    - hay_offsets[seg[order][sorted_is_query]])
    return result


@_instrumented
def segmented_lookup(
    haystack: np.ndarray,
    hay_offsets: np.ndarray,
    needles: np.ndarray,
    needle_seg: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment :func:`repro.dgraph.search.sorted_lookup` in one pass.

    Returns ``(found, idx)`` with ``idx`` clamped to each segment's valid
    range (0 for empty segments) and *local* to the segment; the global flat
    position of a hit is ``hay_offsets[needle_seg] + idx``.
    """
    hay_offsets = np.asarray(hay_offsets, dtype=np.int64)
    needle_seg = np.asarray(needle_seg, dtype=np.int64)
    idx = segmented_searchsorted(haystack, hay_offsets, needles, needle_seg,
                                 side="left")
    lens = np.diff(hay_offsets)[needle_seg]
    if len(needles) == 0:
        return np.zeros(0, dtype=bool), idx
    valid = idx < lens
    idx = np.minimum(idx, np.maximum(lens - 1, 0))
    found = np.zeros(len(needles), dtype=bool)
    nz = lens > 0
    gpos = hay_offsets[needle_seg] + idx
    found[nz] = valid[nz] & (haystack[gpos[nz]] == np.asarray(needles)[nz])
    return found, idx


@_instrumented
def route_plan(
    seg_ids: np.ndarray,
    dests: np.ndarray,
    n_segments: int,
    size: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused routing plan: gather order plus per-segment destination counts.

    Equivalent to ``packed_lexsort((dests, seg_ids))`` followed by
    :func:`route_counts` -- the pairing every exchange wrapper performs --
    but the ``seg * size + dest`` key is built once (in a pooled buffer,
    int32 when it fits) and reused for both the stable argsort and the
    bincount.  Requires ``0 <= dests < size`` and ``0 <= seg_ids <
    n_segments``, which every routing call site guarantees; the fused key
    is then strictly monotone in ``(segment, destination)`` so the stable
    argsort equals the two-key lexsort permutation exactly.
    """
    n = len(dests)
    if n == 0:
        return (np.empty(0, dtype=index_dtype(0)),
                np.zeros((n_segments, size), dtype=np.int64))
    pool = active_pool()
    wide = int(n_segments) * int(size) >= (1 << 31)
    key = pool.take(n, np.int64 if wide else np.int32)
    np.multiply(seg_ids, size, out=key, casting="unsafe")
    np.add(key, dests, out=key, casting="unsafe")
    counts = np.bincount(key, minlength=n_segments * size)
    counts = counts.reshape(n_segments, size)
    order = np.argsort(key, kind="stable")
    pool.give(key)
    return _narrow_perm(order, n), counts


@_instrumented
def route_counts(
    seg_ids: np.ndarray,
    dests: np.ndarray,
    n_segments: int,
    size: int,
) -> np.ndarray:
    """Per-segment destination histogram: ``counts[i, d]`` rows of segment
    ``i`` go to rank ``d``.  One flat bincount over ``seg * size + dest``."""
    if len(dests) == 0:
        return np.zeros((n_segments, size), dtype=np.int64)
    flat = np.asarray(seg_ids, dtype=np.int64) * size \
        + np.asarray(dests, dtype=np.int64)
    return np.bincount(flat, minlength=n_segments * size).reshape(
        n_segments, size)
