"""Kernel-engine selection (``REPRO_KERNELS=batched|loop``).

``batched`` (the default) routes the rewritten hot paths through the flat
segmented kernels of this package; ``loop`` keeps the original per-PE
reference loops.  The variable is re-read on every call so differential
tests can flip engines within one process.
"""

from __future__ import annotations

import os

#: Recognised engine names.
KERNEL_ENGINES = ("batched", "loop")


def kernel_engine() -> str:
    """The active kernel engine, from ``REPRO_KERNELS`` (default batched)."""
    value = os.environ.get("REPRO_KERNELS", "").strip().lower()
    if not value:
        return "batched"
    if value not in KERNEL_ENGINES:
        raise ValueError(
            f"REPRO_KERNELS must be one of {KERNEL_ENGINES}, got {value!r}"
        )
    return value


def batched_enabled() -> bool:
    """Whether the batched engine is active (environment-only view).

    Prefer :func:`batched_for` at dispatch sites that have a machine in
    scope: execution engines (``Machine(engine=...)`` / ``REPRO_ENGINE``,
    see :mod:`repro.engines`) are resolved per machine at construction,
    and this function only reflects the legacy ``REPRO_KERNELS`` default.
    """
    return kernel_engine() == "batched"


def batched_for(machine) -> bool:
    """Whether dispatch sites should take the batched path for ``machine``.

    Machines carry an execution engine whose ``uses_batched_kernels``
    attribute decides between the per-PE reference loops and the flat
    segmented kernels; objects without an engine (plain test doubles)
    fall back to the ``REPRO_KERNELS`` environment default.
    """
    engine = getattr(machine, "engine", None)
    if engine is None:
        return batched_enabled()
    return engine.uses_batched_kernels


#: Metrics registry receiving kernel invocation counts/host time, or None.
_KERNEL_SINK = None


def set_kernel_sink(registry) -> None:
    """Attach a :class:`~repro.obs.metrics.MetricsRegistry` as kernel sink.

    The segmented kernels are module-level functions with no machine handle,
    so per-kernel stats (invocation counts and host wall time) flow through
    this process-global sink instead.  A traced ``Machine`` installs its
    registry on construction; when several traced machines coexist the
    last-created one wins, which is fine for the intended single-run
    profiling workflow.  Pass ``None`` to detach.
    """
    global _KERNEL_SINK
    _KERNEL_SINK = registry


def kernel_sink():
    """The currently attached kernel metrics sink (or ``None``)."""
    return _KERNEL_SINK


def record_kernel(name: str, host_seconds: float) -> None:
    """Record one kernel invocation into the attached sink, if any."""
    sink = _KERNEL_SINK
    if sink is not None:
        sink.counter(f"kernel/{name}/calls").inc()
        sink.counter(f"kernel/{name}/host_seconds").inc(host_seconds)
