"""Kernel-engine selection (``REPRO_KERNELS=batched|loop``).

``batched`` (the default) routes the rewritten hot paths through the flat
segmented kernels of this package; ``loop`` keeps the original per-PE
reference loops.  The variable is re-read on every call so differential
tests can flip engines within one process.
"""

from __future__ import annotations

import os

#: Recognised engine names.
KERNEL_ENGINES = ("batched", "loop")


def kernel_engine() -> str:
    """The active kernel engine, from ``REPRO_KERNELS`` (default batched)."""
    value = os.environ.get("REPRO_KERNELS", "").strip().lower()
    if not value:
        return "batched"
    if value not in KERNEL_ENGINES:
        raise ValueError(
            f"REPRO_KERNELS must be one of {KERNEL_ENGINES}, got {value!r}"
        )
    return value


def batched_enabled() -> bool:
    """Whether the batched engine is active."""
    return kernel_engine() == "batched"
