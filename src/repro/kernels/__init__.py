"""Batched segmented-array kernels for the simulated machine.

The simulator drives all ``p`` virtual PEs from one Python process, so every
hot path that loops ``for i in range(p)`` re-enters the numpy dispatcher once
per PE: wall-clock grows with ``p`` even though per-PE work shrinks.  This
package provides the *flat* alternative -- all PEs' data packed into one
array plus per-PE offsets (:class:`RaggedArrays`) and segmented kernels that
process every PE's segment in a single numpy pass, mirroring the parlay-style
flat segmented primitives of the paper's own stack (KaMSTa / GBBS).

Hard invariant
--------------
Kernels change only the *wall-clock* of running the simulator.  Simulated
seconds, per-PE semantics, cost charging and sanitizer ownership views are
bit-for-bit identical between the two engines; ``REPRO_KERNELS=loop``
switches every rewritten hot path back to the per-PE reference loops so the
test suite can differential-test the engines against each other
(see docs/kernels.md).
"""

from .dtypes import index_dtype, narrow, narrow_payload, narrowing_enabled, widen
from .engine import KERNEL_ENGINES, batched_enabled, batched_for, kernel_engine
from .pool import BufferPool, active_pool, set_active_pool
from .ragged import RaggedArrays
from .segmented import (
    first_in_group,
    packed_lexsort,
    route_counts,
    route_plan,
    segment_ids,
    segmented_lexsort,
    segmented_lookup,
    segmented_searchsorted,
    segmented_unique,
)

__all__ = [
    "KERNEL_ENGINES",
    "BufferPool",
    "RaggedArrays",
    "active_pool",
    "batched_enabled",
    "batched_for",
    "first_in_group",
    "index_dtype",
    "kernel_engine",
    "narrow",
    "narrow_payload",
    "narrowing_enabled",
    "packed_lexsort",
    "route_counts",
    "route_plan",
    "segment_ids",
    "segmented_lexsort",
    "segmented_lookup",
    "segmented_searchsorted",
    "segmented_unique",
    "set_active_pool",
    "widen",
]
