"""Per-machine buffer pool for round-to-round kernel scratch arrays.

The batched kernels allocate the same handful of scratch shapes every round
(packed sort keys, per-column shift buffers, gather orders).  ``np.empty``
is cheap but not free: large blocks bounce between the allocator and the
kernel's page tables every round, and peak RSS grows with the worst-case
set of simultaneously live temporaries.  The pool recycles blocks keyed by
``(size-class, dtype)`` -- power-of-two size classes, so a request is served
by any block at least as large -- which keeps the hot path's scratch
footprint flat across rounds.

Usage contract
--------------
Only *internal* scratch may come from the pool: a kernel must ``give``
every block back before returning, and nothing returned to a caller may
alias pool memory.  :func:`active_pool` hands out the most recently
installed machine's pool (mirroring the kernel-sink wiring in
:mod:`repro.kernels.engine`); kernels running without a machine fall back
to a process-global default pool so the API never needs ``None`` checks.

Statistics (hits, misses, bytes served from the pool vs freshly allocated)
are plain integers on the pool; a traced machine exports them into its
``repro.obs`` metrics registry (``pool/*`` counters, visible in
``repro profile`` and the metrics JSON).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np


def _default_max_bytes() -> int:
    """Per-pool parked-bytes budget (``REPRO_POOL_MAX_MB`` to override).

    Deliberately modest: parked blocks raise resident memory that the
    allocator would otherwise return to the OS, so the budget only needs to
    cover the handful of hot scratch shapes of one round, not every block
    ever seen.  ``REPRO_POOL_MAX_MB=0`` disables pooling (every take is a
    fresh allocation).
    """
    return int(float(os.environ.get("REPRO_POOL_MAX_MB", "32")) * (1 << 20))


class BufferPool:
    """Arena of reusable 1-D scratch blocks keyed by (size-class, dtype)."""

    def __init__(self, max_bytes: Optional[int] = None):
        self.max_bytes = (_default_max_bytes() if max_bytes is None
                          else int(max_bytes))
        self._free: Dict[tuple, List[np.ndarray]] = {}
        self._held_bytes = 0
        # Plain-int statistics; exported through repro.obs when attached.
        self.hits = 0
        self.misses = 0
        self.bytes_reused = 0
        self.bytes_allocated = 0
        self._sink = None

    # ------------------------------------------------------------------
    def attach_sink(self, registry) -> None:
        """Mirror statistics into a metrics registry (``pool/*`` counters)."""
        self._sink = registry

    @staticmethod
    def _size_class(n: int) -> int:
        """Power-of-two capacity class serving a request for ``n`` elements."""
        return max(1, int(n)).bit_length()

    # ------------------------------------------------------------------
    def take(self, n: int, dtype) -> np.ndarray:
        """A 1-D scratch array of exactly ``n`` elements (contents arbitrary).

        Served from the free lists when a block of the right class exists,
        freshly allocated otherwise.  The caller must hand the array (or
        any view of it) back via :meth:`give` before its kernel returns.
        """
        dtype = np.dtype(dtype)
        key = (self._size_class(n), dtype.str)
        free = self._free.get(key)
        if free:
            block = free.pop()
            self._held_bytes -= block.nbytes
            self.hits += 1
            self.bytes_reused += int(n) * dtype.itemsize
            if self._sink is not None:
                self._sink.counter("pool/hits").inc()
                self._sink.counter("pool/bytes_reused").inc(
                    int(n) * dtype.itemsize)
        else:
            block = np.empty(1 << self._size_class(n), dtype=dtype)
            self.misses += 1
            self.bytes_allocated += block.nbytes
            if self._sink is not None:
                self._sink.counter("pool/misses").inc()
                self._sink.counter("pool/bytes_allocated").inc(block.nbytes)
        return block[:n]

    def give(self, arr: Optional[np.ndarray]) -> None:
        """Return a block obtained from :meth:`take` to the free lists.

        Accepts the exact array handed out (a view of the pooled block) or
        ``None`` (no-op, simplifying cleanup paths).  Foreign arrays --
        whose backing block did not come from this pool -- are silently
        dropped rather than adopted, so a mismatched ``give`` can never
        corrupt the pool.
        """
        if arr is None:
            return
        block = arr if arr.base is None else arr.base
        if not isinstance(block, np.ndarray) or block.ndim != 1:
            return
        cls = block.size.bit_length() - 1
        if (1 << cls) != block.size:
            return  # not a pool-shaped block
        if self._held_bytes + block.nbytes > self.max_bytes:
            return  # over budget: let the allocator have it back
        key = (cls, block.dtype.str)
        self._free.setdefault(key, []).append(block)
        self._held_bytes += block.nbytes

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every parked block (machine reset / teardown)."""
        self._free.clear()
        self._held_bytes = 0

    @property
    def held_bytes(self) -> int:
        """Bytes currently parked in the free lists."""
        return self._held_bytes

    def stats(self) -> dict:
        """Snapshot of the pool counters (diagnostics / exports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes_reused": self.bytes_reused,
            "bytes_allocated": self.bytes_allocated,
            "held_bytes": self._held_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BufferPool(hits={self.hits}, misses={self.misses}, "
                f"held={self._held_bytes >> 20}MB)")


#: Fallback pool for kernels invoked without a machine (unit tests, tools).
_DEFAULT_POOL = BufferPool()
_ACTIVE_POOL: BufferPool = _DEFAULT_POOL


def active_pool() -> BufferPool:
    """The pool scratch-hungry kernels should draw from (never ``None``)."""
    return _ACTIVE_POOL


def set_active_pool(pool: Optional[BufferPool]) -> None:
    """Install ``pool`` as the active arena (``None`` restores the default).

    Mirrors :func:`repro.kernels.engine.set_kernel_sink`: each
    :class:`~repro.simmpi.machine.Machine` installs its own pool at
    construction, so kernels driven by the most recent machine reuse that
    machine's arena.  The displaced pool's parked blocks are handed back to
    the allocator -- a dormant pool would otherwise keep up to its whole
    budget resident for the rest of the process.
    """
    global _ACTIVE_POOL
    new = pool if pool is not None else _DEFAULT_POOL
    if new is not _ACTIVE_POOL:
        _ACTIVE_POOL.clear()
    _ACTIVE_POOL = new
