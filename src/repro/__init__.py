"""kamsta-py: reproduction of *Engineering Massively Parallel MST Algorithms*
(Sanders & Schimek, IPDPS 2023) on a simulated distributed-memory machine.

Public API
----------
The top-level convenience entry point is :func:`repro.minimum_spanning_forest`
(re-exported from :mod:`repro.core.mst`), which runs one of the paper's
algorithms (``"boruvka"`` or ``"filter-boruvka"``) or a competitor
(``"awerbuch-shiloach"``, ``"mnd-mst"``) on a distributed graph over a
:class:`repro.simmpi.Machine`.

Subpackages
-----------
``repro.simmpi``
    Simulated MPI machine: PE clocks, cost model, collectives, sparse
    all-to-all variants (direct / two-level grid / hypercube).
``repro.sorting``
    Distributed sorters (hypercube quicksort, two-level sample sort).
``repro.dgraph``
    The 1D-partitioned, lexicographically sorted distributed edge-list graph
    data structure of Section II-B.
``repro.graphgen``
    KaGen-equivalent generators (GRID/RGG/RHG/GNM/RMAT) and real-world
    stand-in instances.
``repro.core``
    The paper's contribution: distributed Boruvka (Algorithm 1) and
    Filter-Boruvka (Algorithm 2) with all subroutines.
``repro.seq``
    Sequential baselines (Kruskal, Prim, Boruvka, Filter-Kruskal) used for
    verification and the shared-memory reference point.
``repro.competitors``
    Reimplementations of the paper's competitors (sparseMatrix /
    Awerbuch-Shiloach and MND-MST) on the same substrate.
``repro.analysis``
    Experiment harness: sweeps, result records, ASCII tables.
``repro.engines``
    Pluggable execution engines (in-process / batched / multiprocess
    shared-memory) selecting how the simulated PEs execute on the host;
    see docs/engines.md.
"""

__version__ = "1.0.0"

from .core.mst import minimum_spanning_forest  # noqa: E402  (public entry point)
from .simmpi import Machine, CostModel  # noqa: E402

__all__ = ["minimum_spanning_forest", "Machine", "CostModel", "__version__"]
