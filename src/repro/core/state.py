"""Shared run state of the distributed MST algorithms.

:class:`MSTRun` bundles everything the subroutines of Algorithm 1 / 2 need:
the machine, configuration, the per-PE accumulators of identified MST edges,
and an optional *label sink* -- the hook through which Filter-Borůvka's
distributed component-representative array ``P`` observes every contraction
(Section V: "After a Borůvka round, each PE stores the component root for
its local vertices in P").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..simmpi.collectives import Comm
from ..simmpi.machine import Machine
from .config import BoruvkaConfig

#: Label-sink signature: (pe, vertex_ids, new_labels) for one contraction.
LabelSink = Callable[[int, np.ndarray, np.ndarray], None]


@dataclass
class MSTRun:
    """Mutable state threaded through one distributed MST computation."""

    machine: Machine
    cfg: BoruvkaConfig
    #: Per-PE lists of (edge id, weight) pairs of identified MST edges.
    mst_ids: List[List[np.ndarray]] = field(default_factory=list)
    #: Observer for contraction label maps (Filter-Borůvka's P array).
    label_sink: Optional[LabelSink] = None
    #: Round counter (diagnostics; Fig. 6 uses the phase timers instead).
    rounds: int = 0
    #: Optional per-round checkpoint retention for incremental replay
    #: (:class:`repro.core.rounds.RoundCheckpointLog`; see repro.serve).
    checkpoint_log: Optional[object] = None
    #: The driver's :class:`~repro.core.boruvka.InputSnapshot`, stashed by
    #: ``distributed_boruvka`` so a later incremental replay can decode
    #: original endpoints against the same id ranges.
    input_snapshot: Optional[object] = None

    def __post_init__(self) -> None:
        if not self.mst_ids:
            self.mst_ids = [[] for _ in range(self.machine.n_procs)]
        self.comm = Comm(self.machine)

    # ------------------------------------------------------------------
    def record_mst(self, pe: int, ids: np.ndarray, weights: np.ndarray) -> None:
        """Append identified MST edges (by original directed-edge id)."""
        if len(ids) == 0:
            return
        pair = np.stack([np.asarray(ids, dtype=np.int64),
                         np.asarray(weights, dtype=np.int64)], axis=1)
        self.mst_ids[pe].append(pair)

    def record_labels(self, pe: int, vertices: np.ndarray,
                      labels: np.ndarray) -> None:
        """Report a contraction's label map to the sink (if any)."""
        if self.label_sink is not None and len(vertices):
            changed = vertices != labels
            if changed.any():
                self.label_sink(pe, vertices[changed], labels[changed])

    def collected(self, pe: int) -> np.ndarray:
        """All (id, weight) rows recorded on a PE so far."""
        if not self.mst_ids[pe]:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(self.mst_ids[pe], axis=0)

    def total_mst_edges(self) -> int:
        """Total MST edges recorded across all PEs so far."""
        return sum(sum(len(a) for a in lst) for lst in self.mst_ids)
