"""CONTRACTCOMPONENTS: pseudo-tree rooting and pointer doubling (Section IV-B).

The minimum incident edges selected by MINEDGES define pseudo trees (trees
plus one 2-cycle).  They are converted to rooted stars by

* declaring every *shared* vertex a component root (no communication needed:
  shared-ness is decidable from the replicated graph metadata -- the paper's
  trick for avoiding contention at high-degree vertices), and
* breaking each 2-cycle by rooting at the smaller vertex label,

then pointer doubling: each still-pending vertex ``u`` with parent ``v``
requests ``parent(v)`` from ``v``'s home PE and replaces its parent by the
answer, halving the tree depth per round.  Requests are deduplicated per
(home PE, vertex) and delivered with the configured sparse all-to-all --
running this exchange through the two-level grid scheme is what Fig. 2 is
about.

Every non-root local vertex's selected edge is an MST edge (min-cut
property) and is recorded; the final parent array is the per-vertex
component-root label ``L_local`` consumed by EXCHANGELABELS/RELABEL.

Two engines (see :mod:`repro.kernels`): the reference per-PE loop and a
batched variant whose rounds run one segmented kernel call per step over all
PEs at once.  Results and simulated costs are identical.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..dgraph.dist_graph import DistGraph
from ..dgraph.search import sorted_lookup
from ..kernels import batched_for, segmented_lookup, segmented_unique
from ..simmpi.alltoall import route_rows, unsort
from .minedges import ChosenEdges
from .state import MSTRun


def contract_components(
    graph: DistGraph,
    chosen: List[ChosenEdges],
    run: MSTRun,
) -> List[np.ndarray]:
    """Contract the components induced by the chosen edges.

    Returns per-PE ``L_local``: the component-root label of every local
    vertex, aligned with ``chosen[i].vids``.  Records MST edges and reports
    label maps to the run's label sink.
    """
    if batched_for(graph.machine):
        return _contract_batched(graph, chosen, run)
    return _contract_loop(graph, chosen, run)


def _contract_loop(
    graph: DistGraph,
    chosen: List[ChosenEdges],
    run: MSTRun,
) -> List[np.ndarray]:
    """Reference engine: per-PE loops around every exchange."""
    p = graph.machine.n_procs
    comm = run.comm
    shared_set = graph.shared_vertex_set()

    parent: List[np.ndarray] = []
    is_root: List[np.ndarray] = []
    pending: List[np.ndarray] = []  # bool masks
    for i in range(p):
        ch = chosen[i]
        par = np.where(ch.shared, ch.vids, ch.to)
        root = ch.shared.copy()
        # Paper special case: a parent that is a shared vertex is known to be
        # a component root -- finalise locally, no request needed.
        parent_shared = np.isin(par, shared_set)
        pend = ~ch.shared & ~parent_shared
        parent.append(par)
        is_root.append(root)
        pending.append(pend)

    # ------------------------------------------------------------------
    # Pointer-doubling rounds.
    # ------------------------------------------------------------------
    max_rounds = run.cfg.max_rounds
    for round_no in range(max_rounds):
        n_pending = comm.allreduce([int(m.sum()) for m in pending])
        if n_pending == 0:
            break
        # Build deduplicated queries: distinct parent targets per PE.
        queries, inverse_maps, dests = [], [], []
        for i in range(p):
            targets = parent[i][pending[i]]
            uniq, inv = np.unique(targets, return_inverse=True)
            queries.append(uniq)
            inverse_maps.append(inv)
            dests.append(graph.home_of_vertices(uniq))
        recv, recv_src, orders = route_rows(
            comm, queries, dests, method=run.cfg.alltoall
        )
        # Answer from the state at round start (BSP semantics).
        replies = []
        for i in range(p):
            q = recv[i]
            if len(q) == 0:
                replies.append(np.empty((0, 2), dtype=np.int64))
                continue
            found, idx = sorted_lookup(chosen[i].vids, q)
            if not found.all():
                raise RuntimeError(
                    f"PE {i}: pointer-doubling query for non-resident vertex"
                )
            pv = parent[i][idx]
            replies.append(np.stack([q, pv], axis=1))
            graph.machine.charge_hash(np.array([len(q)]),
                                      ranks=np.array([i]))
        back, _, _ = route_rows(comm, replies, recv_src,
                                method=run.cfg.alltoall)
        # Apply: each pending u with target v learns pv = parent(v).
        for i in range(p):
            if len(queries[i]) == 0:
                continue
            ordered = unsort(orders[i], back[i])  # aligned with queries[i]
            assert np.array_equal(ordered[:, 0], queries[i])
            pv_per_query = ordered[:, 1]
            pend_idx = np.flatnonzero(pending[i])
            u = chosen[i].vids[pend_idx]
            v = parent[i][pend_idx]
            pv = pv_per_query[inverse_maps[i]]
            # 2-cycle: v's parent is u itself; root at the smaller label.
            cyc = pv == u
            win = cyc & (u < v)
            lose = cyc & ~win
            parent[i][pend_idx[win]] = u[win]
            is_root[i][pend_idx[win]] = True
            pending[i][pend_idx[win]] = False
            parent[i][pend_idx[lose]] = v[lose]
            pending[i][pend_idx[lose]] = False
            # Regular doubling: adopt pv; finalise when v was a root or the
            # new parent is a shared vertex (local check, paper IV-B).
            reg = ~cyc
            parent[i][pend_idx[reg]] = pv[reg]
            v_is_root = pv == v
            new_shared = np.isin(pv, shared_set)
            done = reg & (v_is_root | new_shared)
            pending[i][pend_idx[done]] = False
            graph.machine.charge_scan(np.array([len(pend_idx)]),
                                      ranks=np.array([i]))
    else:
        raise RuntimeError("pointer doubling failed to converge")

    # ------------------------------------------------------------------
    # Record MST edges and label maps.
    # ------------------------------------------------------------------
    for i in range(p):
        ch = chosen[i]
        contributes = ~ch.shared & ~is_root[i]
        run.record_mst(i, ch.edge_id[contributes], ch.weight[contributes])
        run.record_labels(i, ch.vids, parent[i])
    return parent


def _contract_batched(
    graph: DistGraph,
    chosen: List[ChosenEdges],
    run: MSTRun,
) -> List[np.ndarray]:
    """Batched engine: flat state, one kernel call per round step."""
    p = graph.machine.n_procs
    machine = graph.machine
    comm = run.comm
    shared_set = graph.shared_vertex_set()

    lengths = np.array([len(c.vids) for c in chosen], dtype=np.int64)
    voff = np.zeros(p + 1, dtype=np.int64)
    np.cumsum(lengths, out=voff[1:])
    z = np.empty(0, dtype=np.int64)
    vids = np.concatenate([c.vids for c in chosen]) if voff[-1] else z
    shared = np.concatenate([c.shared for c in chosen]) \
        if voff[-1] else np.zeros(0, dtype=bool)
    to = np.concatenate([c.to for c in chosen]) if voff[-1] else z
    vseg = np.repeat(np.arange(p, dtype=np.int64), lengths)

    par = np.where(shared, vids, to)
    root = shared.copy()
    parent_shared = sorted_lookup(shared_set, par)[0]
    pend = ~shared & ~parent_shared

    # ------------------------------------------------------------------
    # Pointer-doubling rounds.
    # ------------------------------------------------------------------
    max_rounds = run.cfg.max_rounds
    for round_no in range(max_rounds):
        pend_counts = np.bincount(vseg[pend], minlength=p)
        n_pending = comm.allreduce([int(c) for c in pend_counts])
        if n_pending == 0:
            break
        # Deduplicated queries: distinct parent targets per PE.
        pend_pos = np.flatnonzero(pend)
        targets = par[pend_pos]
        tseg = vseg[pend_pos]
        uniq, uoff, inv = segmented_unique(targets, tseg, p)
        qlens = np.diff(uoff)
        queries = [uniq[uoff[i]:uoff[i + 1]] for i in range(p)]
        dest_flat = graph.home_of_vertices(uniq)
        dests = [dest_flat[uoff[i]:uoff[i + 1]] for i in range(p)]
        recv, recv_src, orders = route_rows(
            comm, queries, dests, method=run.cfg.alltoall
        )
        # Answer from the state at round start (BSP semantics).
        recv_lens = np.array([len(q) for q in recv], dtype=np.int64)
        roff = np.zeros(p + 1, dtype=np.int64)
        np.cumsum(recv_lens, out=roff[1:])
        q_flat = np.concatenate(recv) if roff[-1] else z
        qseg = np.repeat(np.arange(p, dtype=np.int64), recv_lens)
        found, idx = segmented_lookup(vids, voff, q_flat, qseg)
        if not found.all():
            bad = int(qseg[~found][0])
            raise RuntimeError(
                f"PE {bad}: pointer-doubling query for non-resident vertex"
            )
        pv_rep = par[voff[qseg] + idx]
        rep_flat = np.stack([q_flat, pv_rep], axis=1)
        replies = [rep_flat[roff[i]:roff[i + 1]] for i in range(p)]
        nz_recv = np.flatnonzero(recv_lens)
        if len(nz_recv):
            machine.charge_hash(recv_lens[nz_recv], ranks=nz_recv)
        back, _, _ = route_rows(comm, replies, recv_src,
                                method=run.cfg.alltoall)
        # Apply: each pending u with target v learns pv = parent(v).
        b_flat = np.concatenate(back, axis=0)
        order_flat = np.concatenate(orders) if uoff[-1] else z
        global_order = order_flat + np.repeat(uoff[:-1], qlens)
        ordered = np.empty_like(b_flat)
        ordered[global_order] = b_flat  # unsort(), all PEs at once
        assert np.array_equal(ordered[:, 0], uniq)
        pv_per_query = ordered[:, 1]
        u = vids[pend_pos]
        v = targets
        pv = pv_per_query[uoff[tseg] + inv]
        # 2-cycle: v's parent is u itself; root at the smaller label.
        cyc = pv == u
        win = cyc & (u < v)
        lose = cyc & ~win
        par[pend_pos[win]] = u[win]
        root[pend_pos[win]] = True
        pend[pend_pos[win]] = False
        par[pend_pos[lose]] = v[lose]
        pend[pend_pos[lose]] = False
        # Regular doubling: adopt pv; finalise when v was a root or the
        # new parent is a shared vertex (local check, paper IV-B).
        reg = ~cyc
        par[pend_pos[reg]] = pv[reg]
        v_is_root = pv == v
        new_shared = sorted_lookup(shared_set, pv)[0]
        done = reg & (v_is_root | new_shared)
        pend[pend_pos[done]] = False
        nz_q = np.flatnonzero(qlens)
        machine.charge_scan(pend_counts[nz_q], ranks=nz_q)
    else:
        raise RuntimeError("pointer doubling failed to converge")

    # ------------------------------------------------------------------
    # Record MST edges and label maps.
    # ------------------------------------------------------------------
    contributes = ~shared & ~root
    cpos = np.flatnonzero(contributes)
    c_ids = (np.concatenate([c.edge_id for c in chosen])
             if voff[-1] else z)[cpos]
    c_ws = (np.concatenate([c.weight for c in chosen])
            if voff[-1] else z)[cpos]
    ccounts = np.bincount(vseg[cpos], minlength=p)
    coff = np.zeros(p + 1, dtype=np.int64)
    np.cumsum(ccounts, out=coff[1:])
    for i in range(p):
        run.record_mst(i, c_ids[coff[i]:coff[i + 1]],
                       c_ws[coff[i]:coff[i + 1]])
        run.record_labels(i, vids[voff[i]:voff[i + 1]],
                          par[voff[i]:voff[i + 1]])
    return [par[voff[i]:voff[i + 1]] for i in range(p)]
