"""CONTRACTCOMPONENTS: pseudo-tree rooting and pointer doubling (Section IV-B).

The minimum incident edges selected by MINEDGES define pseudo trees (trees
plus one 2-cycle).  They are converted to rooted stars by

* declaring every *shared* vertex a component root (no communication needed:
  shared-ness is decidable from the replicated graph metadata -- the paper's
  trick for avoiding contention at high-degree vertices), and
* breaking each 2-cycle by rooting at the smaller vertex label,

then pointer doubling: each still-pending vertex ``u`` with parent ``v``
requests ``parent(v)`` from ``v``'s home PE and replaces its parent by the
answer, halving the tree depth per round.  Requests are deduplicated per
(home PE, vertex) and delivered with the configured sparse all-to-all --
running this exchange through the two-level grid scheme is what Fig. 2 is
about.

Every non-root local vertex's selected edge is an MST edge (min-cut
property) and is recorded; the final parent array is the per-vertex
component-root label ``L_local`` consumed by EXCHANGELABELS/RELABEL.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..dgraph.dist_graph import DistGraph
from ..simmpi.alltoall import route_rows, unsort
from .minedges import ChosenEdges
from .state import MSTRun


def contract_components(
    graph: DistGraph,
    chosen: List[ChosenEdges],
    run: MSTRun,
) -> List[np.ndarray]:
    """Contract the components induced by the chosen edges.

    Returns per-PE ``L_local``: the component-root label of every local
    vertex, aligned with ``chosen[i].vids``.  Records MST edges and reports
    label maps to the run's label sink.
    """
    p = graph.machine.n_procs
    comm = run.comm
    shared_set = graph.shared_vertex_set()

    parent: List[np.ndarray] = []
    is_root: List[np.ndarray] = []
    pending: List[np.ndarray] = []  # bool masks
    for i in range(p):
        ch = chosen[i]
        par = np.where(ch.shared, ch.vids, ch.to)
        root = ch.shared.copy()
        # Paper special case: a parent that is a shared vertex is known to be
        # a component root -- finalise locally, no request needed.
        parent_shared = np.isin(par, shared_set)
        pend = ~ch.shared & ~parent_shared
        parent.append(par)
        is_root.append(root)
        pending.append(pend)

    # ------------------------------------------------------------------
    # Pointer-doubling rounds.
    # ------------------------------------------------------------------
    max_rounds = run.cfg.max_rounds
    for round_no in range(max_rounds):
        n_pending = comm.allreduce([int(m.sum()) for m in pending])
        if n_pending == 0:
            break
        # Build deduplicated queries: distinct parent targets per PE.
        queries, inverse_maps, dests = [], [], []
        for i in range(p):
            targets = parent[i][pending[i]]
            uniq, inv = np.unique(targets, return_inverse=True)
            queries.append(uniq)
            inverse_maps.append(inv)
            dests.append(graph.home_of_vertices(uniq))
        recv, recv_src, orders = route_rows(
            comm, queries, dests, method=run.cfg.alltoall
        )
        # Answer from the state at round start (BSP semantics).
        replies = []
        for i in range(p):
            q = recv[i]
            if len(q) == 0:
                replies.append(np.empty((0, 2), dtype=np.int64))
                continue
            idx = np.searchsorted(chosen[i].vids, q)
            valid = (idx < len(chosen[i].vids))
            idx = np.minimum(idx, max(len(chosen[i].vids) - 1, 0))
            found = valid & (chosen[i].vids[idx] == q)
            if not found.all():
                raise RuntimeError(
                    f"PE {i}: pointer-doubling query for non-resident vertex"
                )
            pv = parent[i][idx]
            replies.append(np.stack([q, pv], axis=1))
            graph.machine.charge_hash(np.array([len(q)]),
                                      ranks=np.array([i]))
        back, _, _ = route_rows(comm, replies, recv_src,
                                method=run.cfg.alltoall)
        # Apply: each pending u with target v learns pv = parent(v).
        for i in range(p):
            if len(queries[i]) == 0:
                continue
            ordered = unsort(orders[i], back[i])  # aligned with queries[i]
            assert np.array_equal(ordered[:, 0], queries[i])
            pv_per_query = ordered[:, 1]
            pend_idx = np.flatnonzero(pending[i])
            u = chosen[i].vids[pend_idx]
            v = parent[i][pend_idx]
            pv = pv_per_query[inverse_maps[i]]
            # 2-cycle: v's parent is u itself; root at the smaller label.
            cyc = pv == u
            win = cyc & (u < v)
            lose = cyc & ~win
            parent[i][pend_idx[win]] = u[win]
            is_root[i][pend_idx[win]] = True
            pending[i][pend_idx[win]] = False
            parent[i][pend_idx[lose]] = v[lose]
            pending[i][pend_idx[lose]] = False
            # Regular doubling: adopt pv; finalise when v was a root or the
            # new parent is a shared vertex (local check, paper IV-B).
            reg = ~cyc
            parent[i][pend_idx[reg]] = pv[reg]
            v_is_root = pv == v
            new_shared = np.isin(pv, shared_set)
            done = reg & (v_is_root | new_shared)
            pending[i][pend_idx[done]] = False
            graph.machine.charge_scan(np.array([len(pend_idx)]),
                                      ranks=np.array([i]))
    else:
        raise RuntimeError("pointer doubling failed to converge")

    # ------------------------------------------------------------------
    # Record MST edges and label maps.
    # ------------------------------------------------------------------
    for i in range(p):
        ch = chosen[i]
        contributes = ~ch.shared & ~is_root[i]
        run.record_mst(i, ch.edge_id[contributes], ch.weight[contributes])
        run.record_labels(i, ch.vids, parent[i])
    return parent
