"""BASECASE: Borůvka with a replicated vertex set (Section IV-D, Adler et al.).

Once the global number of vertices is small enough to store on a single PE,
the distributed rounds stop paying off.  The remaining vertex labels are
remapped to a dense range and *replicated*; edges stay distributed
(unsorted -- no more redistribution).  Each round, every PE computes the
locally best incident-edge candidate for every dense vertex; one vector
allreduce of length n' (with a lexicographic row-minimum operator) makes the
globally lightest edges known everywhere, after which contraction is a
purely local, replicated computation exactly like sequential Borůvka.

MST edges are recorded once (on PE 0; the information is replicated) and
flow to their home PEs in REDISTRIBUTEMST like all other MST edges.
"""

from __future__ import annotations

import numpy as np

from ..kernels.segmented import packed_lexsort

from ..dgraph.dist_graph import DistGraph
from ..seq.boruvka import pseudo_tree_roots
from .state import MSTRun

#: Sentinel weight for "no candidate edge".
INF = np.int64(1) << 62


def _row_min(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise lexicographic minimum of two (n, k) candidate tables.

    Rows compare by columns left to right; used as the allreduce operator
    (associative and commutative).
    """
    take_b = np.zeros(len(a), dtype=bool)
    tie = np.ones(len(a), dtype=bool)
    for c in range(a.shape[1]):
        take_b |= tie & (b[:, c] < a[:, c])
        tie &= b[:, c] == a[:, c]
    return np.where(take_b[:, None], b, a)


def base_case(graph: DistGraph, run: MSTRun):
    """Finish the MSF computation with the replicated-vertex algorithm.

    Returns the final (replicated) component map as a pair of arrays
    ``(labels, representatives)`` over the vertices that were still present,
    or ``None`` for an empty remainder.
    """
    p = graph.machine.n_procs
    comm = run.comm
    machine = graph.machine

    # ---- Remap the remaining labels to a dense range (replicated). ----
    local_vids = [np.unique(part.u) for part in graph.parts]
    vlabels = np.unique(comm.allgatherv(local_vids))
    n_dense = len(vlabels)
    if n_dense == 0:
        return
    machine.check_memory(np.full(p, n_dense * 8 * 6, dtype=np.float64))

    # Dense edge endpoints per PE (ids and weights ride along).
    eu, ev, ew, eid = [], [], [], []
    for i in range(p):
        part = graph.parts[i]
        eu.append(np.searchsorted(vlabels, part.u))
        ev.append(np.searchsorted(vlabels, part.v))
        ew.append(part.w.copy())
        eid.append(part.id.copy())
        machine.charge_scan(np.array([len(part)]), ranks=np.array([i]))

    cur = np.arange(n_dense, dtype=np.int64)  # replicated component labels

    for _ in range(run.cfg.max_rounds):
        alive_total = comm.allreduce([len(x) for x in eu])
        if alive_total == 0:
            break
        # ---- Local candidates: per vertex the (w, cu, cv, other, id) min. ----
        candidates = []
        for i in range(p):
            cand = np.full((n_dense, 5), INF, dtype=np.int64)
            if len(eu[i]):
                a, b = eu[i], ev[i]
                grp = np.concatenate([a, b])
                oth = np.concatenate([b, a])
                w2 = np.concatenate([ew[i], ew[i]])
                id2 = np.concatenate([eid[i], eid[i]])
                cu = np.minimum(grp, oth)
                cv = np.maximum(grp, oth)
                order = packed_lexsort((cv, cu, w2, grp))
                g_sorted = grp[order]
                first = np.ones(len(g_sorted), dtype=bool)
                first[1:] = g_sorted[1:] != g_sorted[:-1]
                pick = order[first]
                rows = g_sorted[first]
                cand[rows, 0] = w2[pick]
                cand[rows, 1] = cu[pick]
                cand[rows, 2] = cv[pick]
                cand[rows, 3] = oth[pick]
                cand[rows, 4] = id2[pick]
            candidates.append(cand)
            machine.charge_scan(np.array([max(len(eu[i]), 1) + n_dense]),
                                ranks=np.array([i]))
        best = comm.allreduce(candidates, op=_row_min)

        # ---- Replicated contraction (identical on every PE). ----
        present = best[:, 0] != INF
        comp = np.flatnonzero(present).astype(np.int64)
        parent_of = best[comp, 3]
        roots = pseudo_tree_roots(comp, parent_of)
        # MST edges of all non-root components -- record once.  Ids are
        # distinct here: two components choosing the same directed edge form
        # a 2-cycle, whose root does not record.
        run.record_mst(0, best[comp[~roots], 4], best[comp[~roots], 0])
        # Pointer doubling on the replicated parent map.
        parent_map = np.arange(n_dense, dtype=np.int64)
        parent_map[comp] = parent_of
        parent_map[comp[roots]] = comp[roots]
        while True:
            nxt = parent_map[parent_map]
            if np.array_equal(nxt, parent_map):
                break
            parent_map = nxt
        # Report the contraction to the label sink in *original* labels.
        changed = parent_map != np.arange(n_dense)
        if changed.any():
            run.record_labels(0, vlabels[np.flatnonzero(changed)],
                              vlabels[parent_map[changed]])
        cur = parent_map[cur]
        machine.charge_scan(np.full(p, n_dense, dtype=np.float64))

        # ---- Relabel local edges, drop self loops. ----
        for i in range(p):
            if not len(eu[i]):
                continue
            a = parent_map[eu[i]]
            b = parent_map[ev[i]]
            keep = a != b
            eu[i], ev[i] = a[keep], b[keep]
            ew[i], eid[i] = ew[i][keep], eid[i][keep]
            machine.charge_scan(np.array([len(a)]), ranks=np.array([i]))
    else:
        raise RuntimeError("base case failed to converge")
    return vlabels, vlabels[cur]
