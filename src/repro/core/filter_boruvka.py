"""Distributed Filter-Borůvka (Algorithm 2, Section V).

Combines the filtering idea of Filter-Kruskal [7] with the distributed
Borůvka algorithm: recursively quicksort-partition the edges around a
sampled median weight, compute the MSF of the light part first, then *drop*
every heavy edge whose endpoints already share a component of the partial
forest (tracked by the distributed array ``P``), and only recurse on the
survivors.  Theorem 1: expected work stays ``O(m + n log n log(m/n))`` while
the span becomes polylogarithmic.

Recursion control (Section VI-C):

* base case (our distributed Borůvka, without preprocessing and without
  output redistribution) when the average degree is at most 4 *or* fewer
  than ``min_edges_per_proc`` edges per process remain;
* local preprocessing runs once, up front;
* a filtered heavy set that came out too small is not recursed on directly
  but propagated back and merged with the parent level's heavy edges.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..dgraph.dist_graph import DistGraph
from ..dgraph.edges import Edges
from ..obs.hooks import observe_filter_level, observe_filter_survivors
from ..simmpi.machine import Machine
from ..sorting.api import sort_rows
from .base_case import base_case
from .boruvka import (
    InputSnapshot,
    MSTResult,
    boruvka_rounds,
    redistribute_mst,
)
from .config import BoruvkaConfig, FilterConfig
from .labels import exchange_labels, relabel
from .local_preprocessing import local_preprocessing
from .plabels import DistributedLabelArray
from .redistribute import redistribute
from .state import MSTRun


def _select_pivot(graph: DistGraph, run: MSTRun, cfg: FilterConfig
                  ) -> Optional[int]:
    """PIVOTSELECTION: median of a distributed-sorted weight sample.

    Returns ``None`` when the sample cannot split the edges (degenerate
    weight distribution), in which case the caller goes to the base case.
    """
    machine = graph.machine
    p = machine.n_procs
    samples = []
    for i in range(p):
        part = graph.parts[i]
        if len(part) == 0:
            samples.append(np.empty((0, 1), dtype=np.int64))
            continue
        rng = machine.pe_rng(i)
        take = rng.integers(0, len(part),
                            min(cfg.pivot_sample_per_pe, len(part)))
        samples.append(part.w[take].reshape(-1, 1))
    sorted_parts = sort_rows(run.comm, samples, n_key_cols=1,
                             method="hypercube", rebalance=False)
    sizes = [len(x) for x in sorted_parts]
    total = int(np.sum(sizes))
    if total == 0:
        return None
    # Locate the median element and broadcast it.
    target = total // 2
    offset = 0
    pivot = None
    for i in range(p):
        if offset + sizes[i] > target:
            pivot = int(sorted_parts[i][target - offset, 0])
            break
        offset += sizes[i]
    pivot = run.comm.bcast(pivot)
    # Degenerate when the sample is constant at the global maximum.
    lo = run.comm.allreduce(
        [int(x[0, 0]) if len(x) else np.iinfo(np.int64).max
         for x in sorted_parts], op="min")
    hi = run.comm.allreduce(
        [int(x[-1, 0]) if len(x) else np.iinfo(np.int64).min
         for x in sorted_parts], op="max")
    if lo == hi:
        return None
    if pivot == hi:
        pivot -= 1  # guarantee both sides non-empty in expectation
    return pivot


def _split_by_pivot(graph: DistGraph, pivot: int, run: MSTRun
                    ) -> tuple[List[Edges], List[Edges]]:
    """Partition every part into light (w <= pivot) and heavy (w > pivot)."""
    lights, heavies = [], []
    for i in range(graph.machine.n_procs):
        part = graph.parts[i]
        mask = part.w <= pivot
        lights.append(part.take(mask))
        heavies.append(part.take(~mask))
        graph.machine.charge_scan(np.array([len(part)]), ranks=np.array([i]))
    return lights, heavies


def _filter_heavy(
    machine: Machine,
    heavy_graph: DistGraph,
    P: DistributedLabelArray,
    run: MSTRun,
) -> List[Edges]:
    """FILTER: relabel heavy edges by current representatives, drop loops.

    REQUESTLABELS resolves this PE's local vertices through the distributed
    array P; ghost labels then flow through the standard label exchange.
    """
    p = machine.n_procs
    P.contract()
    vids_per_pe = [heavy_graph.vertex_groups(i)[0] for i in range(p)]
    labels_per_pe = P.request(vids_per_pe)
    tables = exchange_labels(heavy_graph, vids_per_pe, labels_per_pe, run)
    return relabel(heavy_graph, vids_per_pe, labels_per_pe, tables, run)


def distributed_filter_boruvka(
    graph: DistGraph,
    cfg: Optional[Union[FilterConfig, BoruvkaConfig]] = None,
    run: Optional[MSTRun] = None,
) -> MSTResult:
    """Run Algorithm 2 end to end on a distributed graph."""
    machine = graph.machine
    if cfg is None:
        cfg = FilterConfig()
    elif isinstance(cfg, BoruvkaConfig):
        cfg = FilterConfig(boruvka=cfg)
    bcfg = cfg.boruvka
    run = run or MSTRun(machine, bcfg)
    snapshot = InputSnapshot.take(graph)

    # Size of the vertex-label space (P covers all original labels).
    max_label = run.comm.allreduce(
        [int(part.u.max()) if len(part) else -1 for part in graph.parts],
        op="max")
    n_labels = max_label + 1
    P = DistributedLabelArray(run.comm, max(n_labels, 1),
                              alltoall=bcfg.alltoall)
    run.label_sink = P.sink

    if bcfg.local_preprocessing:
        with machine.phase("local_preprocessing"):
            graph = local_preprocessing(graph, run)

    p = machine.n_procs

    def is_sparse(m_directed: int) -> bool:
        return (m_directed <= cfg.sparse_avg_degree * n_labels
                or m_directed <= cfg.min_edges_per_proc * p)

    def run_base_case(g: DistGraph) -> None:
        g = boruvka_rounds(g, run)
        with machine.phase("base_case"):
            base_case(g, run)

    def rec(g: DistGraph, depth: int) -> Optional[List[Edges]]:
        """REC-FILTER-MST.  Returns a carried heavy set for the parent to
        merge (Section VI-C's propagate-back rule) or None."""
        m = g.global_edge_count()
        observe_filter_level(machine, depth, m)
        if depth >= cfg.max_depth or is_sparse(m):
            run_base_case(g)
            return None
        with machine.phase("pivot_partition"):
            pivot = _select_pivot(g, run, cfg)
        if pivot is None:
            run_base_case(g)
            return None
        with machine.phase("pivot_partition"):
            lights, heavies = _split_by_pivot(g, pivot, run)
            light_graph = DistGraph(machine, lights, check=False)
        carried = rec(light_graph, depth + 1)
        heavy_parts = heavies
        if carried is not None:
            heavy_parts = [Edges.concat([a, b])
                           for a, b in zip(heavy_parts, carried)]
        with machine.phase("filter"):
            if carried is not None:
                # Merged sets lost global sortedness; re-establish it.
                heavy_graph = redistribute(run, machine,
                                           heavy_parts)
            else:
                heavy_graph = DistGraph(machine, heavy_parts, check=False)
            m_heavy = heavy_graph.global_edge_count()
            if m_heavy == 0:
                return None
            filtered = _filter_heavy(machine, heavy_graph, P, run)
            survivors_graph = redistribute(run, machine, filtered)
            m_surv = survivors_graph.global_edge_count()
        observe_filter_survivors(machine, depth, m_heavy, m_surv)
        machine.checkpoint(f"filter_depth_{depth}")
        if m_surv == 0:
            return None
        if (depth > 0 and m_surv < cfg.merge_back_fraction * m
                and not is_sparse(m_surv)):
            return survivors_graph.parts
        return rec(survivors_graph, depth + 1)

    leftover = rec(graph, 0)
    if leftover is not None:
        # Carried out of the root call: finish it directly.
        run_base_case(DistGraph(machine, leftover, check=False))

    with machine.phase("mst_output"):
        msf_parts = redistribute_mst(run, snapshot)
    weights = [int(part.w.sum()) for part in msf_parts]
    total = int(run.comm.allreduce(weights))
    return MSTResult(
        msf_parts=msf_parts,
        total_weight=total,
        elapsed=machine.elapsed(),
        phase_times=dict(machine.phase_times),
        rounds=run.rounds,
        algorithm="filterBoruvka",
        stats={
            "bytes_communicated": machine.bytes_communicated,
            "n_collectives": machine.n_collectives,
        },
    )
