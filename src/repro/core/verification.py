"""Distributed MSF verification.

Verifying an MSF is asymptotically easier than computing one (Komlós: O(m)
comparisons), and the pieces are already here: the cycle property says a
spanning forest F of G is minimum iff **every non-forest edge is at least as
heavy as the heaviest edge on its F-path**.  This module checks a
distributed MSF result in three stages, each charged on the simulated
machine like any other distributed computation:

1. **forest check** -- |F| = (vertices incident to F) - (components of F),
   computed with one allgather of per-PE counts plus the connectivity
   machinery;
2. **spanning check** -- every *graph* edge's endpoints share an F-component
   (then G-components == F-components, since F ⊆ G);
3. **minimality check** -- the forest (at most n-1 edges, tiny next to m) is
   replicated with an allgather — the same replication trick as the base
   case (Section IV-D) — and every PE runs the binary-lifting path-maximum
   oracle (:func:`repro.seq.kkt.max_weight_on_paths`) over its own edge
   block.

Weights-only comparisons make the check valid for *any* MSF under ties, not
just the one our tie-breaking selects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..dgraph.dist_graph import DistGraph
from ..dgraph.edges import Edges
from ..seq.kkt import NO_PATH, max_weight_on_paths
from ..seq.union_find import UnionFind
from .state import MSTRun
from .config import BoruvkaConfig


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_distributed_msf`."""

    is_forest: bool
    spans: bool
    is_minimum: bool
    n_forest_edges: int
    n_components: int
    elapsed: float

    @property
    def ok(self) -> bool:
        """All three checks passed: the candidate is a true MSF."""
        return self.is_forest and self.spans and self.is_minimum


def verify_distributed_msf(
    graph: DistGraph,
    msf_parts: List[Edges],
    cfg: BoruvkaConfig | None = None,
) -> VerificationReport:
    """Check that per-PE MSF edges form a minimum spanning forest of ``graph``.

    ``graph`` must be the *original* distributed graph (the MST drivers
    consume their input, so verification needs a fresh
    :class:`~repro.dgraph.dist_graph.DistGraph` over the same edges --
    exactly what a real system would keep for auditing).
    """
    machine = graph.machine
    p = machine.n_procs
    cfg = cfg or BoruvkaConfig()
    run = MSTRun(machine, cfg)
    start = machine.elapsed()

    # ---- Replicate the forest (allgather; |F| <= n-1 edges). ----
    forest_global = Edges.from_matrix(
        run.comm.allgatherv([part.as_matrix() for part in msf_parts])
    )
    n_forest_edges = len(forest_global)

    # Dense-remap forest vertices for the union-find / oracle (replicated
    # computation, charged per PE).
    vlabels = np.unique(np.concatenate([forest_global.u, forest_global.v])) \
        if n_forest_edges else np.empty(0, dtype=np.int64)
    machine.charge_sort(np.full(p, max(n_forest_edges, 1)))
    n_dense = len(vlabels)
    fu = np.searchsorted(vlabels, forest_global.u)
    fv = np.searchsorted(vlabels, forest_global.v)

    # ---- 1. Forest: unions along F must never close a cycle. ----
    uf = UnionFind(n_dense)
    acyclic = bool(uf.union_edges(fu, fv).all()) if n_forest_edges else True
    n_components = uf.n_components
    machine.charge_scan(np.full(p, max(n_forest_edges, 1)))

    # ---- 2. Spanning: every graph edge stays inside one F-component. ----
    # Vertices never touched by F are isolated iff they have no edges; any
    # edge with an endpoint outside F's vertex set disproves spanning.
    spans_flags = []
    for i in range(p):
        part = graph.parts[i]
        if len(part) == 0:
            spans_flags.append(True)
            continue
        iu = np.searchsorted(vlabels, part.u)
        iv = np.searchsorted(vlabels, part.v)
        iu_c = np.minimum(iu, max(n_dense - 1, 0))
        iv_c = np.minimum(iv, max(n_dense - 1, 0))
        known = ((iu < n_dense) & (vlabels[iu_c] == part.u)
                 & (iv < n_dense) & (vlabels[iv_c] == part.v))
        ok = bool(known.all()) and bool(
            (uf.find_many(iu_c[known]) == uf.find_many(iv_c[known])).all()
        ) if n_dense else len(part) == 0
        spans_flags.append(ok)
        machine.charge_scan(np.array([len(part)]), ranks=np.array([i]))
    spans = bool(run.comm.allreduce([int(f) for f in spans_flags], op="min"))

    # ---- 3. Minimality: cycle property on every PE's edge block. ----
    minimal_flags = []
    dense_forest = Edges(fu, fv, forest_global.w, forest_global.id)
    for i in range(p):
        part = graph.parts[i]
        if len(part) == 0 or n_dense == 0:
            minimal_flags.append(True)
            continue
        iu = np.searchsorted(vlabels, np.minimum(part.u, vlabels[-1]))
        iv = np.searchsorted(vlabels, np.minimum(part.v, vlabels[-1]))
        iu = np.minimum(iu, n_dense - 1)
        iv = np.minimum(iv, n_dense - 1)
        path_max = max_weight_on_paths(dense_forest, n_dense, iu, iv)
        connected = path_max < NO_PATH
        ok = bool((part.w[connected] >= path_max[connected]).all())
        minimal_flags.append(ok)
        machine.charge_scan(
            np.array([len(part) * max(1, int(np.log2(max(n_dense, 2))))]),
            ranks=np.array([i]))
    is_minimum = bool(run.comm.allreduce([int(f) for f in minimal_flags],
                                         op="min"))

    return VerificationReport(
        is_forest=acyclic,
        spans=spans,
        is_minimum=is_minimum and acyclic,
        n_forest_edges=n_forest_edges,
        n_components=n_components,
        elapsed=machine.elapsed() - start,
    )
