"""EXCHANGELABELS and RELABEL (Sections IV-B / IV-C).

After contraction, each PE knows the new label (component root) of its
*local* vertices.  Ghost vertices' labels are obtained by pushing: "for each
cut edge (u, v) the new label of u is sent to the home PE of (v, u)"; the
home PE of the *reverse directed edge* is located by lexicographic binary
search on the replicated min-edge array.  Duplicate messages for the same
(destination PE, vertex) pair are sent only once.

RELABEL then rewrites every edge ``(u, v)`` to ``(u', v')`` and discards
self loops; parallel-edge elimination happens later in REDISTRIBUTE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..dgraph.dist_graph import DistGraph
from ..dgraph.edges import Edges
from ..simmpi.alltoall import route_rows
from .state import MSTRun


@dataclass
class GhostTable:
    """Sorted ghost-vertex -> new-label mapping for one PE."""

    ghosts: np.ndarray
    labels: np.ndarray

    def lookup(self, v: np.ndarray) -> np.ndarray:
        """New labels of the given ghost vertices (all must be present)."""
        idx = np.searchsorted(self.ghosts, v)
        valid = idx < len(self.ghosts)
        idx_c = np.minimum(idx, max(len(self.ghosts) - 1, 0))
        found = valid & (self.ghosts[idx_c] == v)
        if not found.all():
            missing = np.asarray(v)[~found][:5]
            raise RuntimeError(f"ghost labels missing for vertices {missing}")
        return self.labels[idx_c]


def exchange_labels(
    graph: DistGraph,
    vids_per_pe: List[np.ndarray],
    labels_per_pe: List[np.ndarray],
    run: MSTRun,
) -> List[GhostTable]:
    """Push new local-vertex labels to every PE that has them as ghosts."""
    p = graph.machine.n_procs
    payloads, dests = [], []
    for i in range(p):
        part = graph.parts[i]
        vids = vids_per_pe[i]
        if len(part) == 0:
            payloads.append(np.empty((0, 2), dtype=np.int64))
            dests.append(np.empty(0, dtype=np.int64))
            continue
        # Home PE of every reverse edge (v, u, w).  The label of u must be
        # pushed wherever the reverse edge lives on a *different* PE.  This
        # covers all cut edges (the paper's rule) plus the corner case where
        # an edge is local here because its destination is a shared vertex,
        # while the shared vertex's other PE holds the reverse edge as a cut
        # edge and still needs our source's label.
        home_all = graph.home_of_edges(part.v, part.u, part.w)
        cut = home_all != i
        cu, cw = part.u[cut], part.w[cut]
        home = home_all[cut]
        # New label of the edge's source.
        src_idx = np.searchsorted(vids, cu)
        lab = labels_per_pe[i][src_idx]
        # Deduplicate per (destination PE, vertex).
        key = np.stack([home, cu], axis=1)
        _, uniq_idx = np.unique(key, axis=0, return_index=True)
        payloads.append(np.stack([cu[uniq_idx], lab[uniq_idx]], axis=1))
        dests.append(home[uniq_idx])
        graph.machine.charge_scan(np.array([len(part)]), ranks=np.array([i]))
        graph.machine.charge_sort(np.array([max(len(cu), 1)]),
                                  ranks=np.array([i]))
    recv, _, _ = route_rows(run.comm, payloads, dests,
                            method=run.cfg.alltoall)
    tables: List[GhostTable] = []
    for i in range(p):
        rows = recv[i]
        if len(rows) == 0:
            z = np.empty(0, dtype=np.int64)
            tables.append(GhostTable(z, z.copy()))
            continue
        order = np.argsort(rows[:, 0], kind="stable")
        g = rows[order, 0]
        l = rows[order, 1]
        first = np.ones(len(g), dtype=bool)
        first[1:] = g[1:] != g[:-1]
        tables.append(GhostTable(g[first], l[first]))
        graph.machine.charge_hash(np.array([len(rows)]), ranks=np.array([i]))
    return tables


def relabel(
    graph: DistGraph,
    vids_per_pe: List[np.ndarray],
    labels_per_pe: List[np.ndarray],
    ghost_tables: List[GhostTable],
    run: MSTRun,
) -> List[Edges]:
    """RELABEL: rewrite endpoints to component roots, drop self loops."""
    p = graph.machine.n_procs
    out: List[Edges] = []
    for i in range(p):
        part = graph.parts[i]
        if len(part) == 0:
            out.append(Edges.empty())
            continue
        vids = vids_per_pe[i]
        labels = labels_per_pe[i]
        # Source labels: every source is local by definition.
        u_new = labels[np.searchsorted(vids, part.u)]
        # Destination labels: local lookup where possible, ghosts otherwise.
        idx = np.searchsorted(vids, part.v)
        idx_c = np.minimum(idx, len(vids) - 1)
        v_local = (idx < len(vids)) & (vids[idx_c] == part.v)
        v_new = np.empty_like(part.v)
        v_new[v_local] = labels[idx_c[v_local]]
        if (~v_local).any():
            v_new[~v_local] = ghost_tables[i].lookup(part.v[~v_local])
        keep = u_new != v_new
        out.append(Edges(u_new[keep], v_new[keep], part.w[keep],
                         part.id[keep]))
        graph.machine.charge_scan(np.array([len(part)]), ranks=np.array([i]))
    return out
