"""EXCHANGELABELS and RELABEL (Sections IV-B / IV-C).

After contraction, each PE knows the new label (component root) of its
*local* vertices.  Ghost vertices' labels are obtained by pushing: "for each
cut edge (u, v) the new label of u is sent to the home PE of (v, u)"; the
home PE of the *reverse directed edge* is located by lexicographic binary
search on the replicated min-edge array.  Duplicate messages for the same
(destination PE, vertex) pair are sent only once.

RELABEL then rewrites every edge ``(u, v)`` to ``(u', v')`` and discards
self loops; parallel-edge elimination happens later in REDISTRIBUTE.

Two engines (see :mod:`repro.kernels`): the reference per-PE loop and a
batched variant built on segmented searchsorted/lookup kernels.  The batched
engine may emit the deduplicated push payload in a different (but
equivalent) row order; the resulting ghost tables, relabelled edges and
simulated costs are identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..kernels.segmented import packed_lexsort

from ..dgraph.dist_graph import DistGraph
from ..dgraph.edges import Edges
from ..dgraph.search import sorted_lookup
from ..kernels import (
    batched_for,
    segmented_lookup,
    segmented_searchsorted,
)
from ..simmpi.alltoall import route_rows
from .state import MSTRun


@dataclass
class GhostTable:
    """Sorted ghost-vertex -> new-label mapping for one PE."""

    ghosts: np.ndarray
    labels: np.ndarray

    def lookup(self, v: np.ndarray) -> np.ndarray:
        """New labels of the given ghost vertices (all must be present)."""
        found, idx = sorted_lookup(self.ghosts, v)
        if not found.all():
            missing = np.asarray(v)[~found][:5]
            raise RuntimeError(f"ghost labels missing for vertices {missing}")
        return self.labels[idx]


def exchange_labels(
    graph: DistGraph,
    vids_per_pe: List[np.ndarray],
    labels_per_pe: List[np.ndarray],
    run: MSTRun,
) -> List[GhostTable]:
    """Push new local-vertex labels to every PE that has them as ghosts."""
    if batched_for(graph.machine):
        return _exchange_labels_batched(graph, vids_per_pe, labels_per_pe,
                                        run)
    return _exchange_labels_loop(graph, vids_per_pe, labels_per_pe, run)


def _exchange_labels_loop(
    graph: DistGraph,
    vids_per_pe: List[np.ndarray],
    labels_per_pe: List[np.ndarray],
    run: MSTRun,
) -> List[GhostTable]:
    """Reference engine: one numpy pass per PE around one exchange."""
    p = graph.machine.n_procs
    payloads, dests = [], []
    for i in range(p):
        part = graph.parts[i]
        vids = vids_per_pe[i]
        if len(part) == 0:
            payloads.append(np.empty((0, 2), dtype=np.int64))
            dests.append(np.empty(0, dtype=np.int64))
            continue
        # Home PE of every reverse edge (v, u, w).  The label of u must be
        # pushed wherever the reverse edge lives on a *different* PE.  This
        # covers all cut edges (the paper's rule) plus the corner case where
        # an edge is local here because its destination is a shared vertex,
        # while the shared vertex's other PE holds the reverse edge as a cut
        # edge and still needs our source's label.
        home_all = graph.home_of_edges(part.v, part.u, part.w)
        cut = home_all != i
        cu, cw = part.u[cut], part.w[cut]
        home = home_all[cut]
        # New label of the edge's source.
        src_idx = np.searchsorted(vids, cu)
        lab = labels_per_pe[i][src_idx]
        # Deduplicate per (destination PE, vertex).
        key = np.stack([home, cu], axis=1)
        _, uniq_idx = np.unique(key, axis=0, return_index=True)
        payloads.append(np.stack([cu[uniq_idx], lab[uniq_idx]], axis=1))
        dests.append(home[uniq_idx])
        graph.machine.charge_scan(np.array([len(part)]), ranks=np.array([i]))
        graph.machine.charge_sort(np.array([max(len(cu), 1)]),
                                  ranks=np.array([i]))
    recv, _, _ = route_rows(run.comm, payloads, dests,
                            method=run.cfg.alltoall)
    tables: List[GhostTable] = []
    for i in range(p):
        rows = recv[i]
        if len(rows) == 0:
            z = np.empty(0, dtype=np.int64)
            tables.append(GhostTable(z, z.copy()))
            continue
        order = np.argsort(rows[:, 0], kind="stable")
        g = rows[order, 0]
        l = rows[order, 1]
        first = np.ones(len(g), dtype=bool)
        first[1:] = g[1:] != g[:-1]
        tables.append(GhostTable(g[first], l[first]))
        graph.machine.charge_hash(np.array([len(rows)]), ranks=np.array([i]))
    return tables


def _exchange_labels_batched(
    graph: DistGraph,
    vids_per_pe: List[np.ndarray],
    labels_per_pe: List[np.ndarray],
    run: MSTRun,
) -> List[GhostTable]:
    """Batched engine: one segmented pass for all PEs' pushes and tables."""
    p = graph.machine.n_procs
    machine = graph.machine
    parts = graph.parts
    lengths = np.array([len(part) for part in parts], dtype=np.int64)
    total = int(lengths.sum())
    z = np.empty(0, dtype=np.int64)

    if total:
        eu = np.concatenate([np.asarray(part.u) for part in parts])
        ev = np.concatenate([np.asarray(part.v) for part in parts])
        ew = np.concatenate([np.asarray(part.w) for part in parts])
    else:
        eu = ev = ew = z
    seg = np.repeat(np.arange(p, dtype=np.int64), lengths)
    vlens = np.array([len(v) for v in vids_per_pe], dtype=np.int64)
    voff = np.zeros(p + 1, dtype=np.int64)
    np.cumsum(vlens, out=voff[1:])
    vids = np.concatenate(vids_per_pe) if voff[-1] else z
    labels = np.concatenate(labels_per_pe) if voff[-1] else z

    # Home PE of every reverse edge (v, u, w); see the loop engine for why
    # this covers exactly the pushes the paper requires.
    home_all = graph.home_of_edges(ev, eu, ew)
    cut_pos = np.flatnonzero(home_all != seg)
    cu = eu[cut_pos]
    home = home_all[cut_pos]
    cseg = seg[cut_pos]
    # New label of the edge's source.
    src_idx = segmented_searchsorted(vids, voff, cu, cseg, side="left")
    lab = labels[voff[cseg] + src_idx]
    # Deduplicate per (destination PE, vertex): first occurrence of each
    # (home, cu) pair per PE, exactly the rows the loop engine keeps (its
    # np.unique(axis=0) orders rows differently, which is immaterial -- the
    # receiver dedups again and all copies of a label agree).
    dd = packed_lexsort((cu, home, cseg))
    h_s, c_s, s_s = home[dd], cu[dd], cseg[dd]
    first = np.ones(len(dd), dtype=bool)
    if len(dd) > 1:
        first[1:] = ((h_s[1:] != h_s[:-1]) | (c_s[1:] != c_s[:-1])
                     | (s_s[1:] != s_s[:-1]))
    sel = dd[first]  # ascending in cseg, so flat payloads split per PE
    pay = np.stack([cu[sel], lab[sel]], axis=1)
    pay_counts = np.bincount(cseg[sel], minlength=p)
    poff = np.zeros(p + 1, dtype=np.int64)
    np.cumsum(pay_counts, out=poff[1:])
    payloads = [pay[poff[i]:poff[i + 1]] for i in range(p)]
    pdest = home[sel]
    dests = [pdest[poff[i]:poff[i + 1]] for i in range(p)]
    nz = np.flatnonzero(lengths)
    if len(nz):
        cut_counts = np.bincount(cseg, minlength=p)
        machine.charge_scan(lengths[nz], ranks=nz)
        machine.charge_sort(np.maximum(cut_counts[nz], 1), ranks=nz)

    recv, _, _ = route_rows(run.comm, payloads, dests,
                            method=run.cfg.alltoall)

    recv_lens = np.array([len(r) for r in recv], dtype=np.int64)
    r_flat = np.concatenate(recv, axis=0)
    rseg = np.repeat(np.arange(p, dtype=np.int64), recv_lens)
    order = packed_lexsort((r_flat[:, 0], rseg))  # per-PE stable sort by ghost
    g = r_flat[order, 0]
    l = r_flat[order, 1]
    s_s = rseg[order]
    first = np.ones(len(g), dtype=bool)
    if len(g) > 1:
        first[1:] = (g[1:] != g[:-1]) | (s_s[1:] != s_s[:-1])
    gh = g[first]
    gl = l[first]
    gcounts = np.bincount(s_s[first], minlength=p)
    goff = np.zeros(p + 1, dtype=np.int64)
    np.cumsum(gcounts, out=goff[1:])
    tables = [GhostTable(gh[goff[i]:goff[i + 1]], gl[goff[i]:goff[i + 1]])
              for i in range(p)]
    nz_recv = np.flatnonzero(recv_lens)
    if len(nz_recv):
        machine.charge_hash(recv_lens[nz_recv], ranks=nz_recv)
    return tables


def _relabel_one_pe(u, v, w, eid, vids, labels, ghosts, glabels):
    """Pure per-PE RELABEL kernel: rewrite endpoints, drop self loops.

    ``(ghosts, glabels)`` is the PE's ghost table as two sorted arrays.
    Returns the kept ``(u', v', w, id)`` columns.  Pure function of its
    arguments -- no machine, RNG or cost access -- so fan-out engines can
    run it in worker processes (:mod:`repro.engines.tasks`).
    """
    # Source labels: every source is local by definition.
    u_new = labels[np.searchsorted(vids, u)]
    # Destination labels: local lookup where possible, ghosts otherwise.
    v_local, idx = sorted_lookup(vids, v)
    v_new = np.empty(len(v), dtype=np.result_type(labels, v))
    v_new[v_local] = labels[idx[v_local]]
    miss = ~v_local
    if miss.any():
        g_found, g_idx = sorted_lookup(ghosts, v[miss])
        if not g_found.all():
            missing = np.asarray(v)[miss][~g_found][:5]
            raise RuntimeError(f"ghost labels missing for vertices {missing}")
        v_new[miss] = glabels[g_idx]
    keep = u_new != v_new
    return u_new[keep], v_new[keep], w[keep], eid[keep]


def relabel(
    graph: DistGraph,
    vids_per_pe: List[np.ndarray],
    labels_per_pe: List[np.ndarray],
    ghost_tables: List[GhostTable],
    run: MSTRun,
) -> List[Edges]:
    """RELABEL: rewrite endpoints to component roots, drop self loops."""
    eng = getattr(graph.machine, "engine", None)
    if eng is not None and eng.fanout:
        return _relabel_fanout(graph, vids_per_pe, labels_per_pe,
                               ghost_tables, run, eng)
    if batched_for(graph.machine):
        return _relabel_batched(graph, vids_per_pe, labels_per_pe,
                                ghost_tables, run)
    return _relabel_loop(graph, vids_per_pe, labels_per_pe, ghost_tables,
                         run)


def _relabel_fanout(
    graph: DistGraph,
    vids_per_pe: List[np.ndarray],
    labels_per_pe: List[np.ndarray],
    ghost_tables: List[GhostTable],
    run: MSTRun,
    eng,
) -> List[Edges]:
    """Fan-out engine: ship every PE's pure relabel pass to a worker.

    Payloads are narrowed before shipping (``narrow_payload``), so the
    shared-memory segments carry the compact representation; cost charging
    stays in the driver in rank order, identical to the other engines.
    """
    from ..kernels import narrow_payload

    p = graph.machine.n_procs
    lengths = np.array([len(part) for part in graph.parts], dtype=np.int64)
    payloads: List = []
    for i in range(p):
        part = graph.parts[i]
        if len(part) == 0:
            payloads.append(None)
            continue
        payloads.append(narrow_payload({
            "u": np.asarray(part.u), "v": np.asarray(part.v),
            "w": np.asarray(part.w), "eid": np.asarray(part.id),
            "vids": vids_per_pe[i], "labels": labels_per_pe[i],
            "ghosts": ghost_tables[i].ghosts,
            "glabels": ghost_tables[i].labels,
        }))
    results = eng.pe_map("resolve_labels", payloads)
    out: List[Edges] = []
    for i in range(p):
        res = results[i]
        out.append(Edges.empty() if res is None else
                   Edges(res["u"], res["v"], res["w"], res["id"]))
    nz = np.flatnonzero(lengths)
    if len(nz):
        graph.machine.charge_scan(lengths[nz], ranks=nz)
    return out


def _relabel_loop(
    graph: DistGraph,
    vids_per_pe: List[np.ndarray],
    labels_per_pe: List[np.ndarray],
    ghost_tables: List[GhostTable],
    run: MSTRun,
) -> List[Edges]:
    """Reference engine: one numpy pass per PE."""
    p = graph.machine.n_procs
    out: List[Edges] = []
    for i in range(p):
        part = graph.parts[i]
        if len(part) == 0:
            out.append(Edges.empty())
            continue
        ku, kv, kw, kid = _relabel_one_pe(
            np.asarray(part.u), np.asarray(part.v), np.asarray(part.w),
            np.asarray(part.id), vids_per_pe[i], labels_per_pe[i],
            ghost_tables[i].ghosts, ghost_tables[i].labels)
        out.append(Edges(ku, kv, kw, kid))
        graph.machine.charge_scan(np.array([len(part)]), ranks=np.array([i]))
    return out


def _relabel_batched(
    graph: DistGraph,
    vids_per_pe: List[np.ndarray],
    labels_per_pe: List[np.ndarray],
    ghost_tables: List[GhostTable],
    run: MSTRun,
) -> List[Edges]:
    """Batched engine: segmented lookups over all PEs' edges at once."""
    p = graph.machine.n_procs
    parts = graph.parts
    lengths = np.array([len(part) for part in parts], dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return [Edges.empty() for _ in range(p)]
    eu = np.concatenate([np.asarray(part.u) for part in parts])
    ev = np.concatenate([np.asarray(part.v) for part in parts])
    ew = np.concatenate([np.asarray(part.w) for part in parts])
    eid = np.concatenate([np.asarray(part.id) for part in parts])
    seg = np.repeat(np.arange(p, dtype=np.int64), lengths)

    z = np.empty(0, dtype=np.int64)
    voff = np.zeros(p + 1, dtype=np.int64)
    np.cumsum(np.array([len(v) for v in vids_per_pe], dtype=np.int64),
              out=voff[1:])
    vids = np.concatenate(vids_per_pe) if voff[-1] else z
    labels = np.concatenate(labels_per_pe) if voff[-1] else z

    # Source labels: every source is local by definition.
    u_new = labels[voff[seg]
                   + segmented_searchsorted(vids, voff, eu, seg, side="left")]
    # Destination labels: local lookup where possible, ghosts otherwise.
    v_local, idx = segmented_lookup(vids, voff, ev, seg)
    v_new = np.empty_like(ev)
    v_new[v_local] = labels[(voff[seg] + idx)[v_local]]
    miss = ~v_local
    if miss.any():
        goff = np.zeros(p + 1, dtype=np.int64)
        np.cumsum(np.array([len(t.ghosts) for t in ghost_tables],
                           dtype=np.int64), out=goff[1:])
        ghosts = np.concatenate([t.ghosts for t in ghost_tables]) \
            if goff[-1] else z
        glabels = np.concatenate([t.labels for t in ghost_tables]) \
            if goff[-1] else z
        g_found, g_idx = segmented_lookup(ghosts, goff, ev[miss], seg[miss])
        if not g_found.all():
            missing = ev[miss][~g_found][:5]
            raise RuntimeError(f"ghost labels missing for vertices {missing}")
        v_new[miss] = glabels[goff[seg[miss]] + g_idx]
    keep_pos = np.flatnonzero(u_new != v_new)
    kcounts = np.bincount(seg[keep_pos], minlength=p)
    koff = np.zeros(p + 1, dtype=np.int64)
    np.cumsum(kcounts, out=koff[1:])
    ku = u_new[keep_pos]
    kv = v_new[keep_pos]
    kw = ew[keep_pos]
    kid = eid[keep_pos]
    out: List[Edges] = []
    for i in range(p):
        if lengths[i] == 0:
            out.append(Edges.empty())
            continue
        sl = slice(koff[i], koff[i + 1])
        out.append(Edges(ku[sl], kv[sl], kw[sl], kid[sl]))
    nz = np.flatnonzero(lengths)
    graph.machine.charge_scan(lengths[nz], ranks=nz)
    return out
