"""Top-level MST entry point.

:func:`minimum_spanning_forest` is the package's public one-call API: give
it a distributed graph (or a global edge list plus a machine) and an
algorithm name, get back an :class:`~repro.core.boruvka.MSTResult`.
"""

from __future__ import annotations

from typing import Optional, Union

from ..dgraph.dist_graph import DistGraph
from ..dgraph.edges import Edges
from ..simmpi.machine import Machine
from .boruvka import MSTResult, distributed_boruvka
from .config import BoruvkaConfig, FilterConfig

#: Algorithm registry; competitors register themselves on import.
_ALGORITHMS = {}


def register_algorithm(name: str, fn) -> None:
    """Register an MSF algorithm under a public name."""
    _ALGORITHMS[name] = fn


def available_algorithms() -> list[str]:
    """Names accepted by :func:`minimum_spanning_forest`."""
    _ensure_registry()
    return sorted(_ALGORITHMS)


def _ensure_registry() -> None:
    if _ALGORITHMS:
        return
    from .filter_boruvka import distributed_filter_boruvka
    from ..competitors.awerbuch_shiloach import awerbuch_shiloach_msf
    from ..competitors.dist_kruskal import dist_kruskal
    from ..competitors.dist_prim import dist_prim
    from ..competitors.mnd_mst import mnd_mst

    _ALGORITHMS["boruvka"] = distributed_boruvka
    _ALGORITHMS["filter-boruvka"] = distributed_filter_boruvka
    _ALGORITHMS["awerbuch-shiloach"] = awerbuch_shiloach_msf
    _ALGORITHMS["mnd-mst"] = mnd_mst
    _ALGORITHMS["dist-kruskal"] = dist_kruskal
    _ALGORITHMS["dist-prim"] = dist_prim


def minimum_spanning_forest(
    graph: Union[DistGraph, Edges],
    machine: Optional[Machine] = None,
    algorithm: str = "boruvka",
    config: Optional[Union[BoruvkaConfig, FilterConfig]] = None,
) -> MSTResult:
    """Compute the minimum spanning forest of a distributed graph.

    Parameters
    ----------
    graph:
        Either a ready :class:`~repro.dgraph.dist_graph.DistGraph`, or a
        global :class:`~repro.dgraph.edges.Edges` sequence, which is then
        partitioned over ``machine`` (required in that case).
    algorithm:
        One of :func:`available_algorithms` -- the paper's ``"boruvka"`` and
        ``"filter-boruvka"``, or the competitor reimplementations
        ``"awerbuch-shiloach"`` (sparseMatrix) and ``"mnd-mst"``.
    config:
        Algorithm configuration; defaults per :mod:`repro.core.config`.

    Returns
    -------
    MSTResult
        Per-PE MSF edges with original endpoints, total weight, simulated
        timings and phase breakdown.
    """
    _ensure_registry()
    if isinstance(graph, Edges):
        if machine is None:
            raise ValueError("pass a Machine when giving a global edge list")
        graph = DistGraph.from_global_edges(machine, graph.with_back_edges()
                                            if not _is_symmetric(graph)
                                            else graph,
                                            avoid_shared=True)
    try:
        fn = _ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; available: "
            f"{available_algorithms()}"
        )
    if config is None:
        return fn(graph)
    return fn(graph, config)


def _is_symmetric(edges: Edges) -> bool:
    """Cheap symmetry test: equal counts of (u<v) and (u>v) edges."""
    import numpy as np

    return int(np.sum(edges.u < edges.v)) == int(np.sum(edges.u > edges.v))
