"""REDISTRIBUTE: global sort, parallel-edge elimination, rebuild (Section IV-C).

The relabelled edges are sorted lexicographically with the configured
distributed sorter (dispatching per Section VI-C), after which parallel
edges are consecutive and all but the lightest of each ``(u, v)`` group are
dropped.  Groups can straddle PE boundaries after the sort; a constant-size
allgather of boundary keys fixes those cases.  Finally the distributed graph
data structure is re-established "using an allgather-operation on the first
edge on each PE".
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..dgraph.dist_graph import DistGraph
from ..dgraph.edges import Edges
from ..kernels import RaggedArrays, batched_for
from ..simmpi.machine import Machine
from ..sorting.api import sort_rows
from .state import MSTRun


def dedup_sorted_part(part: np.ndarray) -> np.ndarray:
    """Keep the first (= lightest) edge of every consecutive (u, v) group."""
    if len(part) <= 1:
        return part
    same = (part[1:, 0] == part[:-1, 0]) & (part[1:, 1] == part[:-1, 1])
    keep = np.concatenate(([True], ~same))
    return part[keep]


def dedup_sorted_parts(parts: List[np.ndarray],
                       machine=None) -> List[np.ndarray]:
    """Every PE's :func:`dedup_sorted_part` -- one flat pass when batched.

    The segment-change guard keeps boundary-straddling groups intact on both
    sides, exactly like the per-PE dedup (the boundary copies are dropped
    later by :func:`_drop_boundary_duplicates`).
    """
    if not batched_for(machine):
        return [dedup_sorted_part(x) for x in parts]
    r = RaggedArrays.from_arrays(parts)
    flat = r.flat
    if len(flat) <= 1:
        return list(parts)
    seg = r.segment_ids()
    same = ((flat[1:, 0] == flat[:-1, 0]) & (flat[1:, 1] == flat[:-1, 1])
            & (seg[1:] == seg[:-1]))
    keep = np.concatenate(([True], ~same))
    kept = flat[keep]
    counts = np.bincount(seg[keep], minlength=r.n_segments)
    koff = np.zeros(r.n_segments + 1, dtype=np.int64)
    np.cumsum(counts, out=koff[1:])
    return [kept[koff[i]:koff[i + 1]] for i in range(r.n_segments)]


def _drop_boundary_duplicates(run: MSTRun, parts: List[np.ndarray]
                              ) -> List[np.ndarray]:
    """Remove leading edges duplicating the previous PE's last (u, v) group.

    After the global sort the lightest copy of a group that spans a boundary
    sits on the earlier PE, so later PEs drop their leading run of the same
    (u, v).  One allgather of per-PE last keys suffices.
    """
    p = len(parts)
    last_keys = []
    for part in parts:
        if len(part):
            last_keys.append(np.array([1, part[-1, 0], part[-1, 1]],
                                      dtype=np.int64))
        else:
            last_keys.append(np.array([0, 0, 0], dtype=np.int64))
    gathered = np.stack(run.comm.allgather(last_keys))
    out: List[np.ndarray] = []
    prev_u = prev_v = None
    for i in range(p):
        part = parts[i]
        if prev_u is not None and len(part):
            drop = (part[:, 0] == prev_u) & (part[:, 1] == prev_v)
            # Only the *leading run* may duplicate across the boundary.
            run_end = int(np.argmin(drop)) if not drop.all() else len(part)
            part = part[run_end:]
        out.append(part)
        if gathered[i, 0] == 1:
            prev_u, prev_v = int(gathered[i, 1]), int(gathered[i, 2])
    return out


def redistribute(
    run: MSTRun,
    machine: Machine,
    relabelled: List[Edges],
    check: bool = False,
) -> DistGraph:
    """Sort, deduplicate and rebuild the distributed graph structure."""
    mats = [e.as_matrix() for e in relabelled]
    sorted_parts = sort_rows(run.comm, mats, n_key_cols=3,
                             method=run.cfg.sorter, rebalance=True)
    deduped = dedup_sorted_parts(sorted_parts, machine)
    machine.charge_scan(np.array([len(x) for x in sorted_parts]))
    deduped = _drop_boundary_duplicates(run, deduped)
    parts = [Edges.from_matrix(x) for x in deduped]
    graph = DistGraph(machine, parts, check=check)
    if machine.sanitizer is not None:
        # Invariant 3: the rebuilt structure must be globally lex-sorted
        # with agreeing replicated metadata after *every* redistribute.
        machine.sanitizer.check_redistributed(graph)
    return graph
