"""Algorithm configuration (the tuning constants of Section VI).

Paper defaults are documented next to every knob.  Where the paper's value
is tied to the scale of its supercomputer runs (e.g. the 35 000-vertex base
case threshold against inputs of 2^17 vertices *per core*), the default here
is scaled down proportionally so the simulated runs at test scale exercise
the same code paths; the benchmark harness can restore the paper values via
``BoruvkaConfig.paper_defaults()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class BoruvkaConfig:
    """Knobs of the distributed Borůvka algorithm (Algorithm 1)."""

    #: All-to-all delivery: "auto" = the paper's 500-byte dispatch rule
    #: (Section VI-A); "direct"/"grid"/"hypercube" force a scheme.
    alltoall: str = "auto"
    #: Distributed sorter for REDISTRIBUTE: "auto" = the paper's 512
    #: elements/PE dispatch (Section VI-C), or "hypercube"/"samplesort".
    sorter: str = "auto"
    #: Switch to the replicated-vertex base case when the global vertex
    #: count drops to ``max(base_case_factor * n_procs, base_case_min)``.
    #: Paper: factor 2, minimum 35 000 (Section VI-C).  The minimum here is
    #: scaled to simulation sizes.
    base_case_factor: int = 2
    base_case_min: int = 512
    #: Run the local preprocessing step (Section IV-A)?
    local_preprocessing: bool = True
    #: Skip preprocessing when fewer than this fraction of edges is local
    #: (paper: "we apply the preprocessing only if at least 10% of the edges
    #: are local", equivalently skip when cut-edges exceed 90%).
    preprocessing_min_local_fraction: float = 0.10
    #: Use the hash-based parallel-edge elimination after preprocessing
    #: (Section VI-B) instead of pure sorting.
    hash_dedup: bool = True
    #: Fraction of lightest edges inserted into the dedup hash table
    #: (the paper picks a pivot weight "such that the set E' of edges
    #: lighter than w is small" -- small enough to stay in cache).
    hash_dedup_fraction: float = 0.25
    #: Use the recursive edge-filtering enhancement inside local
    #: preprocessing (Section VI-B)?
    preprocessing_filter: bool = True
    #: Safety bound on distributed Borůvka rounds (log2 of any feasible n).
    max_rounds: int = 64

    @classmethod
    def paper_defaults(cls) -> "BoruvkaConfig":
        """The constants exactly as tuned for SuperMUC-NG (Section VI)."""
        return cls(base_case_min=35_000)

    def with_(self, **kwargs) -> "BoruvkaConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass
class FilterConfig:
    """Knobs of Filter-Borůvka (Algorithm 2, thresholds from Section VI-C)."""

    #: Underlying Borůvka configuration for the base case MST() calls.
    boruvka: BoruvkaConfig = field(default_factory=BoruvkaConfig)
    #: Stop recursing and run Borůvka when the average degree is at most
    #: this (paper: 4).
    sparse_avg_degree: float = 4.0
    #: Also stop partitioning below this many edges per MPI process
    #: (paper: 1000; scaled down for simulation sizes).
    min_edges_per_proc: int = 64
    #: If fewer than this fraction of the heavy edges survives filtering,
    #: merge them back into the parent recursion level instead of recursing
    #: (the paper propagates too-small filtered sets back, Section VI-C).
    merge_back_fraction: float = 0.05
    #: Pivot sample size per PE for PIVOTSELECTION.
    pivot_sample_per_pe: int = 8
    #: Safety bound on recursion depth.
    max_depth: int = 64

    @classmethod
    def paper_defaults(cls) -> "FilterConfig":
        """The constants exactly as tuned for SuperMUC-NG (Section VI)."""
        return cls(boruvka=BoruvkaConfig.paper_defaults(),
                   min_edges_per_proc=1000)
