"""LOCALPREPROCESSING: contraction of provably-local MST edges (Section IV-A).

Key observation: all edges incident to a non-shared local vertex are visible
on its PE (source groups are contiguous), so if the minimum incident edge of
a component of non-shared local vertices is itself a *local* edge, the
min-cut property proves it is an MST edge using local information only --
contract it without any communication.  Iterating this until every remaining
component's minimum incident edge is a cut edge "reduces processing time by
up to a factor 5" on high-locality graphs (Fig. 4).

Engineering refinements from Section VI-B, all implemented here:

* the step is skipped entirely when cut edges exceed 90 % of the edges
  (one cheap allreduce);
* the *recursive edge-filtering* enhancement: only edges of the local
  subgraph's own MSF can ever be contracted (cycle property), so the
  candidate set is first reduced to that MSF via the sequential
  Filter-Borůvka;
* hash-based parallel-edge elimination instead of full sorting for the
  dedup after contraction (``hash_dedup``);
* components that have absorbed a shared vertex are *tainted*: their full
  edge set is not visible locally, so they never initiate a contraction, and
  a contraction that would merge two tainted components is skipped (their
  labels must both survive for other PEs).

Afterwards the ghost labels are refreshed with the label-exchange machinery
of Section IV-B and global sortedness is re-established by local resorting
plus routing the boundary runs of shared vertices to the first PE of their
span (the paper's "short subsequences allocated to two subsequent PEs"
case, generalised to any span).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..dgraph.dist_graph import DistGraph
from ..dgraph.edges import Edges
from ..kernels import narrow_payload
from ..kernels.pool import active_pool
from ..kernels.segmented import packed_lexsort
from ..seq.filter_kruskal import filter_boruvka_msf
from ..seq.kruskal import kruskal_msf
from ..simmpi.alltoall import route_rows
from .labels import exchange_labels, relabel
from .state import MSTRun


class _TaintedUnionFind:
    """Union-find over local vertex indices with shared-vertex constraints.

    * the representative *label* of a set containing a shared vertex is that
      shared vertex (shared labels must survive -- other PEs reference them);
    * a union of two tainted sets is refused (both labels must survive).
    """

    def __init__(self, n: int, shared_mask: np.ndarray):
        # Local vertex indices fit int32 at any simulated scale; find_many
        # results inherit this dtype, which halves the per-round root
        # arrays of the contraction loop below.
        dt = np.int32 if n < (1 << 31) else np.int64
        self.parent = np.arange(n, dtype=dt)
        self.rank = np.zeros(n, dtype=np.int8)
        self.taint = shared_mask.copy()
        # Designated representative index per root (the shared member if any).
        self.rep = np.arange(n, dtype=dt)

    def find(self, x: int) -> int:
        """Root of ``x``'s set, with path compression."""
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def find_many(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised roots of many elements (compresses their paths)."""
        parent = self.parent
        roots = np.asarray(xs, dtype=parent.dtype)
        while True:
            nxt = parent[roots]
            if np.array_equal(nxt, roots):
                break
            roots = parent[nxt]
        parent[xs] = roots
        return roots

    def union(self, a: int, b: int) -> bool:
        """Merge two sets; refuses to merge two tainted (shared) sets."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.taint[ra] and self.taint[rb]:
            return False  # two shared labels may not merge locally
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        if self.taint[rb]:
            self.taint[ra] = True
            self.rep[ra] = self.rep[rb]
        self.taint[ra] = self.taint[ra] or self.taint[rb]
        return True


def _contract_one_pe(
    part: Edges,
    vids: np.ndarray,
    shared_mask: np.ndarray,
    use_filter: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Run the modified local Borůvka on one PE.

    Returns ``(new_labels, mst_ids, mst_weights, rounds)`` where
    ``new_labels`` is aligned with ``vids``.
    """
    n_local = len(vids)
    uf = _TaintedUnionFind(n_local, shared_mask)
    if n_local == 0 or len(part) == 0:
        return vids.copy(), np.empty(0, dtype=np.int64), \
            np.empty(0, dtype=np.int64), 0

    # Index scratch dtype: vertex indices (< n_local) and row positions
    # (< 2 * len(part)) both fit int32 at any simulated scale, and ~15 such
    # arrays are simultaneously live per round below -- the narrow scratch
    # halves the peak footprint of large merged parts (MND-MST leaders).
    idx_dt = (np.int32 if max(n_local, 2 * len(part)) < (1 << 31)
              else np.int64)
    vidx_u = np.searchsorted(vids, part.u).astype(idx_dt, copy=False)
    idx = np.searchsorted(vids, part.v).astype(idx_dt, copy=False)
    idx_c = np.minimum(idx, n_local - 1)
    v_local = (idx < n_local) & (vids[idx_c] == part.v)
    vidx_v = np.where(v_local, idx_c, idx_dt(-1))
    del idx, idx_c

    # Candidate (contractible) edges: both endpoints local.  With the
    # filtering enhancement, restrict further to the local subgraph's MSF --
    # by the cycle property no other local edge can ever be a cut minimum.
    candidate = v_local.copy()
    if use_filter and candidate.any():
        local_e = part.take(candidate)
        dense = Edges(vidx_u[candidate], vidx_v[candidate], local_e.w,
                      np.flatnonzero(candidate))
        msf = (filter_boruvka_msf if len(dense) > 64 else kruskal_msf)(
            dense, n_local)
        candidate = np.zeros(len(part), dtype=bool)
        candidate[msf.id] = True  # ids were candidate positions

    # Edges that participate in min computations: candidates + cut edges.
    consider = candidate | ~v_local
    e_u = vidx_u[consider]
    e_v = vidx_v[consider]          # -1 for ghosts
    e_w = part.w[consider]
    e_pos = np.flatnonzero(consider).astype(idx_dt, copy=False)
    e_cand = candidate[consider]
    ghost_label = part.v[consider]  # actual labels for canonical tie keys
    del vidx_u, vidx_v, v_local, candidate, consider

    mst_ids: list[int] = []
    mst_ws: list[int] = []
    rounds = 0
    while True:
        rounds += 1
        cu_root = uf.find_many(e_u)
        cv_root = np.where(e_v >= 0, uf.find_many(np.maximum(e_v, 0)), -1)
        label_u = vids[uf.rep[cu_root]]
        label_v = np.where(e_v >= 0, vids[uf.rep[np.maximum(cv_root, 0)]],
                           ghost_label)
        alive = label_u != label_v
        if not alive.any():
            break
        if not alive.all():
            # Self-loop edges stay dead forever (components only grow), so
            # drop them before the next round's scans.
            e_u, e_v, e_w = e_u[alive], e_v[alive], e_w[alive]
            e_pos, e_cand = e_pos[alive], e_cand[alive]
            ghost_label = ghost_label[alive]
            cu_root, cv_root = cu_root[alive], cv_root[alive]
            label_u, label_v = label_u[alive], label_v[alive]
        a_u, a_v = cu_root, cv_root
        a_w = e_w
        a_cand = e_cand & (a_v >= 0)
        key_cu = np.minimum(label_u, label_v)
        key_cv = np.maximum(label_u, label_v)
        del label_u, label_v
        # Group candidates by component: local edges feed both sides' groups,
        # cut edges only the source side.
        both = a_v >= 0
        grp = np.concatenate([a_u, a_v[both]])
        sel = np.concatenate([np.arange(len(a_u), dtype=idx_dt),
                              np.flatnonzero(both).astype(idx_dt,
                                                          copy=False)])
        del both
        kw = a_w[sel]
        kcu = key_cu[sel]
        kcv = key_cv[sel]
        del key_cu, key_cv
        # Per-group lexicographic minimum of (kw, kcu, kcv) with the lowest
        # input position breaking full-key ties -- exactly what the stable
        # sort keyed (kcv, kcu, kw, grp) used to pick, via one O(m) scatter
        # instead of an O(m log m) sort.  Falls back to the sort when the
        # packed key would overflow int64.
        nk = len(grp)
        w_lo, w_hi = int(kw.min()), int(kw.max())
        cu_lo, cu_hi = int(kcu.min()), int(kcu.max())
        cv_lo, cv_hi = int(kcv.min()), int(kcv.max())
        span_cu = cu_hi - cu_lo + 1
        span_cv = cv_hi - cv_lo + 1
        big = 1 << nk.bit_length()
        if (w_hi - w_lo + 1) * span_cu * span_cv * big < (1 << 62):
            # Build the packed key in int64, in place, in a pooled block:
            # the key columns may be stored uint32 (repro.kernels.dtypes)
            # and the products here legitimately exceed 32 bits, but a
            # chained expression would hold several full-size int64
            # temporaries at once at the peak of the round.
            key = active_pool().take(nk, np.int64)
            np.copyto(key, kw, casting="unsafe")
            key -= w_lo
            key *= span_cu
            key += kcu
            key -= cu_lo
            key *= span_cv
            key += kcv
            key -= cv_lo
            key *= big
            key += np.arange(nk, dtype=np.int64)
            best = np.full(n_local, np.iinfo(np.int64).max)
            np.minimum.at(best, grp, key)
            active_pool().give(key)
            del key
            groups = np.flatnonzero(best != np.iinfo(np.int64).max)
            chosen = sel[best[groups] & (big - 1)]
            del best
        else:
            order = packed_lexsort((kcv, kcu, kw, grp))
            g_sorted = grp[order]
            first = np.ones(len(g_sorted), dtype=bool)
            first[1:] = g_sorted[1:] != g_sorted[:-1]
            groups = g_sorted[first]
            chosen = sel[order[first]]  # row into the compacted arrays
            del order, g_sorted, first
        del grp, sel, kw, kcu, kcv
        # Contract where the choosing component is untainted and its minimum
        # is a contractible (local MSF) edge.
        ok = ~uf.taint[groups] & a_cand[chosen]
        did_union = False
        rows = np.unique(chosen[ok])
        pos = e_pos[rows]
        del groups, chosen, ok
        # uf.union inlined over plain Python lists (same op order, same
        # state evolution): this loop dominates the per-PE contraction time
        # and list indexing beats numpy scalar indexing several-fold.
        parent = uf.parent.tolist()
        rank = uf.rank.tolist()
        taint = uf.taint.tolist()
        rep = uf.rep.tolist()
        for ia, ib, eid, ew in zip(a_u[rows].tolist(), a_v[rows].tolist(),
                                   part.id[pos].tolist(),
                                   part.w[pos].tolist()):
            root = ia
            while parent[root] != root:
                root = parent[root]
            while parent[ia] != root:
                parent[ia], ia = root, parent[ia]
            ra = root
            root = ib
            while parent[root] != root:
                root = parent[root]
            while parent[ib] != root:
                parent[ib], ib = root, parent[ib]
            rb = root
            if ra == rb or (taint[ra] and taint[rb]):
                continue
            if rank[ra] < rank[rb]:
                ra, rb = rb, ra
            parent[rb] = ra
            if rank[ra] == rank[rb]:
                rank[ra] += 1
            if taint[rb]:
                taint[ra] = True
                rep[ra] = rep[rb]
            did_union = True
            mst_ids.append(eid)
            mst_ws.append(ew)
        uf.parent[:] = parent
        uf.rank[:] = rank
        uf.taint[:] = taint
        uf.rep[:] = rep
        if not did_union:
            break
        if rounds > 64:
            raise RuntimeError("local preprocessing failed to converge")

    roots = uf.find_many(np.arange(n_local))
    new_labels = vids[uf.rep[roots]]
    return (new_labels, np.asarray(mst_ids, dtype=np.int64),
            np.asarray(mst_ws, dtype=np.int64), rounds)


def _first_holder_of_shared(graph: DistGraph) -> dict[int, int]:
    """Map each shared vertex to the first PE of its span."""
    first_holder: dict[int, int] = {}
    p = graph.machine.n_procs
    for j in range(p):
        if not graph.has_edges[j]:
            continue
        s_first = int(graph.first_src[j])
        s_last = int(graph.last_src[j])
        for s in (s_first, s_last):
            if s not in first_holder:
                first_holder[s] = j
    return first_holder


def local_preprocessing(graph: DistGraph, run: MSTRun) -> DistGraph:
    """Run the full preprocessing step; returns the contracted graph.

    No-op (returns ``graph``) when the local-edge fraction is below the
    configured threshold.
    """
    p = graph.machine.n_procs
    machine = graph.machine
    cfg = run.cfg

    # ---- Quick locality check (skip rule, Section VI-B). ----
    local_counts, totals = [], []
    vids_per_pe: List[np.ndarray] = []
    for i in range(p):
        part = graph.parts[i]
        vids, _ = graph.vertex_groups(i)
        vids_per_pe.append(vids)
        if len(part) == 0:
            local_counts.append(0)
            totals.append(0)
            continue
        idx = np.searchsorted(vids, part.v)
        idx_c = np.minimum(idx, len(vids) - 1)
        v_local = (idx < len(vids)) & (vids[idx_c] == part.v)
        local_counts.append(int(v_local.sum()))
        totals.append(len(part))
        machine.charge_scan(np.array([len(part)]), ranks=np.array([i]))
    total_local = run.comm.allreduce(local_counts)
    total_edges = run.comm.allreduce(totals)
    if total_edges == 0:
        return graph
    if total_local / total_edges < cfg.preprocessing_min_local_fraction:
        return graph

    # ---- Per-PE contraction (communication-free). ----
    shared_set = graph.shared_vertex_set()
    shared_masks = [np.isin(v, shared_set, assume_unique=True)
                    for v in vids_per_pe]
    eng = getattr(machine, "engine", None)
    contracted = None
    if eng is not None and eng.fanout:
        # The contraction is a pure function of the part, so fan-out
        # engines ship it to workers; recording and charging stay in the
        # driver, in rank order, keeping simulated time engine-invariant.
        contract_payloads = []
        for i in range(p):
            part = graph.parts[i]
            contract_payloads.append(narrow_payload({
                "u": np.asarray(part.u), "v": np.asarray(part.v),
                "w": np.asarray(part.w), "eid": np.asarray(part.id),
                "vids": vids_per_pe[i], "shared_mask": shared_masks[i],
                "use_filter": bool(cfg.preprocessing_filter),
            }))
        contracted = eng.pe_map("local_contract", contract_payloads)
    labels_per_pe: List[np.ndarray] = []
    for i in range(p):
        vids = vids_per_pe[i]
        if contracted is None:
            new_labels, ids, ws, rounds = _contract_one_pe(
                graph.parts[i], vids, shared_masks[i],
                cfg.preprocessing_filter
            )
        else:
            res = contracted[i]
            new_labels, ids, ws = res["labels"], res["ids"], res["ws"]
            rounds = int(res["rounds"])
        labels_per_pe.append(new_labels)
        run.record_mst(i, ids, ws)
        run.record_labels(i, vids, new_labels)
        m_i = len(graph.parts[i])
        machine.charge_sort(np.array([max(m_i, 1)]), ranks=np.array([i]))
        machine.charge_scan(np.array([m_i * max(rounds, 1)]),
                            ranks=np.array([i]))

    # ---- Refresh ghost labels and relabel (Sections IV-B/IV-C). ----
    ghost_tables = exchange_labels(graph, vids_per_pe, labels_per_pe, run)
    relabelled = relabel(graph, vids_per_pe, labels_per_pe, ghost_tables, run)

    # ---- Local resort + parallel-edge elimination. ----
    parts: List[Edges] = []
    for i in range(p):
        e = relabelled[i].sort_lex()
        machine.charge_sort(np.array([max(len(e), 1)]), ranks=np.array([i]))
        parts.append(_dedup_part(e, machine, i, cfg))

    # ---- Boundary repair: move shared-vertex runs to the span's first PE. -
    first_holder = _first_holder_of_shared(graph)
    payloads, dests, keepers = [], [], []
    for i in range(p):
        e = parts[i]
        if len(e) == 0:
            payloads.append(np.empty((0, Edges.N_COLS), dtype=np.int64))
            dests.append(np.empty(0, dtype=np.int64))
            keepers.append(e)
            continue
        s = int(e.u[0])
        target = first_holder.get(s, i)
        if s in shared_set and target != i:
            run_len = int(np.searchsorted(e.u, s, side="right"))
            lead = e.take(np.arange(run_len))
            payloads.append(lead.as_matrix())
            dests.append(np.full(run_len, target, dtype=np.int64))
            keepers.append(e.take(np.arange(run_len, len(e))))
        else:
            payloads.append(np.empty((0, Edges.N_COLS), dtype=np.int64))
            dests.append(np.empty(0, dtype=np.int64))
            keepers.append(e)
    recv, _, _ = route_rows(run.comm, payloads, dests, method=cfg.alltoall)
    final_parts: List[Edges] = []
    for i in range(p):
        if len(recv[i]):
            merged = Edges.concat([keepers[i], Edges.from_matrix(recv[i])])
            merged = merged.sort_lex()
            machine.charge_sort(np.array([len(merged)]), ranks=np.array([i]))
            final_parts.append(_dedup_part(merged, machine, i, cfg))
        else:
            final_parts.append(keepers[i])

    return DistGraph(machine, final_parts, check=False)


def _dedup_part(e: Edges, machine, pe: int, cfg) -> Edges:
    """Remove parallel edges from a locally sorted part.

    With ``cfg.hash_dedup`` the paper's hash-based scheme is *charged*: the
    lightest ``hash_dedup_fraction`` of the edges go into a hash table keyed
    by (u, v); one scan filters the rest; only survivors are sorted.  The
    resulting edge set is identical to sort-based dedup (keep the lightest
    per (u, v)); only the cost accounting differs, mirroring the up-to-2.5x
    win reported in Section VI-B.
    """
    if len(e) <= 1:
        return e
    same = (e.u[1:] == e.u[:-1]) & (e.v[1:] == e.v[:-1])
    keep = np.concatenate(([True], ~same))
    out = e.take(keep)
    if cfg.hash_dedup:
        light = int(len(e) * cfg.hash_dedup_fraction) + 1
        machine.charge_hash(np.array([light + len(e)]), ranks=np.array([pe]))
        machine.charge_sort(np.array([max(len(out), 1)]),
                            ranks=np.array([pe]))
    else:
        machine.charge_sort(np.array([max(len(e), 1)]), ranks=np.array([pe]))
        machine.charge_scan(np.array([len(e)]), ranks=np.array([pe]))
    return out
