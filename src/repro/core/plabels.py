"""The distributed component-representative array ``P`` (Section V).

Filter-Borůvka maintains "a distributed array P of size n, where PE i holds
the elements in/p..(i+1)n/p.  After a Borůvka round, each PE stores the
component root for its local vertices in P.  In the end, the implicitly
constructed trees in P are contracted using O(log(log n)) pointer doubling
rounds."

:class:`DistributedLabelArray` implements exactly that: it is plugged into
:class:`~repro.core.state.MSTRun` as the label sink, buffers each
contraction's ``vertex -> root`` map, flushes the buffered updates to the
block owners with one sparse all-to-all, and contracts the resulting pointer
trees by distributed pointer doubling.  ``request`` then resolves arbitrary
(historical) vertex labels to their current component representatives -- the
REQUESTLABELS step of the FILTER routine.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..simmpi.alltoall import route_rows, unsort
from ..simmpi.collectives import Comm
from ..utils.partition import block_bounds, owner_of


class DistributedLabelArray:
    """Block-distributed ``P[0..n)`` with buffered updates and doubling."""

    def __init__(self, comm: Comm, n: int, alltoall: str = "auto"):
        self.comm = comm
        self.n = int(n)
        self.p = comm.size
        self.alltoall = alltoall
        self.bounds = block_bounds(self.n, self.p)
        #: P blocks, initialised to the identity.
        self.blocks: List[np.ndarray] = [
            np.arange(self.bounds[i], self.bounds[i + 1], dtype=np.int64)
            for i in range(self.p)
        ]
        self._pending: List[List[np.ndarray]] = [[] for _ in range(self.p)]

    # ------------------------------------------------------------------
    def sink(self, pe: int, vertices: np.ndarray, roots: np.ndarray) -> None:
        """Label-sink entry point (buffered; see :meth:`flush`)."""
        if len(vertices):
            self._pending[pe].append(
                np.stack([np.asarray(vertices, dtype=np.int64),
                          np.asarray(roots, dtype=np.int64)], axis=1)
            )

    def flush(self) -> None:
        """Deliver buffered updates to their block owners (one all-to-all)."""
        rows, dests = [], []
        for i in range(self.p):
            if self._pending[i]:
                block = np.concatenate(self._pending[i], axis=0)
            else:
                block = np.empty((0, 2), dtype=np.int64)
            rows.append(block)
            dests.append(owner_of(block[:, 0], self.n, self.p)
                         if len(block) else np.empty(0, dtype=np.int64))
            self._pending[i] = []
        recv, _, _ = route_rows(self.comm, rows, dests, method=self.alltoall)
        for i in range(self.p):
            upd = recv[i]
            if len(upd):
                self.blocks[i][upd[:, 0] - self.bounds[i]] = upd[:, 1]
                self.comm.machine.charge_scan(np.array([len(upd)]),
                                              ranks=np.array([i]))

    # ------------------------------------------------------------------
    def contract(self, max_rounds: int = 64) -> None:
        """Pointer-double P to fixpoint: ``P[v] <- P[P[v]]`` until stable."""
        self.flush()
        for _ in range(max_rounds):
            # Query the owner of every (deduplicated) non-trivial target.
            queries, inverses, dests, positions = [], [], [], []
            for i in range(self.p):
                block = self.blocks[i]
                ids = np.arange(self.bounds[i], self.bounds[i + 1])
                nontriv = np.flatnonzero(block != ids)
                targets = block[nontriv]
                uniq, inv = np.unique(targets, return_inverse=True)
                queries.append(uniq)
                inverses.append(inv)
                positions.append(nontriv)
                dests.append(owner_of(uniq, self.n, self.p))
            n_q = self.comm.allreduce([len(q) for q in queries])
            if n_q == 0:
                return
            recv, recv_src, orders = route_rows(
                self.comm, queries, dests, method=self.alltoall
            )
            replies = []
            for i in range(self.p):
                q = recv[i]
                replies.append(self.blocks[i][q - self.bounds[i]]
                               if len(q) else np.empty(0, dtype=np.int64))
                self.comm.machine.charge_hash(np.array([len(q)]),
                                              ranks=np.array([i]))
            back, _, _ = route_rows(self.comm, replies, recv_src,
                                    method=self.alltoall)
            changed_any = []
            for i in range(self.p):
                if len(queries[i]) == 0:
                    changed_any.append(0)
                    continue
                resolved = unsort(orders[i], back[i])  # aligned with queries
                new_vals = resolved[inverses[i]]
                old = self.blocks[i][positions[i]]
                self.blocks[i][positions[i]] = new_vals
                changed_any.append(int((new_vals != old).sum()))
            if self.comm.allreduce(changed_any) == 0:
                return
        raise RuntimeError("P-array pointer doubling failed to converge")

    # ------------------------------------------------------------------
    def request(self, queries_per_pe: List[np.ndarray]) -> List[np.ndarray]:
        """REQUESTLABELS: resolve vertex labels to representatives.

        Call :meth:`contract` first; chains are then fully collapsed and one
        lookup round suffices.
        """
        uniq_qs, inverses, dests = [], [], []
        for i in range(self.p):
            q = np.asarray(queries_per_pe[i], dtype=np.int64)
            uniq, inv = np.unique(q, return_inverse=True)
            uniq_qs.append(uniq)
            inverses.append(inv)
            dests.append(owner_of(uniq, self.n, self.p))
        recv, recv_src, orders = route_rows(self.comm, uniq_qs, dests,
                                            method=self.alltoall)
        replies = []
        for i in range(self.p):
            q = recv[i]
            replies.append(self.blocks[i][q - self.bounds[i]]
                           if len(q) else np.empty(0, dtype=np.int64))
            self.comm.machine.charge_hash(np.array([len(q)]),
                                          ranks=np.array([i]))
        back, _, _ = route_rows(self.comm, replies, recv_src,
                                method=self.alltoall)
        out = []
        for i in range(self.p):
            if len(uniq_qs[i]) == 0:
                out.append(np.empty(0, dtype=np.int64))
                continue
            resolved = unsort(orders[i], back[i])
            out.append(resolved[inverses[i]])
        return out

    def assembled(self) -> np.ndarray:
        """The full array (testing/diagnostics only -- not a PE operation)."""
        return np.concatenate(self.blocks) if self.n else np.empty(
            0, dtype=np.int64)
