"""The paper's contribution: distributed Borůvka (Algorithm 1) and
Filter-Borůvka (Algorithm 2) with all their subroutines."""

from .config import BoruvkaConfig, FilterConfig
from .state import MSTRun
from .minedges import ChosenEdges, min_edges
from .contraction import contract_components
from .labels import GhostTable, exchange_labels, relabel
from .redistribute import redistribute
from .base_case import base_case
from .local_preprocessing import local_preprocessing
from .plabels import DistributedLabelArray
from .rounds import (
    CheckpointableState,
    RoundBody,
    RoundCheckpointLog,
    RoundScheduler,
    RoundStats,
    UnsupportedFaultSchedule,
)
from .boruvka import (
    InputSnapshot,
    MSTResult,
    boruvka_rounds,
    distributed_boruvka,
    global_vertex_count,
    redistribute_mst,
)
from .connectivity import ComponentsResult, connected_components
from .filter_boruvka import distributed_filter_boruvka
from .mst import available_algorithms, minimum_spanning_forest, register_algorithm
from .verification import VerificationReport, verify_distributed_msf

__all__ = [
    "BoruvkaConfig",
    "FilterConfig",
    "MSTRun",
    "ChosenEdges",
    "min_edges",
    "contract_components",
    "GhostTable",
    "exchange_labels",
    "relabel",
    "redistribute",
    "base_case",
    "local_preprocessing",
    "DistributedLabelArray",
    "CheckpointableState",
    "RoundBody",
    "RoundCheckpointLog",
    "RoundScheduler",
    "RoundStats",
    "UnsupportedFaultSchedule",
    "InputSnapshot",
    "MSTResult",
    "boruvka_rounds",
    "distributed_boruvka",
    "global_vertex_count",
    "redistribute_mst",
    "ComponentsResult",
    "connected_components",
    "distributed_filter_boruvka",
    "available_algorithms",
    "minimum_spanning_forest",
    "register_algorithm",
    "VerificationReport",
    "verify_distributed_msf",
]
