"""Distributed Borůvka-MST (Algorithm 1) -- the paper's core contribution.

Drives the round structure of Section IV:

1. LOCALPREPROCESSING contracts provably-local MST edges (Section IV-A);
2. while the global vertex count exceeds the base-case threshold:
   MINEDGES -> CONTRACTCOMPONENTS -> EXCHANGELABELS -> RELABEL ->
   REDISTRIBUTE;
3. BASECASE finishes on a replicated vertex set (Section IV-D);
4. REDISTRIBUTEMST sends every identified MST edge (by id) back to its
   original home PE, which looks up the original endpoints in its
   varint-compressed copy of the initial edge list (Section VI-C).

Each step runs inside a machine phase block, which is what the Fig. 6
breakdown reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..dgraph.dist_graph import DistGraph
from ..dgraph.edges import Edges
from ..simmpi.alltoall import route_rows
from ..utils.varint import CompressedEdgeList
from .base_case import base_case
from .config import BoruvkaConfig
from .contraction import contract_components
from .labels import exchange_labels, relabel
from .local_preprocessing import local_preprocessing
from .minedges import min_edges
from .redistribute import redistribute
from .rounds import RoundBody, RoundScheduler, RoundStats
from .state import MSTRun


@dataclass
class InputSnapshot:
    """Compressed per-PE copy of the initial edge list for id lookups.

    The paper stores this with 7-bit varint delta encoding and accounts for
    decoding it twice (before and after the MST computation); the same
    accounting is applied in :func:`redistribute_mst`.
    """

    compressed: List[CompressedEdgeList]
    weights: List[np.ndarray]
    id_starts: np.ndarray  # global id range starts per PE (+ total sentinel)

    @classmethod
    def take(cls, graph: DistGraph) -> "InputSnapshot":
        """Compress every PE's initial edge block and record id ranges."""
        comp, ws, starts = [], [], []
        next_start = 0
        for part in graph.parts:
            comp.append(CompressedEdgeList(part.u, part.v))
            ws.append(part.w.copy())
            starts.append(next_start)
            if len(part):
                ids = part.id
                if not (ids.min() == next_start
                        and ids.max() == next_start + len(ids) - 1):
                    raise ValueError(
                        "edge ids must form contiguous per-PE ranges "
                        "(use DistGraph.from_global_edges or a generator)"
                    )
                next_start += len(ids)
        starts.append(next_start)
        return cls(comp, ws, np.asarray(starts, dtype=np.int64))


@dataclass
class MSTResult:
    """Outcome of one distributed MSF computation."""

    #: Per-PE MSF edges with original endpoints (sorted by edge id).
    msf_parts: List[Edges]
    #: Total MSF weight (replicated scalar).
    total_weight: int
    #: Simulated makespan in seconds (max over PE clocks).
    elapsed: float
    #: Per-phase simulated seconds (max over PEs).
    phase_times: Dict[str, float]
    #: Number of distributed Borůvka rounds executed.
    rounds: int
    #: Algorithm label for reporting.
    algorithm: str = "boruvka"
    #: Extra diagnostics (bytes communicated, collective count, ...).
    stats: Dict = field(default_factory=dict)

    def msf_edges(self) -> Edges:
        """All MSF edges assembled into one sequence (for verification)."""
        return Edges.concat(self.msf_parts)


def global_vertex_count(graph: DistGraph, run: MSTRun) -> int:
    """Global count of distinct source vertices (one allreduce)."""
    counts = graph.local_vertex_counts()
    total = run.comm.allreduce([int(c) for c in counts])
    return int(total - graph.shared_first.sum())


class BoruvkaRoundBody(RoundBody):
    """One distributed Borůvka round (MINEDGES ... REDISTRIBUTE).

    Also the reference :class:`~repro.core.rounds.CheckpointableState`
    implementation: ``take`` snapshots the current graph through
    :class:`~repro.faults.recovery.RoundCheckpoint` (buddy-replicated
    edge blocks + MST-record lengths + RNG streams), and a restore swaps
    the rebuilt graph back in for the replay.
    """

    label = "boruvka"
    divergence_error = "distributed Borůvka exceeded max_rounds"

    def __init__(self, graph: DistGraph, run: MSTRun):
        self.graph = graph
        self.run = run
        machine = graph.machine
        cfg = run.cfg
        # "By choosing the size threshold >= p, we take into account that
        # up to p-1 shared vertices are not contracted in our distributed
        # Borůvka rounds" (Section IV) -- below p the loop could stall on a
        # remainder of shared vertices, so p is enforced as a floor.
        self.threshold = max(cfg.base_case_factor * machine.n_procs,
                             cfg.base_case_min, machine.n_procs)

    def prologue(self, round_no: int) -> Optional[RoundStats]:
        """Base-case threshold check (the two termination collectives)."""
        n_edges = self.graph.global_edge_count()
        if n_edges == 0:
            return None
        n_vertices = global_vertex_count(self.graph, self.run)
        if n_vertices <= self.threshold:
            return None
        return RoundStats(n_vertices, n_edges)

    def round(self, round_no: int) -> bool:
        """MINEDGES -> CONTRACT -> EXCHANGE -> RELABEL -> REDISTRIBUTE."""
        graph, run = self.graph, self.run
        machine = graph.machine
        with machine.phase("min_edges"):
            chosen = min_edges(graph)
        with machine.phase("contraction"):
            labels = contract_components(graph, chosen, run)
        vids = [c.vids for c in chosen]
        with machine.phase("label_exchange"):
            tables = exchange_labels(graph, vids, labels, run)
        with machine.phase("relabel"):
            relabelled = relabel(graph, vids, labels, tables, run)
        with machine.phase("redistribute"):
            self.graph = redistribute(run, machine, relabelled)
        return False  # convergence is the prologue's threshold check

    # -- CheckpointableState ------------------------------------------
    def checkpoint_state(self) -> "BoruvkaRoundBody":
        """Borůvka rounds are always replayable: the body is its state."""
        return self

    def take(self, run: MSTRun) -> "_GraphRestore":
        """Buddy-replicate the current edge partition (RoundCheckpoint)."""
        from ..faults.recovery import RoundCheckpoint

        return _GraphRestore(self, RoundCheckpoint.take(self.graph, run))


class _GraphRestore:
    """Checkpoint handle swapping the restored graph into the body."""

    def __init__(self, body: BoruvkaRoundBody, ckpt):
        self.body = body
        self.ckpt = ckpt

    def restore(self, run: MSTRun, failed: np.ndarray) -> None:
        """Swap the rebuilt post-recovery graph back into the body."""
        self.body.graph = self.ckpt.restore(run, failed)


def boruvka_rounds(graph: DistGraph, run: MSTRun) -> DistGraph:
    """The distributed Borůvka main loop (without preprocessing/base case).

    A thin wrapper driving :class:`BoruvkaRoundBody` through the unified
    :class:`~repro.core.rounds.RoundScheduler`, which owns the round
    lifecycle: observability hooks, sanitizer checkpoints, fault brackets
    and round counting.  When a fault injector with fail-stop events is
    attached (``machine.faults``, see docs/faults.md), every round is
    bracketed by a :class:`~repro.faults.RoundCheckpoint`: the round input
    is replicated to buddy PEs before the round, a failure heartbeat is
    polled at the round barrier, and on a fail-stop the checkpoint is
    restored and the round replayed -- with the RNG streams rolled back,
    so the replay recomputes exactly the same contraction (the
    bit-identical-MST recovery invariant).  Replays do not consume
    ``max_rounds`` budget; they are bounded by the schedule's
    ``max_replays`` instead.
    """
    body = BoruvkaRoundBody(graph, run)
    RoundScheduler(run, run.cfg.max_rounds).run_rounds(body)
    return body.graph


def redistribute_mst(run: MSTRun, snapshot: InputSnapshot) -> List[Edges]:
    """REDISTRIBUTEMST: route (id, w) records home; decode original endpoints."""
    machine = run.machine
    p = machine.n_procs
    rows, dests = [], []
    for i in range(p):
        rec = run.collected(i)
        rows.append(rec)
        dests.append(
            np.searchsorted(snapshot.id_starts, rec[:, 0], side="right") - 1
        )
    recv, _, _ = route_rows(run.comm, rows, dests, method=run.cfg.alltoall)
    out: List[Edges] = []
    for i in range(p):
        rec = recv[i]
        comp = snapshot.compressed[i]
        # Paper accounting: the compressed copy is decoded twice.
        machine.charge_scan(np.array([2 * comp.n_edges]),
                            ranks=np.array([i]))
        if len(rec) == 0:
            out.append(Edges.empty())
            continue
        ids = rec[:, 0]
        local_pos = ids - snapshot.id_starts[i]
        u, v = comp.lookup(local_pos)
        w = snapshot.weights[i][local_pos]
        if not np.array_equal(w, rec[:, 1]):
            raise RuntimeError("MST edge weight mismatch during output")
        order = np.argsort(ids, kind="stable")
        out.append(Edges(u[order], v[order], w[order], ids[order]))
    return out


def distributed_boruvka(
    graph: DistGraph,
    cfg: Optional[BoruvkaConfig] = None,
    run: Optional[MSTRun] = None,
) -> MSTResult:
    """Run Algorithm 1 end to end on a distributed graph.

    The input graph object is consumed (parts are re-distributed).  Returns
    the per-PE MSF with original endpoints, total weight and timings.
    """
    machine = graph.machine
    cfg = cfg or BoruvkaConfig()
    run = run or MSTRun(machine, cfg)
    snapshot = InputSnapshot.take(graph)
    # Stashed for incremental replay (repro.serve): checkpointed round
    # inputs carry edge ids whose endpoint decode needs this snapshot.
    run.input_snapshot = snapshot

    if cfg.local_preprocessing:
        with machine.phase("local_preprocessing"):
            graph = local_preprocessing(graph, run)
    graph = boruvka_rounds(graph, run)
    with machine.phase("base_case"):
        base_case(graph, run)
    with machine.phase("mst_output"):
        msf_parts = redistribute_mst(run, snapshot)
    weights = [int(part.w.sum()) for part in msf_parts]
    total = int(run.comm.allreduce(weights))
    return MSTResult(
        msf_parts=msf_parts,
        total_weight=total,
        elapsed=machine.elapsed(),
        phase_times=dict(machine.phase_times),
        rounds=run.rounds,
        algorithm="boruvka",
        stats={
            "bytes_communicated": machine.bytes_communicated,
            "n_collectives": machine.n_collectives,
        },
    )
