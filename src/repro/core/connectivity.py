"""Distributed connected components on the same substrate.

The paper closes by framing its machinery as "an important step in a larger
effort to obtain efficient massively parallel graph algorithms on a larger
range of problems".  Connected components is the canonical next problem: it
is exactly the MST machinery with weights ignored, so this module runs
Algorithm 1's round structure (minimum-*label* edges instead of
minimum-weight edges, same contraction / label exchange / redistribution /
base case) and returns a component labelling instead of a forest.

The implementation reuses every subroutine unchanged -- the cheapest
demonstration that the building blocks generalise -- by running the MST
pipeline with all weights equal to 1 and collecting the component
representative of every original vertex through the distributed array ``P``
from Filter-Borůvka.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..dgraph.dist_graph import DistGraph
from ..dgraph.edges import Edges
from .base_case import base_case
from .boruvka import boruvka_rounds
from .config import BoruvkaConfig
from .local_preprocessing import local_preprocessing
from .plabels import DistributedLabelArray
from .state import MSTRun


@dataclass
class ComponentsResult:
    """Outcome of a distributed connected-components computation."""

    #: Block-distributed representative array: ``blocks[i]`` holds the
    #: representative of vertices ``bounds[i]..bounds[i+1)``.
    blocks: List[np.ndarray]
    bounds: np.ndarray
    #: Number of connected components among vertices incident to edges.
    n_components: int
    #: Simulated makespan in seconds.
    elapsed: float
    phase_times: Dict[str, float]

    def labels(self) -> np.ndarray:
        """The full representative array (diagnostic assembly)."""
        return np.concatenate(self.blocks) if len(self.bounds) > 1 else \
            np.empty(0, dtype=np.int64)


def connected_components(
    graph: DistGraph,
    cfg: Optional[BoruvkaConfig] = None,
) -> ComponentsResult:
    """Label the connected components of a distributed graph.

    Every vertex's representative is the smallest-rooted star label the
    contraction hierarchy produced; two vertices are in the same component
    iff their representatives are equal.  Vertices in ``[0, max_label]``
    that have no incident edges keep themselves as representatives.
    """
    machine = graph.machine
    cfg = cfg or BoruvkaConfig()
    run = MSTRun(machine, cfg)

    max_label = run.comm.allreduce(
        [int(part.u.max()) if len(part) else -1 for part in graph.parts],
        op="max")
    n_labels = max_label + 1
    P = DistributedLabelArray(run.comm, max(n_labels, 1),
                              alltoall=cfg.alltoall)
    run.label_sink = P.sink

    # Ignore weights: uniform-weight copy makes every edge a valid choice
    # and the MST pipeline degenerates into hook-and-contract connectivity.
    uniform_parts = [
        Edges(p.u, p.v, np.ones(len(p), dtype=np.int64), p.id)
        for p in graph.parts
    ]
    uniform = DistGraph(machine, uniform_parts, check=False)

    if cfg.local_preprocessing:
        with machine.phase("local_preprocessing"):
            uniform = local_preprocessing(uniform, run)
    uniform = boruvka_rounds(uniform, run)
    with machine.phase("base_case"):
        base_case(uniform, run)
    P.contract()

    # Representatives of existing components: resolve each original vertex.
    reps = []
    for i in range(machine.n_procs):
        if len(graph.parts[i]):
            reps.append(np.unique(graph.parts[i].u))
        else:
            reps.append(np.empty(0, dtype=np.int64))
    resolved = P.request(reps)
    n_components = len(np.unique(np.concatenate(
        [r for r in resolved if len(r)]))) if any(
            len(r) for r in resolved) else 0

    return ComponentsResult(
        blocks=[b.copy() for b in P.blocks],
        bounds=P.bounds.copy(),
        n_components=n_components,
        elapsed=machine.elapsed(),
        phase_times=dict(machine.phase_times),
    )
