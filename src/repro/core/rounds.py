"""The unified round scheduler: one fault-tolerant, observable round loop.

Every distributed algorithm in this package -- Algorithm 1's Borůvka loop,
Filter-Borůvka's kernel phase, and the round-looped competitor
reimplementations (sparseMatrix/Awerbuch-Shiloach, MND-MST, distributed
Jarník-Prim) -- shares the same synchronous skeleton: check for
termination, run one bulk-synchronous round of phases, detect faults at
the round barrier, count the round, and guard against divergence.
:class:`RoundScheduler` owns that skeleton exactly once, so the cross-
cutting concerns stay written in one place:

* **observability** -- the :func:`~repro.obs.hooks.observe_round_start` /
  :func:`~repro.obs.hooks.observe_round_end` bracket and the engine's
  :meth:`~repro.engines.base.ExecutionEngine.note_round` failure
  attribution;
* **sanitizer checkpoints** -- per-round clock-monotonicity assertions via
  :meth:`~repro.simmpi.machine.Machine.checkpoint`;
* **fault brackets** -- when the machine's fault schedule can fail-stop
  PEs, every round is bracketed by a checkpoint taken through the body's
  :class:`CheckpointableState`, a failure heartbeat is polled at the round
  barrier, and on a fail-stop the checkpoint is restored and the round
  replayed with the replay budget enforced (see docs/faults.md);
* **round counting** -- the canonical zero-based round ids
  (``run.rounds``) every driver reports, and the per-invocation
  ``max_rounds`` divergence guard (replays never consume it).

Drivers are reduced to a :class:`RoundBody`: a termination pre-check
(:meth:`RoundBody.prologue`), one round of work (:meth:`RoundBody.round`),
and -- if the driver supports fail-stop recovery -- a
:meth:`RoundBody.checkpoint_state` returning the driver's
:class:`CheckpointableState`.  See docs/rounds.md for the lifecycle
diagram and how incremental replay / wave scheduling plug in.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Protocol, runtime_checkable

import numpy as np

from ..obs.hooks import observe_round_end, observe_round_start
from .state import MSTRun


class RoundStats(NamedTuple):
    """Host-known size of the problem entering one round.

    Fed to :func:`~repro.obs.hooks.observe_round_start`; the values must be
    numbers the driver already computed for its own control flow --
    recomputing them for observability would issue extra collectives and
    break the tracing-invisibility invariant.
    """

    #: Vertices (or active entities: PEs for MND-MST's merge hierarchy).
    vertices: int
    #: Directed edges still in play.
    edges: int


class RoundCheckpointHandle(Protocol):
    """One taken checkpoint, restorable after a fail-stop.

    Returned by :meth:`CheckpointableState.take`; must survive repeated
    :meth:`restore` calls (a replay can fail again and restore twice).
    """

    def restore(self, run: MSTRun, failed: np.ndarray) -> None:
        """Roll the driver's state back; charge honest recovery cost.

        ``failed`` holds the fail-stopped PE ranks.  Implementations charge
        the detection timeout, the buddy-to-replacement re-fetch and any
        re-adoption work through the cost model, restore the machine RNG
        streams and truncate the MST records -- see
        :class:`repro.faults.recovery.RoundCheckpoint` for the reference
        implementation.
        """


@runtime_checkable
class CheckpointableState(Protocol):
    """What a fail-stop replay must be able to snapshot and restore.

    A driver that supports round-granularity recovery exposes one of
    these from :meth:`RoundBody.checkpoint_state`.  ``take`` snapshots
    everything a replayed round reads -- the per-PE partition state, the
    MST-record lengths and the machine RNG streams -- replicates it to
    buddy PEs and charges the copy + transfer cost; the returned handle's
    ``restore`` undoes the failed round.  Drivers whose state cannot be
    replayed return ``None`` from :meth:`RoundBody.checkpoint_state`
    instead, and the scheduler refuses fail-stop schedules up front
    (no silent no-op recovery).
    """

    def take(self, run: MSTRun) -> RoundCheckpointHandle:
        """Snapshot the round input; charge its simulated cost."""


class RoundBody:
    """One driver's per-round work, scheduled by :class:`RoundScheduler`.

    Subclasses implement the three hooks below; the scheduler owns
    everything else (observability, fault brackets, counting, divergence).
    """

    #: Sanitizer-checkpoint label prefix (``{label}_round_{round_no}``).
    label: str = "round"
    #: Error message raised when ``max_rounds`` is exhausted.
    divergence_error: str = "round loop exceeded max_rounds"

    def prologue(self, round_no: int) -> Optional[RoundStats]:
        """Pre-round termination check.

        Returns ``None`` when the loop is done *before* doing any round
        work (Borůvka's threshold check), else the :class:`RoundStats`
        entering the round.  Any collectives needed for the decision are
        issued here, every round -- including before a replayed round, so
        a replay re-communicates exactly like the original attempt.
        """
        raise NotImplementedError

    def round(self, round_no: int) -> bool:
        """Execute one round; return True when it detected convergence.

        A ``True`` return still counts the round (the work and its
        collectives happened; this is the canonical convention satellite
        drivers like Awerbuch-Shiloach's detection iteration follow).
        """
        raise NotImplementedError

    def checkpoint_state(self) -> Optional[CheckpointableState]:
        """The driver's replay snapshot source, or ``None`` if unsupported.

        Only consulted when the machine's fault schedule can fail-stop
        PEs.  Returning ``None`` makes the scheduler raise
        :class:`UnsupportedFaultSchedule` instead of silently running a
        schedule it cannot recover from.
        """
        return None


class UnsupportedFaultSchedule(RuntimeError):
    """A fail-stop schedule was attached to a driver that cannot replay."""


class RoundCheckpointLog:
    """Retained per-round checkpoint handles for incremental replay.

    The fault bracket takes one checkpoint per round and drops it as soon
    as the round commits; the serving layer (:mod:`repro.serve`) instead
    needs the *whole history* so an edge-churn epoch can resume from the
    earliest round its deletions invalidate.  Attaching one of these to
    ``MSTRun.checkpoint_log`` makes the scheduler take the same
    buddy-replicated checkpoint every round -- honestly charged under the
    ``fault_checkpoint`` phase whether or not a fault schedule is active
    -- and retain the handle here instead of discarding it.

    The log keeps a contiguous prefix of rounds ``0..k``: once
    ``max_entries`` is reached, later rounds are simply not recorded
    (replays then start from the deepest retained round instead).  A
    round replayed after a fail-stop overwrites its own entry, so the log
    never holds two snapshots of the same round.  Bodies that cannot
    checkpoint (``checkpoint_state() is None``) mark the log unsupported
    rather than raising -- serving falls back to full recompute.
    """

    def __init__(self, max_entries: Optional[int] = None):
        self.max_entries = max_entries
        #: round number -> (body label, checkpoint handle).
        self.entries: dict = {}
        #: Label of the body that refused to checkpoint (None = fine).
        self.unsupported: Optional[str] = None

    def wants(self, round_no: int) -> bool:
        """Whether the scheduler should take+record this round."""
        if self.unsupported is not None:
            return False
        if round_no in self.entries:
            return True  # replay of a logged round: refresh the entry
        return self.max_entries is None or len(self.entries) < self.max_entries

    def record(self, round_no: int, label: str, handle) -> None:
        """Retain one round's checkpoint handle."""
        self.entries[round_no] = (label, handle)

    def mark_unsupported(self, label: str) -> None:
        """The driver cannot checkpoint; drop everything recorded."""
        self.unsupported = label
        self.entries.clear()

    def clear(self) -> None:
        """Forget every entry and any unsupported marker."""
        self.entries.clear()
        self.unsupported = None

    def __len__(self) -> int:
        return len(self.entries)

    def handle(self, round_no: int):
        """The checkpoint handle logged for ``round_no`` (or ``None``)."""
        entry = self.entries.get(round_no)
        return entry[1] if entry is not None else None

    def deepest_at_or_before(self, round_no: int) -> Optional[int]:
        """Latest logged round ``<= round_no``, or None when none is."""
        eligible = [r for r in self.entries if r <= round_no]
        return max(eligible) if eligible else None


class RoundScheduler:
    """Drives a :class:`RoundBody` through the unified round lifecycle.

    One scheduler instance corresponds to one loop invocation: its
    ``max_rounds`` budget is per-invocation (Filter-Borůvka's kernel phase
    constructs a fresh scheduler per recursion base case while the
    canonical round ids in ``run.rounds`` keep counting across them).

    Per round, in order:

    1. ``body.prologue`` -- termination pre-check (may issue collectives);
    2. fault checkpoint via ``body.checkpoint_state().take`` (when the
       schedule can fail-stop PEs and/or a :class:`RoundCheckpointLog`
       is attached to the run), under the ``fault_checkpoint`` phase;
       logged rounds retain the handle for incremental replay;
    3. ``observe_round_start`` + ``engine.note_round`` -- observability;
    4. ``body.round`` -- the driver's phases;
    5. heartbeat poll at the round barrier; on fail-stop: enforce the
       replay budget, restore under the ``fault_recovery`` phase, and
       replay from step 1 without consuming ``max_rounds``;
    6. sanitizer checkpoint, ``observe_round_end``, round count.
    """

    def __init__(self, run: MSTRun, max_rounds: int):
        self.run = run
        self.machine = run.machine
        self.max_rounds = max_rounds

    def run_rounds(self, body: RoundBody) -> int:
        """Run ``body`` to convergence; returns the number of rounds.

        Raises ``RuntimeError(body.divergence_error)`` when ``max_rounds``
        productive (non-replayed) rounds pass without convergence, and
        :class:`UnsupportedFaultSchedule` when a fail-stop schedule is
        attached but the body cannot checkpoint.
        """
        machine = self.machine
        run = self.run
        fi = machine.faults
        protect = fi is not None and fi.protects_rounds
        log = getattr(run, "checkpoint_log", None)
        state = body.checkpoint_state() if (protect or log is not None) \
            else None
        if protect and state is None:
            raise UnsupportedFaultSchedule(
                f"fault schedule {fi.schedule!r} can fail-stop PEs but the "
                f"{body.label!r} round body does not support "
                f"checkpoint/replay; run it without pe_fail events")
        if log is not None and state is None:
            # Incremental-replay capture degrades gracefully: the serving
            # layer sees the unsupported mark and does full recomputes.
            log.mark_unsupported(body.label)
            log = None
        rounds_done = 0
        while rounds_done < self.max_rounds:
            stats = body.prologue(run.rounds)
            if stats is None:
                return rounds_done
            ckpt = None
            want_log = log is not None and log.wants(run.rounds)
            if state is not None and (protect or want_log):
                with machine.phase("fault_checkpoint"):
                    ckpt = state.take(run)
                if want_log:
                    log.record(run.rounds, body.label, ckpt)
            # Both stats were needed for control flow anyway; the hooks
            # reuse them so tracing never issues extra collectives.
            observe_round_start(machine, run.rounds, stats.vertices,
                                stats.edges, label=body.label)
            machine.engine.note_round(run.rounds)
            converged = body.round(run.rounds)
            if ckpt is not None and protect:
                failed = fi.poll_pe_failures(run.rounds)
                if len(failed):
                    fi.count_replay(run.rounds)
                    with machine.phase("fault_recovery"):
                        ckpt.restore(run, failed)
                    continue
            machine.checkpoint(f"{body.label}_round_{run.rounds}")
            observe_round_end(machine, run.rounds, label=body.label)
            run.rounds += 1
            rounds_done += 1
            if converged:
                return rounds_done
        raise RuntimeError(body.divergence_error)
