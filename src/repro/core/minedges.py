"""MINEDGES: lightest incident edge per local vertex (Algorithm 1, step 1).

For every *non-shared* local vertex the lexicographically
``(w, min(u,v), max(u,v))``-smallest incident edge is selected ("shared
vertices are only considered in the base case", Section IV).  Because the
part is sorted by source vertex, the per-vertex groups are contiguous and
the selection is one vectorised pass (the paper's implementation uses
parlay's Min-Priority-Write; we charge the equivalent linear scan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..dgraph.dist_graph import DistGraph


@dataclass
class ChosenEdges:
    """Per-PE result of MINEDGES.

    Arrays are aligned with the PE's *local vertex list* ``vids`` (all
    distinct sources of the part, shared or not).  For shared vertices (mask
    ``shared``) no edge is chosen and the edge fields are undefined.
    """

    vids: np.ndarray        # sorted distinct local vertex ids
    shared: np.ndarray      # bool: vertex is globally shared
    to: np.ndarray          # chosen edge's other endpoint
    weight: np.ndarray      # chosen edge's weight
    edge_id: np.ndarray     # chosen edge's original directed-edge id

    def __len__(self) -> int:
        return len(self.vids)


def min_edges(graph: DistGraph) -> List[ChosenEdges]:
    """Run MINEDGES on every PE; one linear pass per PE, no communication."""
    shared_set = graph.shared_vertex_set()
    out: List[ChosenEdges] = []
    for i in range(graph.machine.n_procs):
        part = graph.parts[i]
        vids, starts = graph.vertex_groups(i)
        if len(vids) == 0:
            z = np.empty(0, dtype=np.int64)
            out.append(ChosenEdges(z, np.zeros(0, dtype=bool),
                                   z.copy(), z.copy(), z.copy()))
            continue
        # Group index of every edge (groups are contiguous by sortedness).
        group = np.repeat(np.arange(len(vids)), np.diff(starts))
        cu = np.minimum(part.u, part.v)
        cv = np.maximum(part.u, part.v)
        order = np.lexsort((cv, cu, part.w, group))
        g_sorted = group[order]
        first = np.ones(len(g_sorted), dtype=bool)
        first[1:] = g_sorted[1:] != g_sorted[:-1]
        pick = order[first]  # one edge index per group, in group order
        shared = np.isin(vids, shared_set, assume_unique=True)
        out.append(ChosenEdges(
            vids=vids,
            shared=shared,
            to=part.v[pick],
            weight=part.w[pick],
            edge_id=part.id[pick],
        ))
        graph.machine.charge_scan(np.array([len(part)]),
                                  ranks=np.array([i]))
    return out
