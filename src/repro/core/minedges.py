"""MINEDGES: lightest incident edge per local vertex (Algorithm 1, step 1).

For every *non-shared* local vertex the lexicographically
``(w, min(u,v), max(u,v))``-smallest incident edge is selected ("shared
vertices are only considered in the base case", Section IV).  Because the
part is sorted by source vertex, the per-vertex groups are contiguous and
the selection is one vectorised pass (the paper's implementation uses
parlay's Min-Priority-Write; we charge the equivalent linear scan).

Two engines compute the same result (see :mod:`repro.kernels`): the
reference per-PE loop, and a batched variant that runs one flat segmented
lexsort over all PEs' edges at once.  Simulated costs are identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..kernels.segmented import packed_lexsort

from ..dgraph.dist_graph import DistGraph
from ..dgraph.search import sorted_lookup
from ..kernels import batched_for, first_in_group, narrow_payload


@dataclass
class ChosenEdges:
    """Per-PE result of MINEDGES.

    Arrays are aligned with the PE's *local vertex list* ``vids`` (all
    distinct sources of the part, shared or not).  For shared vertices (mask
    ``shared``) no edge is chosen and the edge fields are undefined.
    """

    vids: np.ndarray        # sorted distinct local vertex ids
    shared: np.ndarray      # bool: vertex is globally shared
    to: np.ndarray          # chosen edge's other endpoint
    weight: np.ndarray      # chosen edge's weight
    edge_id: np.ndarray     # chosen edge's original directed-edge id

    def __len__(self) -> int:
        return len(self.vids)


def _empty_chosen() -> ChosenEdges:
    z = np.empty(0, dtype=np.int64)
    return ChosenEdges(z, np.zeros(0, dtype=bool), z.copy(), z.copy(),
                       z.copy())


def min_edges(graph: DistGraph) -> List[ChosenEdges]:
    """Run MINEDGES on every PE; one linear pass per PE, no communication."""
    eng = getattr(graph.machine, "engine", None)
    if eng is not None and eng.fanout:
        return _min_edges_fanout(graph, eng)
    if batched_for(graph.machine):
        return _min_edges_batched(graph)
    return _min_edges_loop(graph)


def min_edges_one_pe(u: np.ndarray, v: np.ndarray, w: np.ndarray,
                     eid: np.ndarray, starts: np.ndarray):
    """Pure per-PE MINEDGES kernel: pick one edge per vertex group.

    ``starts`` delimits the contiguous per-source groups of the (sorted)
    part, exactly as returned by ``DistGraph.vertex_groups``.  Returns
    ``(to, weight, edge_id)`` aligned with the groups.  Pure function of its
    arguments -- no machine, RNG or cost-model access -- so fan-out engines
    can run it in worker processes (:mod:`repro.engines.tasks`).
    """
    # Group index of every edge (groups are contiguous by sortedness).
    group = np.repeat(np.arange(len(starts) - 1), np.diff(starts))
    cu = np.minimum(u, v)
    cv = np.maximum(u, v)
    order = packed_lexsort((cv, cu, w, group))
    g_sorted = group[order]
    first = np.ones(len(g_sorted), dtype=bool)
    first[1:] = g_sorted[1:] != g_sorted[:-1]
    pick = order[first]  # one edge index per group, in group order
    return v[pick], w[pick], eid[pick]


def _min_edges_loop(graph: DistGraph) -> List[ChosenEdges]:
    """Reference engine: one numpy pass per PE."""
    shared_set = graph.shared_vertex_set()
    out: List[ChosenEdges] = []
    for i in range(graph.machine.n_procs):
        part = graph.parts[i]
        vids, starts = graph.vertex_groups(i)
        if len(vids) == 0:
            out.append(_empty_chosen())
            continue
        to, weight, edge_id = min_edges_one_pe(
            np.asarray(part.u), np.asarray(part.v), np.asarray(part.w),
            np.asarray(part.id), starts)
        shared = np.isin(vids, shared_set, assume_unique=True)
        out.append(ChosenEdges(
            vids=vids,
            shared=shared,
            to=to,
            weight=weight,
            edge_id=edge_id,
        ))
        graph.machine.charge_scan(np.array([len(part)]),
                                  ranks=np.array([i]))
    return out


def _min_edges_fanout(graph: DistGraph, eng) -> List[ChosenEdges]:
    """Fan-out engine: ship every PE's pure selection to a worker.

    Only the pure kernel (:func:`min_edges_one_pe`) leaves the driver; the
    shared-vertex lookup and the cost charging stay here, in ascending rank
    order, so simulated seconds are bit-identical to the other engines.
    """
    shared_set = graph.shared_vertex_set()
    p = graph.machine.n_procs
    lengths = np.array([len(part) for part in graph.parts], dtype=np.int64)
    payloads: List = []
    vids_per_pe: List = []
    for i in range(p):
        part = graph.parts[i]
        vids, starts = graph.vertex_groups(i)
        vids_per_pe.append(vids)
        if len(vids) == 0:
            payloads.append(None)
            continue
        payloads.append(narrow_payload({
            "u": np.asarray(part.u), "v": np.asarray(part.v),
            "w": np.asarray(part.w), "eid": np.asarray(part.id),
            "starts": np.asarray(starts),
        }))
    results = eng.pe_map("minedges", payloads)
    out: List[ChosenEdges] = []
    for i in range(p):
        res = results[i]
        if res is None:
            out.append(_empty_chosen())
            continue
        vids = vids_per_pe[i]
        shared = np.isin(vids, shared_set, assume_unique=True)
        out.append(ChosenEdges(
            vids=vids,
            shared=shared,
            to=res["to"],
            weight=res["weight"],
            edge_id=res["edge_id"],
        ))
    nonempty = np.flatnonzero(lengths)
    if len(nonempty):
        graph.machine.charge_scan(lengths[nonempty], ranks=nonempty)
    return out


def _min_edges_batched(graph: DistGraph) -> List[ChosenEdges]:
    """Batched engine: one segmented lexsort over all PEs' edges."""
    shared_set = graph.shared_vertex_set()
    p = graph.machine.n_procs
    parts = graph.parts
    lengths = np.array([len(part) for part in parts], dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return [_empty_chosen() for _ in range(p)]
    off = np.zeros(p + 1, dtype=np.int64)
    np.cumsum(lengths, out=off[1:])
    u = np.concatenate([np.asarray(part.u) for part in parts])
    v = np.concatenate([np.asarray(part.v) for part in parts])
    w = np.concatenate([np.asarray(part.w) for part in parts])
    eid = np.concatenate([np.asarray(part.id) for part in parts])

    # Vertex groups of every PE at once: a group starts where the source
    # changes *or* a new PE's segment begins (shared vertices stay distinct
    # per PE, exactly like per-PE vertex_groups).
    change = np.ones(total, dtype=bool)
    change[1:] = u[1:] != u[:-1]
    seg_starts = off[:p][off[:p] < total]
    change[seg_starts] = True
    group = np.cumsum(change) - 1
    gstart = np.flatnonzero(change)
    vids_flat = u[gstart]
    seg = np.repeat(np.arange(p, dtype=np.int64), lengths)
    gcounts = np.bincount(seg[gstart], minlength=p)
    goff = np.zeros(p + 1, dtype=np.int64)
    np.cumsum(gcounts, out=goff[1:])

    cu = np.minimum(u, v)
    cv = np.maximum(u, v)
    # Group ids are globally increasing PE-major, so one stable lexsort is
    # every PE's per-group (w, min, max) selection at once.
    order = packed_lexsort((cv, cu, w, group))
    pick = order[first_in_group(group[order])]  # one per group, group order
    to_flat = v[pick]
    w_flat = w[pick]
    id_flat = eid[pick]
    shared_flat = sorted_lookup(shared_set, vids_flat)[0]

    out: List[ChosenEdges] = []
    for i in range(p):
        if lengths[i] == 0:
            out.append(_empty_chosen())
            continue
        sl = slice(goff[i], goff[i + 1])
        out.append(ChosenEdges(
            vids=vids_flat[sl],
            shared=shared_flat[sl],
            to=to_flat[sl],
            weight=w_flat[sl],
            edge_id=id_flat[sl],
        ))
    nonempty = np.flatnonzero(lengths)
    graph.machine.charge_scan(lengths[nonempty], ranks=nonempty)
    return out
