"""MINEDGES: lightest incident edge per local vertex (Algorithm 1, step 1).

For every *non-shared* local vertex the lexicographically
``(w, min(u,v), max(u,v))``-smallest incident edge is selected ("shared
vertices are only considered in the base case", Section IV).  Because the
part is sorted by source vertex, the per-vertex groups are contiguous and
the selection is one vectorised pass (the paper's implementation uses
parlay's Min-Priority-Write; we charge the equivalent linear scan).

Two engines compute the same result (see :mod:`repro.kernels`): the
reference per-PE loop, and a batched variant that runs one flat segmented
lexsort over all PEs' edges at once.  Simulated costs are identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..kernels.segmented import packed_lexsort

from ..dgraph.dist_graph import DistGraph
from ..dgraph.search import sorted_lookup
from ..kernels import batched_enabled, first_in_group


@dataclass
class ChosenEdges:
    """Per-PE result of MINEDGES.

    Arrays are aligned with the PE's *local vertex list* ``vids`` (all
    distinct sources of the part, shared or not).  For shared vertices (mask
    ``shared``) no edge is chosen and the edge fields are undefined.
    """

    vids: np.ndarray        # sorted distinct local vertex ids
    shared: np.ndarray      # bool: vertex is globally shared
    to: np.ndarray          # chosen edge's other endpoint
    weight: np.ndarray      # chosen edge's weight
    edge_id: np.ndarray     # chosen edge's original directed-edge id

    def __len__(self) -> int:
        return len(self.vids)


def _empty_chosen() -> ChosenEdges:
    z = np.empty(0, dtype=np.int64)
    return ChosenEdges(z, np.zeros(0, dtype=bool), z.copy(), z.copy(),
                       z.copy())


def min_edges(graph: DistGraph) -> List[ChosenEdges]:
    """Run MINEDGES on every PE; one linear pass per PE, no communication."""
    if batched_enabled():
        return _min_edges_batched(graph)
    return _min_edges_loop(graph)


def _min_edges_loop(graph: DistGraph) -> List[ChosenEdges]:
    """Reference engine: one numpy pass per PE."""
    shared_set = graph.shared_vertex_set()
    out: List[ChosenEdges] = []
    for i in range(graph.machine.n_procs):
        part = graph.parts[i]
        vids, starts = graph.vertex_groups(i)
        if len(vids) == 0:
            out.append(_empty_chosen())
            continue
        # Group index of every edge (groups are contiguous by sortedness).
        group = np.repeat(np.arange(len(vids)), np.diff(starts))
        cu = np.minimum(part.u, part.v)
        cv = np.maximum(part.u, part.v)
        order = packed_lexsort((cv, cu, part.w, group))
        g_sorted = group[order]
        first = np.ones(len(g_sorted), dtype=bool)
        first[1:] = g_sorted[1:] != g_sorted[:-1]
        pick = order[first]  # one edge index per group, in group order
        shared = np.isin(vids, shared_set, assume_unique=True)
        out.append(ChosenEdges(
            vids=vids,
            shared=shared,
            to=part.v[pick],
            weight=part.w[pick],
            edge_id=part.id[pick],
        ))
        graph.machine.charge_scan(np.array([len(part)]),
                                  ranks=np.array([i]))
    return out


def _min_edges_batched(graph: DistGraph) -> List[ChosenEdges]:
    """Batched engine: one segmented lexsort over all PEs' edges."""
    shared_set = graph.shared_vertex_set()
    p = graph.machine.n_procs
    parts = graph.parts
    lengths = np.array([len(part) for part in parts], dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return [_empty_chosen() for _ in range(p)]
    off = np.zeros(p + 1, dtype=np.int64)
    np.cumsum(lengths, out=off[1:])
    u = np.concatenate([np.asarray(part.u) for part in parts])
    v = np.concatenate([np.asarray(part.v) for part in parts])
    w = np.concatenate([np.asarray(part.w) for part in parts])
    eid = np.concatenate([np.asarray(part.id) for part in parts])

    # Vertex groups of every PE at once: a group starts where the source
    # changes *or* a new PE's segment begins (shared vertices stay distinct
    # per PE, exactly like per-PE vertex_groups).
    change = np.ones(total, dtype=bool)
    change[1:] = u[1:] != u[:-1]
    seg_starts = off[:p][off[:p] < total]
    change[seg_starts] = True
    group = np.cumsum(change) - 1
    gstart = np.flatnonzero(change)
    vids_flat = u[gstart]
    seg = np.repeat(np.arange(p, dtype=np.int64), lengths)
    gcounts = np.bincount(seg[gstart], minlength=p)
    goff = np.zeros(p + 1, dtype=np.int64)
    np.cumsum(gcounts, out=goff[1:])

    cu = np.minimum(u, v)
    cv = np.maximum(u, v)
    # Group ids are globally increasing PE-major, so one stable lexsort is
    # every PE's per-group (w, min, max) selection at once.
    order = packed_lexsort((cv, cu, w, group))
    pick = order[first_in_group(group[order])]  # one per group, group order
    to_flat = v[pick]
    w_flat = w[pick]
    id_flat = eid[pick]
    shared_flat = sorted_lookup(shared_set, vids_flat)[0]

    out: List[ChosenEdges] = []
    for i in range(p):
        if lengths[i] == 0:
            out.append(_empty_chosen())
            continue
        sl = slice(goff[i], goff[i + 1])
        out.append(ChosenEdges(
            vids=vids_flat[sl],
            shared=shared_flat[sl],
            to=to_flat[sl],
            weight=w_flat[sl],
            edge_id=id_flat[sl],
        ))
    nonempty = np.flatnonzero(lengths)
    graph.machine.charge_scan(lengths[nonempty], ranks=nonempty)
    return out
