"""Legacy setup shim.

The evaluation environment has no network access and no ``wheel`` package, so
PEP 517/660 editable installs cannot build an editable wheel.  This shim lets
``pip install -e .`` fall back to the classic ``setup.py develop`` path.  All
package metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
