"""Dense-GNM weak scaling: the filtering effect grows with density.

Section VII-A: "we see -- especially for GNM -- the effectiveness of our
filter approach being up to 4 times faster than our non-filter variant.  In
additional weak scaling experiments on denser graphs with 2^23 edges per
core, which we omit due to space limitations, this effect is even stronger."

The omitted experiment is cheap to run in simulation: this bench sweeps the
per-core density (m/n = 16 as in Fig. 3, then 4x denser) on GNM and asserts
that filterBoruvka's advantage over boruvka *increases* with density --
exactly the mechanism of Theorem 1 (only ~n of the m edges are ever
processed by the expensive distributed machinery; the rest die in the
filter).
"""

from __future__ import annotations

from repro.analysis import series_table, weak_scaling

from _common import (
    PER_CORE_EDGES,
    PER_CORE_EDGES_DENSE,
    PER_CORE_VERTICES,
    bench_recorder,
    cached_graph,
    core_sweep,
    record_experiments,
    report,
)


def _make(n, m, seed):
    return cached_graph("family", family="GNM", n=n, m=m, seed=seed)


def _sweep():
    out = {}
    for label, per_core_m in (("m/n=16", PER_CORE_EDGES),
                              ("m/n=64", PER_CORE_EDGES_DENSE)):
        out[label] = weak_scaling(
            _make, ["boruvka", "filter-boruvka"], core_sweep(lo=4),
            PER_CORE_VERTICES, per_core_m, seed=10,
        )
    return out


def test_dense_gnm_filter_advantage_grows(benchmark):
    with bench_recorder("dense_gnm_weak_scaling") as rec:
        out = benchmark.pedantic(_sweep, rounds=1, iterations=1)
        for label, results in out.items():
            record_experiments(rec, results, prefix=f"{label}/")
    lines = ["GNM weak scaling at two densities, time [sim s]"]
    advantages = {}
    for label, results in out.items():
        lines += ["", f"--- {label} ---", series_table(results)]
        top = max(r.cores for r in results)
        t = {r.algorithm: r.elapsed for r in results
             if r.cores == top and r.status == "ok"}
        advantages[label] = t["boruvka"] / t["filter-boruvka"]
        lines.append(f"filter advantage at p={top}: "
                     f"{advantages[label]:.2f}x")
    lines.append("\npaper: 'on denser graphs ... this effect is even "
                 "stronger'")
    report("dense_gnm_weak_scaling", "\n".join(lines))

    assert advantages["m/n=16"] > 1.0, "filtering should pay off on GNM"
    assert advantages["m/n=64"] > advantages["m/n=16"], (
        "the filter advantage should grow with density", advantages)
