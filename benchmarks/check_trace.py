#!/usr/bin/env python
"""Validate trace artifacts and the tracing-invisibility invariant in CI.

Usage::

    python benchmarks/check_trace.py TRACES_DIR [TRACED_BENCH UNTRACED_BENCH]

Exits non-zero when

* ``TRACES_DIR`` contains no ``*.trace.json`` artifacts (the traced run
  silently produced nothing),
* any Chrome-trace artifact fails :func:`repro.obs.validate_chrome_trace`
  (unknown phases, non-monotone per-thread timestamps, unmatched B/E
  spans, bad pid/tid),
* a trace artifact lacks its matching ``*.metrics.json`` or the metrics
  dump is not a JSON object with the standard sections, or
* the two optional ``BENCH_*.json`` records disagree on any simulated
  entry -- tracing must never change simulated seconds, so the traced
  rerun has to be bit-for-bit identical to the untraced baseline.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import check_schema_version, validate_chrome_trace  # noqa: E402

#: Sections every metrics dump must carry.
METRICS_SECTIONS = ("counters", "gauges", "histograms", "series", "per_pe")


def check_traces_dir(traces_dir: Path) -> list[str]:
    """Validate every trace/metrics artifact pair under ``traces_dir``."""
    failures: list[str] = []
    traces = sorted(traces_dir.rglob("*.trace.json"))
    if not traces:
        return [f"no *.trace.json artifacts under {traces_dir}"]
    for trace_path in traces:
        try:
            payload = json.loads(trace_path.read_text())
        except (OSError, ValueError) as exc:
            failures.append(f"{trace_path}: unreadable ({exc})")
            continue
        problems = validate_chrome_trace(payload)
        for msg in problems[:10]:
            failures.append(f"{trace_path}: {msg}")
        n_events = len(payload.get("traceEvents", []))
        status = "INVALID" if problems else "ok"
        print(f"{trace_path.name}: {n_events} events, {status}")
        metrics_path = Path(str(trace_path).replace(".trace.json",
                                                    ".metrics.json"))
        if not metrics_path.exists():
            failures.append(f"{trace_path}: missing {metrics_path.name}")
            continue
        try:
            metrics = json.loads(metrics_path.read_text())
        except (OSError, ValueError) as exc:
            failures.append(f"{metrics_path}: unreadable ({exc})")
            continue
        if not isinstance(metrics, dict):
            failures.append(f"{metrics_path}: top level must be an object")
            continue
        for section in METRICS_SECTIONS:
            if section not in metrics:
                failures.append(f"{metrics_path}: missing {section!r}")
        failures.extend(check_schema_version(
            metrics.get("schema_version"),
            f"{metrics_path.name}: schema_version"))
    return failures


def check_simulated_identical(traced_path: Path,
                              untraced_path: Path) -> list[str]:
    """Require bit-identical simulated series between two BENCH records."""
    with open(traced_path) as f:
        traced = json.load(f)
    with open(untraced_path) as f:
        untraced = json.load(f)
    sim_t = {e["label"]: e["simulated_seconds"]
             for e in traced.get("simulated", [])}
    sim_u = {e["label"]: e["simulated_seconds"]
             for e in untraced.get("simulated", [])}
    if set(sim_t) != set(sim_u):
        return [f"simulated label sets differ: "
                f"only-traced {sorted(set(sim_t) - set(sim_u))[:5]}, "
                f"only-untraced {sorted(set(sim_u) - set(sim_t))[:5]}"]
    diffs = [label for label in sim_u if sim_t[label] != sim_u[label]]
    if diffs:
        return [f"tracing changed simulated seconds (must be bit-for-bit "
                f"identical): {diffs[:10]}"]
    print(f"simulated series: {len(sim_u)} entries identical "
          f"traced vs untraced")
    return []


def main(argv: list[str]) -> int:
    """Run the artifact and invariance checks from the command line."""
    if len(argv) < 2 or len(argv) == 3:
        print(__doc__)
        return 2
    failures = check_traces_dir(Path(argv[1]))
    if len(argv) >= 4:
        failures += check_simulated_identical(Path(argv[2]), Path(argv[3]))
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
