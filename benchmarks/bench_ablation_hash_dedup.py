"""Ablation: hash-based vs sort-based parallel-edge elimination (Section VI-B).

After local preprocessing "the number of vertices [drops] leaving many
parallel edges"; instead of sorting all edges, the paper inserts the light
edges into a hash table and filters the rest in one scan, beating pure
sorting "by up to a factor of 2.5 if the hash table remains small enough".

This bench runs full boruvka with the hash and sort dedup variants on a
dense geometric instance (where preprocessing generates many parallel
edges) and compares the accumulated preprocessing-phase time.
"""

from __future__ import annotations

from repro.analysis import run_algorithm
from repro.core import BoruvkaConfig

from _common import (
    MAX_CORES,
    PER_CORE_EDGES_DENSE,
    PER_CORE_VERTICES,
    bench_recorder,
    cached_graph,
    report,
)

CORES = min(MAX_CORES, 64)


def _sweep():
    g = cached_graph("family", family="2D-RGG",
                     n=PER_CORE_VERTICES * CORES,
                     m=PER_CORE_EDGES_DENSE * CORES, seed=8)
    out = {}
    for hash_dedup in (True, False):
        cfg = BoruvkaConfig(base_case_min=64, hash_dedup=hash_dedup)
        r = run_algorithm(g, "boruvka", CORES // 8, threads=8, config=cfg,
                          seed=8)
        out["hash" if hash_dedup else "sort"] = r
    return out


def test_ablation_hash_dedup(benchmark):
    with bench_recorder("ablation_hash_dedup") as rec:
        out = benchmark.pedantic(_sweep, rounds=1, iterations=1)
        for variant, r in out.items():
            rec.add(variant, r.elapsed, status=r.status)
    h = out["hash"].phase_times.get("local_preprocessing", 0.0)
    s = out["sort"].phase_times.get("local_preprocessing", 0.0)
    lines = [
        "Parallel-edge elimination inside local preprocessing "
        f"(dense 2D-RGG, {CORES} cores), phase time [sim s]",
        f"  hash-based (Section VI-B): {h:.6f}",
        f"  sort-based:                {s:.6f}",
        f"  speedup: {s / h:.2f}x  (paper: up to 2.5x)",
        f"  total run: hash {out['hash'].elapsed:.6f}  "
        f"sort {out['sort'].elapsed:.6f}",
    ]
    report("ablation_hash_dedup", "\n".join(lines))

    assert h < s, "hash-based dedup should beat sort-based dedup"
    assert out["hash"].total_weight == out["sort"].total_weight
