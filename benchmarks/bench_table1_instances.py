"""Table I: the real-world instances of the strong-scaling experiments.

The paper lists six graphs between 57 M and 124 B directed edges.  This
bench generates the scaled-down structural stand-ins (see
``repro.graphgen.realworld``), prints the Table-I analogue with the paper's
original statistics next to ours, and asserts the structural contracts each
stand-in must honour (graph type, m/n ratio class, degree-skew class).
"""

from __future__ import annotations

import numpy as np

from repro.graphgen import TABLE_I, gen_realworld

from _common import bench_recorder, report


def _degree_stats(g):
    deg = np.bincount(g.edges.u, minlength=g.n_vertices)
    deg = deg[deg > 0]
    return float(deg.mean()), int(deg.max())


def test_table1_instances(benchmark):
    # Pure generation, no simulated run: the record carries wall-clock and
    # per-instance sizes (simulated makespan is not applicable, stored null).
    with bench_recorder("table1_instances") as rec:
        graphs = benchmark.pedantic(
            lambda: {name: gen_realworld(name, seed=7) for name in TABLE_I},
            rounds=1, iterations=1,
        )
        for name, g in graphs.items():
            rec.add(name, float("nan"), n_vertices=int(g.n_vertices),
                    m_undirected=int(g.n_undirected_edges))
    lines = [
        f"{'graph':11s} {'paper n':>9s} {'paper m':>9s} {'type':>6s}  "
        f"{'ours n':>8s} {'ours m':>9s} {'m/n':>6s} {'maxdeg':>6s} {'scale':>9s}"
    ]
    for name, spec in TABLE_I.items():
        g = graphs[name]
        mean_deg, max_deg = _degree_stats(g)
        ours_mn = 2 * g.n_undirected_edges / g.n_vertices
        lines.append(
            f"{name:11s} {spec.paper_n:9.2e} {spec.paper_m:9.2e} "
            f"{spec.graph_type:>6s}  {g.n_vertices:8d} "
            f"{g.n_undirected_edges:9d} {ours_mn:6.1f} {max_deg:6d} "
            f"{g.params['scale_factor']:9.0f}"
        )
    report("table1_instances", "\n".join(lines))

    # Shape contracts.
    road = graphs["US-road"]
    social = graphs["twitter"]
    web = graphs["uk-2007"]
    mn = lambda g: 2 * g.n_undirected_edges / g.n_vertices
    # Road: near-planar sparse graph; social/web: dense.
    assert mn(road) < 5.0 < mn(social) and mn(web) > 5.0
    # Social graphs have heavy degree skew; road graphs none.
    _, road_max = _degree_stats(road)
    _, social_max = _degree_stats(social)
    assert road_max <= 8
    assert social_max > 50 * mn(social) / 2
    # Every stand-in records its scale factor.
    for g in graphs.values():
        assert g.params["scale_factor"] > 100
