"""Section VII-C: comparison with a shared-memory algorithm (MASTIFF role).

The paper compares its distributed runs against MASTIFF on a 128-core
shared-memory server: at 256 cores the shared-memory code is ~2.5x faster on
average; "from 1024 cores on, we are faster on friendster and US-road.  For
twitter, we need 2048 cores" -- i.e. the distributed code needs roughly
**8-32x the node's cores** to overtake it, because its per-core efficiency
is a large constant factor below a shared-memory run (communication).

That core-ratio structure is the reproducible claim.  This bench measures
the distributed strong-scaling series against a modelled shared-memory node,
asserts that

* at node-comparable core counts the shared-memory reference wins (the
  paper's "average speedup of MASTIFF over our algorithms of 2.5" at 256
  cores), and
* the distributed series keeps improving with cores, with a finite
  extrapolated crossover (fit ``t(p) = a + b/p``),

and reports the extrapolated crossover-to-node core ratio next to the
paper's 8-32x.  With ``REPRO_MAX_CORES`` raised the crossover moves inside
the measured sweep.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import run_algorithm
from repro.competitors import shared_memory_msf
from repro.core import BoruvkaConfig, FilterConfig

from _common import MAX_CORES, bench_recorder, cached_graph, core_sweep, report

INSTANCES = ("friendster", "twitter", "US-road")
#: Modelled shared-memory node size (scaled-down MASTIFF server).
SM_CORES = max(4, MAX_CORES // 8)


def _sweep():
    out = {}
    for name in INSTANCES:
        g = cached_graph("realworld", name=name, seed=5)
        sm = shared_memory_msf(g.edges, g.n_vertices, cores=SM_CORES)
        rows = []
        for cores in core_sweep(lo=4):
            best = np.inf
            for alg in ("boruvka", "filter-boruvka"):
                b = BoruvkaConfig(base_case_min=64)
                cfg = b if alg == "boruvka" else FilterConfig(boruvka=b)
                r = run_algorithm(g, alg, cores, threads=1,
                                  config=cfg, seed=5)
                best = min(best, r.elapsed)
            rows.append((cores, best))
        out[name] = (sm.elapsed, rows)
    return out


def _crossover_core_ratio(rows, sm_time):
    """Estimate the crossover-to-node core ratio from per-core efficiency.

    If the sweep already crossed, the measured crossing cores are used.
    Otherwise the paper's own structure applies: on instances large enough
    that distributed strong scaling has not saturated, aggregate distributed
    throughput grows ~linearly with cores, so the crossover core count is
    (distributed per-core time / shared-memory per-core time) x node cores.
    The distributed per-core time is taken at its *best* (least saturated)
    point of the sweep.
    """
    for cores, t in rows:
        if t < sm_time:
            return cores / SM_CORES
    per_core = min(t * c for c, t in rows)  # core-seconds for the instance
    sm_per_core = sm_time * SM_CORES
    return per_core / sm_per_core


def test_vii_c_shared_memory_crossover(benchmark):
    with bench_recorder("vii_c_shared_memory") as rec:
        out = benchmark.pedantic(_sweep, rounds=1, iterations=1)
        for name, (sm_time, rows) in out.items():
            rec.add(f"{name}/shared-memory", sm_time)
            for cores, t in rows:
                rec.add(f"{name}/distributed/p{cores}", t)
    lines = [f"Distributed vs shared-memory reference ({SM_CORES} modelled "
             f"cores), time [sim s]"]
    ratios = {}
    for name, (sm_time, rows) in out.items():
        lines += ["", f"--- {name} ---",
                  f"shared-memory reference: {sm_time:.4e} s"]
        for cores, t in rows:
            mark = "distributed wins" if t < sm_time else ""
            lines.append(f"  {cores:5d} cores: {t:.4e} s  {mark}")
        ratios[name] = _crossover_core_ratio(rows, sm_time)
        lines.append(
            f"crossover estimate: ~{ratios[name] * SM_CORES:,.0f} cores "
            f"= {ratios[name]:.0f}x the node size "
            f"(paper: 8-32x its 128-core node; the ratio shrinks as the "
            f"instance grows -- see EXPERIMENTS.md)"
        )
    report("vii_c_shared_memory", "\n".join(lines))

    for name, (sm_time, rows) in out.items():
        by_cores = dict(rows)
        # Node-comparable core count: the shared-memory reference wins
        # (paper: MASTIFF ~2.5x faster at 2x its core count).
        comparable = min(c for c, _ in rows if c >= SM_CORES)
        assert by_cores[comparable] > sm_time, name
        # Strong scaling brings a clear improvement across the sweep.
        times = [t for _, t in rows]
        assert min(times) < 0.7 * times[0], f"{name}: distributed not scaling"
        # The per-core-efficiency gap sits in the plausible band the paper's
        # numbers imply (MASTIFF ~21 M edges/s/core vs kamsta ~1 M: ~20x;
        # our small instances saturate earlier, so allow up to ~300x).
        assert 3.0 < ratios[name] < 300.0, (name, ratios[name])
