"""Ablation: the sorting dispatch rule of Section VI-C.

"Regarding distributed sorting we use distributed hypercube quicksort [9] if
the average number of elements to sort per PE is below 512.  For larger
inputs we use our own implementation of distributed two-level sample sort."

This bench sorts edge-shaped rows with both algorithms across per-PE input
sizes and reports the simulated times, asserting that each algorithm wins on
its side of the dispatch threshold (the crossover motivating the rule).
"""

from __future__ import annotations

import numpy as np

from repro.simmpi import Comm, Machine
from repro.sorting import HYPERCUBE_THRESHOLD, is_globally_sorted, sort_rows

from _common import MAX_CORES, bench_recorder, report

P = min(MAX_CORES, 32)
SIZES = (16, 64, 256, 1024, 4096, 16384)


def _one(per_pe: int, method: str, seed: int = 0) -> float:
    machine = Machine(P, seed=seed)
    rng = np.random.default_rng(seed)
    parts = [rng.integers(0, 1 << 20, (per_pe, 4)) for _ in range(P)]
    out = sort_rows(Comm(machine), parts, n_key_cols=3, method=method,
                    rebalance=False)
    assert is_globally_sorted(out, 3)
    return machine.elapsed()


def _sweep():
    rows = []
    for per_pe in SIZES:
        rows.append((per_pe, _one(per_pe, "hypercube"),
                     _one(per_pe, "samplesort")))
    return rows


def test_ablation_sort_dispatch(benchmark):
    with bench_recorder("ablation_sort_dispatch") as rec:
        rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
        for per_pe, th, ts in rows:
            rec.add(f"hypercube/{per_pe}", th)
            rec.add(f"samplesort/{per_pe}", ts)
    lines = [f"Distributed sorting on {P} PEs, 4-column rows, time [sim s]",
             f"{'rows/PE':>8s} {'hypercube':>12s} {'samplesort':>12s} "
             f"{'winner':>10s}"]
    for per_pe, th, ts in rows:
        lines.append(f"{per_pe:8d} {th:12.6f} {ts:12.6f} "
                     f"{'hypercube' if th < ts else 'samplesort':>10s}")
    lines.append(f"\ndispatch threshold (Section VI-C): "
                 f"{HYPERCUBE_THRESHOLD} elements/PE")
    report("ablation_sort_dispatch", "\n".join(lines))

    by = {r[0]: r[1:] for r in rows}
    # Hypercube wins clearly below the threshold ...
    th, ts = by[SIZES[0]]
    assert th < ts, "hypercube should win on tiny inputs"
    # ... and sample sort wins clearly above it.
    th, ts = by[SIZES[-1]]
    assert ts < th, "sample sort should win on large inputs"
