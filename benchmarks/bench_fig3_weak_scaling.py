"""Fig. 3: weak-scaling throughput on the six synthetic graph families.

The paper's headline experiment: throughput (edges/second) with 2^17
vertices and 2^21 edges per core on up to 2^16 cores, for boruvka and
filterBoruvka with 1 and 8 threads per MPI process, against sparseMatrix and
MND-MST (competitors run only on a truncated sweep "to save computation
time"; MND-MST crashed beyond 1024 cores, sparseMatrix beyond 4096/1024 on
grid/RMAT).

Shape claims asserted here (Section VII-A):

* our algorithms complete the full sweep on every family;
* both competitors are clearly beaten at the top common core count, with
  the margin largest on the high-locality families;
* filterBoruvka beats boruvka on GNM (the paper reports up to 4x);
* 8-thread variants beat 1-thread variants on high-locality families at the
  top of the sweep, while GNM favours 1 thread (the funneled-MPI effect).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import plot_results, series_table, speedup_summary, weak_scaling

from _common import (
    MAX_CORES,
    PER_CORE_EDGES,
    PER_CORE_VERTICES,
    bench_recorder,
    cached_graph,
    competitor_memory_limit,
    core_sweep,
    record_experiments,
    report,
)

FAMILIES = ("2D-GRID", "2D-RGG", "3D-RGG", "RHG", "GNM", "RMAT")
COMPETITOR_CAP = min(MAX_CORES, 64)


def _make(family):
    def make(n, m, seed):
        return cached_graph("family", family=family, n=n, m=m, seed=seed)

    return make


def _sweep():
    all_results = {}
    for family in FAMILIES:
        rows = []
        for threads in (1, 8):
            rs = weak_scaling(
                _make(family), ["boruvka", "filter-boruvka"],
                core_sweep(lo=4), PER_CORE_VERTICES, PER_CORE_EDGES,
                threads=threads, seed=3,
            )
            for r in rs:
                r.algorithm = f"{r.algorithm}-{threads}"
            rows += rs
        rows += weak_scaling(
            _make(family), ["awerbuch-shiloach", "mnd-mst"],
            core_sweep(lo=4, hi=COMPETITOR_CAP),
            PER_CORE_VERTICES, PER_CORE_EDGES, threads=1,
            memory_limit_per_core=competitor_memory_limit(PER_CORE_EDGES),
            seed=3,
        )
        all_results[family] = rows
    return all_results


def _ok(results, alg, cores):
    for r in results:
        if r.algorithm == alg and r.cores == cores and r.status == "ok":
            return r
    return None


def test_fig3_weak_scaling(benchmark):
    with bench_recorder("fig3_weak_scaling") as rec:
        all_results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
        for family, results in all_results.items():
            record_experiments(rec, results, prefix=f"{family}/")
    lines = [f"Weak scaling, {PER_CORE_VERTICES} vertices / "
             f"{PER_CORE_EDGES} edge-halves per core; throughput [edges/sim s]"]
    for family, results in all_results.items():
        lines += ["", f"--- {family} ---",
                  series_table(results, value="throughput"),
                  speedup_summary(results), "",
                  plot_results(results, value="throughput")]
    report("fig3_weak_scaling", "\n".join(lines))

    top = core_sweep()[-1]
    for family, results in all_results.items():
        # Our algorithms finish the whole sweep.
        for alg in (f"boruvka-1", f"filter-boruvka-1"):
            assert _ok(results, alg, top) is not None, (family, alg)
        # Competitors beaten at the top common core count.
        ours = min(r.elapsed for r in results
                   if r.cores == COMPETITOR_CAP and r.status == "ok"
                   and r.algorithm.startswith(("boruvka", "filter")))
        for comp in ("sparseMatrix", "MND-MST"):
            cr = _ok(results, comp, COMPETITOR_CAP)
            if cr is not None:
                assert cr.elapsed > ours, (family, comp)
    # Filtering pays off on GNM (paper: up to 4x).
    gnm = all_results["GNM"]
    b = _ok(gnm, "boruvka-1", top)
    f = _ok(gnm, "filter-boruvka-1", top)
    assert f.elapsed < b.elapsed, "filterBoruvka should win on GNM"
    # High-locality families: competitors at least ~5x slower at the cap.
    grid = all_results["2D-GRID"]
    ours_grid = min(r.elapsed for r in grid
                    if r.cores == COMPETITOR_CAP and r.status == "ok"
                    and r.algorithm.startswith(("boruvka", "filter")))
    slowest_comp = max(
        (r.elapsed for r in grid
         if r.cores == COMPETITOR_CAP and r.status == "ok"
         and r.algorithm in ("sparseMatrix", "MND-MST")),
        default=np.nan,
    )
    if np.isfinite(slowest_comp):
        assert slowest_comp / ours_grid > 10.0
