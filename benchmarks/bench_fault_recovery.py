"""Recovery overhead of the fault-injection subsystem (docs/faults.md).

Unlike the other benchmarks this one measures a property of the *simulator
extension*, not of the paper: how much simulated time checkpoint/replay and
retransmission recovery add as the injected fault rate grows.  Each sweep
point runs the same GNM instance under a schedule scaling all fault
probabilities together, and asserts the subsystem's two contracts:

* every surviving run returns the *bit-identical* MSF weight of the
  fault-free run (recovery never changes the answer, only the clock);
* recovery is honestly charged -- the makespan is strictly above the
  fault-free run's once any event is injected, and grows with the rate.
"""

from __future__ import annotations

from repro.analysis import run_algorithm
from repro.core import BoruvkaConfig

from _common import (
    MAX_CORES,
    PER_CORE_EDGES,
    PER_CORE_VERTICES,
    bench_recorder,
    cached_graph,
    report,
)

CORES = min(MAX_CORES, 16)
#: Multipliers applied to the base schedule's probabilities (0 = fault-free).
RATES = (0.0, 0.25, 0.5, 1.0, 2.0)


def _schedule(rate: float) -> str:
    """Fault spec with every probability scaled by ``rate``."""
    return (f"seed=11, pe_fail={0.02 * rate}, msg_drop={0.005 * rate}, "
            f"corrupt={0.02 * rate}, straggle={0.01 * rate}")


def _sweep():
    g = cached_graph("family", family="GNM",
                     n=PER_CORE_VERTICES * CORES,
                     m=PER_CORE_EDGES * CORES, seed=11)
    # Small base case keeps several distributed rounds exposed to fail-stop
    # events (rounds are the checkpoint/replay granularity).
    cfg = BoruvkaConfig(base_case_min=64)
    rows = []
    for rate in RATES:
        faults = _schedule(rate) if rate > 0 else False
        r = run_algorithm(g, "boruvka", CORES, config=cfg, seed=11,
                          faults=faults)
        events = r.stats.get("fault_events", {})
        rows.append((rate, r.elapsed, r.total_weight,
                     sum(events.values()), events))
    return rows


def test_fault_recovery_overhead(benchmark):
    with bench_recorder("fault_recovery") as rec:
        rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
        for rate, t, _, _, _ in rows:
            rec.add(f"rate={rate}", t)

    base_t = rows[0][1]
    lines = [f"Fault-recovery overhead on GNM, {CORES} cores, time [sim s]",
             f"{'rate':>6s} {'time':>12s} {'overhead':>9s} {'events':>7s}"]
    for rate, t, _, n_events, _ in rows:
        lines.append(f"{rate:6.2f} {t:12.6f} {t / base_t - 1:+9.2%} "
                     f"{n_events:7d}")
    report("fault_recovery", "\n".join(lines))

    # Contract 1: recovery never changes the answer.
    weights = {w for _, _, w, _, _ in rows}
    assert len(weights) == 1, (
        f"fault recovery changed the MSF weight: {weights}")

    # Contract 2: recovery costs simulated time, increasing with the rate.
    top = rows[-1]
    assert top[3] > 0, "top fault rate injected no events -- sweep too small"
    assert top[1] > base_t, (
        "injected faults were recovered for free (no simulated-time charge)")
