"""Fig. 4: local preprocessing ablation on high-locality graphs.

The paper runs boruvka/filterBoruvka *without* local preprocessing on
GRID/RGG/RHG instances with 2^17 vertices and 2^23 edges per core, against
the fastest variant with preprocessing enabled as the baseline: "local
contraction makes our algorithms up to 5 times faster", and filtering also
helps on local graphs once instances are dense enough.

Shape claims asserted: preprocessing speeds up every high-locality family,
with the largest factor on the densest/most local instances.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import run_algorithm, series_table
from repro.core import BoruvkaConfig, FilterConfig

from _common import (
    PER_CORE_EDGES_DENSE,
    PER_CORE_VERTICES,
    bench_recorder,
    cached_graph,
    core_sweep,
    record_experiments,
    report,
)

FAMILIES = ("2D-GRID", "2D-RGG", "3D-RGG", "RHG")


def _sweep():
    results = {}
    for family in FAMILIES:
        rows = []
        for cores in core_sweep(lo=4):
            g = cached_graph("family", family=family,
                             n=PER_CORE_VERTICES * cores,
                             m=PER_CORE_EDGES_DENSE * cores, seed=4)
            n_procs = max(1, cores // 8)
            for pre in (True, False):
                b = BoruvkaConfig(base_case_min=64, local_preprocessing=pre)
                r = run_algorithm(g, "boruvka", n_procs, threads=8, config=b)
                r.algorithm = f"boruvka{'+pre' if pre else '-nopre'}"
                rows.append(r)
                rf = run_algorithm(g, "filter-boruvka", n_procs, threads=8,
                                   config=FilterConfig(boruvka=b))
                rf.algorithm = f"filterBoruvka{'+pre' if pre else '-nopre'}"
                rows.append(rf)
        results[family] = rows
    return results


def test_fig4_preprocessing_ablation(benchmark):
    with bench_recorder("fig4_preprocessing_ablation") as rec:
        results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
        for family, rows in results.items():
            record_experiments(rec, rows, prefix=f"{family}/")
    lines = [f"Local-preprocessing ablation, dense per-core workload "
             f"({PER_CORE_VERTICES} v / {PER_CORE_EDGES_DENSE} e per core), "
             f"time [sim s]"]
    factors = {}
    for family, rows in results.items():
        lines += ["", f"--- {family} ---", series_table(rows)]
        top = max(r.cores for r in rows)
        t = {r.algorithm: r.elapsed for r in rows if r.cores == top}
        factor = t["boruvka-nopre"] / t["boruvka+pre"]
        factors[family] = factor
        lines.append(f"preprocessing speedup at p={top}: {factor:.2f}x "
                     f"(paper: up to 5x)")
    report("fig4_preprocessing_ablation", "\n".join(lines))

    # The dense geometric families must benefit clearly (paper: up to 5x).
    # 2D-GRID is reported but not asserted: a lattice has m/n ~ 2, so at
    # simulation scale the single distributed round a no-preprocessing run
    # needs is about as cheap as preprocessing itself; the paper's grid
    # gains materialise at its 2^21-edges-per-core volumes.
    for family in ("2D-RGG", "3D-RGG", "RHG"):
        assert factors[family] > 1.2, (family, factors[family])
    assert max(factors.values()) > 2.0, factors
