"""Ablation: the base-case switching threshold (Section VI-C).

The paper switches to the replicated-vertex base case at
``max(2 * #processes, 35 000)`` vertices.  This bench sweeps the threshold
from "almost never switch" to "switch immediately" on a GNM instance and
reports the total simulated time, asserting the end points of the trade-off:
switching *immediately* wastes a vector allreduce over the entire vertex set
(the base case is only communication-efficient once the vertex set is
small), so it must be slower than the best moderate threshold.
"""

from __future__ import annotations

from repro.analysis import run_algorithm
from repro.core import BoruvkaConfig

from _common import (
    MAX_CORES,
    PER_CORE_EDGES,
    PER_CORE_VERTICES,
    bench_recorder,
    cached_graph,
    report,
)

CORES = min(MAX_CORES, 64)
THRESHOLDS = (8, 64, 512, 4096, 10 ** 9)


def _sweep():
    g = cached_graph("family", family="GNM",
                     n=PER_CORE_VERTICES * CORES,
                     m=PER_CORE_EDGES * CORES, seed=9)
    rows = []
    for threshold in THRESHOLDS:
        cfg = BoruvkaConfig(base_case_min=threshold, base_case_factor=0)
        r = run_algorithm(g, "boruvka", CORES, config=cfg, seed=9)
        rows.append((threshold, r.elapsed, r.total_weight))
    return rows


def test_ablation_base_case_threshold(benchmark):
    with bench_recorder("ablation_base_case_threshold") as rec:
        rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
        for threshold, t, _ in rows:
            rec.add(f"threshold={threshold}", t)
    lines = [f"Base-case threshold sweep on GNM, {CORES} cores, time [sim s]",
             f"{'threshold':>10s} {'time':>12s}"]
    for threshold, t, _ in rows:
        label = "immediate" if threshold >= 10 ** 9 else str(threshold)
        lines.append(f"{label:>10s} {t:12.6f}")
    report("ablation_base_case_threshold", "\n".join(lines))

    # All thresholds compute the same forest.
    weights = {w for _, _, w in rows}
    assert len(weights) == 1
    times = {th: t for th, t, _ in rows}
    best_moderate = min(t for th, t, _ in rows if th < 10 ** 9)
    assert times[10 ** 9] > best_moderate, (
        "switching to the replicated base case immediately should lose"
    )
