#!/usr/bin/env python
"""Gate a fresh ``BENCH_<name>.json`` against a checked-in baseline.

Usage::

    python benchmarks/check_perf.py FRESH BASELINE [--max-ratio R]
    python benchmarks/check_perf.py FRESH BASELINE --update-baseline
                                    [--allow-simulated-change]

Check mode (the default) exits non-zero when

* the fresh ``wall_seconds`` exceeds ``--max-ratio`` (default 2.0) times the
  baseline wall-clock -- the perf-smoke regression gate, or
* any simulated entry differs from the baseline -- simulated seconds are
  machine-independent and must be bit-for-bit reproducible, so a mismatch
  means the modelled algorithm changed; regenerate the baseline in the same
  commit if the change is intentional.

``--update-baseline`` overwrites BASELINE with FRESH instead of checking.
Updating is for wall-clock drift (new CI hardware, interpreter upgrades):
it *refuses* to run when the simulated series changed, because that would
silently launder a modelling change into the baseline.  Pass
``--allow-simulated-change`` only when the simulated change is the
intentional, reviewed subject of the same commit.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys


def _load(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def simulated_diffs(fresh: dict, base: dict) -> list[str]:
    """Human-readable differences between the two simulated series."""
    sim_fresh = {e["label"]: e for e in fresh.get("simulated", [])}
    sim_base = {e["label"]: e for e in base.get("simulated", [])}
    out = []
    if set(sim_fresh) != set(sim_base):
        only_f = sorted(set(sim_fresh) - set(sim_base))
        only_b = sorted(set(sim_base) - set(sim_fresh))
        out.append(f"series mismatch: only-fresh {only_f[:5]}, "
                   f"only-baseline {only_b[:5]}")
        return out
    drifted = [label for label in sim_base
               if sim_fresh[label]["simulated_seconds"]
               != sim_base[label]["simulated_seconds"]]
    if drifted:
        out.append("simulated seconds drifted (machine-independent, must "
                   f"be bit-for-bit): {drifted[:10]}")
    return out


def check(fresh: dict, base: dict, max_ratio: float) -> list[str]:
    """The regression gate; returns failure messages (empty = pass)."""
    failures = []
    wall_fresh = fresh["wall_seconds"]
    wall_base = base["wall_seconds"]
    ratio = wall_fresh / wall_base if wall_base else float("inf")
    print(f"wall-clock: fresh {wall_fresh:.2f}s vs baseline {wall_base:.2f}s "
          f"(ratio {ratio:.2f}, limit {max_ratio:.2f})")
    if ratio > max_ratio:
        failures.append(
            f"wall-clock regression: {wall_fresh:.2f}s > "
            f"{max_ratio} * {wall_base:.2f}s")
    failures += simulated_diffs(fresh, base)
    if not failures:
        print(f"simulated series: {len(fresh.get('simulated', []))} "
              f"entries identical")
    return failures


def update_baseline(fresh_path: str, base_path: str, fresh: dict,
                    base: dict, allow_simulated: bool) -> list[str]:
    """Overwrite the baseline, guarding against simulated-series drift."""
    diffs = simulated_diffs(fresh, base)
    if diffs and not allow_simulated:
        return [msg + "\nrefusing to update the baseline: simulated "
                "series are the *correctness* record, not a perf number. "
                "If the modelling change is intentional and reviewed, "
                "re-run with --allow-simulated-change."
                for msg in diffs]
    if diffs:
        print(f"updating baseline INCLUDING {len(diffs)} simulated "
              f"change(s) (--allow-simulated-change)")
    shutil.copyfile(fresh_path, base_path)
    print(f"baseline updated: {base_path} <- {fresh_path} "
          f"(wall {base.get('wall_seconds', 0):.2f}s -> "
          f"{fresh['wall_seconds']:.2f}s)")
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="check or refresh a benchmark baseline",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=__doc__)
    parser.add_argument("fresh", help="fresh BENCH_<name>.json")
    parser.add_argument("baseline", help="checked-in baseline json")
    parser.add_argument("max_ratio_pos", nargs="?", type=float,
                        metavar="MAX_RATIO",
                        help="legacy positional form of --max-ratio")
    parser.add_argument("--max-ratio", type=float, default=None,
                        help="max fresh/baseline wall-clock ratio "
                             "(default 2.0)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="overwrite BASELINE with FRESH instead of "
                             "checking (refused on simulated drift)")
    parser.add_argument("--allow-simulated-change", action="store_true",
                        help="with --update-baseline: accept a changed "
                             "simulated series (intentional modelling "
                             "change)")
    args = parser.parse_args(argv)
    max_ratio = args.max_ratio if args.max_ratio is not None \
        else (args.max_ratio_pos if args.max_ratio_pos is not None else 2.0)

    fresh = _load(args.fresh)
    base = _load(args.baseline)
    if args.update_baseline:
        failures = update_baseline(args.fresh, args.baseline, fresh, base,
                                   args.allow_simulated_change)
    else:
        failures = check(fresh, base, max_ratio)
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
