#!/usr/bin/env python
"""Gate fresh ``BENCH_<name>.json`` records against checked-in baselines.

Usage::

    python benchmarks/check_perf.py FRESH BASELINE [--max-ratio R]
    python benchmarks/check_perf.py FRESH_DIR BASELINE_DIR [--max-ratio R]
    python benchmarks/check_perf.py FRESH BASELINE --update-baseline
                                    [--allow-simulated-change]

This is a thin CLI over :mod:`repro.analysis.report` -- the same gate
``repro report --check`` runs, so CI and the report command agree by
construction.  Check mode (the default) exits non-zero when

* a fresh ``wall_seconds`` exceeds ``--max-ratio`` (default 2.0) times the
  baseline wall-clock -- the perf-smoke regression gate, or
* any simulated entry differs from the baseline -- simulated seconds are
  machine-independent and must be bit-for-bit reproducible, so a mismatch
  means the modelled algorithm changed; regenerate the baseline in the same
  commit if the change is intentional.

Directories are matched by ``BENCH_*.json`` filename, so passing two
directories gates *every* benchmark family at once (a record present on
only one side fails the gate).

``--update-baseline`` overwrites BASELINE with FRESH instead of checking
(single files only).  Updating is for wall-clock drift (new CI hardware,
interpreter upgrades): it *refuses* to run when the simulated series
changed, because that would silently launder a modelling change into the
baseline.  Pass ``--allow-simulated-change`` only when the simulated
change is the intentional, reviewed subject of the same commit.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

# Runnable both as `python benchmarks/check_perf.py` (CI) and under
# pytest with PYTHONPATH=src already set.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.report import (  # noqa: E402  (path bootstrap above)
    perf_check,
    perf_failures,
    regression_text,
    simulated_diffs,
)


def _load(path: str) -> dict:
    """Read one BENCH record."""
    with open(path) as f:
        return json.load(f)


def check(fresh_path: str, base_path: str, max_ratio: float) -> list[str]:
    """The regression gate; returns failure messages (empty = pass)."""
    results = perf_check(fresh_path, base_path, max_ratio)
    print(regression_text(results))
    return perf_failures(results)


def update_baseline(fresh_path: str, base_path: str, fresh: dict,
                    base: dict, allow_simulated: bool) -> list[str]:
    """Overwrite the baseline, guarding against simulated-series drift."""
    diffs = simulated_diffs(fresh, base)
    if diffs and not allow_simulated:
        return [msg + "\nrefusing to update the baseline: simulated "
                "series are the *correctness* record, not a perf number. "
                "If the modelling change is intentional and reviewed, "
                "re-run with --allow-simulated-change."
                for msg in diffs]
    if diffs:
        print(f"updating baseline INCLUDING {len(diffs)} simulated "
              f"change(s) (--allow-simulated-change)")
    fresh_wall = fresh.get("wall_seconds")
    if not isinstance(fresh_wall, (int, float)):
        return [f"{fresh_path}: record lacks a numeric 'wall_seconds'; "
                "refusing to install it as a baseline (re-record via "
                "benchmarks/_common.py:BenchRecorder)"]
    shutil.copyfile(fresh_path, base_path)
    base_wall = base.get("wall_seconds")
    base_txt = f"{base_wall:.2f}s" \
        if isinstance(base_wall, (int, float)) else "missing"
    print(f"baseline updated: {base_path} <- {fresh_path} "
          f"(wall {base_txt} -> {fresh_wall:.2f}s)")
    return []


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and run the gate (or a baseline update)."""
    parser = argparse.ArgumentParser(
        description="check or refresh benchmark baselines",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=__doc__)
    parser.add_argument("fresh",
                        help="fresh BENCH_<name>.json (or a directory)")
    parser.add_argument("baseline",
                        help="checked-in baseline json (or a directory)")
    parser.add_argument("max_ratio_pos", nargs="?", type=float,
                        metavar="MAX_RATIO",
                        help="legacy positional form of --max-ratio")
    parser.add_argument("--max-ratio", type=float, default=None,
                        help="max fresh/baseline wall-clock ratio "
                             "(default 2.0)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="overwrite BASELINE with FRESH instead of "
                             "checking (refused on simulated drift; "
                             "single files only)")
    parser.add_argument("--allow-simulated-change", action="store_true",
                        help="with --update-baseline: accept a changed "
                             "simulated series (intentional modelling "
                             "change)")
    args = parser.parse_args(argv)
    max_ratio = args.max_ratio if args.max_ratio is not None \
        else (args.max_ratio_pos if args.max_ratio_pos is not None else 2.0)

    if args.update_baseline:
        if Path(args.fresh).is_dir() or Path(args.baseline).is_dir():
            print("FAIL: --update-baseline takes single files, not "
                  "directories", file=sys.stderr)
            return 1
        failures = update_baseline(args.fresh, args.baseline,
                                   _load(args.fresh), _load(args.baseline),
                                   args.allow_simulated_change)
    else:
        failures = check(args.fresh, args.baseline, max_ratio)
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
