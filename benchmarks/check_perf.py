#!/usr/bin/env python
"""Gate a fresh ``BENCH_<name>.json`` against a checked-in baseline.

Usage::

    python benchmarks/check_perf.py FRESH BASELINE [MAX_RATIO]

Exits non-zero when

* the fresh ``wall_seconds`` exceeds ``MAX_RATIO`` (default 2.0) times the
  baseline wall-clock -- the perf-smoke regression gate, or
* any simulated entry differs from the baseline -- simulated seconds are
  machine-independent and must be bit-for-bit reproducible, so a mismatch
  means the modelled algorithm changed; regenerate the baseline in the same
  commit if the change is intentional.
"""

from __future__ import annotations

import json
import sys


def main(argv: list[str]) -> int:
    if len(argv) < 3:
        print(__doc__)
        return 2
    fresh_path, base_path = argv[1], argv[2]
    max_ratio = float(argv[3]) if len(argv) > 3 else 2.0
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(base_path) as f:
        base = json.load(f)

    failures = []

    wall_fresh = fresh["wall_seconds"]
    wall_base = base["wall_seconds"]
    ratio = wall_fresh / wall_base if wall_base else float("inf")
    print(f"wall-clock: fresh {wall_fresh:.2f}s vs baseline {wall_base:.2f}s "
          f"(ratio {ratio:.2f}, limit {max_ratio:.2f})")
    if ratio > max_ratio:
        failures.append(
            f"wall-clock regression: {wall_fresh:.2f}s > "
            f"{max_ratio} * {wall_base:.2f}s")

    sim_fresh = {e["label"]: e for e in fresh.get("simulated", [])}
    sim_base = {e["label"]: e for e in base.get("simulated", [])}
    if set(sim_fresh) != set(sim_base):
        only_f = sorted(set(sim_fresh) - set(sim_base))
        only_b = sorted(set(sim_base) - set(sim_fresh))
        failures.append(
            f"simulated series mismatch: only-fresh {only_f[:5]}, "
            f"only-baseline {only_b[:5]}")
    else:
        diffs = [label for label in sim_base
                 if sim_fresh[label]["simulated_seconds"]
                 != sim_base[label]["simulated_seconds"]]
        if diffs:
            failures.append(
                "simulated seconds drifted (machine-independent, must be "
                f"bit-for-bit): {diffs[:10]}")
        else:
            print(f"simulated series: {len(sim_base)} entries identical")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
