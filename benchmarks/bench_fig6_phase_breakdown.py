"""Fig. 6: normalised per-phase running-time breakdown.

The paper normalises the per-phase times of boruvka-{1,8} and
filterBoruvka-{1,8} to [0, 1] by the slowest variant of each
graph x core-count configuration, for 3D-RGG (prototypical high-locality),
GNM and RMAT.  Its observations, asserted here:

* 3D-RGG spends "a considerable amount of time" in local preprocessing;
* for GNM and RMAT preprocessing is negligible (skipped by the 90 %
  cut-edge rule) and "most of the running time is spent in label exchange
  and the redistribution of the edges";
* filtering "significantly reduces" the time in those communication-heavy
  phases, with the filter step becoming dominant instead;
* pointer doubling (contraction) "does only contribute a minor factor ...
  for all graphs" thanks to the two-level all-to-all.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import run_algorithm
from repro.core import BoruvkaConfig, FilterConfig
from repro.simmpi.timers import PhaseBreakdown, format_table, normalise

from _common import (
    MAX_CORES,
    PER_CORE_EDGES,
    PER_CORE_VERTICES,
    bench_recorder,
    cached_graph,
    report,
)

GRAPHS = ("3D-RGG", "GNM", "RMAT")
CORES = min(MAX_CORES, 64)


def _sweep():
    out = {}
    for family in GRAPHS:
        g = cached_graph("family", family=family,
                         n=PER_CORE_VERTICES * CORES,
                         m=PER_CORE_EDGES * CORES, seed=6)
        breakdowns = []
        for alg, threads in (("boruvka", 1), ("boruvka", 8),
                             ("filter-boruvka", 1), ("filter-boruvka", 8)):
            b = BoruvkaConfig(base_case_min=64)
            cfg = b if alg == "boruvka" else FilterConfig(boruvka=b)
            r = run_algorithm(g, alg, max(1, CORES // threads),
                              threads=threads, config=cfg, seed=6)
            label = ("boruvka" if alg == "boruvka" else "filterBoruvka")
            breakdowns.append(
                PhaseBreakdown(f"{label}-{threads}", dict(r.phase_times)))
        out[family] = breakdowns
    return out


def test_fig6_phase_breakdown(benchmark):
    with bench_recorder("fig6_phase_breakdown") as rec:
        out = benchmark.pedantic(_sweep, rounds=1, iterations=1)
        for family, breakdowns in out.items():
            for bd in breakdowns:
                rec.add(f"{family}/{bd.algorithm}", bd.total,
                        phases={k: float(v) for k, v in bd.times.items()})
    lines = [f"Phase breakdown at {CORES} cores, normalised to the slowest "
             f"variant per graph (Fig. 6)"]
    for family, breakdowns in out.items():
        lines += ["", f"--- {family} ---",
                  format_table(normalise(breakdowns))]
    report("fig6_phase_breakdown", "\n".join(lines))

    def t(bd: PhaseBreakdown, phase: str) -> float:
        return bd.times.get(phase, 0.0)

    # 3D-RGG: preprocessing is a considerable fraction of boruvka-8's time.
    rgg = {b.algorithm: b for b in out["3D-RGG"]}
    b8 = rgg["boruvka-8"]
    assert t(b8, "local_preprocessing") > 0.10 * b8.total

    for family in ("GNM", "RMAT"):
        by = {b.algorithm: b for b in out[family]}
        b1 = by["boruvka-1"]
        # Preprocessing negligible (skip rule) ...
        assert t(b1, "local_preprocessing") < 0.05 * b1.total, family
        # ... most time in label exchange + redistribute ...
        comm = t(b1, "label_exchange") + t(b1, "redistribute")
        assert comm > 0.4 * b1.total, (family, comm / b1.total)
        # ... which filtering reduces in absolute terms.
        f1 = by["filterBoruvka-1"]
        comm_f = t(f1, "label_exchange") + t(f1, "redistribute")
        assert comm_f < comm, family
        # Pointer doubling stays a minor factor everywhere.
        for bd in out[family] + out["3D-RGG"]:
            assert t(bd, "contraction") < 0.35 * bd.total, bd.algorithm
