"""Shared infrastructure for the per-figure/table benchmarks.

Every benchmark regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md): it runs the corresponding sweep on the
simulated machine, prints the paper-shaped series, writes the report to
``benchmarks/results/`` and asserts the qualitative *shape* claims the paper
makes (who wins, where crossovers fall).  Absolute numbers are simulated
seconds, not SuperMUC-NG seconds.

Scale knobs (environment):

``REPRO_MAX_CORES``  top of the core sweeps (default 64; the paper uses 2^16)
``REPRO_SCALE``      per-core workload multiplier (default 1)
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.analysis import env_max_cores, env_scale
from repro.graphgen import gen_family, gen_realworld, load_npz, save_npz

RESULTS_DIR = Path(__file__).parent / "results"
CACHE_DIR = RESULTS_DIR / "cache"

#: Default per-core workload: 2^8 vertices / 2^12 directed-edge halves per
#: core -- the paper's 2^17 / 2^21 scaled down by 2^9 (ratio m/n = 16 kept).
PER_CORE_VERTICES = 256 * env_scale()
PER_CORE_EDGES = 4096 * env_scale()
#: Denser variant mirroring the paper's 2^23-edges-per-core runs (m/n = 64).
PER_CORE_EDGES_DENSE = 16384 * env_scale()

MAX_CORES = env_max_cores(64)


def core_sweep(lo: int = 4, hi: int | None = None) -> list[int]:
    """Powers of two from ``lo`` to ``hi`` (default the env ceiling)."""
    hi = hi or MAX_CORES
    out, c = [], lo
    while c <= hi:
        out.append(c)
        c *= 4
    if out and out[-1] != hi and hi > out[-1]:
        out.append(hi)
    return out


def competitor_memory_limit(per_core_edges: int) -> float:
    """Per-core memory budget that reproduces the competitors' crash regime.

    Scaled analogue of the 2 GB/core of SuperMUC-NG against the paper's
    2^21-edges-per-core workloads: eight input blocks of headroom plus
    slack, so codes whose footprint grows with the *global* problem size on
    some PE (MND-MST's leader accumulation) or super-linearly in p
    (sparseMatrix's tensor buffers) hit it as the weak-scaling sweep grows,
    while block-proportional codes never do.
    """
    return 8.0 * (2 * per_core_edges * 32.0) + 65536.0


def cached_graph(kind: str, **kwargs):
    """Generate (or load from the on-disk cache) one benchmark instance."""
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    key = hashlib.sha1(
        json.dumps({"kind": kind, **kwargs}, sort_keys=True).encode()
    ).hexdigest()[:16]
    path = CACHE_DIR / f"{kind.replace('/', '_')}-{key}.npz"
    if path.exists():
        try:
            return load_npz(path)
        except Exception:
            # Unreadable cache entry (truncated / corrupted): regenerate.
            path.unlink(missing_ok=True)
    if kind == "family":
        g = gen_family(kwargs["family"], kwargs["n"], kwargs["m"],
                       seed=kwargs.get("seed", 0))
    elif kind == "realworld":
        g = gen_realworld(kwargs["name"], n=kwargs.get("n"),
                          seed=kwargs.get("seed", 0))
    else:
        raise ValueError(kind)
    save_npz(g, path)
    return g


def report(name: str, text: str) -> None:
    """Print a bench report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
