"""Shared infrastructure for the per-figure/table benchmarks.

Every benchmark regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md): it runs the corresponding sweep on the
simulated machine, prints the paper-shaped series, writes the report to
``benchmarks/results/`` and asserts the qualitative *shape* claims the paper
makes (who wins, where crossovers fall).  Absolute numbers are simulated
seconds, not SuperMUC-NG seconds.

Scale knobs (environment):

``REPRO_MAX_CORES``  top of the core sweeps (default 64; the paper uses 2^16)
``REPRO_SCALE``      per-core workload multiplier (default 1)
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

from repro.analysis import env_max_cores, env_scale
from repro.engines import default_engine_name
from repro.graphgen import gen_family, gen_realworld, load_npz, save_npz
from repro.kernels import kernel_engine

RESULTS_DIR = Path(__file__).parent / "results"
CACHE_DIR = RESULTS_DIR / "cache"

#: Default per-core workload: 2^8 vertices / 2^12 directed-edge halves per
#: core -- the paper's 2^17 / 2^21 scaled down by 2^9 (ratio m/n = 16 kept).
PER_CORE_VERTICES = 256 * env_scale()
PER_CORE_EDGES = 4096 * env_scale()
#: Denser variant mirroring the paper's 2^23-edges-per-core runs (m/n = 64).
PER_CORE_EDGES_DENSE = 16384 * env_scale()

MAX_CORES = env_max_cores(64)


def core_sweep(lo: int = 4, hi: int | None = None, step: int = 4) -> list[int]:
    """Geometric core counts ``lo, lo*step, ...`` up to ``hi``.

    ``hi`` defaults to the ``REPRO_MAX_CORES`` ceiling and is always included
    as the final point when the geometric series does not land on it.  The
    default ``step`` of 4 matches the paper's sweeps (every other power of
    two); pass ``step=2`` for a full powers-of-two sweep.
    """
    hi = hi or MAX_CORES
    out, c = [], lo
    while c <= hi:
        out.append(c)
        c *= step
    if out and out[-1] < hi:
        out.append(hi)
    return out


def competitor_memory_limit(per_core_edges: int) -> float:
    """Per-core memory budget that reproduces the competitors' crash regime.

    Scaled analogue of the 2 GB/core of SuperMUC-NG against the paper's
    2^21-edges-per-core workloads: eight input blocks of headroom plus
    slack, so codes whose footprint grows with the *global* problem size on
    some PE (MND-MST's leader accumulation) or super-linearly in p
    (sparseMatrix's tensor buffers) hit it as the weak-scaling sweep grows,
    while block-proportional codes never do.
    """
    return 8.0 * (2 * per_core_edges * 32.0) + 65536.0


#: In-process graph cache: sweeps re-request the same instance once per
#: algorithm/thread configuration, so keep the last few decoded graphs
#: around instead of re-reading (and re-inflating) the npz every time.
#: LRU with a deliberately small capacity -- a sweep touches one family's
#: handful of sizes at a time, and keeping every previous family resident
#: costs tens of MB of peak RSS for no reuse.
_GRAPH_MEMO: dict = {}
_GRAPH_MEMO_MAX = 3


def cached_graph(kind: str, **kwargs):
    """Generate (or load from the on-disk cache) one benchmark instance."""
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    key = hashlib.sha1(
        json.dumps({"kind": kind, **kwargs}, sort_keys=True).encode()
    ).hexdigest()[:16]
    if key in _GRAPH_MEMO:
        g = _GRAPH_MEMO.pop(key)
        _GRAPH_MEMO[key] = g  # LRU: re-insert as most recently used
        return g
    # Evict *before* acquiring the new graph: popping on insert would keep
    # the displaced (possibly largest-size) instance alive while the new one
    # is generated or inflated, doubling the transient graph footprint.
    while len(_GRAPH_MEMO) >= _GRAPH_MEMO_MAX:
        _GRAPH_MEMO.pop(next(iter(_GRAPH_MEMO)))
    path = CACHE_DIR / f"{kind.replace('/', '_')}-{key}.npz"
    if path.exists():
        try:
            return _memo_graph(key, load_npz(path))
        except Exception:
            # Unreadable cache entry (truncated / corrupted): regenerate.
            path.unlink(missing_ok=True)
    if kind == "family":
        g = gen_family(kwargs["family"], kwargs["n"], kwargs["m"],
                       seed=kwargs.get("seed", 0))
    elif kind == "realworld":
        g = gen_realworld(kwargs["name"], n=kwargs.get("n"),
                          seed=kwargs.get("seed", 0))
    else:
        raise ValueError(kind)
    save_npz(g, path)
    return _memo_graph(key, g)


def _memo_graph(key, g):
    _GRAPH_MEMO[key] = g
    return g


def peak_rss_bytes() -> int | None:
    """Peak RSS of this process tree in bytes (see repro.obs.ledger)."""
    from repro.obs.ledger import peak_rss_bytes as _peak

    return _peak()


def report(name: str, text: str) -> None:
    """Print a bench report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


class BenchRecorder:
    """Wall-clock + simulated-makespan record of one benchmark run.

    Collects ``(label, simulated_seconds)`` pairs during the sweep and, on
    :meth:`write`, persists ``benchmarks/results/BENCH_<name>.json`` with the
    total wall-clock of the measured block, the simulated series, and the
    environment knobs that shaped the run.  Wall-clock depends on the kernel
    layout and execution engine (docs/kernels.md, docs/engines.md); the
    simulated series must not.
    """

    def __init__(self, name: str):
        self.name = name
        self.wall_seconds = 0.0
        self.peak_rss_bytes: int | None = None
        self.simulated: list[dict] = []
        #: Extra payload sections (e.g. ``serving``); sticky across
        #: writes so the context manager's final write keeps them.
        self.extra: dict = {}

    def add(self, label: str, simulated_seconds: float, **extra) -> None:
        """Record one configuration's simulated makespan.

        Non-finite values (crashed/oom runs) are stored as ``null`` so the
        JSON stays strictly parseable.
        """
        val = float(simulated_seconds)
        self.simulated.append(
            {"label": label,
             "simulated_seconds": val if val == val and abs(val) != float("inf") else None,
             **extra}
        )

    def write(self, **extra) -> Path:
        """Persist the JSON record and return its path.

        Also appends a matching row to the run ledger when one is active
        (``REPRO_LEDGER`` or ``REPRO_TRACE_DIR`` set; repro.obs.ledger).
        """
        from repro.obs import SCHEMA_VERSION
        from repro.obs.ledger import append_record, ledger_path, make_record

        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        self.extra.update(extra)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "peak_rss_bytes": self.peak_rss_bytes,
            "kernels": kernel_engine(),
            "engine": default_engine_name(),
            "max_cores": MAX_CORES,
            "scale": env_scale(),
            "simulated": self.simulated,
            **self.extra,
        }
        path = RESULTS_DIR / f"BENCH_{self.name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        if ledger_path() is not None:
            append_record(make_record(
                "benchmark", self.name,
                config={"kernels": payload["kernels"],
                        "engine": payload["engine"],
                        "max_cores": payload["max_cores"],
                        "scale": payload["scale"]},
                simulated=self.simulated,
                wall_seconds=self.wall_seconds))
        return path


def record_experiments(rec: BenchRecorder, results, prefix: str = "") -> None:
    """Add every :class:`ExperimentResult`'s simulated makespan to ``rec``."""
    for r in results:
        rec.add(f"{prefix}{r.algorithm}/p{r.cores}", r.elapsed,
                status=r.status)


@contextmanager
def bench_recorder(name: str):
    """Time a benchmark's measured block and write its ``BENCH_*.json``.

    When event tracing is requested (``REPRO_TRACE=1``) and no explicit
    ``REPRO_TRACE_DIR`` is set, traced sweeps drop their Chrome-trace and
    metrics artifacts under ``benchmarks/results/traces/<name>/`` (the
    directory CI's trace-smoke job validates and uploads).

    Usage::

        with bench_recorder("fig3_weak_scaling") as rec:
            ...  # run sweep, rec.add(label, simulated_seconds) per point
    """
    from repro.obs import trace_env_enabled

    rec = BenchRecorder(name)
    pushed_trace_dir = False
    if trace_env_enabled() and not os.environ.get("REPRO_TRACE_DIR"):
        os.environ["REPRO_TRACE_DIR"] = str(RESULTS_DIR / "traces" / name)
        pushed_trace_dir = True
    t0 = time.perf_counter()
    try:
        yield rec
    finally:
        rec.wall_seconds = time.perf_counter() - t0
        rec.peak_rss_bytes = peak_rss_bytes()
        rec.write()
        if pushed_trace_dir:
            del os.environ["REPRO_TRACE_DIR"]
