"""Make the shared bench helpers importable when pytest runs benchmarks/."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
