"""Make the shared bench helpers importable when pytest runs benchmarks/.

Benchmarks always run with the runtime sanitizer off: its write-protection
and per-collective checks would perturb the timings being measured.
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

os.environ["REPRO_SIMSAN"] = "0"
