"""Sustained serving throughput/latency under streaming edge churn.

Measures the serving layer (docs/serving.md), not the paper: one
persistent :class:`~repro.serve.GraphSession` per leg is driven through
the async :class:`~repro.serve.RequestQueue` with a seeded request mix --
queries (``msf_weight`` / ``edge_in_msf`` / ``components`` / ``stats``)
plus a ``churn`` fraction of edge mutations, committed in deterministic
epochs via explicit ``flush`` requests.  A final leg repeats the highest
churn rate with a fail-stop fault schedule active during epoch
recomputes.

Recorded per leg: sustained QPS and host-side p50/p99 latency (both
*report-only* -- host-dependent, never gated) and the leg's simulated
epoch-recompute seconds (deterministic: seeded workload, explicit epoch
boundaries; gated bit-for-bit like every simulated series).

Contracts asserted:

* every leg's final MSF weight equals sequential Kruskal on the leg's
  final edge list (incremental recompute is exact, faults included);
* churn legs actually exercise the incremental paths (some epoch avoids
  the full-recompute strategy);
* zero-churn legs commit no mutation epochs (queries are free of
  simulated recompute work).
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import numpy as np

from repro.core import BoruvkaConfig
from repro.dgraph.edges import Edges
from repro.seq import msf_weight
from repro.serve import GraphSession, RequestQueue

from _common import MAX_CORES, bench_recorder, report

PROCS = min(MAX_CORES, 8)
N_VERTICES = 1024
N_EDGES = 4096
#: Requests per leg (CI shrinks via the env knob).
N_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "240"))
#: Mutations staged between explicit flushes (the epoch size).
FLUSH_EVERY = 8
CHURN_RATES = (0.0, 0.1, 0.3)
FAULTS = "seed=23, pe_fail=0.02"


def _initial_graph(rng):
    pairs = set()
    while len(pairs) < N_EDGES:
        a, b = rng.integers(0, N_VERTICES, 2)
        if a != b:
            pairs.add((min(int(a), int(b)), max(int(a), int(b))))
    pairs = sorted(pairs)
    return [[u, v, int(rng.integers(1, 1_000_000))] for u, v in pairs]


def _requests(rng, pairs, churn):
    """One leg's seeded request list (host-side pair set kept in sync)."""
    live = {tuple(p[:2]) for p in pairs}
    reqs, staged = [], 0
    for i in range(N_REQUESTS):
        if rng.random() < churn:
            if rng.random() < 0.5 and live:
                pair = sorted(live)[int(rng.integers(0, len(live)))]
                live.discard(pair)
                reqs.append({"id": i, "op": "delete_edges",
                             "edges": [list(pair)]})
            else:
                while True:
                    a, b = rng.integers(0, N_VERTICES, 2)
                    key = (min(int(a), int(b)), max(int(a), int(b)))
                    if a != b and key not in live:
                        break
                live.add(key)
                reqs.append({"id": i, "op": "insert_edges",
                             "edges": [[key[0], key[1],
                                        int(rng.integers(1, 1_000_000))]]})
            staged += 1
            if staged % FLUSH_EVERY == 0:
                reqs.append({"id": f"flush-{i}", "op": "flush"})
        else:
            kind = int(rng.integers(0, 4))
            if kind == 0:
                reqs.append({"id": i, "op": "msf_weight"})
            elif kind == 1:
                reqs.append({"id": i, "op": "stats"})
            elif kind == 2:
                reqs.append({"id": i, "op": "components"})
            else:
                u, v = rng.integers(0, N_VERTICES, 2)
                reqs.append({"id": i, "op": "edge_in_msf",
                             "u": int(u), "v": int(v)})
    reqs.append({"id": "final-flush", "op": "flush"})
    return reqs


def _run_leg(pairs, churn, faults=None):
    """Serve one leg; returns (summary_row, responses, session_check)."""
    cfg = BoruvkaConfig(base_case_min=64)
    session = GraphSession(N_VERTICES, pairs, n_procs=PROCS, seed=7,
                           cfg=cfg, faults=faults)
    rng = np.random.default_rng(int(churn * 1000) + 17)
    reqs = _requests(rng, pairs, churn)

    async def drive(queue):
        # Queries and mutations pipeline freely, but each flush is
        # awaited before staging continues -- epoch composition must be
        # workload-determined, or the gated simulated series would
        # depend on commit timing.
        tasks, responses = [], []
        for r in reqs:
            if r["op"] == "flush":
                responses.append(await queue.submit(r))
            else:
                tasks.append(asyncio.ensure_future(queue.submit(r)))
                # One loop turn so the task stages/dispatches before the
                # next request -- otherwise a later flush could commit
                # before this mutation ever reached the pending epoch.
                await asyncio.sleep(0)
        responses.extend(await asyncio.gather(*tasks))
        return responses

    async def main():
        # Huge delay/batch: epochs commit only on the explicit flushes,
        # keeping epoch composition (and simulated seconds) deterministic.
        queue = RequestQueue(session, max_depth=len(reqs) + 1,
                             epoch_max_batch=10 * N_REQUESTS,
                             epoch_max_delay_s=600.0)
        try:
            wall0 = time.perf_counter()
            responses = await drive(queue)
            wall = time.perf_counter() - wall0
            return responses, wall, queue.summary()
        finally:
            queue.close()

    responses, wall, summary = asyncio.run(main())
    bad = [r for r in responses if not r["ok"]]
    assert not bad, f"serving errors at churn={churn}: {bad[:3]}"

    view = session.view
    half = view.edges.u < view.edges.v
    expect = msf_weight(Edges(view.edges.u[half], view.edges.v[half],
                              view.edges.w[half]), N_VERTICES)
    assert view.total_weight == expect, (
        f"churn={churn} faults={faults}: served weight "
        f"{view.total_weight} != sequential {expect}")

    label = f"churn={churn:.2f}" + ("+faults" if faults else "")
    row = {
        "label": label,
        "churn": churn,
        "faulted": bool(faults),
        "requests": len(reqs),
        "qps": len(reqs) / wall if wall > 0 else 0.0,
        "p50_latency_ms": summary["p50_latency_ms"],
        "p99_latency_ms": summary["p99_latency_ms"],
        "epochs": dict(session.epoch_counts),
        "replay_depths": list(session.replay_depths),
        "simulated_seconds": session.total_simulated_seconds,
    }
    session.close()
    return row


def _sweep():
    rng = np.random.default_rng(42)
    pairs = _initial_graph(rng)
    rows = [_run_leg(pairs, churn) for churn in CHURN_RATES]
    rows.append(_run_leg(pairs, CHURN_RATES[-1], faults=FAULTS))
    return rows


def test_serving_churn_sweep(benchmark):
    with bench_recorder("serving") as rec:
        rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
        for row in rows:
            # The initial full build is shared setup; the gated series is
            # the *epoch* recompute work, which the workload determines.
            rec.add(row["label"], row["simulated_seconds"],
                    epochs=row["epochs"])
        rec.write(serving=rows)

    lines = [f"MST-as-a-service under churn: {N_VERTICES} vertices, "
             f"{N_EDGES} edges, {PROCS} procs, {N_REQUESTS} requests/leg",
             f"{'leg':>16s} {'qps':>8s} {'p50ms':>8s} {'p99ms':>8s} "
             f"{'epochs':>30s}"]
    for r in rows:
        epochs = " ".join(f"{k}:{v}" for k, v in sorted(r["epochs"].items()))
        lines.append(f"{r['label']:>16s} {r['qps']:8.0f} "
                     f"{r['p50_latency_ms']:8.2f} "
                     f"{r['p99_latency_ms']:8.2f} {epochs:>30s}")
    report("serving", "\n".join(lines))

    churned = [r for r in rows if r["churn"] > 0]
    assert all(sum(r["epochs"].values()) > 0 for r in churned), \
        "churn legs committed no epochs -- workload generator broken"
    assert any(
        r["epochs"].get("noop", 0) + r["epochs"].get("sparsified", 0)
        + r["epochs"].get("replay", 0) > 0 for r in churned), \
        "no epoch used an incremental strategy"
    zero = rows[0]
    assert zero["churn"] == 0.0 and not zero["epochs"], \
        "zero-churn leg unexpectedly committed mutation epochs"


if __name__ == "__main__":
    rows = _sweep()
    print(json.dumps(rows, indent=2))
