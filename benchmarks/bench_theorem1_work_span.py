"""Theorem 1: Filter-Borůvka work and base-case-call bounds.

Theorem 1 proves that (sequential) Filter-Borůvka with random edge weights
has expected running time ``O(m + n log n log(m/n))`` and that the expected
number of base-case Borůvka calls is ``O(log(m/n))``.  This bench measures
both quantities over an m/n sweep with the instrumented sequential
implementation and asserts:

* base-case calls grow at most logarithmically with m/n (bounded by
  ``a + b * log2(m/n)`` for small constants);
* the per-edge work (edges touched across all recursion levels, the measure
  behind the O(m) term) stays bounded by a constant as m/n grows.
"""

from __future__ import annotations

import numpy as np

from repro.dgraph.edges import Edges
from repro.seq import FilterStats, filter_boruvka_msf, verify_msf

from _common import bench_recorder, report

N = 512
RATIOS = (4, 8, 16, 32, 64)


def _instance(n: int, m: int, seed: int) -> Edges:
    rng = np.random.default_rng(seed)
    # connected base path + random extra edges, random weights
    path_u = np.arange(n - 1)
    path_v = path_u + 1
    extra = m - (n - 1)
    eu = rng.integers(0, n, extra)
    ev = rng.integers(0, n, extra)
    keep = eu != ev
    u = np.concatenate([path_u, eu[keep]])
    v = np.concatenate([path_v, ev[keep]])
    w = rng.integers(1, 1 << 20, len(u))  # near-distinct random weights
    return Edges(u, v, w)


def _sweep():
    rows = []
    for ratio in RATIOS:
        calls, work = [], []
        for seed in range(3):
            e = _instance(N, N * ratio, seed)
            stats = FilterStats()
            msf = filter_boruvka_msf(e, N, base_case_size=2 * N,
                                     stats=stats)
            verify_msf(msf, e, N, check_edges=False)
            calls.append(stats.base_case_calls)
            work.append(stats.edges_touched / len(e))
        rows.append((ratio, float(np.mean(calls)), float(np.mean(work))))
    return rows


def test_theorem1_work_and_span(benchmark):
    # Sequential instrumentation: no simulated machine, so the makespan
    # column is null; base-case calls and per-edge work ride along instead.
    with bench_recorder("theorem1_work_span") as rec:
        rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
        for ratio, calls, work in rows:
            rec.add(f"m/n={ratio}", float("nan"),
                    base_case_calls=calls, edges_touched_per_m=work)
    lines = [f"Sequential Filter-Borůvka instrumentation, n={N}",
             f"{'m/n':>5s} {'base-case calls':>16s} {'edges touched / m':>18s}"]
    for ratio, calls, work in rows:
        lines.append(f"{ratio:5d} {calls:16.1f} {work:18.2f}")
    report("theorem1_work_span", "\n".join(lines))

    for ratio, calls, work in rows:
        # O(log(m/n)) base-case calls (generous constants).
        assert calls <= 3 + 3 * np.log2(ratio), (ratio, calls)
        # O(m) total work: each edge is touched O(1) times in expectation.
        assert work <= 6.0, (ratio, work)
    # The call count must not grow linearly: doubling m/n from the first to
    # the last ratio must grow calls by far less than the ratio growth.
    first, last = rows[0], rows[-1]
    assert last[1] / max(first[1], 1) < (last[0] / first[0]) / 2
