"""Ablation: indirection depth of the sparse all-to-all (Section VI-A).

"The large startup term alpha*p can be reduced at the cost of more and more
indirect data delivery. ... For larger p, the grid approach can easily be
generalized to dimensions 2 < d <= log(p).  For d = log(p), we basically get
the hypercube all-to-all algorithm."

This bench sweeps the delivery scheme (direct, d=2, d=3, hypercube) for a
latency-bound workload (one tiny message per PE pair) across machine sizes
and reports the simulated cost, asserting the paper's trade-off: indirection
wins at scale, and the optimal depth grows only once p is large enough that
``alpha * d * p^(1/d)`` keeps falling faster than the d-fold volume grows.
"""

from __future__ import annotations

import numpy as np

from repro.simmpi import (
    Comm,
    Machine,
    alltoallv_direct,
    alltoallv_grid,
    alltoallv_hypercube,
    alltoallv_multilevel,
)

from _common import bench_recorder, report

SCHEMES = [
    ("direct", lambda c, b, n: alltoallv_direct(c, b, n)),
    ("grid d=2", lambda c, b, n: alltoallv_grid(c, b, n)),
    ("grid d=3", lambda c, b, n: alltoallv_multilevel(c, b, n, d=3)),
    ("hypercube", lambda c, b, n: alltoallv_hypercube(c, b, n)),
]
SIZES = (16, 64, 256, 1024)


def _one(p: int, fn) -> float:
    bufs = [np.zeros((p, 1), dtype=np.int64) for _ in range(p)]
    cnts = [np.ones(p, dtype=np.int64) for _ in range(p)]
    machine = Machine(p)
    fn(Comm(machine), bufs, cnts)
    return machine.elapsed()


def _sweep():
    rows = []
    for p in SIZES:
        rows.append((p, [(name, _one(p, fn)) for name, fn in SCHEMES]))
    return rows


def test_ablation_alltoall_dimension(benchmark):
    with bench_recorder("ablation_alltoall_dimension") as rec:
        rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
        for p, entries in rows:
            for name, t in entries:
                rec.add(f"{name}/p{p}", t)
    header = f"{'p':>6s}" + "".join(f"{name:>12s}" for name, _ in SCHEMES)
    lines = ["Sparse all-to-all, one 8-byte message per PE pair, "
             "time [sim s]", header]
    for p, entries in rows:
        lines.append(f"{p:6d}" + "".join(f"{t:12.2e}" for _, t in entries))
    report("ablation_alltoall_dimension", "\n".join(lines))

    by = {p: dict(entries) for p, entries in rows}
    top = SIZES[-1]
    # Indirection wins at scale.
    assert by[top]["grid d=2"] < by[top]["direct"]
    assert by[top]["grid d=3"] < by[top]["direct"]
    # The direct scheme's disadvantage grows with p.
    ratio_small = by[SIZES[0]]["direct"] / by[SIZES[0]]["grid d=2"]
    ratio_big = by[top]["direct"] / by[top]["grid d=2"]
    assert ratio_big > ratio_small
