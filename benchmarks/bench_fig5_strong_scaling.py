"""Fig. 5: strong scaling on the real-world instances (Table I stand-ins).

The paper scales the six fixed real-world graphs from 2^8 to 2^14 cores:
our algorithms "exhibit good scalability and are 4 to 40 times faster than
our competitors, which also scale worse for all graphs but US-road.  For
US-road ... we achieve our best running time for 8192 cores" (i.e. the
smallest instance stops scaling before the top of the sweep).  "For the
social instances, our filtering approach tends to be faster than our
non-filter algorithm.  For all other graphs, our non-filter approach
performs better."

Shape claims asserted:

* our algorithms get faster from the bottom to the best point of the sweep
  on every instance (strong scaling works);
* competitors are beaten at the top common core count;
* filterBoruvka beats boruvka on at least one social instance at scale.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import plot_results, series_table, speedup_summary, strong_scaling

from _common import (
    MAX_CORES,
    bench_recorder,
    cached_graph,
    competitor_memory_limit,
    core_sweep,
    record_experiments,
    report,
)

INSTANCES = ("friendster", "twitter", "uk-2007", "it-2004", "wdc-14",
             "US-road")
COMPETITOR_CAP = min(MAX_CORES, 32)
#: Per-core memory for our algorithms: sized so the largest stand-in
#: (wdc-14) does not fit at the bottom of the sweep -- the scaled analogue
#: of "except for wdc-14 for which we also need at least 4096 cores".
OUR_MEMORY_PER_CORE = 3e7


def _sweep():
    results = {}
    for name in INSTANCES:
        g = cached_graph("realworld", name=name, seed=5)
        rows = strong_scaling(g, ["boruvka", "filter-boruvka"],
                              core_sweep(lo=4), threads=1, seed=5,
                              memory_limit_per_core=OUR_MEMORY_PER_CORE)
        rows8 = strong_scaling(g, ["boruvka", "filter-boruvka"],
                               core_sweep(lo=8), threads=8, seed=5,
                               memory_limit_per_core=OUR_MEMORY_PER_CORE)
        for r in rows8:
            r.algorithm = f"{r.algorithm}-8t"
        rows += rows8
        per_core_edges = g.n_directed_edges // (2 * max(COMPETITOR_CAP, 1))
        rows += strong_scaling(
            g, ["awerbuch-shiloach", "mnd-mst"],
            core_sweep(lo=4, hi=COMPETITOR_CAP), threads=1,
            memory_limit_per_core=competitor_memory_limit(per_core_edges),
            seed=5,
        )
        results[name] = rows
    return results


def test_fig5_strong_scaling(benchmark):
    with bench_recorder("fig5_strong_scaling") as rec:
        results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
        for name, rows in results.items():
            record_experiments(rec, rows, prefix=f"{name}/")
    lines = ["Strong scaling on the Table-I stand-ins, time [sim s]"]
    for name, rows in results.items():
        lines += ["", f"--- {name} ---", series_table(rows),
                  speedup_summary(rows), "",
                  plot_results(rows, value="elapsed")]
    report("fig5_strong_scaling", "\n".join(lines))

    # wdc-14 does not fit at the bottom of the sweep (paper: ">= 4096
    # cores" of its 2^14 sweep; here: the smallest configuration).
    wdc_low = [r for r in results["wdc-14"]
               if r.algorithm == "boruvka" and r.cores == core_sweep(lo=4)[0]]
    assert wdc_low and wdc_low[0].status == "oom", "wdc-14 should not fit"

    for name, rows in results.items():
        ours = [r for r in rows if r.algorithm == "boruvka"
                and r.status == "ok"]
        ours.sort(key=lambda r: r.cores)
        assert len(ours) >= 2, name
        t_first = ours[0].elapsed
        t_best = min(r.elapsed for r in ours)
        assert t_best < t_first, f"{name}: no strong scaling"
        # Competitors beaten at the top common core count.
        our_cap = min((r.elapsed for r in rows
                       if r.cores == COMPETITOR_CAP and r.status == "ok"
                       and r.algorithm in ("boruvka", "filterBoruvka",
                                           "filter-boruvka")),
                      default=np.nan)
        for comp in ("sparseMatrix", "MND-MST"):
            cr = [r for r in rows if r.algorithm == comp
                  and r.cores == COMPETITOR_CAP and r.status == "ok"]
            if cr and np.isfinite(our_cap):
                assert cr[0].elapsed > our_cap, (name, comp)
    # Social instances: filtering pays off at the top of the sweep.
    social_wins = 0
    for name in ("friendster", "twitter"):
        rows = results[name]
        top = max(r.cores for r in rows if r.status == "ok")
        t = {r.algorithm: r.elapsed for r in rows if r.cores == top
             and r.status == "ok"}
        if t.get("filter-boruvka", np.inf) < t.get("boruvka", np.inf):
            social_wins += 1
    assert social_wins >= 1, "filtering should win on a social instance"
