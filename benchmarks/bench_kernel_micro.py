"""Microbenchmark of the segmented kernels and the buffer pool.

Times the hot kernels of :mod:`repro.kernels.segmented` in isolation --
through the same ``record_kernel``/``kernel_sink`` hooks a traced machine
uses -- on identical workloads in the two dtype layouts of the adaptive
narrowing policy (``uint32`` vs ``int64``).  The per-kernel host seconds
quantify the memory-bandwidth effect of the policy directly, without the
simulator around it; the pool leg measures the scratch-arena hit rate on
the packed-key path.

Host seconds land in the ``BENCH_kernel_micro.json`` extras (they are
machine-dependent); the ``simulated_seconds`` of every entry is a constant
0.0 so the record stays bit-for-bit comparable across machines.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.engine import set_kernel_sink
from repro.kernels.pool import BufferPool, active_pool, set_active_pool
from repro.kernels.segmented import (
    packed_lexsort,
    segmented_lexsort,
    segmented_searchsorted,
    segmented_unique,
)
from repro.obs import MetricsRegistry

from _common import bench_recorder, report

#: Elements per workload (edge-scale: the fig3 sweep's largest part sizes).
N = 1 << 18
#: Simulated-PE segments the workloads split into.
SEGMENTS = 64
#: Value bound: everything fits uint32 so both layouts hold the same values.
BOUND = 1 << 20


def _workload(dtype, seed: int = 7):
    """Deterministic kernel inputs in the requested storage dtype."""
    rng = np.random.default_rng(seed)
    vals = rng.integers(0, BOUND, N).astype(dtype)
    keys2 = rng.integers(0, BOUND, N).astype(dtype)
    seg = np.repeat(np.arange(SEGMENTS, dtype=np.int64), N // SEGMENTS)
    off = np.arange(SEGMENTS + 1, dtype=np.int64) * (N // SEGMENTS)
    hay = np.sort(vals.reshape(SEGMENTS, -1), axis=1).ravel()
    return vals, keys2, seg, off, hay


def _run_kernels(dtype) -> dict:
    """One pass over the kernel suite; returns name -> (calls, host_s)."""
    registry = MetricsRegistry()
    set_kernel_sink(registry)
    try:
        vals, keys2, seg, off, hay = _workload(dtype)
        packed_lexsort((keys2, vals))
        segmented_lexsort((vals, keys2), seg)
        segmented_unique(vals, seg, SEGMENTS)
        segmented_searchsorted(hay, off, vals, seg)
    finally:
        set_kernel_sink(None)
    counters = registry.counters()
    names = sorted({k.split("/")[1] for k in counters
                    if k.startswith("kernel/")})
    return {n: (int(counters[f"kernel/{n}/calls"].value),
                counters[f"kernel/{n}/host_seconds"].value)
            for n in names}


def _run_pool() -> dict:
    """Pool hit-rate leg: repeated pooled scratch cycles at one size class."""
    pool = BufferPool(max_bytes=32 << 20)
    prev = active_pool()
    set_active_pool(pool)
    try:
        for _ in range(16):
            block = active_pool().take(N, np.int64)
            block[:] = 0
            active_pool().give(block)
    finally:
        set_active_pool(prev)
    return pool.stats()


def _sweep():
    out = {}
    for label, dtype in (("narrow", np.uint32), ("wide", np.int64)):
        _run_kernels(dtype)  # warm-up: allocator, caches, imports
        out[label] = _run_kernels(dtype)
    out["pool"] = _run_pool()
    return out


def test_kernel_micro(benchmark):
    with bench_recorder("kernel_micro") as rec:
        results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
        for layout in ("narrow", "wide"):
            for name, (calls, host) in results[layout].items():
                rec.add(f"{name}/{layout}", 0.0, calls=calls,
                        host_seconds=host)
        pool = results["pool"]
        rec.add("pool/reuse", 0.0, **pool)

    kernels = sorted(results["wide"])
    lines = [f"Segmented kernels on {N} elements / {SEGMENTS} segments, "
             f"host seconds by storage dtype",
             f"{'kernel':>24s} {'uint32':>10s} {'int64':>10s} {'ratio':>7s}"]
    for name in kernels:
        hn = results["narrow"][name][1]
        hw = results["wide"][name][1]
        ratio = hw / hn if hn else float("nan")
        lines.append(f"{name:>24s} {hn:10.4f} {hw:10.4f} {ratio:7.2f}")
    pool = results["pool"]
    total = pool["hits"] + pool["misses"]
    lines.append(f"\nbuffer pool: {pool['hits']}/{total} takes served from "
                 f"the free lists ({pool['bytes_reused'] >> 20} MiB reused)")
    report("kernel_micro", "\n".join(lines))

    # The suite must have exercised every kernel in both layouts ...
    assert set(results["narrow"]) == set(results["wide"])
    assert {"packed_lexsort", "segmented_lexsort",
            "segmented_unique", "segmented_searchsorted"} <= set(kernels)
    # ... and steady-state pooled scratch must be (nearly) all hits.
    assert pool["hits"] >= 14
