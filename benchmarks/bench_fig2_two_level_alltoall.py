"""Fig. 2: effect of the two-level all-to-all on component contraction.

The paper plots the accumulated running time of the component-contraction
phases (pointer doubling) of Algorithm 1 on Erdős-Renyi graphs with 2^17
vertices and 2^21 edges per core: one-level ``MPI_Alltoallv`` grows sharply
with the core count (``alpha * p`` startup) while the two-level grid variant
stays nearly flat (``alpha * sqrt(p)``).

This bench runs the same experiment at simulation scale and asserts the
shape: the two-level variant wins at the top of the sweep and its advantage
*grows* with p.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ExperimentResult, run_algorithm, series_table
from repro.core import BoruvkaConfig

from _common import (
    PER_CORE_EDGES,
    PER_CORE_VERTICES,
    bench_recorder,
    cached_graph,
    core_sweep,
    record_experiments,
    report,
)


def _sweep():
    results = []
    for cores in core_sweep(lo=4):
        g = cached_graph("family", family="GNM",
                         n=PER_CORE_VERTICES * cores,
                         m=PER_CORE_EDGES * cores, seed=2)
        for method in ("direct", "grid"):
            cfg = BoruvkaConfig(alltoall=method, base_case_min=64,
                                local_preprocessing=False)
            r = run_algorithm(g, "boruvka", cores, config=cfg)
            r.algorithm = f"alltoall={method}"
            # Fig. 2's y-axis: accumulated component-contraction time.
            r.elapsed = r.phase_times.get("contraction", float("nan"))
            results.append(r)
    return results


def test_fig2_two_level_alltoall(benchmark):
    with bench_recorder("fig2_two_level_alltoall") as rec:
        results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
        record_experiments(rec, results)
    table = series_table(results, value="elapsed")
    lines = [
        "Accumulated component-contraction (pointer doubling) time [sim s]",
        "GNM weak scaling, boruvka without preprocessing", "", table,
    ]

    by = {(r.cores, r.algorithm): r.elapsed for r in results}
    cores = sorted({r.cores for r in results})
    top = cores[-1]
    ratio_top = by[(top, "alltoall=direct")] / by[(top, "alltoall=grid")]
    ratio_lo = by[(cores[0], "alltoall=direct")] / by[(cores[0],
                                                       "alltoall=grid")]
    lines += ["", f"direct/grid ratio: {ratio_lo:.2f} at p={cores[0]} -> "
              f"{ratio_top:.2f} at p={top}"]
    report("fig2_two_level_alltoall", "\n".join(lines))

    # Shape claims: grid wins at scale and the gap widens with p.
    assert ratio_top > 1.5, "two-level all-to-all should win at scale"
    assert ratio_top > ratio_lo, "the two-level advantage should grow with p"
