"""Communication analysis: where do the bytes go?

The paper's Fig. 6 attributes most of the running time to communication and
its Section VI-A redesigns the all-to-all around that.  This example enables
the simulator's communication trace, runs distributed Borůvka on a
high-locality (2D-GRID) and a no-locality (GNM) instance, and prints:

* the per-PE-pair communication heat map (grid: traffic hugs the diagonal;
  GNM: uniform all-to-all pressure),
* the volume and imbalance summary,
* a direct-vs-two-level comparison of exchange counts and volume.

Run:  python examples/communication_analysis.py
"""

from repro.core import BoruvkaConfig, distributed_boruvka
from repro.graphgen import gen_family, graph_statistics
from repro.simmpi import Machine, comm_heatmap, hotspot_summary

P = 16


def analyse(family: str, alltoall: str) -> None:
    graph = gen_family(family, 256 * P, 1024 * P, seed=5)
    stats = graph_statistics(graph, locality_parts=P)
    machine = Machine(P, trace=True)
    result = distributed_boruvka(
        graph.distribute(machine),
        BoruvkaConfig(base_case_min=64, alltoall=alltoall))
    print(f"\n=== {family} / alltoall={alltoall} ===")
    print(f"instance : {stats.summary()}")
    print(f"run      : {result.elapsed * 1e3:.3f} simulated ms, "
          f"{machine.n_collectives} collectives, "
          f"{machine.bytes_communicated / 1e6:.2f} MB moved")
    print(comm_heatmap(machine.trace, max_cells=16))
    print(hotspot_summary(machine.trace))


def main() -> None:
    for family in ("2D-GRID", "GNM"):
        analyse(family, "grid")
    # The same GNM run with the one-level all-to-all: half the volume but
    # every exchange pays the full alpha*p startup (Fig. 2's trade-off).
    analyse("GNM", "direct")


if __name__ == "__main__":
    main()
