"""Network topology design via MST (paper application [5]).

Topology-control in wireless/backbone networks keeps the minimum-cost edge
set that preserves connectivity -- the MST.  This example models an
internet-like topology (random hyperbolic graph: power-law degrees, small
diameter) with link costs, computes the minimum-cost backbone with both of
the paper's algorithms and reports the cost saving over the full mesh, plus
a mini strong-scaling comparison between the two algorithms.

Run:  python examples/network_design.py
"""

from repro import Machine, minimum_spanning_forest
from repro.graphgen import gen_rhg
from repro.seq import is_spanning_forest


def main() -> None:
    # An AS-like network: 4 000 routers, power-law degree distribution.
    graph = gen_rhg(4_000, avg_degree=14, gamma=3.0, seed=11)
    full_cost = graph.edges.total_weight() // 2
    print(f"network: {graph.n_vertices} routers, "
          f"{graph.n_undirected_edges} candidate links, "
          f"full-mesh cost {full_cost}")

    results = {}
    for algorithm in ("boruvka", "filter-boruvka"):
        times = {}
        for procs in (4, 16, 64):
            machine = Machine(n_procs=procs)
            res = minimum_spanning_forest(graph.distribute(machine),
                                          algorithm=algorithm)
            times[procs] = res.elapsed
            results[algorithm] = res
        scaling = " ".join(f"p={p}:{t * 1e3:.2f}ms"
                           for p, t in times.items())
        print(f"{algorithm:15s} backbone cost {results[algorithm].total_weight}"
              f"  ({scaling})")

    res = results["boruvka"]
    backbone = res.msf_edges()
    saving = 1 - res.total_weight / full_cost
    print(f"backbone keeps {len(backbone)} links "
          f"({len(backbone) / graph.n_undirected_edges:.1%} of candidates), "
          f"cost saving {saving:.1%}")

    # The backbone must still connect everything the full network connects.
    assert is_spanning_forest(backbone, graph.edges, graph.n_vertices)
    assert results["boruvka"].total_weight == \
        results["filter-boruvka"].total_weight
    print("connectivity preserved: OK")


if __name__ == "__main__":
    main()
