"""Quickstart: compute a minimum spanning forest on a simulated cluster.

Builds a small random geometric graph, partitions it over 8 simulated PEs,
runs the paper's two algorithms (distributed Borůvka and Filter-Borůvka) and
checks both against sequential Kruskal.

Run:  python examples/quickstart.py
"""

from repro import Machine, minimum_spanning_forest
from repro.graphgen import gen_rgg2d
from repro.seq import kruskal_msf


def main() -> None:
    # 1. Generate an instance: 2 000 points in the unit square, connected
    #    below the distance threshold that yields ~10 neighbours each.
    graph = gen_rgg2d(2_000, avg_degree=10, seed=42)
    print(f"instance: {graph.name} with n={graph.n_vertices} vertices, "
          f"m={graph.n_undirected_edges} edges")

    # 2. A simulated distributed machine: 8 MPI processes x 4 threads.
    machine = Machine(n_procs=8, threads=4)

    # 3. Run the paper's algorithms.
    for algorithm in ("boruvka", "filter-boruvka"):
        machine_run = Machine(n_procs=8, threads=4)
        result = minimum_spanning_forest(
            graph.distribute(machine_run), algorithm=algorithm)
        print(f"\n{algorithm}:")
        print(f"  MSF weight          : {result.total_weight}")
        print(f"  MSF edges           : {len(result.msf_edges())}")
        print(f"  simulated time      : {result.elapsed * 1e3:.3f} ms "
              f"on {machine_run.cores} cores")
        print(f"  Borůvka rounds      : {result.rounds}")
        top = sorted(result.phase_times.items(), key=lambda kv: -kv[1])[:3]
        print("  top phases          : "
              + ", ".join(f"{k}={v * 1e3:.3f} ms" for k, v in top))

        # 4. Verify against sequential Kruskal.
        reference = kruskal_msf(graph.edges, graph.n_vertices)
        assert result.total_weight == reference.total_weight()
        print("  verified against Kruskal: OK")


if __name__ == "__main__":
    main()
