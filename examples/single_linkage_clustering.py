"""Single-linkage clustering via distributed MST (paper application [3], [37]-[39]).

Single-linkage hierarchical clustering is exactly an MST computation: cut
the k-1 heaviest MST edges and the remaining components are the k clusters.
The paper's related work covers several distributed MST-based clustering
systems; this example does the same with Filter-Borůvka (the right variant
here: the point-cloud graph is dense and weights are distances, so most MST
edges are light and filtering discards most of the heavy edges unseen).

Run:  python examples/single_linkage_clustering.py
"""

import numpy as np
from scipy.spatial import cKDTree

from repro import Machine, minimum_spanning_forest
from repro.dgraph import Edges
from repro.seq import UnionFind


def make_blobs(n_points: int, k: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 10, (k, 2))
    labels = rng.integers(0, k, n_points)
    points = centers[labels] + rng.normal(0, 0.18, (n_points, 2))
    return points, labels


def neighbourhood_graph(points: np.ndarray, n_neighbours: int = 12
                        ) -> tuple[Edges, int]:
    """Mutual k-NN graph with integer distance weights."""
    tree = cKDTree(points)
    dist, idx = tree.query(points, k=n_neighbours + 1)
    n = len(points)
    u = np.repeat(np.arange(n), n_neighbours)
    v = idx[:, 1:].ravel()
    d = dist[:, 1:].ravel()
    # Scale distances into the integer weight domain.
    w = np.clip((d / d.max() * 60_000).astype(np.int64) + 1, 1, None)
    cu = np.minimum(u, v)
    cv = np.maximum(u, v)
    code, first = np.unique(cu * n + cv, return_index=True)
    cu, cv, w = cu[first], cv[first], w[first]
    sym = Edges(np.concatenate([cu, cv]), np.concatenate([cv, cu]),
                np.concatenate([w, w])).sort_lex()
    sym.id[:] = np.arange(len(sym))
    return sym, n


def single_linkage(msf: Edges, n: int, k: int) -> np.ndarray:
    """Cut the heaviest MSF edges until k components remain.

    The mutual k-NN graph may already be disconnected, so only
    ``k - existing_components`` cuts are needed.
    """
    existing = n - len(msf)  # forest: #components = n - #edges
    cuts = max(k - existing, 0)
    order = msf.weight_order()
    keep = order[: len(msf) - cuts]
    uf = UnionFind(n)
    uf.union_edges(msf.u[keep], msf.v[keep])
    return uf.components()


def main() -> None:
    k = 5
    points, truth = make_blobs(3_000, k, seed=3)
    graph, n = neighbourhood_graph(points)
    print(f"{n} points, {len(graph) // 2} undirected k-NN edges")

    machine = Machine(n_procs=16, threads=2)
    result = minimum_spanning_forest(graph, machine=machine,
                                     algorithm="filter-boruvka")
    msf = result.msf_edges()
    print(f"MSF: {len(msf)} edges, weight {result.total_weight}, "
          f"{result.elapsed * 1e3:.3f} simulated ms on "
          f"{machine.cores} cores")

    clusters = single_linkage(msf, n, k)
    found = len(np.unique(clusters))
    print(f"clusters after cutting down to {k} components: {found}")

    # Quality: majority agreement with the planted blobs.
    agreement = 0.0
    for blob in range(k):
        members = np.flatnonzero(truth == blob)
        _, counts = np.unique(clusters[members], return_counts=True)
        agreement += counts.max() / len(members)
    agreement /= k
    print(f"planted-cluster recovery: {agreement:.1%}")
    assert agreement > 0.9, "clustering failed"
    print("OK")


if __name__ == "__main__":
    main()
