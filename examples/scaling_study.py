"""Mini weak-scaling study: a self-contained Fig. 3 in miniature.

Sweeps core counts on two contrasting graph families (high-locality 2D-RGG
vs no-locality GNM), runs the paper's algorithms and both competitors, and
prints the throughput tables plus the speedup summary -- the same harness
the full benchmarks in benchmarks/ use.

Run:  python examples/scaling_study.py
"""

from repro.analysis import series_table, speedup_summary, weak_scaling
from repro.graphgen import gen_family


def main() -> None:
    per_core_vertices, per_core_edges = 128, 1024
    cores = [4, 16, 64]

    for family in ("2D-RGG", "GNM"):
        def make(n, m, seed, family=family):
            return gen_family(family, n, m, seed=seed)

        results = weak_scaling(
            make,
            ["boruvka", "filter-boruvka", "awerbuch-shiloach", "mnd-mst"],
            cores, per_core_vertices, per_core_edges, seed=1,
        )
        print(f"\n=== {family}: weak scaling, {per_core_vertices} vertices /"
              f" {per_core_edges} edges per core ===")
        print("throughput [edges / simulated second]:")
        print(series_table(results, value="throughput"))
        print(speedup_summary(results))


if __name__ == "__main__":
    main()
