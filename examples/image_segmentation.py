"""MST-based image segmentation (one of the paper's motivating applications).

The introduction cites graph-based image segmentation [4] as a classic MST
application: pixels are vertices, 4-neighbour edges are weighted by colour
difference, and connected regions of the *minimum spanning forest with heavy
edges removed* are the segments (a simplified Felzenszwalb-Huttenlocher /
Kruskal-threshold scheme).

This example synthesises an image of noisy coloured blobs, builds the pixel
graph, computes its MST with the distributed Borůvka algorithm on a
simulated 16-core machine, and segments by cutting MST edges above a
threshold.  It then checks that the recovered segments match the planted
blobs.

Run:  python examples/image_segmentation.py
"""

import numpy as np

from repro import Machine, minimum_spanning_forest
from repro.dgraph import Edges
from repro.seq import UnionFind


def synthesize_image(side: int, seed: int = 0):
    """A side x side grey image of 4 planted quadrant blobs plus noise."""
    rng = np.random.default_rng(seed)
    base = np.zeros((side, side))
    half = side // 2
    levels = [(0, 0, 40), (0, half, 110), (half, 0, 180), (half, half, 250)]
    truth = np.zeros((side, side), dtype=np.int64)
    for label, (r0, c0, level) in enumerate(levels):
        base[r0:r0 + half, c0:c0 + half] = level
        truth[r0:r0 + half, c0:c0 + half] = label
    noisy = base + rng.normal(0, 4.0, base.shape)
    return noisy, truth


def pixel_graph(image: np.ndarray) -> tuple[Edges, int]:
    """4-neighbour pixel graph with colour-difference weights in [1, 255)."""
    side = image.shape[0]
    idx = np.arange(side * side).reshape(side, side)
    us, vs, ws = [], [], []
    # Horizontal and vertical neighbour pairs.
    for (a, b) in ((idx[:, :-1], idx[:, 1:]), (idx[:-1, :], idx[1:, :])):
        us.append(a.ravel())
        vs.append(b.ravel())
        diff = np.abs(image.ravel()[a.ravel()] - image.ravel()[b.ravel()])
        ws.append(np.clip(diff.astype(np.int64) + 1, 1, 254))
    u = np.concatenate(us)
    v = np.concatenate(vs)
    w = np.concatenate(ws)
    sym = Edges(np.concatenate([u, v]), np.concatenate([v, u]),
                np.concatenate([w, w])).sort_lex()
    sym.id[:] = np.arange(len(sym))
    return sym, side * side


def segment(msf: Edges, n_pixels: int, threshold: int) -> np.ndarray:
    """Connected components of the MSF restricted to light edges."""
    uf = UnionFind(n_pixels)
    keep = msf.w <= threshold
    uf.union_edges(msf.u[keep], msf.v[keep])
    return uf.components()


def main() -> None:
    side = 48
    image, truth = synthesize_image(side, seed=7)
    graph, n_pixels = pixel_graph(image)
    print(f"image {side}x{side}: pixel graph with "
          f"{len(graph) // 2} undirected edges")

    machine = Machine(n_procs=16)
    result = minimum_spanning_forest(
        graph, machine=machine, algorithm="boruvka")
    msf = result.msf_edges()
    print(f"MST computed in {result.elapsed * 1e3:.3f} simulated ms "
          f"on {machine.cores} cores (weight {result.total_weight})")

    labels = segment(msf, n_pixels, threshold=25)
    n_segments = len(np.unique(labels))
    print(f"segments found: {n_segments}")

    # Check the four planted blobs are recovered: pixels sharing a planted
    # label must share a segment (modulo the noisy boundary rows).
    truth_flat = truth.ravel()
    agreement = 0
    for blob in range(4):
        members = np.flatnonzero(truth_flat == blob)
        seg_ids, counts = np.unique(labels[members], return_counts=True)
        agreement += counts.max() / len(members)
    agreement /= 4
    print(f"blob recovery (majority-segment agreement): {agreement:.1%}")
    assert agreement > 0.95, "segmentation failed to recover the blobs"
    print("OK")


if __name__ == "__main__":
    main()
