"""Tests for the observability layer (repro.obs): tracer, metrics, exports.

The load-bearing property is *tracing invisibility*: a traced machine must
produce bit-for-bit identical simulated clocks, forests and diagnostics to
an untraced one.  Everything else (ring buffer semantics, Chrome-trace
schema, metrics content) is checked against small hand-built cases plus
full algorithm runs.
"""

import json

import numpy as np
import pytest

from repro.core import (
    BoruvkaConfig,
    FilterConfig,
    minimum_spanning_forest,
)
from repro.graphgen import gen_gnm
from repro.obs import (
    DEFAULT_CAPACITY,
    EventTracer,
    MetricsRegistry,
    chrome_trace,
    metrics_to_dict,
    progress_table,
    trace_env_enabled,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.simmpi import Comm, Machine

ALGORITHMS = ("boruvka", "filter-boruvka", "awerbuch-shiloach", "mnd-mst")


def _config(alg):
    b = BoruvkaConfig(base_case_min=64)
    return FilterConfig(boruvka=b) if alg == "filter-boruvka" else b


def _run(alg, traced, n=512, m=2048, procs=8):
    machine = Machine(procs, trace_events=traced)
    g = gen_gnm(n, m, seed=7)
    res = minimum_spanning_forest(g.distribute(machine), algorithm=alg,
                                  config=_config(alg))
    return machine, res


class TestEventTracer:
    def test_ring_buffer_overwrites_oldest(self):
        tr = EventTracer(2, capacity=4)
        for k in range(6):
            tr.instant(f"e{k}", 0, float(k))
        assert len(tr) == 4
        assert tr.dropped == 2
        names = [ev[1] for ev in tr.events()]
        assert names == ["e2", "e3", "e4", "e5"]

    def test_events_chronological_before_wraparound(self):
        tr = EventTracer(1, capacity=8)
        tr.begin("a", 0, 1.0)
        tr.end("a", 0, 2.0)
        phs = [ev[0] for ev in tr.events()]
        assert phs == ["B", "E"]

    def test_reset_clears_everything(self):
        tr = EventTracer(2, capacity=4)
        for k in range(9):
            tr.instant("x", 0, float(k))
        tr.set_round(3)
        tr.push_phase("p", np.zeros(2))
        tr.reset()
        assert len(tr) == 0
        assert tr.dropped == 0
        assert tr.round == -1
        assert tr.phase is None

    def test_default_capacity(self):
        assert EventTracer(2).capacity == DEFAULT_CAPACITY

    def test_capacity_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CAP", "128")
        assert EventTracer(2).capacity == 128

    def test_env_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not trace_env_enabled()
        assert Machine(2).events is None
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert trace_env_enabled()
        m = Machine(2)
        assert m.events is not None and m.metrics is not None
        # Explicit argument beats the environment.
        assert Machine(2, trace_events=False).events is None
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not trace_env_enabled()
        assert Machine(2).events is None


class TestMetricsRegistry:
    def test_counter_gauge_series(self):
        mx = MetricsRegistry()
        mx.counter("c").inc()
        mx.counter("c").inc(2.5)
        assert mx.counter("c").value == pytest.approx(3.5)
        mx.gauge("g").set(2.0)
        mx.gauge("g").set(1.0)
        assert mx.gauge("g").value == 1.0
        assert mx.gauge("g").max == 2.0
        mx.series("s").record(0, 10.0)
        mx.series("s").record(1, 20.0)
        assert mx.series("s").points == [(0, 10.0), (1, 20.0)]
        assert mx.series("s").last() == (1, 20.0)

    def test_histogram_pow2_buckets(self):
        mx = MetricsRegistry()
        h = mx.histogram("h")
        for v in (1.0, 2.0, 3.0, 1000.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(1006.0)
        assert h.min == 1.0 and h.max == 1000.0
        assert h.buckets[0] == 1    # 1.0
        assert h.buckets[1] == 1    # 2.0
        assert h.buckets[2] == 1    # 3.0
        assert h.buckets[10] == 1   # 1000.0 <= 2^10
        assert h.mean == pytest.approx(1006.0 / 4)

    def test_pe_counter(self):
        mx = MetricsRegistry()
        pe = mx.pe_counter("p", 4)
        pe.add(np.array([1.0, 2.0]), ranks=np.array([1, 3]))
        pe.add(np.ones(4))
        assert pe.values.tolist() == [1.0, 2.0, 1.0, 3.0]

    def test_reset(self):
        mx = MetricsRegistry()
        mx.counter("c").inc()
        mx.series("s").record(0, 1.0)
        mx.scratch["tmp"] = 1
        mx.reset()
        assert not mx.counters() and not mx.all_series() and not mx.scratch


class TestChromeTraceExport:
    def test_valid_and_loadable(self, tmp_path):
        machine, _ = _run("boruvka", True)
        path = tmp_path / "t.trace.json"
        write_chrome_trace(machine.events, path, metadata={"x": 1})
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["n_procs"] == 8
        assert payload["otherData"]["dropped_events"] == 0
        # One metadata thread-name per PE plus the machine pseudo-thread.
        names = [e for e in payload["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        assert len(names) == 8 + 1

    def test_per_pe_threads(self):
        machine, _ = _run("boruvka", True)
        payload = chrome_trace(machine.events)
        tids = {e["tid"] for e in payload["traceEvents"] if e["ph"] == "B"}
        assert tids >= set(range(1, 9))  # every PE opened spans

    def test_validator_rejects_bad_traces(self):
        assert validate_chrome_trace([]) == ["top level must be a JSON object"]
        assert validate_chrome_trace({}) == ["missing or non-array traceEvents"]
        bad_ph = {"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1, "tid": 1, "ts": 0}]}
        assert any("unknown ph" in e for e in validate_chrome_trace(bad_ph))
        non_monotone = {"traceEvents": [
            {"ph": "i", "name": "a", "pid": 1, "tid": 1, "ts": 5},
            {"ph": "i", "name": "b", "pid": 1, "tid": 1, "ts": 4}]}
        assert any("non-monotone" in e
                   for e in validate_chrome_trace(non_monotone))
        unmatched = {"traceEvents": [
            {"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 0}]}
        assert any("unclosed" in e for e in validate_chrome_trace(unmatched))
        cross = {"traceEvents": [
            {"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 0},
            {"ph": "E", "name": "b", "pid": 1, "tid": 1, "ts": 1}]}
        assert any("improper nesting" in e or "no open B" in e
                   for e in validate_chrome_trace(cross))

    def test_dropped_traces_skip_span_matching(self):
        tr = EventTracer(1, capacity=2)
        tr.begin("a", 0, 0.0)
        tr.instant("x", 0, 1.0)
        tr.instant("y", 0, 2.0)  # overwrites the B
        assert tr.dropped == 1
        assert validate_chrome_trace(chrome_trace(tr)) == []


class TestMetricsExport:
    def test_round_series_and_dump(self, tmp_path):
        machine, _ = _run("boruvka", True, n=4096, m=16384)
        md = metrics_to_dict(machine.metrics)
        rounds = md["series"]["round/vertices"]
        assert len(rounds) >= 1
        # Vertex counts shrink monotonically across Borůvka rounds.
        vertices = [v for _, v in rounds]
        assert vertices == sorted(vertices, reverse=True)
        assert len(md["series"]["round/edges"]) == len(rounds)
        assert len(md["series"]["round/bytes"]) == len(rounds)
        assert all(b > 0 for _, b in md["series"]["round/bytes"])
        assert len(md["series"]["round/clock_skew_s"]) == len(rounds)
        assert all(i >= 1.0
                   for _, i in md["series"]["round/send_imbalance"])
        per_pe = md["per_pe"]["alltoall/sent_bytes_per_pe"]
        assert len(per_pe) == 8 and sum(per_pe) > 0
        path = tmp_path / "m.json"
        write_metrics(machine.metrics, path)
        assert json.loads(path.read_text()) == md

    def test_collective_and_alltoall_counters(self):
        machine, _ = _run("boruvka", True)
        md = metrics_to_dict(machine.metrics)
        assert md["counters"]["collective/allreduce/count"] >= 1
        ex = [k for k in md["counters"]
              if k.startswith("alltoall/") and k.endswith("/exchanges")]
        assert ex, "no all-to-all exchanges recorded"

    def test_kernel_counters_flow_to_sink(self):
        machine, _ = _run("boruvka", True)
        md = metrics_to_dict(machine.metrics)
        kernels = [k for k in md["counters"] if k.startswith("kernel/")]
        assert any(k.endswith("/calls") for k in kernels)
        assert any(k.endswith("/host_seconds") for k in kernels)

    def test_filter_metrics(self):
        machine, _ = _run("filter-boruvka", True, n=2048, m=16384)
        md = metrics_to_dict(machine.metrics)
        assert md["counters"]["filter/recursions"] >= 1
        assert md["series"]["filter/edges_at_depth"]

    def test_progress_table(self):
        machine, _ = _run("boruvka", True, n=4096, m=16384)
        table = progress_table(machine.metrics)
        assert "vertices" in table and "round" in table
        assert progress_table(MetricsRegistry()) \
            == "(no per-round series recorded)"


class TestTracingInvisibility:
    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_bit_for_bit_identical(self, alg):
        m_off, r_off = _run(alg, False)
        m_on, r_on = _run(alg, True)
        assert np.array_equal(m_off.clock, m_on.clock)
        assert r_off.elapsed == r_on.elapsed
        assert r_off.total_weight == r_on.total_weight
        assert r_off.phase_times == r_on.phase_times
        assert m_off.bytes_communicated == m_on.bytes_communicated
        assert m_off.n_collectives == m_on.n_collectives
        assert len(m_on.events) > 0

    def test_invisible_under_sanitizer(self):
        m_off, r_off = _run("boruvka", False)
        machine = Machine(8, sanitize=True, trace_events=True)
        g = gen_gnm(512, 2048, seed=7)
        r_on = minimum_spanning_forest(g.distribute(machine),
                                       algorithm="boruvka",
                                       config=_config("boruvka"))
        assert np.array_equal(m_off.clock, machine.clock)
        assert r_off.elapsed == r_on.elapsed


class TestMachineIntegration:
    def test_reset_clears_events_and_metrics(self):
        machine, _ = _run("boruvka", True)
        assert len(machine.events) > 0
        assert machine.metrics.counters()
        machine.reset()
        assert len(machine.events) == 0
        assert machine.events.dropped == 0
        assert not machine.metrics.counters()
        assert not machine.metrics.all_series()

    def test_reset_reproduces_traced_run(self):
        machine = Machine(8, trace_events=True)
        g = gen_gnm(512, 2048, seed=7)
        minimum_spanning_forest(g.distribute(machine), algorithm="boruvka",
                                config=_config("boruvka"))
        n_events = len(machine.events)
        clock = machine.clock.copy()
        machine.reset()
        minimum_spanning_forest(g.distribute(machine), algorithm="boruvka",
                                config=_config("boruvka"))
        assert len(machine.events) == n_events
        assert np.array_equal(machine.clock, clock)

    def test_phase_spans_nest_properly(self):
        machine = Machine(2, trace_events=True)
        with machine.phase("min_edges"):
            machine.charge(1.0)
            with machine.phase("filter"):
                machine.charge(1.0)
        payload = chrome_trace(machine.events)
        assert validate_chrome_trace(payload) == []
        spans = [(e["ph"], e["name"]) for e in payload["traceEvents"]
                 if e.get("args", {}).get("round") is not None
                 or e["ph"] in "BE"]
        assert ("B", "min_edges") in spans and ("E", "filter") in spans

    def test_span_helper_noop_untraced(self):
        machine = Machine(2)
        with machine.span("anything"):
            machine.charge(1.0)
        assert machine.elapsed() == pytest.approx(1.0)

    def test_collective_spans_only_cover_participants(self):
        machine = Machine(4, trace_events=True)
        sub = Comm(machine, ranks=[1, 3])
        sub.barrier()
        ranks = {ev[3] for ev in machine.events.events()
                 if ev[1] == "barrier"}
        assert ranks == {1, 3}


class TestRunnerIntegration:
    def test_trace_dir_artifacts(self, tmp_path, monkeypatch):
        from repro.analysis import run_algorithm

        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        g = gen_gnm(512, 2048, seed=7)
        r = run_algorithm(g, "boruvka", 8, config=_config("boruvka"),
                          trace_events=True)
        assert r.status == "ok"
        traces = list(tmp_path.glob("*.trace.json"))
        metrics = list(tmp_path.glob("*.metrics.json"))
        assert len(traces) == 1 and len(metrics) == 1
        assert validate_chrome_trace(json.loads(traces[0].read_text())) == []

    def test_untraced_run_writes_nothing(self, tmp_path, monkeypatch):
        from repro.analysis import run_algorithm

        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        g = gen_gnm(512, 2048, seed=7)
        run_algorithm(g, "boruvka", 8, config=_config("boruvka"))
        assert not list(tmp_path.iterdir())


class TestProfileCLI:
    def test_profile_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        trace_out = tmp_path / "p.trace.json"
        metrics_out = tmp_path / "p.metrics.json"
        rc = main(["profile", "--algo", "boruvka", "--procs", "8",
                   "-n", "1024", "-m", "4096",
                   "--trace-out", str(trace_out),
                   "--metrics-out", str(metrics_out)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "round" in out and "(valid)" in out
        assert validate_chrome_trace(
            json.loads(trace_out.read_text())) == []
        md = json.loads(metrics_out.read_text())
        assert "round/vertices" in md["series"]
