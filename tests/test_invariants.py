"""Cross-cutting invariants: distribution discipline, cost accounting,
failure injection (the checks DESIGN.md Section 4 promises)."""

import numpy as np
import pytest

from repro.core import BoruvkaConfig, distributed_boruvka
from repro.dgraph import DistGraph
from repro.simmpi import Machine

from helpers import random_simple_graph


class TestCostAccounting:
    def test_clocks_monotone_through_full_run(self, rng):
        """Sampled clock snapshots never decrease during an algorithm."""
        g = random_simple_graph(rng, 60, 300)
        machine = Machine(6)
        snapshots = []
        orig_charge = machine.charge

        def spy(seconds, ranks=None):
            orig_charge(seconds, ranks)
            snapshots.append(machine.clock.copy())

        machine.charge = spy
        dg = DistGraph.from_global_edges(machine, g)
        distributed_boruvka(dg, BoruvkaConfig(base_case_min=16))
        for a, b in zip(snapshots, snapshots[1:]):
            assert (b >= a - 1e-15).all()

    def test_phase_times_bounded_by_elapsed(self, rng):
        g = random_simple_graph(rng, 60, 300)
        machine = Machine(6)
        dg = DistGraph.from_global_edges(machine, g)
        res = distributed_boruvka(dg, BoruvkaConfig(base_case_min=16))
        # Each phase's max-over-PEs time is at most the makespan; their sum
        # bounds it from above (phases partition per-PE time).
        assert all(0 <= t <= res.elapsed + 1e-12
                   for t in res.phase_times.values())
        assert sum(res.phase_times.values()) >= res.elapsed * 0.5

    def test_more_data_costs_more(self, rng):
        times = []
        for scale in (1, 4):
            g = random_simple_graph(rng, 40 * scale, 200 * scale)
            machine = Machine(4)
            dg = DistGraph.from_global_edges(machine, g)
            res = distributed_boruvka(dg, BoruvkaConfig(base_case_min=16))
            times.append(res.elapsed)
        assert times[1] > times[0]

    def test_alltoall_method_changes_cost_not_result(self, rng):
        g = random_simple_graph(rng, 60, 400)
        weights, times = set(), {}
        for method in ("direct", "grid", "grid3", "hypercube"):
            machine = Machine(9)
            dg = DistGraph.from_global_edges(machine, g)
            res = distributed_boruvka(
                dg, BoruvkaConfig(base_case_min=16, alltoall=method))
            weights.add(res.total_weight)
            times[method] = res.elapsed
        assert len(weights) == 1
        assert len(set(times.values())) > 1  # costs genuinely differ


# Failure-injection tests (corrupted ghost tables, bogus pointer-doubling
# queries, cross-PE state corruption) live in tests/test_sanitizer.py: the
# runtime sanitizer now owns those checks.


class TestDeterminismAcrossMethods:
    def test_identical_forest_for_all_sorters(self, rng):
        g = random_simple_graph(rng, 60, 350)
        triples = []
        for sorter in ("hypercube", "samplesort"):
            machine = Machine(7)
            dg = DistGraph.from_global_edges(machine, g)
            res = distributed_boruvka(
                dg, BoruvkaConfig(base_case_min=16, sorter=sorter))
            triples.append(res.msf_edges().canonical_triples())
        assert np.array_equal(triples[0], triples[1])


@pytest.fixture
def rng():
    return np.random.default_rng(149)
