"""Tests for the edge container (repro.dgraph.edges)."""

import numpy as np
import pytest

from repro.dgraph import Edges, merge_sorted


def _edges(tuples):
    u = np.array([t[0] for t in tuples], dtype=np.int64)
    v = np.array([t[1] for t in tuples], dtype=np.int64)
    w = np.array([t[2] for t in tuples], dtype=np.int64)
    return Edges(u, v, w)


class TestBasics:
    def test_default_ids(self):
        e = _edges([(0, 1, 5), (1, 2, 3)])
        assert list(e.id) == [0, 1]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Edges(np.array([1]), np.array([1, 2]), np.array([1]))

    def test_empty(self):
        e = Edges.empty()
        assert len(e) == 0
        assert e.is_sorted_lex()

    def test_take_and_copy_independent(self):
        e = _edges([(0, 1, 5), (1, 2, 3)])
        c = e.copy()
        c.w[0] = 99
        assert e.w[0] == 5
        sub = e.take(np.array([1]))
        assert list(sub.v) == [2]

    def test_concat(self):
        a = _edges([(0, 1, 1)])
        b = _edges([(2, 3, 2)])
        assert len(Edges.concat([a, b])) == 2
        assert len(Edges.concat([])) == 0


class TestOrdering:
    def test_sort_lex(self):
        e = _edges([(2, 0, 1), (0, 5, 9), (0, 2, 1), (0, 2, 0)])
        s = e.sort_lex()
        assert s.is_sorted_lex()
        assert list(zip(s.u, s.v, s.w)) == [(0, 2, 0), (0, 2, 1),
                                            (0, 5, 9), (2, 0, 1)]

    def test_is_sorted_detects_weight_violation(self):
        e = _edges([(0, 1, 5), (0, 1, 3)])
        assert not e.is_sorted_lex()

    def test_weight_order_uses_tie_break(self):
        e = _edges([(3, 4, 5), (1, 2, 5), (0, 9, 4)])
        order = e.weight_order()
        assert list(order) == [2, 1, 0]

    def test_tie_key_canonicalises_direction(self):
        e = _edges([(5, 2, 7)])
        w, cu, cv = e.tie_key()
        assert (w[0], cu[0], cv[0]) == (7, 2, 5)


class TestTransport:
    def test_matrix_roundtrip(self, rng):
        u = rng.integers(0, 100, 20)
        v = rng.integers(0, 100, 20)
        w = rng.integers(1, 255, 20)
        e = Edges(u, v, w)
        back = Edges.from_matrix(e.as_matrix())
        for a, b in zip((back.u, back.v, back.w, back.id),
                        (e.u, e.v, e.w, e.id)):
            assert np.array_equal(a, b)

    def test_empty_matrix_roundtrip(self):
        m = Edges.empty().as_matrix()
        assert m.shape == (0, 4)
        assert len(Edges.from_matrix(m)) == 0


class TestStructure:
    def test_with_back_edges(self):
        e = _edges([(0, 1, 5)])
        s = e.with_back_edges()
        assert len(s) == 2
        triples = set(zip(s.u.tolist(), s.v.tolist(), s.w.tolist()))
        assert triples == {(0, 1, 5), (1, 0, 5)}

    def test_canonical_triples_direction_invariant(self):
        a = _edges([(0, 1, 5), (2, 3, 4)])
        b = _edges([(1, 0, 5), (3, 2, 4)])
        assert np.array_equal(a.canonical_triples(), b.canonical_triples())

    def test_total_weight(self):
        assert _edges([(0, 1, 5), (1, 2, 3)]).total_weight() == 8

    def test_merge_sorted(self, rng):
        a = _edges([(0, 1, 1), (4, 0, 2)]).sort_lex()
        b = _edges([(1, 0, 1), (3, 2, 9)]).sort_lex()
        m = merge_sorted([a, b])
        assert m.is_sorted_lex()
        assert len(m) == 4


@pytest.fixture
def rng():
    return np.random.default_rng(3)
