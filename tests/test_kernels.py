"""Tests for the batched segmented-kernel engine (repro.kernels).

Three layers:

* unit tests for :class:`RaggedArrays` and each segmented kernel against the
  per-segment numpy operation it replaces;
* unit tests for :func:`repro.dgraph.search.sorted_lookup` (the shared
  clamped-searchsorted helper);
* differential tests running the full algorithms under ``REPRO_KERNELS=loop``
  and ``=batched`` and asserting the hard invariant of docs/kernels.md:
  simulated clocks, phase breakdowns, communication traces and MST weights
  are bit-for-bit identical -- only wall-clock may differ.  The property
  suite draws random instances with hypothesis; the sanitizer suite re-runs
  the adversarial detections under both engines.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BoruvkaConfig,
    FilterConfig,
    MSTRun,
    contract_components,
    distributed_boruvka,
    distributed_filter_boruvka,
    min_edges,
)
from repro.dgraph import DistGraph
from repro.dgraph.search import sorted_lookup
from repro.graphgen import FAMILIES, gen_family
from repro.kernels import (
    KERNEL_ENGINES,
    RaggedArrays,
    batched_enabled,
    first_in_group,
    kernel_engine,
    packed_lexsort,
    route_counts,
    segment_ids,
    segmented_lexsort,
    segmented_lookup,
    segmented_searchsorted,
    segmented_unique,
)
from repro.simmpi import Machine

from helpers import random_simple_graph


@pytest.fixture
def rng():
    return np.random.default_rng(77)


def ragged_case(rng, p=6, max_len=40, lo=0, hi=50):
    parts = [rng.integers(lo, hi, rng.integers(0, max_len))
             for _ in range(p)]
    return RaggedArrays.from_arrays(parts), parts


class TestEngineKnob:
    def test_default_is_batched(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert kernel_engine() == "batched"
        assert batched_enabled()

    def test_env_selects_loop(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "loop")
        assert kernel_engine() == "loop"
        assert not batched_enabled()

    def test_unknown_engine_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "vectorised")
        with pytest.raises(ValueError):
            kernel_engine()

    def test_engines_constant(self):
        assert set(KERNEL_ENGINES) == {"batched", "loop"}


class TestRaggedArrays:
    def test_roundtrip(self, rng):
        r, parts = ragged_case(rng)
        assert r.n_segments == len(parts)
        assert np.array_equal(r.lengths, [len(x) for x in parts])
        for i, part in enumerate(parts):
            assert np.array_equal(r.segment(i), part)
        for back, part in zip(r.to_arrays(), parts):
            assert np.array_equal(back, part)

    def test_segment_ids(self, rng):
        r, parts = ragged_case(rng)
        expected = np.repeat(np.arange(len(parts)),
                             [len(x) for x in parts])
        assert np.array_equal(r.segment_ids(), expected)
        assert np.array_equal(segment_ids(r.offsets), expected)

    def test_empty_segments_and_empty_list(self):
        r = RaggedArrays.from_arrays([np.empty(0, np.int64)] * 3)
        assert r.n_segments == 3 and len(r) == 0
        r0 = RaggedArrays.from_arrays([])
        assert r0.n_segments == 0 and len(r0) == 0

    def test_rows_matrix(self, rng):
        parts = [rng.integers(0, 9, (rng.integers(0, 5), 3))
                 for _ in range(4)]
        r = RaggedArrays.from_arrays(parts)
        for i, part in enumerate(parts):
            assert np.array_equal(r.segment(i), part)

    def test_bad_offsets_rejected(self):
        with pytest.raises(ValueError):
            RaggedArrays(np.arange(5), np.array([0, 3]))

    def test_offsets_template(self, rng):
        r, _ = ragged_case(rng)
        doubled = RaggedArrays.from_offsets_template(r.flat * 2, r)
        assert np.array_equal(doubled.offsets, r.offsets)


class TestSegmentedKernels:
    def test_lexsort_matches_per_segment(self, rng):
        r, parts = ragged_case(rng)
        k2 = rng.integers(0, 5, len(r.flat))
        order = segmented_lexsort((r.flat, k2), r.segment_ids())
        for i in range(r.n_segments):
            lo, hi = r.offsets[i], r.offsets[i + 1]
            local = order[lo:hi] - lo
            ref = np.lexsort((parts[i], k2[lo:hi]))
            assert np.array_equal(local, ref), i

    def test_first_in_group(self):
        g = np.array([0, 0, 1, 1, 1, 3, 4, 4])
        assert np.array_equal(first_in_group(g),
                              [1, 0, 1, 0, 0, 1, 1, 0])
        assert first_in_group(np.empty(0, np.int64)).shape == (0,)

    def test_unique_matches_per_segment(self, rng):
        r, parts = ragged_case(rng, hi=10)
        uniq, uoff, inv = segmented_unique(r.flat, r.segment_ids(),
                                           r.n_segments)
        for i, part in enumerate(parts):
            ref_u, ref_inv = np.unique(part, return_inverse=True)
            assert np.array_equal(uniq[uoff[i]:uoff[i + 1]], ref_u), i
            assert np.array_equal(inv[r.offsets[i]:r.offsets[i + 1]],
                                  ref_inv), i

    @pytest.mark.parametrize("side", ["left", "right"])
    def test_searchsorted_matches_per_segment(self, rng, side):
        p = 6
        hay = [np.sort(rng.integers(0, 30, rng.integers(0, 20)))
               for _ in range(p)]
        hr = RaggedArrays.from_arrays(hay)
        needles = rng.integers(0, 30, 100)
        seg = rng.integers(0, p, 100)
        got = segmented_searchsorted(hr.flat, hr.offsets, needles, seg, side)
        for i in range(p):
            m = seg == i
            assert np.array_equal(got[m],
                                  np.searchsorted(hay[i], needles[m],
                                                  side=side)), i

    def test_lookup_matches_sorted_lookup(self, rng):
        p = 5
        hay = [np.unique(rng.integers(0, 40, rng.integers(0, 25)))
               for _ in range(p)]
        hay[2] = hay[2][:0]  # one empty haystack segment
        hr = RaggedArrays.from_arrays(hay)
        needles = rng.integers(0, 40, 80)
        seg = rng.integers(0, p, 80)
        found, idx = segmented_lookup(hr.flat, hr.offsets, needles, seg)
        for i in range(p):
            m = seg == i
            ref_found, ref_idx = sorted_lookup(hay[i], needles[m])
            assert np.array_equal(found[m], ref_found), i
            assert np.array_equal(idx[m], ref_idx), i

    def test_packed_lexsort_matches_np_lexsort(self, rng):
        for _ in range(20):
            n = int(rng.integers(0, 60))
            keys = tuple(rng.integers(0, rng.integers(2, 300), n)
                         for _ in range(int(rng.integers(1, 5))))
            assert np.array_equal(packed_lexsort(keys), np.lexsort(keys))

    def test_packed_lexsort_wide_range_falls_back(self, rng):
        # Values too wide to pack must still sort exactly like np.lexsort.
        a = rng.integers(-(2 ** 62), 2 ** 62, 50)
        b = rng.integers(0, 3, 50)
        assert np.array_equal(packed_lexsort((a, b)), np.lexsort((a, b)))
        big = np.array([2 ** 62 + 5, 2 ** 62 + 1, 2 ** 62 + 3])
        assert np.array_equal(packed_lexsort((big,) * 2),
                              np.lexsort((big,) * 2))

    def test_packed_lexsort_stability(self):
        # Equal full keys must keep input order (np.lexsort is stable).
        a = np.array([1, 1, 0, 1, 0])
        w = np.array([7, 7, 7, 7, 7])
        assert np.array_equal(packed_lexsort((w, a)), np.lexsort((w, a)))

    def test_route_counts_matches_bincount(self, rng):
        p, size = 5, 7
        dest_parts = [rng.integers(0, size, rng.integers(0, 30))
                      for _ in range(p)]
        r = RaggedArrays.from_arrays(dest_parts)
        mat = route_counts(r.segment_ids(), r.flat, p, size)
        for i in range(p):
            assert np.array_equal(mat[i],
                                  np.bincount(dest_parts[i],
                                              minlength=size)), i
        assert route_counts(np.empty(0, np.int64), np.empty(0, np.int64),
                            p, size).sum() == 0


class TestSortedLookup:
    def test_hits_and_misses(self):
        hay = np.array([2, 5, 9, 40])
        found, idx = sorted_lookup(hay, np.array([5, 3, 40, 99, 2]))
        assert np.array_equal(found, [True, False, True, False, True])
        assert np.array_equal(hay[idx[found]], [5, 40, 2])

    def test_empty_haystack(self):
        found, idx = sorted_lookup(np.empty(0, np.int64),
                                   np.array([1, 2, 3]))
        assert not found.any()
        assert np.array_equal(idx, [0, 0, 0])  # clamped, safe to index with

    def test_all_missing(self):
        found, _ = sorted_lookup(np.array([10, 20, 30]),
                                 np.array([1, 15, 25, 99]))
        assert not found.any()

    def test_empty_needles(self):
        found, idx = sorted_lookup(np.array([1, 2]), np.empty(0, np.int64))
        assert len(found) == 0 and len(idx) == 0


class TestEmptySegmentEdgeCases:
    """Degenerate-shape audit: zero PEs, all-empty PEs, empty interleavings.

    Every kernel must behave exactly like its per-segment reference loop
    when segments vanish -- the shapes Borůvka reaches in late rounds, where
    most PEs hold nothing.  Locked in as regressions so batched-path
    rewrites cannot silently break the p=1 / empty-PE corners.
    """

    EMPTY_I64 = np.empty(0, np.int64)

    def test_zero_segments(self):
        off0 = np.array([0], dtype=np.int64)
        assert segment_ids(off0).size == 0
        assert packed_lexsort(()).size == 0
        u, uo, inv = segmented_unique(self.EMPTY_I64, self.EMPTY_I64, 0)
        assert u.size == 0 and np.array_equal(uo, [0]) and inv.size == 0
        assert segmented_searchsorted(self.EMPTY_I64, off0, self.EMPTY_I64,
                                      self.EMPTY_I64).size == 0
        found, idx = segmented_lookup(self.EMPTY_I64, off0, self.EMPTY_I64,
                                      self.EMPTY_I64)
        assert found.size == 0 and idx.size == 0
        assert route_counts(self.EMPTY_I64, self.EMPTY_I64, 0, 4).shape \
            == (0, 4)
        assert first_in_group(self.EMPTY_I64).size == 0

    def test_all_segments_empty(self):
        p = 4
        off = np.zeros(p + 1, dtype=np.int64)
        u, uo, inv = segmented_unique(self.EMPTY_I64, self.EMPTY_I64, p)
        assert u.size == 0 and np.array_equal(uo, np.zeros(p + 1))
        # Queries against an entirely empty haystack insert at position 0
        # of their (empty) segment and never report a hit.
        needles, nseg = np.array([5, 7]), np.array([1, 3])
        assert np.array_equal(
            segmented_searchsorted(self.EMPTY_I64, off, needles, nseg),
            [0, 0])
        found, idx = segmented_lookup(self.EMPTY_I64, off, needles, nseg)
        assert not found.any()
        assert np.array_equal(idx, [0, 0])  # clamped, safe to index with

    @pytest.mark.parametrize("side", ["left", "right"])
    def test_searchsorted_interleaved_empty_segments(self, rng, side):
        # Many trials with ~half the segments empty, exercising both the
        # shifted-key fast path (narrow ints) and the merged-lexsort
        # fallback (wide ints, floats).
        for dtype, lo, hi in ((np.int64, -3, 10),
                              (np.int64, -(1 << 61), 1 << 61),
                              (np.float64, 0, 1)):
            for _ in range(30):
                p = int(rng.integers(1, 7))
                lens = rng.integers(0, 5, p)
                lens[rng.random(p) < 0.5] = 0
                off = np.zeros(p + 1, np.int64)
                np.cumsum(lens, out=off[1:])
                if dtype is np.float64:
                    flat = rng.random(off[-1])
                else:
                    flat = rng.integers(lo, hi, off[-1])
                hay = (np.concatenate(
                    [np.sort(flat[off[i]:off[i + 1]]) for i in range(p)])
                    if off[-1] else flat)
                nq = int(rng.integers(0, 6))
                needles = (rng.random(nq) if dtype is np.float64
                           else rng.integers(lo - 2, hi + 2, nq))
                nseg = rng.integers(0, p, nq)
                got = segmented_searchsorted(hay, off, needles, nseg,
                                             side=side)
                ref = np.array(
                    [np.searchsorted(hay[off[s]:off[s + 1]], v, side=side)
                     for v, s in zip(needles, nseg)], np.int64)
                assert np.array_equal(got, ref.reshape(got.shape))

    def test_unique_and_lexsort_interleaved_empty_segments(self, rng):
        for _ in range(30):
            p = int(rng.integers(1, 7))
            lens = rng.integers(0, 60, p)
            lens[rng.random(p) < 0.4] = 0
            off = np.zeros(p + 1, np.int64)
            np.cumsum(lens, out=off[1:])
            vals = rng.integers(-1000, 1000, off[-1])
            keys2 = rng.integers(0, 4, off[-1])
            segs = segment_ids(off)
            u, uo, inv = segmented_unique(vals, segs, p)
            perm = segmented_lexsort((vals, keys2), segs)
            for i in range(p):
                sl = slice(off[i], off[i + 1])
                ru, rinv = np.unique(vals[sl], return_inverse=True)
                assert np.array_equal(u[uo[i]:uo[i + 1]], ru)
                assert np.array_equal(inv[sl], rinv)
                # The permutation maps each segment's range onto itself...
                assert np.array_equal(np.sort(perm[sl]),
                                      np.arange(off[i], off[i + 1]))
                # ...and restricted to the segment it IS its stable lexsort.
                assert np.array_equal(perm[sl] - off[i],
                                      np.lexsort((vals[sl], keys2[sl])))

    def test_uint64_beyond_int64_takes_exact_fallback(self):
        # Values past 2^62 must skip the shifted-key packing (it would
        # overflow int64) yet stay exact -- same-dtype concatenation keeps
        # uint64, never a lossy float64 promotion.
        hay = np.array([2 ** 63, 2 ** 63 + 1, 2 ** 63 + 2], dtype=np.uint64)
        off = np.array([0, 3])
        needles = np.array([2 ** 63 + 1], dtype=np.uint64)
        for side, expect in (("left", 1), ("right", 2)):
            assert segmented_searchsorted(hay, off, needles,
                                          np.array([0]), side=side) == expect

    def test_ragged_from_empty_list(self):
        r = RaggedArrays.from_arrays([])
        assert r.n_segments == 0 and len(r) == 0
        assert r.to_arrays() == []
        assert r.segment_ids().size == 0

    def test_from_arrays_honors_caller_dtype(self):
        """An explicit dtype wins over numpy's concatenation promotion."""
        parts = [np.array([1, 2], dtype=np.int64),
                 np.array([3], dtype=np.int64)]
        r = RaggedArrays.from_arrays(parts, dtype=np.uint32)
        assert r.flat.dtype == np.uint32
        assert r.to_arrays()[0].tolist() == [1, 2]
        # Widening works too (differential wide mode rebuilds int64).
        w = RaggedArrays.from_arrays(
            [np.array([7], dtype=np.uint32)], dtype=np.int64)
        assert w.flat.dtype == np.int64
        # Empty input lists take the requested dtype instead of int64 --
        # otherwise an all-empty PE set re-promotes downstream concats.
        e = RaggedArrays.from_arrays([], dtype=np.uint32)
        assert e.flat.dtype == np.uint32
        # Mixed-dtype parts no longer promote when the caller pins narrow.
        m = RaggedArrays.from_arrays(
            [np.array([1], dtype=np.uint32), np.empty(0, dtype=np.int64)],
            dtype=np.uint32)
        assert m.flat.dtype == np.uint32

    def test_from_arrays_default_keeps_input_dtype(self):
        """Without an explicit dtype, same-dtype inputs stay untouched."""
        r = RaggedArrays.from_arrays(
            [np.array([1, 2], dtype=np.uint32),
             np.array([3], dtype=np.uint32)])
        assert r.flat.dtype == np.uint32


# ---------------------------------------------------------------------------
# Differential: the two engines must be simulated-behavior identical.
# ---------------------------------------------------------------------------

def run_engine(monkeypatch, engine, graph, p, threads, algo, cfg):
    """One full run under ``engine``; returns everything simulated."""
    monkeypatch.setenv("REPRO_KERNELS", engine)
    machine = Machine(p, threads=threads, sanitize=True, trace=True)
    if hasattr(graph, "distribute"):  # GeneratedGraph
        dg = graph.distribute(machine)
    else:  # raw Edges
        dg = DistGraph.from_global_edges(machine, graph)
    result = algo(dg, cfg)
    return {
        "weight": result.total_weight,
        "clock": machine.clock.copy(),
        "phases": dict(machine.phase_times),
        "phases_per_pe": {k: v.copy()
                          for k, v in machine.phase_times_per_pe.items()},
        "trace": machine.trace.matrix.copy(),
    }


def assert_engines_agree(monkeypatch, graph, p, threads, algo, cfg):
    out = {e: run_engine(monkeypatch, e, graph, p, threads, algo, cfg)
           for e in KERNEL_ENGINES}
    a, b = out["batched"], out["loop"]
    assert a["weight"] == b["weight"]
    assert np.array_equal(a["clock"], b["clock"]), (
        "simulated clocks differ between kernel engines")
    assert a["phases"] == b["phases"]
    assert a["phases_per_pe"].keys() == b["phases_per_pe"].keys()
    for k in a["phases_per_pe"]:
        assert np.array_equal(a["phases_per_pe"][k],
                              b["phases_per_pe"][k]), k
    assert np.array_equal(a["trace"], b["trace"])


class TestEngineDifferential:
    @pytest.mark.parametrize("p,threads", [(1, 1), (5, 1), (7, 8), (16, 1)])
    @pytest.mark.parametrize("method", ["direct", "grid", "hypercube"])
    def test_boruvka_bit_identical(self, rng, monkeypatch, p, threads,
                                   method):
        g = random_simple_graph(rng, 60, 300)
        cfg = BoruvkaConfig(alltoall=method, base_case_min=16)
        assert_engines_agree(monkeypatch, g, p, threads,
                             distributed_boruvka, cfg)

    @pytest.mark.parametrize("p", [5, 16])
    def test_filter_boruvka_bit_identical(self, rng, monkeypatch, p):
        g = random_simple_graph(rng, 80, 400)
        assert_engines_agree(monkeypatch, g, p, 1,
                             distributed_filter_boruvka, FilterConfig())

    @pytest.mark.parametrize("p,method", [(3, "direct"), (7, "grid"),
                                          (16, "direct")])
    def test_awerbuch_shiloach_bit_identical(self, rng, monkeypatch, p,
                                             method):
        from repro.competitors.awerbuch_shiloach import awerbuch_shiloach_msf

        g = random_simple_graph(rng, 70, 350)
        cfg = BoruvkaConfig(alltoall=method)
        assert_engines_agree(monkeypatch, g, p, 1, awerbuch_shiloach_msf,
                             cfg)

    @given(family=st.sampled_from(FAMILIES), n=st.integers(16, 90),
           m_per_n=st.integers(1, 4), seed=st.integers(0, 2 ** 16),
           p=st.integers(1, 8),
           alltoall=st.sampled_from(["auto", "direct", "grid", "grid3",
                                     "hypercube"]))
    def test_property_engines_agree(self, family, n, m_per_n, seed, p,
                                    alltoall):
        graph = gen_family(family, n, m_per_n * n, seed=seed)
        cfg = BoruvkaConfig(alltoall=alltoall, base_case_min=8)
        # monkeypatch is function-scoped and hypothesis reuses the test
        # function, so patch the environment per-example instead.
        with pytest.MonkeyPatch.context() as mp:
            assert_engines_agree(mp, graph, p, 1, distributed_boruvka, cfg)


class TestEngineSanitizer:
    """The adversarial sanitizer detections must fire under both engines."""

    @pytest.mark.parametrize("engine", KERNEL_ENGINES)
    def test_clean_run_under_sanitizer(self, rng, monkeypatch, engine):
        monkeypatch.setenv("REPRO_KERNELS", engine)
        g = random_simple_graph(rng, 80, 400)
        for algo, cfg in ((distributed_boruvka,
                           BoruvkaConfig(base_case_min=16)),
                          (distributed_filter_boruvka, FilterConfig())):
            machine = Machine(6, sanitize=True)
            dg = DistGraph.from_global_edges(machine, g)
            algo(dg, cfg)
            assert machine.sanitizer.counters["collectives"] > 0
            assert machine.sanitizer.counters["charges"] > 0

    @pytest.mark.parametrize("engine", KERNEL_ENGINES)
    def test_unknown_vertex_query_detected(self, rng, monkeypatch, engine):
        monkeypatch.setenv("REPRO_KERNELS", engine)
        g = random_simple_graph(rng, 50, 250)
        machine = Machine(5, sanitize=True)
        dg = DistGraph.from_global_edges(machine, g)
        run = MSTRun(machine, BoruvkaConfig())
        chosen = min_edges(dg)
        victim = next(i for i, c in enumerate(chosen)
                      if len(c) and not c.shared.all())
        k = int(np.flatnonzero(~chosen[victim].shared)[0])
        with machine.on_pe(victim):
            chosen[victim].to[k] = 10 ** 9
        with pytest.raises(RuntimeError):
            contract_components(dg, chosen, run)
