"""Stateful property-based tests (hypothesis RuleBasedStateMachine).

Model-based testing of the two stateful data structures whose invariants
everything else leans on: the union-find (against a naive partition model)
and the distributed label array P (against a dict-based pointer model).
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.plabels import DistributedLabelArray
from repro.seq import UnionFind
from repro.simmpi import Comm, Machine

N = 24
P = 3


class UnionFindMachine(RuleBasedStateMachine):
    """UnionFind vs a naive set-partition model."""

    def __init__(self):
        super().__init__()
        self.uf = UnionFind(N)
        self.model = [{i} for i in range(N)]

    def _model_find(self, x):
        for s in self.model:
            if x in s:
                return s
        raise AssertionError("model lost an element")

    @rule(a=st.integers(0, N - 1), b=st.integers(0, N - 1))
    def union(self, a, b):
        sa = self._model_find(a)
        sb = self._model_find(b)
        expected_new = sa is not sb
        got = self.uf.union(a, b)
        assert got == expected_new
        if expected_new:
            self.model.remove(sa)
            self.model.remove(sb) if sb in self.model else None
            self.model.append(sa | sb)

    @rule(a=st.integers(0, N - 1), b=st.integers(0, N - 1))
    def check_connected(self, a, b):
        assert self.uf.connected(a, b) == (self._model_find(a)
                                           is self._model_find(b))

    @rule(xs=st.lists(st.integers(0, N - 1), min_size=1, max_size=10))
    def check_find_many(self, xs):
        arr = np.array(xs)
        roots = self.uf.find_many(arr)
        for x, r in zip(xs, roots):
            assert self.uf.connected(int(x), int(r))

    @invariant()
    def component_count_matches(self):
        assert self.uf.n_components == len(self.model)


class LabelArrayMachine(RuleBasedStateMachine):
    """DistributedLabelArray vs a dict pointer-forest model.

    Updates always point to a strictly larger label (mirroring how the MST
    contraction hierarchy only maps dead labels to live roots), keeping the
    model acyclic the same way the algorithms do.
    """

    def __init__(self):
        super().__init__()
        self.comm = Comm(Machine(P))
        self.P = DistributedLabelArray(self.comm, N)
        self.model = {}
        self.updated = set()

    @rule(v=st.integers(0, N - 2), delta=st.integers(1, 8),
          pe=st.integers(0, P - 1))
    def add_mapping(self, v, delta, pe):
        if v in self.updated:
            return  # contraction keys are written at most once
        target = min(v + delta, N - 1)
        if target == v:
            return
        self.P.sink(pe, np.array([v]), np.array([target]))
        self.model[v] = target
        self.updated.add(v)

    def _resolve(self, v):
        while v in self.model:
            v = self.model[v]
        return v

    @rule(qs=st.lists(st.integers(0, N - 1), min_size=1, max_size=6))
    def contract_and_query(self, qs):
        self.P.contract()
        queries = [np.array(qs, dtype=np.int64)] + \
            [np.empty(0, dtype=np.int64)] * (P - 1)
        out = self.P.request(queries)
        expect = [self._resolve(q) for q in qs]
        assert list(out[0]) == expect


TestUnionFindStateful = UnionFindMachine.TestCase
TestUnionFindStateful.settings = settings(max_examples=25,
                                          stateful_step_count=30,
                                          deadline=None)
TestLabelArrayStateful = LabelArrayMachine.TestCase
TestLabelArrayStateful.settings = settings(max_examples=15,
                                           stateful_step_count=20,
                                           deadline=None)
