"""Tests for the 7-bit varint delta encoding (repro.utils.varint)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import CompressedEdgeList, decode_varints, encode_varints


class TestVarints:
    def test_roundtrip_known_values(self):
        vals = np.array([0, 1, 127, 128, 129, 16383, 16384,
                         2 ** 32, 2 ** 63 - 1, 2 ** 64 - 1],
                        dtype=np.uint64)
        assert np.array_equal(decode_varints(encode_varints(vals)), vals)

    def test_empty(self):
        assert len(encode_varints(np.empty(0, dtype=np.uint64))) == 0
        assert len(decode_varints(np.empty(0, dtype=np.uint8))) == 0

    def test_small_values_one_byte(self):
        enc = encode_varints(np.arange(128, dtype=np.uint64))
        assert len(enc) == 128

    def test_continuation_bits(self):
        enc = encode_varints(np.array([300], dtype=np.uint64))
        assert len(enc) == 2
        assert enc[0] & 0x80  # continuation
        assert not (enc[1] & 0x80)  # terminator

    def test_truncated_stream_rejected(self):
        enc = encode_varints(np.array([300], dtype=np.uint64))
        with pytest.raises(ValueError):
            decode_varints(enc[:-1])

    def test_truncated_ten_byte_stream_rejected(self):
        enc = encode_varints(np.array([2 ** 64 - 1], dtype=np.uint64))
        assert len(enc) == 10
        for cut in (1, 5, 9):
            with pytest.raises(ValueError):
                decode_varints(enc[:cut])

    def test_ten_byte_boundary_accepted(self):
        # 2^64 - 1 needs exactly 10 bytes (9 * 7 = 63 payload bits before
        # the final byte) -- the longest legal varint must round-trip.
        enc = encode_varints(np.array([2 ** 64 - 1], dtype=np.uint64))
        assert len(enc) == 10
        assert decode_varints(enc)[0] == np.uint64(2 ** 64 - 1)

    def test_overlong_eleven_byte_stream_rejected(self):
        # Regression: an 11-byte varint shifts its last payload past bit 63
        # and used to decode silently (the overlong check only fired from
        # 12 bytes on); it must raise instead.
        overlong = np.array([0x80] * 10 + [0x01], dtype=np.uint8)
        with pytest.raises(ValueError, match="too long"):
            decode_varints(overlong)

    def test_overlong_rejected_mid_stream(self):
        # The check is positional, not stream-length based: a valid value
        # followed by an overlong one must still be rejected.
        good = encode_varints(np.array([300], dtype=np.uint64))
        overlong = np.array([0x80] * 10 + [0x01], dtype=np.uint8)
        with pytest.raises(ValueError, match="too long"):
            decode_varints(np.concatenate([good, overlong]))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 2 ** 64 - 1), max_size=200))
    def test_roundtrip_property(self, values):
        vals = np.array(values, dtype=np.uint64)
        assert np.array_equal(decode_varints(encode_varints(vals)), vals)


class TestCompressedEdgeList:
    def test_roundtrip(self, rng):
        src = np.sort(rng.integers(0, 10 ** 6, 500))
        dst = rng.integers(0, 10 ** 6, 500)
        c = CompressedEdgeList(src, dst)
        s, d = c.decode()
        assert np.array_equal(s, src)
        assert np.array_equal(d, dst)

    def test_compresses_sorted_lists(self, rng):
        src = np.sort(rng.integers(0, 10 ** 4, 2000))
        dst = rng.integers(0, 10 ** 4, 2000)
        c = CompressedEdgeList(src, dst)
        assert c.nbytes < (src.nbytes + dst.nbytes) / 2

    def test_lookup(self, rng):
        src = np.sort(rng.integers(0, 1000, 100))
        dst = rng.integers(0, 1000, 100)
        c = CompressedEdgeList(src, dst)
        idx = rng.integers(0, 100, 17)
        s, d = c.lookup(idx)
        assert np.array_equal(s, src[idx])
        assert np.array_equal(d, dst[idx])

    def test_unsorted_src_rejected(self):
        with pytest.raises(ValueError):
            CompressedEdgeList(np.array([5, 3]), np.array([0, 0]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CompressedEdgeList(np.array([1, 2]), np.array([0]))

    def test_empty(self):
        c = CompressedEdgeList(np.empty(0, dtype=np.int64),
                               np.empty(0, dtype=np.int64))
        s, d = c.decode()
        assert len(s) == 0 and len(d) == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 10 ** 9),
                              st.integers(0, 10 ** 9)), max_size=100))
    def test_roundtrip_property(self, pairs):
        pairs.sort()
        src = np.array([p[0] for p in pairs], dtype=np.int64)
        dst = np.array([p[1] for p in pairs], dtype=np.int64)
        c = CompressedEdgeList(src, dst)
        s, d = c.decode()
        assert np.array_equal(s, src) and np.array_equal(d, dst)


@pytest.fixture
def rng():
    return np.random.default_rng(99)
