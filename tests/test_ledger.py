"""Tests for the run ledger (repro.obs.ledger) and its schema policy.

Covers path resolution precedence, row construction from a real machine,
validation-before-append, the JSONL round trip, and the shared
``schema_version`` compatibility checks used by every exported artifact.
"""

import json
import warnings

import pytest

from repro.core import BoruvkaConfig, minimum_spanning_forest
from repro.graphgen import gen_family
from repro.obs import (
    SCHEMA_VERSION,
    append_record,
    check_schema_version,
    ledger_path,
    make_record,
    read_ledger,
    validate_ledger_record,
)
from repro.obs.ledger import latest_by_name, peak_rss_bytes
from repro.simmpi import Machine


@pytest.fixture
def no_ledger_env(monkeypatch):
    """Clear every knob the ledger path resolution reads."""
    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)


class TestLedgerPath:
    def test_no_env_means_no_ledger(self, no_ledger_env):
        assert ledger_path() is None

    def test_explicit_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "env.jsonl"))
        assert ledger_path(tmp_path / "explicit.jsonl") == \
            tmp_path / "explicit.jsonl"

    def test_repro_ledger_beats_trace_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "led.jsonl"))
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
        assert ledger_path() == tmp_path / "led.jsonl"

    def test_trace_dir_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        assert ledger_path() == tmp_path / "ledger.jsonl"

    def test_append_without_path_is_noop(self, no_ledger_env):
        assert append_record(make_record("test", "noop")) is None


def _run_machine(procs=8):
    """A small finished run whose machine feeds make_record."""
    g = gen_family("GNM", 512, 2048, seed=0)
    machine = Machine(procs)
    res = minimum_spanning_forest(g.distribute(machine),
                                  algorithm="boruvka",
                                  config=BoruvkaConfig(base_case_min=64))
    return machine, res


class TestRecords:
    def test_machine_record_round_trip(self, tmp_path):
        machine, res = _run_machine()
        record = make_record(
            "test", "unit-run",
            config={"algorithm": "boruvka"},
            machine=machine,
            simulated=[{"label": "gnm-p8",
                        "simulated_seconds": res.elapsed}],
            rounds=res.rounds, wall_seconds=0.25,
            critical_path={"length_s": res.elapsed})
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["engine"] == machine.engine.name
        assert record["n_procs"] == machine.n_procs
        assert record["dtype_policy"]
        assert record["utilization"]["engine"] == machine.engine.name
        assert 0.0 <= record["pool"]["hit_rate"] <= 1.0
        assert record["fault_schedule"] is None
        assert validate_ledger_record(record) == []

        path = tmp_path / "ledger.jsonl"
        assert append_record(record, path) == path
        assert append_record(record, path) == path
        rows = read_ledger(path)
        assert len(rows) == 2
        assert rows[0] == json.loads(json.dumps(record))

    def test_append_rejects_invalid_rows(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        bad = make_record("test", "x", wall_seconds=1.0)
        bad["kind"] = ""
        with pytest.raises(ValueError, match="refusing"):
            append_record(bad, path)
        assert not path.exists()

    def test_validator_catches_problems(self):
        assert validate_ledger_record([]) != []
        assert validate_ledger_record({"schema_version": SCHEMA_VERSION,
                                       "kind": "t", "name": ""}) != []
        rec = make_record("test", "x", wall_seconds=float("nan"))
        assert any("wall_seconds" in p for p in validate_ledger_record(rec))
        rec = make_record("test", "x",
                          simulated=[{"label": 3,
                                      "simulated_seconds": 1.0}])
        assert any("label" in p for p in validate_ledger_record(rec))

    def test_latest_by_name(self):
        rows = [{"name": "a", "v": 1}, {"name": "b", "v": 2},
                {"name": "a", "v": 3}]
        assert latest_by_name(rows) == {"a": {"name": "a", "v": 3},
                                        "b": {"name": "b", "v": 2}}

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="ledger line"):
            read_ledger(path)

    def test_peak_rss_positive(self):
        rss = peak_rss_bytes()
        assert rss is None or rss > 1024 * 1024


class TestSchemaPolicy:
    def test_current_version_clean(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert check_schema_version(SCHEMA_VERSION, "here") == []

    def test_missing_version_warns(self):
        with pytest.warns(UserWarning, match="no schema_version"):
            assert check_schema_version(None, "here") == []

    def test_unknown_major_rejected(self):
        problems = check_schema_version("99.0", "here")
        assert problems and "major" in problems[0]

    def test_newer_minor_warns(self):
        with pytest.warns(UserWarning, match="newer than this reader"):
            assert check_schema_version("1.99", "here") == []

    def test_malformed_rejected(self):
        assert check_schema_version("banana", "here") != []
