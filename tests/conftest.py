"""Shared pytest fixtures and simsan / hypothesis wiring."""

import os

import numpy as np
import pytest

try:
    from hypothesis import HealthCheck, settings as hyp_settings

    # "quick" keeps the property suites inside the tier-1 time budget;
    # "deep" (REPRO_HYPOTHESIS_PROFILE=deep, typically with `-m slow`)
    # explores far more cases for local soak runs.
    hyp_settings.register_profile(
        "quick", max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.too_slow,
                               HealthCheck.filter_too_much,
                               HealthCheck.data_too_large])
    hyp_settings.register_profile(
        "deep", max_examples=150, deadline=None,
        suppress_health_check=[HealthCheck.too_slow,
                               HealthCheck.filter_too_much,
                               HealthCheck.data_too_large])
    hyp_settings.load_profile(
        os.environ.get("REPRO_HYPOTHESIS_PROFILE", "quick"))
except ImportError:  # pragma: no cover - hypothesis ships with the toolchain
    pass


def pytest_addoption(parser):
    parser.addoption(
        "--simsan", choices=("on", "off"), default="on",
        help="run the suite under the simmpi runtime sanitizer "
             "(default: on; benchmarks always run with it off)")


@pytest.fixture(scope="session", autouse=True)
def _simsan_mode(request):
    """Propagate the --simsan option to every Machine via REPRO_SIMSAN.

    Machines created with an explicit ``sanitize=`` argument are unaffected,
    so the adversarial sanitizer tests stay meaningful under ``--simsan=off``.
    """
    mode = request.config.getoption("--simsan")
    old = os.environ.get("REPRO_SIMSAN")
    os.environ["REPRO_SIMSAN"] = "1" if mode == "on" else "0"
    yield
    if old is None:
        os.environ.pop("REPRO_SIMSAN", None)
    else:
        os.environ["REPRO_SIMSAN"] = old


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
