"""Tests for the public entry point (repro.minimum_spanning_forest)."""

import numpy as np
import pytest

import repro
from repro.core import available_algorithms, minimum_spanning_forest
from repro.dgraph import DistGraph, Edges
from repro.seq import kruskal_msf, verify_msf
from repro.simmpi import Machine

from helpers import random_simple_graph


class TestRegistry:
    def test_all_algorithms_registered(self):
        assert set(available_algorithms()) == {
            "boruvka", "filter-boruvka", "awerbuch-shiloach", "mnd-mst",
            "dist-kruskal", "dist-prim"}

    def test_unknown_algorithm_rejected(self, rng):
        g = random_simple_graph(rng, 10, 20)
        dg = DistGraph.from_global_edges(Machine(2), g)
        with pytest.raises(ValueError, match="unknown algorithm"):
            minimum_spanning_forest(dg, algorithm="dijkstra")


class TestEntryPoint:
    @pytest.mark.parametrize("alg", ["boruvka", "filter-boruvka",
                                     "awerbuch-shiloach", "mnd-mst"])
    def test_distgraph_input(self, alg, rng):
        n = 40
        g = random_simple_graph(rng, n, 160)
        dg = DistGraph.from_global_edges(Machine(4), g)
        res = minimum_spanning_forest(dg, algorithm=alg)
        verify_msf(res.msf_edges(), g, n, check_edges=False)

    def test_global_edges_input(self, rng):
        n = 30
        g = random_simple_graph(rng, n, 120)
        res = minimum_spanning_forest(g, machine=Machine(4))
        assert res.total_weight == kruskal_msf(g, n).total_weight()

    def test_asymmetric_edges_get_back_edges(self, rng):
        # One direction only: the entry point must symmetrise.
        n = 20
        u = np.arange(n - 1)
        g = Edges(u, u + 1, np.arange(1, n))
        res = minimum_spanning_forest(g, machine=Machine(3))
        assert res.total_weight == int(np.arange(1, n).sum())

    def test_edges_without_machine_rejected(self, rng):
        g = random_simple_graph(rng, 10, 30)
        with pytest.raises(ValueError, match="Machine"):
            minimum_spanning_forest(g)

    def test_top_level_reexport(self, rng):
        assert repro.minimum_spanning_forest is minimum_spanning_forest
        assert repro.Machine is Machine


@pytest.fixture
def rng():
    return np.random.default_rng(113)
