"""Tests for the reporting/regression layer (repro.analysis.report).

Exercises the BENCH perf gate (wall ratio + bit-for-bit simulated
series), directory matching across benchmark families, ledger diffing,
the ASCII/HTML renderers on a real traced run, and the ``repro report``
CLI including the ``--check`` exit code contract shared with
``benchmarks/check_perf.py``.
"""

import json

import pytest

from repro.analysis.report import (
    classify_artifact,
    compare_bench,
    ledger_diff,
    perf_check,
    perf_failures,
    regression_html,
    regression_text,
    report_for_directory,
    report_for_target,
    simulated_diffs,
)
from repro.cli import main as cli_main
from repro.core import BoruvkaConfig, minimum_spanning_forest
from repro.graphgen import gen_family
from repro.obs import append_record, make_record, write_chrome_trace
from repro.simmpi import Machine


def _bench(name="fam", wall=1.0, sims=((0.5, "a"), (0.25, "b"))):
    """A minimal BENCH-shaped record."""
    return {"schema_version": "1.0", "name": name, "wall_seconds": wall,
            "simulated": [{"label": lbl, "simulated_seconds": s}
                          for s, lbl in sims]}


class TestPerfGate:
    def test_identical_records_pass(self):
        row = compare_bench(_bench(), _bench())
        assert row["failures"] == []
        assert row["ratio"] == 1.0
        assert row["simulated_ok"]

    def test_wall_regression_fails(self):
        row = compare_bench(_bench(wall=5.0), _bench(wall=1.0),
                            max_ratio=2.0)
        assert any("wall-clock regression" in f for f in row["failures"])

    def test_wall_within_ratio_passes(self):
        row = compare_bench(_bench(wall=1.9), _bench(wall=1.0),
                            max_ratio=2.0)
        assert row["failures"] == []

    def test_simulated_drift_fails(self):
        fresh = _bench(sims=((0.5 + 1e-15, "a"),))
        row = compare_bench(fresh, _bench(sims=((0.5, "a"),)))
        assert not row["simulated_ok"]
        assert any("drifted" in f for f in row["failures"])

    def test_simulated_label_mismatch_fails(self):
        diffs = simulated_diffs(_bench(sims=((0.5, "a"),)),
                                _bench(sims=((0.5, "zzz"),)))
        assert diffs and "series mismatch" in diffs[0]

    def test_directory_matching_covers_every_family(self, tmp_path):
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), base.mkdir()
        for d in (fresh, base):
            (d / "BENCH_one.json").write_text(json.dumps(_bench("one")))
        (fresh / "BENCH_two.json").write_text(
            json.dumps(_bench("two", wall=9.0)))
        (base / "BENCH_two.json").write_text(json.dumps(_bench("two")))
        (base / "BENCH_gone.json").write_text(json.dumps(_bench("gone")))
        results = perf_check(fresh, base, max_ratio=2.0)
        assert [r["name"] for r in results] == ["BENCH_gone.json", "one",
                                                "two"]
        failures = perf_failures(results)
        assert any("missing fresh run" in f for f in failures)
        assert any("wall-clock regression" in f for f in failures)

    def test_single_file_mode(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(_bench()))
        b.write_text(json.dumps(_bench()))
        results = perf_check(a, b)
        assert len(results) == 1 and results[0]["failures"] == []

    def test_committed_baselines_pass_their_own_gate(self):
        # The gate verdict on the checked-in records must be reproducible:
        # every committed family compared against itself passes at 2x.
        results = perf_check("benchmarks/results", "benchmarks/results",
                             max_ratio=2.0)
        assert len(results) >= 16
        assert perf_failures(results) == []


class TestLedgerDiff:
    def test_latest_vs_previous(self):
        rows = [dict(_bench("run"), kind="cli"),
                dict(_bench("run", wall=10.0), kind="cli")]
        diffs = ledger_diff(rows, max_ratio=2.0)
        assert len(diffs) == 1
        assert any("wall-clock regression" in f
                   for f in diffs[0]["failures"])

    def test_first_run_has_no_baseline(self):
        diffs = ledger_diff([dict(_bench("solo"), kind="cli")])
        assert diffs[0]["wall_base"] is None
        assert diffs[0]["failures"] == []


class TestRenderers:
    def test_regression_text_and_html(self):
        rows = [compare_bench(_bench(wall=5.0), _bench(wall=1.0))]
        text = regression_text(rows)
        assert "FAIL" in text and "5" in text
        html_doc = regression_html(rows)
        assert html_doc.startswith("<!doctype html>")
        assert "FAIL" in html_doc


@pytest.fixture(scope="module")
def traced_artifacts(tmp_path_factory):
    """One traced run exported to disk: trace JSON + a two-row ledger."""
    tmp = tmp_path_factory.mktemp("report")
    g = gen_family("GNM", 1024, 4096, seed=2)
    machine = Machine(8, trace_events=True)
    res = minimum_spanning_forest(g.distribute(machine),
                                  algorithm="boruvka",
                                  config=BoruvkaConfig(base_case_min=64))
    trace = tmp / "run.trace.json"
    write_chrome_trace(machine.events, trace,
                       metadata={"n_procs": machine.n_procs})
    ledger = tmp / "ledger.jsonl"
    for _ in range(2):
        append_record(
            make_record("cli", "mst-boruvka", machine=machine,
                        simulated=[{"label": "gnm-p8",
                                    "simulated_seconds": res.elapsed}],
                        wall_seconds=0.5),
            ledger)
    return {"trace": trace, "ledger": ledger, "elapsed": res.elapsed}


class TestReportTargets:
    def test_classify(self, traced_artifacts, tmp_path):
        assert classify_artifact(traced_artifacts["trace"])[0] == "trace"
        assert classify_artifact(traced_artifacts["ledger"])[0] == "ledger"
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps(_bench()))
        assert classify_artifact(bench)[0] == "bench"
        junk = tmp_path / "junk.json"
        junk.write_text("{}")
        with pytest.raises(ValueError):
            classify_artifact(junk)

    def test_trace_report(self, traced_artifacts):
        text, html_doc, failures = report_for_target(
            traced_artifacts["trace"])
        assert failures == []
        assert "critical path:" in text
        assert "per-round load imbalance" in text
        assert html_doc.startswith("<!doctype html>")
        assert "heatmap" in html_doc.lower()

    def test_ledger_report(self, traced_artifacts):
        text, html_doc, failures = report_for_target(
            traced_artifacts["ledger"])
        assert failures == []
        assert "run ledger: 2 rows" in text
        assert "mst-boruvka" in text

    def test_directory_without_baseline_needs_ledger(self, tmp_path):
        with pytest.raises(ValueError, match="ledger"):
            report_for_directory(tmp_path)

    def test_bench_schema_major_mismatch_fails_check(self, tmp_path):
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps(dict(_bench(), schema_version="9.0")))
        _, _, failures = report_for_target(bench)
        assert failures and "major" in failures[0]


class TestReportCli:
    def test_trace_target(self, traced_artifacts, tmp_path, capsys):
        out = tmp_path / "r.html"
        rc = cli_main(["report", str(traced_artifacts["trace"]),
                       "--html", str(out)])
        assert rc == 0
        assert out.read_text().startswith("<!doctype html>")
        assert "critical path:" in capsys.readouterr().out

    def test_check_pass_and_fail(self, tmp_path, capsys):
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), base.mkdir()
        (fresh / "BENCH_a.json").write_text(json.dumps(_bench("a")))
        (base / "BENCH_a.json").write_text(json.dumps(_bench("a")))
        assert cli_main(["report", str(fresh), "--baseline", str(base),
                         "--check"]) == 0
        (fresh / "BENCH_a.json").write_text(
            json.dumps(_bench("a", wall=9.0)))
        assert cli_main(["report", str(fresh), "--baseline", str(base),
                         "--check"]) == 1
        capsys.readouterr()

    def test_missing_target(self, capsys):
        assert cli_main(["report", "/nonexistent/x.json"]) == 2
        capsys.readouterr()
