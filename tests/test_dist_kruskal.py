"""Tests for the replicated-vertex distributed Kruskal
(repro.competitors.dist_kruskal)."""

import numpy as np
import pytest

from repro.competitors import dist_kruskal
from repro.core import BoruvkaConfig, distributed_boruvka
from repro.dgraph import DistGraph
from repro.graphgen import FAMILIES, gen_family
from repro.seq import verify_msf
from repro.simmpi import Machine, SimulatedOutOfMemory

from helpers import random_distinct_weight_graph, random_simple_graph


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 16])
    def test_matches_kruskal(self, p, rng):
        n = int(rng.integers(10, 80))
        g = random_simple_graph(rng, n, 5 * n)
        dg = DistGraph.from_global_edges(Machine(p), g)
        res = dist_kruskal(dg)
        verify_msf(res.msf_edges(), g, n, check_edges=False)
        assert res.algorithm == "dist-kruskal"

    def test_identical_edges_with_distinct_weights(self, rng):
        n = 50
        g = random_distinct_weight_graph(rng, n, 4 * n)
        dg = DistGraph.from_global_edges(Machine(6), g)
        res = dist_kruskal(dg)
        verify_msf(res.msf_edges(), g, n, check_edges=True)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_families(self, family):
        g = gen_family(family, 256, 1024, seed=19)
        dg = g.distribute(Machine(8))
        res = dist_kruskal(dg)
        verify_msf(res.msf_edges(), g.edges, g.n_vertices,
                   check_edges=False)

    def test_merge_levels_logarithmic(self, rng):
        g = random_simple_graph(rng, 60, 400)
        dg = DistGraph.from_global_edges(Machine(16), g)
        res = dist_kruskal(dg)
        assert res.rounds == 4  # log2(16) merge levels


class TestScalingCharacter:
    def test_replicated_vertices_hit_memory_wall(self, rng):
        """Per-PE memory is Omega(n): a tight limit OOMs even at large p."""
        g = gen_family("GNM", 4096, 8192, seed=20)
        machine = Machine(32)
        dg = g.distribute(machine)
        machine.memory_limit_bytes = 30_000  # Omega(n) replication exceeds it
        with pytest.raises(SimulatedOutOfMemory):
            dist_kruskal(dg)

    def test_serial_merge_bottleneck(self):
        """Our boruvka beats the merge tree at scale (the Section III
        story: [24] targets small machines)."""
        g = gen_family("GNM", 4096, 32768, seed=21)
        m1, m2 = Machine(32), Machine(32)
        r_ours = distributed_boruvka(g.distribute(m1),
                                     BoruvkaConfig(base_case_min=128))
        r_dk = dist_kruskal(g.distribute(m2))
        assert r_dk.elapsed > r_ours.elapsed


@pytest.fixture
def rng():
    return np.random.default_rng(163)
