"""Tests for communication tracing (repro.simmpi.trace)."""

import numpy as np
import pytest

from repro.core import BoruvkaConfig, distributed_boruvka
from repro.simmpi import (
    Comm,
    CommTrace,
    Machine,
    alltoallv_direct,
    alltoallv_grid,
    comm_heatmap,
    hotspot_summary,
)

from helpers import random_simple_graph


def _uniform_send(p, rows_per_pair=2):
    bufs = [np.zeros((rows_per_pair * p, 1), dtype=np.int64)
            for _ in range(p)]
    cnts = [np.full(p, rows_per_pair, dtype=np.int64) for _ in range(p)]
    return bufs, cnts


class TestCommTrace:
    def test_disabled_by_default(self):
        m = Machine(4)
        assert m.trace is None
        bufs, cnts = _uniform_send(4)
        alltoallv_direct(Comm(m), bufs, cnts)  # must not crash

    def test_direct_records_exact_matrix(self):
        p = 4
        m = Machine(p, trace=True)
        bufs, cnts = _uniform_send(p, rows_per_pair=3)
        alltoallv_direct(Comm(m), bufs, cnts)
        assert m.trace.n_exchanges == 1
        assert np.allclose(m.trace.matrix, 3 * 8)  # 3 rows x 8 bytes

    def test_totals_match_bytes_communicated(self):
        for variant in (alltoallv_direct, alltoallv_grid):
            p = 9
            m = Machine(p, trace=True)
            bufs, cnts = _uniform_send(p)
            variant(Comm(m), bufs, cnts)
            assert m.trace.total_bytes() == pytest.approx(
                m.bytes_communicated)

    def test_grid_traffic_stays_in_rows_and_columns(self):
        p = 16
        m = Machine(p, trace=True)
        bufs, cnts = _uniform_send(p)
        alltoallv_grid(Comm(m), bufs, cnts)
        c = 4  # sqrt(16)
        for i in range(p):
            for j in range(p):
                if m.trace.matrix[i, j] > 0:
                    same_col = (i % c) == (j % c)
                    same_row = (i // c) == (j // c)
                    assert same_col or same_row, (i, j)

    def test_full_run_traced(self, rng):
        g = random_simple_graph(rng, 50, 250)
        from repro.dgraph import DistGraph

        m = Machine(6, trace=True)
        dg = DistGraph.from_global_edges(m, g)
        distributed_boruvka(dg, BoruvkaConfig(base_case_min=16))
        assert m.trace.n_exchanges > 0
        rel_err = abs(m.trace.total_bytes() - m.bytes_communicated) / \
            max(m.bytes_communicated, 1)
        assert rel_err < 0.05

    def test_imbalance_metric(self):
        t = CommTrace(2)
        t.record(np.array([[0.0, 100.0], [0.0, 0.0]]))
        assert t.imbalance() == pytest.approx(2.0)  # one PE sends all

    def test_imbalance_of_empty_trace(self):
        assert CommTrace(3).imbalance() == 1.0


class TestRendering:
    def test_heatmap_renders(self):
        t = CommTrace(4)
        t.record(np.full((4, 4), 10.0))
        out = comm_heatmap(t)
        assert "total" in out and out.count("|") >= 8

    def test_heatmap_bins_large_machines(self):
        t = CommTrace(128)
        t.record(np.ones((128, 128)))
        out = comm_heatmap(t, max_cells=16)
        assert len(out.splitlines()) < 25

    def test_heatmap_empty(self):
        assert "no traffic" in comm_heatmap(CommTrace(4))

    def test_hotspots(self):
        t = CommTrace(4)
        m = np.zeros((4, 4))
        m[2, 1] = 999.0
        t.record(m)
        out = hotspot_summary(t)
        assert "PE2" in out and "PE2->PE1" in out

    def test_hotspots_skip_zero_volume_entries(self):
        """Fewer than top-k active senders: no zero-volume padding."""
        t = CommTrace(8)
        m = np.zeros((8, 8))
        m[5, 2] = 10.0
        t.record(m)
        out = hotspot_summary(t, top=3)
        assert out.count("PE") == 3  # PE5 sender + the PE5->PE2 pair
        assert "=0.00e+00B" not in out

    def test_hotspots_empty_trace(self):
        assert hotspot_summary(CommTrace(4)) == "(no traffic recorded)"

    def test_binned_heatmap_matches_reference_on_uneven_edges(self):
        """Vectorised binning is byte-for-byte the old per-cell loop."""
        rng = np.random.default_rng(11)
        for p, bins in ((33, 32), (50, 32), (100, 32), (41, 8)):
            t = CommTrace(p)
            t.record(rng.integers(0, 1 << 20, (p, p)).astype(np.float64))
            edges = np.linspace(0, p, bins + 1).astype(int)
            ref = np.zeros((bins, bins))
            for i in range(bins):
                for j in range(bins):
                    ref[i, j] = t.matrix[edges[i]:edges[i + 1],
                                         edges[j]:edges[j + 1]].sum()
            binned = np.add.reduceat(
                np.add.reduceat(t.matrix, edges[:-1], axis=0),
                edges[:-1], axis=1)
            assert np.array_equal(ref, binned), (p, bins)
            rendered = comm_heatmap(t, max_cells=bins)
            assert len(rendered.splitlines()) == bins + 2


class TestRecordValidation:
    def test_rejects_wrong_shape(self):
        t = CommTrace(4)
        with pytest.raises(ValueError, match="matrix"):
            t.record(np.zeros((3, 4)))
        with pytest.raises(ValueError, match="matrix"):
            t.record(np.zeros(4))
        assert t.n_exchanges == 0

    def test_rejects_non_numeric_dtype(self):
        t = CommTrace(2)
        with pytest.raises(ValueError, match="numeric"):
            t.record(np.array([["a", "b"], ["c", "d"]]))
        assert t.n_exchanges == 0

    def test_accepts_integer_and_list_input(self):
        t = CommTrace(2)
        t.record(np.ones((2, 2), dtype=np.int64))
        t.record([[1, 2], [3, 4]])
        assert t.n_exchanges == 2
        assert t.total_bytes() == 14.0


@pytest.fixture
def rng():
    return np.random.default_rng(167)
