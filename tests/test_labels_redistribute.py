"""Tests for EXCHANGELABELS / RELABEL / REDISTRIBUTE
(repro.core.labels, repro.core.redistribute)."""

import numpy as np
import pytest

from repro.core import (
    BoruvkaConfig,
    MSTRun,
    contract_components,
    exchange_labels,
    min_edges,
    redistribute,
    relabel,
)
from repro.core.redistribute import dedup_sorted_part
from repro.dgraph import DistGraph, Edges
from repro.simmpi import Machine

from helpers import random_simple_graph


def _one_round(g, p):
    machine = Machine(p)
    dg = DistGraph.from_global_edges(machine, g)
    run = MSTRun(machine, BoruvkaConfig())
    chosen = min_edges(dg)
    labels = contract_components(dg, chosen, run)
    vids = [c.vids for c in chosen]
    tables = exchange_labels(dg, vids, labels, run)
    rel = relabel(dg, vids, labels, tables, run)
    return machine, dg, run, vids, labels, tables, rel


class TestExchangeLabels:
    @pytest.mark.parametrize("p", [2, 3, 5, 8])
    def test_every_ghost_receives_its_label(self, p, rng):
        g = random_simple_graph(rng, 40, 200)
        machine, dg, run, vids, labels, tables, rel = _one_round(g, p)
        # Build the true global label map.
        true = {}
        for i in range(p):
            for v, l in zip(vids[i], labels[i]):
                true[int(v)] = int(l)
        for i in range(p):
            t = tables[i]
            for gv, gl in zip(t.ghosts, t.labels):
                assert true[int(gv)] == int(gl)

    def test_relabel_removes_all_self_loops(self, rng):
        g = random_simple_graph(rng, 40, 200)
        machine, dg, run, vids, labels, tables, rel = _one_round(g, 4)
        true = {}
        for i in range(4):
            for v, l in zip(vids[i], labels[i]):
                true[int(v)] = int(l)
        for e in rel:
            assert (e.u != e.v).all()
            # Each relabelled endpoint equals the true component label.
        total_alive = sum(
            1 for k in range(len(g))
            if true[int(g.u[k])] != true[int(g.v[k])]
        )
        assert sum(len(e) for e in rel) == total_alive


class TestDedup:
    def test_dedup_sorted_part_keeps_lightest(self):
        part = np.array([[0, 1, 3, 0], [0, 1, 7, 1], [0, 2, 5, 2],
                         [1, 0, 3, 3], [1, 0, 3, 4]])
        out = dedup_sorted_part(part)
        assert [tuple(r[:3]) for r in out] == [(0, 1, 3), (0, 2, 5),
                                               (1, 0, 3)]

    def test_dedup_empty(self):
        out = dedup_sorted_part(np.empty((0, 4), dtype=np.int64))
        assert len(out) == 0


class TestRedistribute:
    def test_output_is_valid_distgraph(self, rng):
        g = random_simple_graph(rng, 40, 200)
        machine, dg, run, vids, labels, tables, rel = _one_round(g, 5)
        new_graph = redistribute(run, machine, rel, check=True)
        assert new_graph.global_edge_count() <= sum(len(e) for e in rel)

    def test_boundary_spanning_duplicates_removed(self):
        # Craft parallel (0,1) edges that will straddle PE boundaries after
        # balancing: many copies of the same pair with distinct weights.
        machine = Machine(4)
        run = MSTRun(machine, BoruvkaConfig())
        k = 20
        parts = [Edges(np.zeros(k, dtype=np.int64),
                       np.ones(k, dtype=np.int64),
                       np.arange(i * k, (i + 1) * k, dtype=np.int64),
                       np.arange(i * k, (i + 1) * k, dtype=np.int64))
                 for i in range(4)]
        out = redistribute(run, machine, parts, check=True)
        # Exactly one (0,1) edge survives, with the globally smallest weight.
        total = Edges.concat(out.parts)
        assert len(total) == 1
        assert total.w[0] == 0

    def test_no_duplicate_pairs_after_redistribute(self, rng):
        g = random_simple_graph(rng, 30, 150)
        machine, dg, run, vids, labels, tables, rel = _one_round(g, 6)
        out = redistribute(run, machine, rel, check=True)
        total = Edges.concat(out.parts)
        pairs = list(zip(total.u.tolist(), total.v.tolist()))
        assert len(pairs) == len(set(pairs))

    def test_lightest_parallel_edge_survives(self, rng):
        g = random_simple_graph(rng, 30, 150)
        machine, dg, run, vids, labels, tables, rel = _one_round(g, 6)
        merged = Edges.concat(rel)
        out = redistribute(run, machine, rel, check=True)
        total = Edges.concat(out.parts)
        for k in range(len(total)):
            same = (merged.u == total.u[k]) & (merged.v == total.v[k])
            assert total.w[k] == merged.w[same].min()


@pytest.fixture
def rng():
    return np.random.default_rng(53)
