"""The fault-injection and recovery subsystem (repro.faults, docs/faults.md).

Covers the three subsystem layers and their contracts:

* schedule parsing -- grammar, defaults, validation errors, env handling;
* checksums -- single-bit-flip and transposition detection;
* injection + recovery -- the bit-identical-MST invariant for every fault
  kind (under the sanitizer), honest cost charging, deterministic replay
  via ``Machine.reset``, and the ``UnrecoverableFault`` budget paths.
"""

import numpy as np
import pytest

from repro.core import (
    BoruvkaConfig,
    FilterConfig,
    distributed_boruvka,
    distributed_filter_boruvka,
)
from repro.dgraph import DistGraph
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    UnrecoverableFault,
    buffer_checksum,
    faults_env_spec,
    flip_bit,
)
from repro.simmpi import Machine

from helpers import random_simple_graph


# ----------------------------------------------------------------------
# Shared fixtures: one mid-sized instance with enough distributed rounds
# for fail-stop events to have checkpoints to hit.
# ----------------------------------------------------------------------

N, M = 2000, 12000
CFG = BoruvkaConfig(base_case_min=64)


@pytest.fixture(scope="module")
def graph_edges():
    return random_simple_graph(np.random.default_rng(42), N, M)


def run_mst(edges, faults, algo=distributed_boruvka, cfg=CFG, procs=8,
            sanitize=True):
    machine = Machine(procs, sanitize=sanitize, faults=faults)
    g = DistGraph.from_global_edges(machine, edges)
    result = algo(g, cfg)
    return machine, result


# ----------------------------------------------------------------------
# Schedule parsing.
# ----------------------------------------------------------------------

class TestScheduleParsing:
    def test_defaults_inject_nothing(self):
        s = FaultSchedule()
        assert not s.injects_anything
        assert not s.protects_rounds

    def test_full_grammar_round_trip(self):
        s = FaultSchedule.parse(
            "seed=7; pe_fail=0.1, pe_fail@3:2, msg_drop=0.01,"
            "corrupt=0.05, straggle=0.02x16, slow_link=1x6, slow_link=4,"
            "timeout=2e-4, retries=3, max_replays=4")
        assert s.seed == 7
        assert s.pe_fail == 0.1
        assert s.pe_fail_at == [(3, 2)]
        assert s.msg_drop == 0.01
        assert s.corrupt == 0.05
        assert s.straggle == 0.02 and s.straggle_factor == 16.0
        assert s.slow_links == {1: 6.0, 4: 4.0}
        assert s.timeout == 2e-4
        assert s.retries == 3
        assert s.max_replays == 4
        assert s.injects_anything and s.protects_rounds

    def test_knobs_only_schedule_is_empty(self):
        s = FaultSchedule.parse("seed=99, timeout=1e-3, retries=2")
        assert not s.injects_anything

    @pytest.mark.parametrize("spec", [
        "msg_drop=oops",          # not a number
        "pe_fail=1.5",            # probability out of range
        "corrupt=-0.1",           # negative probability
        "straggle=0.1x0.5",       # slowdown factor below 1
        "pe_fail@3",              # missing :PE
        "pe_fail@a:b",            # non-integer round/PE
        "pe_fail@-1:0",           # negative round
        "retries=0",              # budget below 1
        "max_replays=0",
        "timeout=-1",
        "frobnicate=1",           # unknown key
        "justaword",              # not KEY=VALUE
    ])
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError, match="fault spec"):
            FaultSchedule.parse(spec)

    def test_env_disabled_values(self, monkeypatch):
        for off in ("", "0", "false", "NO", "off"):
            monkeypatch.setenv("REPRO_FAULTS", off)
            assert faults_env_spec() is None
            assert FaultSchedule.from_env() is None
        monkeypatch.delenv("REPRO_FAULTS")
        assert faults_env_spec() is None

    def test_env_spec_attaches_to_machine(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=5, msg_drop=0.1")
        m = Machine(4)
        assert m.faults is not None
        assert m.faults.schedule.msg_drop == 0.1
        # Explicit faults=False overrides the environment.
        assert Machine(4, faults=False).faults is None

    def test_machine_rejects_bad_faults_argument(self):
        with pytest.raises(TypeError):
            Machine(4, faults=3.14)
        with pytest.raises(ValueError, match="fault spec"):
            Machine(4, faults="nonsense spec")

    def test_slow_link_pe_out_of_range(self):
        with pytest.raises(ValueError, match="slow_link PE 9"):
            Machine(4, faults="slow_link=9x2")


# ----------------------------------------------------------------------
# Checksums.
# ----------------------------------------------------------------------

class TestChecksum:
    def test_detects_every_single_bit_flip(self, rng):
        buf = rng.integers(0, 2 ** 60, 16, dtype=np.int64)
        clean = buffer_checksum(buf)
        for pos in (0, 7, 15):
            for bit in (0, 31, 63):
                assert buffer_checksum(flip_bit(buf, pos, bit)) != clean

    def test_detects_transposition(self, rng):
        buf = rng.integers(0, 2 ** 60, 8, dtype=np.int64)
        swapped = buf.copy()
        swapped[[0, 1]] = swapped[[1, 0]]
        assert buffer_checksum(swapped) != buffer_checksum(buf)

    def test_empty_and_odd_width_buffers(self):
        assert buffer_checksum(np.empty(0, dtype=np.int64)) == 0
        narrow = np.array([1, 2, 3], dtype=np.int32)
        assert buffer_checksum(narrow) == buffer_checksum(
            narrow.astype(np.int64))

    def test_flip_bit_leaves_original_untouched(self):
        buf = np.zeros(4, dtype=np.int64)
        out = flip_bit(buf, 2, 5)
        assert buf[2] == 0
        assert out[2] == 1 << 5


# ----------------------------------------------------------------------
# Recovery invariants (the heart of the subsystem).
# ----------------------------------------------------------------------

COMM_FAULT_SPECS = [
    "seed=1, msg_drop=0.05",
    "seed=2, corrupt=0.10",
    "seed=3, straggle=0.05x8",
    "seed=4, slow_link=2x4, slow_link=5x2",
    "seed=5, msg_drop=0.02, corrupt=0.05, straggle=0.02",
]

FAILSTOP_SPECS = [
    "seed=6, pe_fail=0.05",
    "seed=7, pe_fail@0:3",
    "seed=8, pe_fail@1:0, pe_fail@1:5",
    "seed=9, pe_fail=0.04, msg_drop=0.02, corrupt=0.05, straggle=0.02",
]


class TestRecoveryInvariants:
    @pytest.mark.parametrize("spec", COMM_FAULT_SPECS + FAILSTOP_SPECS)
    def test_surviving_run_is_bit_identical(self, graph_edges, spec):
        _, clean = run_mst(graph_edges, faults=False)
        machine, faulty = run_mst(graph_edges, faults=spec)
        assert faulty.total_weight == clean.total_weight
        assert len(faulty.msf_edges()) == len(clean.msf_edges())
        assert machine.faults.counts, f"{spec!r} injected nothing"
        assert faulty.elapsed > clean.elapsed, (
            f"{machine.faults.summary()} recovered for free")

    def test_filter_boruvka_recovers_from_fail_stop(self, graph_edges):
        algo = distributed_filter_boruvka
        cfg = FilterConfig(boruvka=CFG)
        _, clean = run_mst(graph_edges, faults=False, algo=algo, cfg=cfg)
        machine, faulty = run_mst(
            graph_edges, faults="seed=13, pe_fail=0.05", algo=algo, cfg=cfg)
        assert faulty.total_weight == clean.total_weight
        assert machine.faults.counts.get("pe_fail", 0) > 0

    def test_one_shot_events_fire_exactly_once(self, graph_edges):
        machine, faulty = run_mst(graph_edges, faults="seed=0, pe_fail@0:2")
        s = machine.faults.summary()
        assert s["pe_fail"] == 1
        assert s["round_replay"] == 1

    def test_empty_schedule_identity_bitwise(self, graph_edges):
        _, clean = run_mst(graph_edges, faults=False)
        _, empty = run_mst(graph_edges, faults="seed=12345")
        assert empty.total_weight == clean.total_weight
        assert empty.elapsed == clean.elapsed
        assert empty.phase_times == clean.phase_times

    def test_machine_reset_rearms_injector(self, graph_edges):
        spec = "seed=6, pe_fail=0.05, msg_drop=0.02, corrupt=0.05"
        machine = Machine(8, sanitize=True, faults=spec)
        g = DistGraph.from_global_edges(machine, graph_edges)
        r1 = distributed_boruvka(g, CFG)
        c1 = machine.faults.summary()
        machine.reset()
        g = DistGraph.from_global_edges(machine, graph_edges)
        r2 = distributed_boruvka(g, CFG)
        assert r2.total_weight == r1.total_weight
        assert r2.elapsed == r1.elapsed
        assert machine.faults.summary() == c1

    def test_recovery_charges_are_visible_in_phases(self, graph_edges):
        machine, faulty = run_mst(graph_edges, faults="seed=7, pe_fail@0:3")
        assert faulty.phase_times.get("fault_checkpoint", 0.0) > 0.0
        assert faulty.phase_times.get("fault_recovery", 0.0) > 0.0
        # Comm-only schedules never checkpoint (no fail-stop possible).
        machine, faulty = run_mst(graph_edges, faults="seed=1, msg_drop=0.05")
        assert "fault_checkpoint" not in faulty.phase_times

    def test_fault_events_reach_tracer_and_metrics(self, graph_edges):
        machine = Machine(8, sanitize=True, trace_events=True,
                          faults="seed=6, pe_fail=0.05, corrupt=0.1")
        g = DistGraph.from_global_edges(machine, graph_edges)
        distributed_boruvka(g, CFG)
        from repro.obs import chrome_trace, validate_chrome_trace

        trace = chrome_trace(machine.events, {})
        assert not validate_chrome_trace(trace)
        instants = [e for e in trace["traceEvents"]
                    if e.get("ph") == "i" and e.get("cat") == "fault"]
        assert instants
        fault_counters = {name: c.value
                          for name, c in machine.metrics._counters.items()
                          if name.startswith("faults/")}
        assert any(v > 0 for v in fault_counters.values())


# ----------------------------------------------------------------------
# Unrecoverable paths: exhausted budgets must raise, not corrupt.
# ----------------------------------------------------------------------

class TestUnrecoverable:
    def test_msg_drop_retry_budget(self, graph_edges):
        # Drop probability ~1 makes the eventual retry-budget blowout
        # deterministic within the first collectives.
        with pytest.raises(UnrecoverableFault, match="retries"):
            run_mst(graph_edges, faults="seed=0, msg_drop=0.999, retries=2")

    def test_replay_budget(self, graph_edges):
        spec = ("seed=0, pe_fail@1:0, pe_fail@1:1, pe_fail=0.97, "
                "max_replays=2")
        with pytest.raises(UnrecoverableFault, match="max_replays=2"):
            run_mst(graph_edges, faults=spec)

    def test_pe_fail_at_out_of_range(self, graph_edges):
        with pytest.raises(ValueError, match="names PE 99"):
            run_mst(graph_edges, faults="seed=0, pe_fail@0:99")


# ----------------------------------------------------------------------
# Injector unit behaviour (no full MST run needed).
# ----------------------------------------------------------------------

class TestInjectorUnits:
    def test_inactive_injector_is_identity(self):
        m = Machine(4, faults="seed=3")
        cost = np.full(4, 1e-5)
        out = m.faults.on_collective("bcast", np.arange(4), cost, 64.0)
        assert out is cost  # not even copied
        assert m.faults.poll_pe_failures(0).size == 0

    def test_slow_link_multiplies_deterministically(self):
        m = Machine(4, faults="slow_link=2x4")
        cost = np.full(4, 1e-5)
        out = m.faults.on_collective("bcast", np.arange(4), cost, 64.0)
        assert out[2] == pytest.approx(4e-5)
        assert out[[0, 1, 3]] == pytest.approx(1e-5)

    def test_adjusted_costs_stay_positive_finite(self):
        m = Machine(8, faults="seed=1, msg_drop=0.3, straggle=0.3x8, "
                              "slow_link=0x9")
        cost = np.full(8, 1e-6)
        for _ in range(50):
            try:
                out = m.faults.on_collective("x", np.arange(8), cost, 8.0)
            except UnrecoverableFault:
                continue
            out = np.asarray(out, dtype=np.float64)
            assert np.isfinite(out).all() and (out > 0).all()

    def test_same_seed_injects_identically(self):
        counts = []
        for _ in range(2):
            m = Machine(8, faults="seed=17, msg_drop=0.2, retries=50")
            cost = np.full(8, 1e-6)
            for _ in range(100):
                m.faults.on_collective("x", np.arange(8), cost, 8.0)
            counts.append(m.faults.summary())
        assert counts[0] == counts[1]

    def test_injector_requires_schedule_object(self):
        m = Machine(4)
        with pytest.raises(AttributeError):
            FaultInjector(m, "seed=1")  # spec strings must be parsed first
