"""Tests for the ASCII chart renderer (repro.analysis.plots)."""

import numpy as np
import pytest

from repro.analysis import ExperimentResult
from repro.analysis.plots import ascii_plot, plot_results


class TestAsciiPlot:
    def test_basic_render(self):
        out = ascii_plot({"a": [(4, 1.0), (16, 0.5), (64, 0.25)],
                          "b": [(4, 2.0), (64, 2.0)]})
        assert "o = a" in out and "x = b" in out
        assert out.count("\n") > 10
        assert "o" in out and "x" in out

    def test_empty_series(self):
        assert "no finite data" in ascii_plot({"a": []})

    def test_non_finite_skipped(self):
        out = ascii_plot({"a": [(4, float("nan")), (8, 1.0)]})
        assert "o" in out

    def test_monotone_series_slopes_down(self):
        # Decreasing y: the glyph in the first column sits above the last.
        out = ascii_plot({"a": [(1, 100.0), (1000, 1.0)]},
                         width=20, height=10)
        rows = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
        first_col = next(r for r, line in enumerate(rows) if line[0] != " ")
        last_col = next(r for r, line in enumerate(rows)
                        if line[-1] != " ")
        assert first_col < last_col

    def test_collision_marker(self):
        out = ascii_plot({"a": [(4, 1.0)], "b": [(4, 1.0)]},
                         width=10, height=5)
        assert "*" in out


class TestPlotResults:
    def test_from_experiment_results(self):
        results = [
            ExperimentResult("g", "alg", 4, 4, 1, 10, 1000, 0.5),
            ExperimentResult("g", "alg", 16, 16, 1, 10, 1000, 0.2),
            ExperimentResult("g", "other", 4, 4, 1, 10, 1000, 1.0),
        ]
        out = plot_results(results, value="elapsed")
        assert "alg" in out and "other" in out

    def test_oom_rows_ignored(self):
        results = [
            ExperimentResult("g", "alg", 4, 4, 1, 10, 1000, 0.5),
            ExperimentResult("g", "alg", 16, 16, 1, 10, 1000, float("nan"),
                             status="oom"),
        ]
        out = plot_results(results, value="elapsed")
        assert "no finite data" not in out
